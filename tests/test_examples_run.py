"""Every example script must run to completion (they are part of the API
surface: README points users at them)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None, monkeypatch=None):
    script = EXAMPLES / f"{name}.py"
    assert script.exists(), f"missing example {script}"
    old_argv = sys.argv
    sys.argv = [str(script)] + (argv or [])
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "expressiveness_tour",
        "automata_playground",
        "containment_checker",
    ],
)
def test_example_runs(name, capsys):
    run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_document_workload_runs_small(capsys):
    run_example("document_workload", argv=["8"])
    out = capsys.readouterr().out
    assert "Schema-aware analysis" in out
    assert "UNEXPECTED" not in out


def test_query_optimizer_runs(capsys):
    run_example("query_optimizer")
    out = capsys.readouterr().out
    assert "FAILED" not in out
    assert "BUG" not in out
    assert "sound" in out
