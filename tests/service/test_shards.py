"""The multiprocess shard pool: correctness, stats merging, containment.

Everything here runs with small shard counts and batches — the scale soak
lives in ``test_shard_soak.py`` — but covers every behaviour the tentpole
promises:

* answers are identical to the in-process :class:`QueryService` (same
  engines, same documents, different transport);
* tree-affine routing is deterministic;
* merged stats reconcile to the unit (``submitted == completed`` over the
  parent + shard parts, registry results total == request count);
* fault broadcast reaches shards mid-run;
* a crashed shard resolves its outstanding requests with structured
  :class:`~repro.runtime.errors.ShardCrashedError` results and the other
  shards keep serving;
* no child process survives :meth:`close` (the orphan regression), the
  ``KeyboardInterrupt`` context-manager path included;
* the ``spawn`` start method works (nothing relies on fork inheritance).
"""

from __future__ import annotations

import time
import zlib

import pytest

from repro.service import (
    QueryRequest,
    QueryService,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import chain, parse_xml

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"


def make_registry() -> TreeRegistry:
    registry = TreeRegistry()
    registry.register("talk", parse_xml(DOC))
    registry.register("chain", chain(48, labels=("a", "b")))
    return registry


def mixed_requests(count: int) -> list[QueryRequest]:
    template = [
        ("eval", {"query": "<descendant[b]>", "tree": "chain"}),
        ("eval", {"query": "<child[i]>", "tree": "talk"}),
        ("select", {"query": "descendant[i]", "tree": "talk"}),
        ("check", {"formula": "exists x. b(x)", "tree": "chain"}),
        ("equivalent", {"left": "<child[b]>", "right": "<descendant[b]>"}),
    ]
    requests = []
    for i in range(count):
        op, kwargs = template[i % len(template)]
        requests.append(QueryRequest(op=op, id=f"mix-{i}", **kwargs))
    return requests


def wait_until(predicate, timeout=10.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def assert_no_survivors(processes) -> None:
    assert wait_until(
        lambda: all(not process.is_alive() for process in processes)
    ), f"orphaned shard processes: {[p.pid for p in processes if p.is_alive()]}"


class TestCorrectness:
    def test_matches_in_process_service(self):
        registry = make_registry()
        requests = mixed_requests(20)
        with QueryService(registry, workers=2) as reference_service:
            reference = {
                r.id: r for r in reference_service.run_batch(mixed_requests(20))
            }
        with ShardedQueryService(registry, shards=2) as service:
            results = service.run_batch(requests)
        assert len(results) == 20
        for result in results:
            expected = reference[result.id]
            assert result.status == expected.status == "ok"
            assert result.value == expected.value

    def test_routing_is_tree_affine(self):
        registry = make_registry()
        with ShardedQueryService(registry, shards=2) as service:
            results = service.run_batch(
                [
                    QueryRequest(op="eval", query="<child[i]>", tree="talk")
                    for _ in range(6)
                ]
            )
        expected_shard = zlib.crc32(b"talk") % 2
        workers = {result.worker.split("/")[0] for result in results}
        assert workers == {f"shard-{expected_shard}"}

    def test_inline_xml_and_equivalent_round_robin(self):
        registry = make_registry()
        with ShardedQueryService(registry, shards=2) as service:
            results = service.run_batch(
                [
                    QueryRequest(op="eval", query="<child[b]>", xml=DOC)
                    for _ in range(8)
                ]
            )
        assert all(result.status == "ok" for result in results)
        workers = {result.worker.split("/")[0] for result in results}
        assert workers == {"shard-0", "shard-1"}

    def test_validation_error_resolves_parent_side(self):
        with ShardedQueryService(make_registry(), shards=2) as service:
            result = service.submit(QueryRequest(op="bogus")).result(timeout=10)
        assert result.status == "error"
        assert result.error["type"] == "ValueError"

    def test_late_register_reaches_shards(self):
        registry = make_registry()
        with ShardedQueryService(registry, shards=2) as service:
            service.register("late", parse_xml("<x><b/></x>"))
            result = service.submit(
                QueryRequest(op="eval", query="<child[b]>", tree="late")
            ).result(timeout=10)
        assert result.status == "ok"
        assert result.value == [0]  # the root has a b-child

    def test_deadline_crosses_the_pipe(self):
        # A zero timeout must come back shed/timed out, not hang.
        with ShardedQueryService(make_registry(), shards=1) as service:
            result = service.submit(
                QueryRequest(
                    op="eval", query="<descendant[b]>", tree="chain", timeout=0.0
                )
            ).result(timeout=10)
        assert result.status in ("shed", "error")
        assert result.error is not None


class TestStatsMerging:
    def test_merged_snapshot_reconciles(self):
        registry = make_registry()
        requests = mixed_requests(30)
        with ShardedQueryService(registry, shards=2) as service:
            results = service.run_batch(requests)
            snapshot = service.stats_snapshot()
        assert all(result.status == "ok" for result in results)
        assert snapshot["submitted"] == 30
        assert snapshot["completed"] == 30
        assert snapshot["ok"] == 30
        # The parts decompose: parent admissions equal the request count,
        # shard-side results sum to everything the shards resolved.
        assert snapshot["parent"]["submitted"] == 30
        shard_ok = sum(s["ok"] for s in snapshot["shards"].values())
        assert shard_ok + snapshot["parent"]["ok"] == 30

    def test_registry_results_total_equals_requests(self):
        registry = make_registry()
        with ShardedQueryService(registry, shards=2) as service:
            service.run_batch(mixed_requests(25))
            metrics = service.metrics_snapshot()
        results_total = sum(
            value
            for series, value in metrics["counters"].items()
            if series.startswith("service_results_total")
        )
        assert results_total == 25

    def test_merged_percentiles_come_from_combined_population(self):
        registry = make_registry()
        with ShardedQueryService(registry, shards=2) as service:
            service.run_batch(mixed_requests(20))
            snapshot = service.stats_snapshot()
        # Percentile keys exist and are plausible (positive, p50 <= p90) —
        # the algebra itself is proven in tests/obs/test_merge.py.
        assert snapshot["latency_p50"] > 0
        assert snapshot["latency_p50"] <= snapshot["latency_p90"]

    def test_stats_after_shutdown_serve_from_final_snapshots(self):
        registry = make_registry()
        service = ShardedQueryService(registry, shards=2)
        try:
            service.run_batch(mixed_requests(10))
        finally:
            service.shutdown(drain=True)
        snapshot = service.stats_snapshot()
        assert snapshot["submitted"] == snapshot["completed"] == 10


class TestFaultBroadcast:
    def test_armed_faults_reach_shards(self):
        registry = make_registry()
        with ShardedQueryService(
            registry,
            shards=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
        ) as service:
            service.arm_faults("xpath.bitset", times=4)
            results = service.run_batch(
                [
                    QueryRequest(op="eval", query="<descendant[b]>", tree="chain")
                    for _ in range(10)
                ]
            )
            snapshot = service.stats_snapshot()
        assert all(result.status == "ok" for result in results)
        assert snapshot["retries"] >= 1


class TestFailureContainment:
    def test_crashed_shard_resolves_outstanding_requests(self):
        registry = make_registry()
        with ShardedQueryService(registry, shards=2) as service:
            victim = zlib.crc32(b"chain") % 2
            service.processes[victim].kill()
            assert wait_until(
                lambda: not service.processes[victim].is_alive()
            )
            crashed = service.submit(
                QueryRequest(op="eval", query="<descendant[b]>", tree="chain")
            ).result(timeout=15)
            assert crashed.status == "error"
            assert crashed.error["type"] == "ShardCrashedError"
            # The surviving shard keeps serving.
            other_tree = "talk" if victim != zlib.crc32(b"talk") % 2 else "chain"
            if zlib.crc32(other_tree.encode()) % 2 != victim:
                healthy = service.submit(
                    QueryRequest(op="eval", query="<child[i]>", tree="talk")
                ).result(timeout=15)
                assert healthy.status == "ok"


class TestLifecycle:
    def test_close_kills_children(self):
        service = ShardedQueryService(make_registry(), shards=2)
        processes = service.processes
        assert all(process.is_alive() for process in processes)
        service.close()
        assert_no_survivors(processes)

    def test_close_with_queued_work_sheds_structurally(self):
        registry = make_registry()
        service = ShardedQueryService(registry, shards=1, workers_per_shard=1)
        handles = [
            service.submit(
                QueryRequest(op="eval", query="<descendant[b]>", tree="chain")
            )
            for _ in range(20)
        ]
        service.close()
        assert_no_survivors(service.processes)
        statuses = {handle.result(timeout=10).status for handle in handles}
        assert statuses <= {"ok", "shed", "error"}
        assert len([h for h in handles if h.result(timeout=1)]) == 20

    def test_keyboard_interrupt_context_kills_children(self):
        processes = []
        with pytest.raises(KeyboardInterrupt):
            with ShardedQueryService(make_registry(), shards=2) as service:
                processes = service.processes
                raise KeyboardInterrupt
        assert processes
        assert_no_survivors(processes)

    def test_shutdown_is_idempotent(self):
        service = ShardedQueryService(make_registry(), shards=1)
        service.shutdown(drain=True)
        service.shutdown(drain=True)
        service.close()
        assert_no_survivors(service.processes)

    def test_submit_after_close_raises(self):
        from repro.runtime.errors import ServiceClosedError

        service = ShardedQueryService(make_registry(), shards=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(QueryRequest(op="eval", query="<a>", tree="talk"))

    def test_segments_unlinked_after_shutdown(self):
        from multiprocessing import shared_memory

        service = ShardedQueryService(make_registry(), shards=1)
        names = [shm.name for shm, _ in service._segments.values()]
        assert names
        service.shutdown(drain=True)
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestSpawnStartMethod:
    def test_spawn_smoke(self):
        registry = make_registry()
        with ShardedQueryService(
            registry, shards=1, start_method="spawn"
        ) as service:
            results = service.run_batch(mixed_requests(5))
            snapshot = service.stats_snapshot()
        assert [result.status for result in results] == ["ok"] * 5
        assert snapshot["submitted"] == snapshot["completed"] == 5
