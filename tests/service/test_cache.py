"""The semantic result cache: bounds, epochs, single-flight, and safety.

Three layers of coverage:

* **unit** — LRU/byte eviction, oversize rejection, per-tree epoch
  invalidation, and the completion-time epoch check on the bare
  :class:`~repro.service.cache.ResultCache`;
* **concurrency** — single-flight leader election and follower wake-up
  under real threads, both on the bare cache and through the
  :class:`~repro.service.workers.QueryService` worker pool;
* **safety** — the acceptance criteria: an optimized+cached service
  answers exactly like the uncached oracle configuration (the sharded
  tier included), and a fault-poisoned evaluation is never served from
  the cache (failed leaders abandon; only ``ok`` values are stored).
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    ResultCache,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.service.cache import Flight
from repro.trees import chain, parse_xml

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"


def make_registry() -> TreeRegistry:
    registry = TreeRegistry()
    registry.register("talk", parse_xml(DOC))
    registry.register("chain", chain(48, labels=("a", "b")))
    return registry


def store(cache: ResultCache, key, tree: str, value) -> None:
    """Drive one leader flight to completion (the only way values enter)."""
    kind, flight = cache.begin(key, tree)
    assert kind == "leader"
    cache.complete(flight, value)


class TestResultCacheUnit:
    def test_round_trip_and_hit(self):
        cache = ResultCache()
        store(cache, ("eval", "doc", "N:<child>"), "doc", [1, 2])
        kind, value = cache.begin(("eval", "doc", "N:<child>"), "doc")
        assert (kind, value) == ("hit", [1, 2])
        snap = cache.snapshot()
        assert snap["events"]["hit"] == 1
        assert snap["events"]["miss"] == 1
        assert snap["hit_rate"] == pytest.approx(0.5)

    def test_cached_none_is_distinguishable_from_miss(self):
        cache = ResultCache()
        store(cache, ("check", "doc", "F:f"), "doc", None)
        kind, value = cache.begin(("check", "doc", "F:f"), "doc")
        assert kind == "hit" and value is None

    def test_lru_eviction_by_entry_count(self):
        cache = ResultCache(max_entries=2)
        for i in range(3):
            store(cache, ("eval", "doc", f"k{i}"), "doc", i)
        assert len(cache) == 2
        assert cache.begin(("eval", "doc", "k0"), "doc")[0] == "leader"  # evicted
        assert cache.snapshot()["events"]["evict"] == 1

    def test_lru_order_follows_hits(self):
        cache = ResultCache(max_entries=2)
        store(cache, ("eval", "doc", "k0"), "doc", 0)
        store(cache, ("eval", "doc", "k1"), "doc", 1)
        assert cache.begin(("eval", "doc", "k0"), "doc")[0] == "hit"  # refresh k0
        store(cache, ("eval", "doc", "k2"), "doc", 2)  # evicts k1, not k0
        assert cache.begin(("eval", "doc", "k0"), "doc")[0] == "hit"
        assert cache.begin(("eval", "doc", "k1"), "doc")[0] == "leader"

    def test_byte_bound_evicts_down(self):
        cache = ResultCache(max_total_bytes=400)
        for i in range(4):
            store(cache, ("eval", "doc", f"k{i}"), "doc", list(range(i, i + 4)))
        snap = cache.snapshot()
        assert snap["bytes"] <= 400
        assert snap["events"]["evict"] >= 1

    def test_oversize_value_rejected(self):
        cache = ResultCache(max_value_bytes=64)
        store(cache, ("eval", "doc", "big"), "doc", list(range(100)))
        assert len(cache) == 0
        assert cache.snapshot()["events"]["reject"] == 1

    def test_invalidate_bumps_epoch_and_drops_entries(self):
        cache = ResultCache()
        store(cache, ("eval", "doc", "k"), "doc", 1)
        store(cache, ("eval", "other", "k"), "other", 2)
        assert cache.invalidate("doc") == 1
        assert cache.epoch("doc") == 1
        assert cache.begin(("eval", "doc", "k"), "doc")[0] == "leader"
        # Other trees' entries survive.
        assert cache.begin(("eval", "other", "k"), "other")[0] == "hit"

    def test_stale_flight_is_not_stored(self):
        cache = ResultCache()
        kind, flight = cache.begin(("eval", "doc", "k"), "doc")
        assert kind == "leader"
        cache.invalidate("doc")  # the tree changed mid-evaluation
        assert cache.complete(flight, [1]) is False
        assert len(cache) == 0
        # Followers get no value either: it was computed on the stale tree.
        assert Flight.is_miss(flight.wait(0))

    def test_abandon_wakes_followers_empty_handed(self):
        cache = ResultCache()
        _, leader = cache.begin(("eval", "doc", "k"), "doc")
        kind, follower = cache.begin(("eval", "doc", "k"), "doc")
        assert kind == "follower" and follower is leader
        cache.abandon(leader)
        assert Flight.is_miss(follower.wait(0))
        # The key is free again: the next request leads a fresh flight.
        assert cache.begin(("eval", "doc", "k"), "doc")[0] == "leader"


class TestSingleFlightThreads:
    def test_one_leader_many_followers(self):
        cache = ResultCache()
        key = ("eval", "doc", "k")
        release = threading.Event()
        values = []

        def lead():
            kind, flight = cache.begin(key, "doc")
            assert kind == "leader"
            release.wait(5.0)
            cache.complete(flight, [42])

        def follow():
            kind, flight = cache.begin(key, "doc")
            if kind == "hit":
                values.append(flight)
                return
            assert kind == "follower"
            value = flight.wait(5.0)
            assert not Flight.is_miss(value)
            values.append(value)

        leader = threading.Thread(target=lead)
        leader.start()
        followers = [threading.Thread(target=follow) for _ in range(8)]
        for t in followers:
            t.start()
        release.set()
        for t in [leader, *followers]:
            t.join(timeout=10.0)
        assert values == [[42]] * 8
        assert cache.snapshot()["events"]["miss"] == 1

    def test_concurrent_begin_elects_exactly_one_leader(self):
        cache = ResultCache()
        key = ("eval", "doc", "k")
        barrier = threading.Barrier(8)
        kinds = []
        lock = threading.Lock()

        def race():
            barrier.wait(5.0)
            kind, flight = cache.begin(key, "doc")
            with lock:
                kinds.append(kind)
            if kind == "leader":
                cache.complete(flight, [1])

        threads = [threading.Thread(target=race) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        assert kinds.count("leader") == 1
        assert set(kinds) <= {"leader", "follower", "hit"}


class TestServiceIntegration:
    def test_semantic_collapse_across_requests(self):
        registry = make_registry()
        with QueryService(
            registry, workers=1, optimize=True, result_cache=True
        ) as service:
            first, second = service.run_batch(
                [
                    QueryRequest(op="eval", query="<descendant[b]>", tree="chain"),
                    QueryRequest(op="eval", query="<child/child*[b]>", tree="chain"),
                ]
            )
            snap = service.stats_snapshot()
        assert first.status == second.status == "ok"
        assert first.value == second.value
        assert second.routed == "cache"
        assert snap["result_cache"]["events"]["hit"] == 1

    def test_reregistration_invalidates_via_subscription(self):
        registry = make_registry()
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="chain")
        with QueryService(
            registry, workers=1, optimize=True, result_cache=True
        ) as service:
            stale = service.run_batch([request])[0]
            registry.register("chain", chain(6, labels=("b",)))
            fresh = service.run_batch([request])[0]
        assert stale.value != fresh.value
        assert fresh.routed != "cache"
        # On the 6-node all-b chain every non-leaf has a b-descendant.
        assert fresh.value == [0, 1, 2, 3, 4]

    def test_check_and_equivalent_ops_are_cached(self):
        registry = make_registry()
        requests = [
            QueryRequest(op="check", formula="exists x. b(x)", tree="chain"),
            QueryRequest(op="check", formula="exists x. b(x)", tree="chain"),
            QueryRequest(op="equivalent", left="<child[b]>", right="<descendant[b]>"),
            QueryRequest(op="equivalent", left="<child[b]>", right="<descendant[b]>"),
        ]
        with QueryService(
            registry, workers=1, optimize=True, result_cache=True
        ) as service:
            results = service.run_batch(requests)
            events = service.stats_snapshot()["result_cache"]["events"]
        assert [r.status for r in results] == ["ok"] * 4
        assert results[0].value == results[1].value
        assert results[2].value == results[3].value
        assert events["hit"] == 2

    def test_identical_burst_evaluates_once(self):
        registry = make_registry()
        requests = [
            QueryRequest(
                op="eval", query="<(child[a] | child[b])*[b]>", tree="chain", id=f"r{i}"
            )
            for i in range(16)
        ]
        with QueryService(
            registry, workers=4, optimize=True, result_cache=True
        ) as service:
            results = service.run_batch(requests)
            events = service.stats_snapshot()["result_cache"]["events"]
        assert all(r.status == "ok" for r in results)
        assert len({tuple(r.value) for r in results}) == 1
        # Single-flight: one leader no matter how the 4 workers interleave
        # (everyone else hits the store or reuses the leader's flight).
        assert events["miss"] == 1

    def test_cache_off_by_default(self):
        registry = make_registry()
        with QueryService(registry, workers=1) as service:
            service.run_batch(
                [QueryRequest(op="eval", query="<child[b]>", tree="chain")]
            )
            snap = service.stats_snapshot()
        assert "result_cache" not in snap
        assert "optimizer" not in snap


class TestSafety:
    """Acceptance: cached answers are oracle answers, even under faults."""

    WORKLOAD = [
        ("eval", {"query": "<descendant[b]>", "tree": "chain"}),
        ("eval", {"query": "<child/child*[b]>", "tree": "chain"}),
        ("eval", {"query": "<descendant[i]>", "tree": "talk"}),
        ("select", {"query": "descendant[i]", "tree": "talk"}),
        ("select", {"query": "child/child*[i]", "tree": "talk"}),
        ("check", {"formula": "exists x. b(x)", "tree": "chain"}),
        ("equivalent", {"left": "<child[b]>", "right": "<descendant[b]>"}),
    ]

    def _requests(self, repeats: int = 3) -> list[QueryRequest]:
        return [
            QueryRequest(op=op, id=f"w{r}-{i}", **kwargs)
            for r in range(repeats)
            for i, (op, kwargs) in enumerate(self.WORKLOAD)
        ]

    def _values(self, results) -> list:
        assert all(r.status == "ok" for r in results)
        return [r.value for r in results]

    def test_optimized_cached_matches_plain_service(self):
        registry = make_registry()
        requests = self._requests()
        with QueryService(registry, workers=2) as plain:
            expected = self._values(plain.run_batch(requests))
        with QueryService(
            registry, workers=2, optimize=True, result_cache=True
        ) as tuned:
            got = self._values(tuned.run_batch(requests))
            snap = tuned.stats_snapshot()
        assert got == expected
        assert snap["result_cache"]["events"]["hit"] >= len(self.WORKLOAD)

    def test_sharded_optimized_cached_matches_plain_service(self):
        registry = make_registry()
        requests = self._requests()
        with QueryService(registry, workers=2) as plain:
            expected = self._values(plain.run_batch(requests))
        with ShardedQueryService(
            registry,
            shards=2,
            workers_per_shard=1,
            optimize=True,
            result_cache=True,
        ) as sharded:
            got = self._values(sharded.run_batch(requests))
            snap = sharded.stats_snapshot()
        assert got == expected
        assert snap["result_cache"]["events"]["hit"] >= 1

    def test_poisoned_evaluations_never_enter_the_cache(self):
        # A counted fault burst fails fast-path runs mid-flight.  Failed
        # leaders must abandon (nothing stored), retries reroute, and every
        # value served — cached or not — must equal the clean oracle answer.
        registry = make_registry()
        requests = self._requests(repeats=4)
        with QueryService(registry, workers=2) as plain:
            expected = self._values(plain.run_batch(requests))
        service = QueryService(
            registry,
            workers=2,
            optimize=True,
            result_cache=True,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0001, max_delay=0.001),
            breaker_threshold=4,
            breaker_cooldown=0.01,
        )
        try:
            faults.arm("xpath.bitset", times=6)
            faults.arm("xpath.sets", times=4)
            try:
                got = self._values(service.run_batch(requests))
            finally:
                faults.disarm()
            assert got == expected
            # The cache converged on clean values: replay with faults gone
            # is served largely from the store and still matches.
            replay = self._values(service.run_batch(requests))
            assert replay == expected
        finally:
            service.shutdown()


class TestMutationEpochRaces:
    """Satellite coverage: a mutation landing between compute-start and
    store must drop the entry, whichever window it lands in."""

    def test_registry_mutation_mid_flight_drops_the_entry(self):
        # The registry-wired variant of the completion-time epoch check:
        # the invalidation arrives via TreeRegistry.mutate -> subscribe,
        # not a manual invalidate() call.
        registry = make_registry()
        cache = ResultCache()
        registry.subscribe(cache.invalidate)
        kind, flight = cache.begin(("eval", "talk", "k"), "talk")
        assert kind == "leader"
        registry.mutate("talk", {"kind": "relabel", "node": 0, "label": "z"})
        assert cache.complete(flight, ["stale"]) is False
        assert len(cache) == 0
        assert Flight.is_miss(flight.wait(0))

    def test_mutation_between_pin_and_begin_drops_the_entry(self):
        # The other window: the worker pins the pre-edit tree, the mutation
        # (and its cache invalidation) lands, and only then does the worker
        # reach cache.begin().  The flight's epoch is already post-edit, so
        # the completion-time check alone would store the pre-edit value;
        # the worker's pin-epoch guard must refuse instead.
        registry = make_registry()
        service = QueryService(registry, workers=1, result_cache=True)
        cache = service.result_cache
        real_begin = cache.begin
        raced = threading.Event()

        def racing_begin(key, tree):
            if not raced.is_set():
                raced.set()
                registry.mutate(
                    "talk", {"kind": "relabel", "node": 0, "label": "z"}
                )
            return real_begin(key, tree)

        cache.begin = racing_begin
        try:
            first = service.run_batch(
                [QueryRequest(op="eval", query="talk", tree="talk")]
            )[0]
            # The answer itself is the pinned (pre-edit) snapshot's: id 0
            # was still labeled "talk" when this request resolved its tree.
            assert first.status == "ok" and first.value == [0]
            assert len(cache) == 0  # ... but it never entered the cache
            assert cache.snapshot()["events"]["store"] == 0
            second = service.run_batch(
                [QueryRequest(op="eval", query="talk", tree="talk")]
            )[0]
            assert second.routed != "cache"
            assert second.value == []  # post-edit truth, freshly computed
        finally:
            cache.begin = real_begin
            service.shutdown()
