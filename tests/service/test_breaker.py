"""Circuit breaker: closed → open → half-open → closed, unit and in vivo.

The unit half drives the state machine directly on a fake clock; the
integration half routes real requests through a QueryService while the
fault-injection registry breaks the bitset engines, covering the exact
transition sequence the ISSUE names — including the half-open recovery
probe succeeding (close) and failing (re-open).
"""

import pytest

from repro.runtime import faults
from repro.service import CircuitBreaker, QueryRequest, QueryService, RetryPolicy, TreeRegistry
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN
from repro.trees import chain


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def breaker(clock):
    return CircuitBreaker("test", failure_threshold=3, cooldown=1.0, clock=clock)


class TestStateMachine:
    def test_starts_closed_and_routes_fast(self, breaker):
        assert breaker.state == CLOSED
        assert breaker.acquire() == "fast"

    def test_failures_below_threshold_stay_closed(self, breaker):
        for _ in range(2):
            breaker.acquire()
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_success_resets_the_consecutive_count(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED  # never 3 consecutive

    def test_threshold_consecutive_failures_open(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.open_count == 1
        assert breaker.acquire() == "fallback"

    def test_cooldown_grants_a_single_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.acquire() == "probe"
        assert breaker.state == HALF_OPEN
        # While the probe is in flight everyone else falls back.
        assert breaker.acquire() == "fallback"
        assert breaker.acquire() == "fallback"

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.acquire() == "probe"
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.recovery_count == 1
        assert breaker.acquire() == "fast"

    def test_probe_failure_reopens_with_fresh_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.5)
        assert breaker.acquire() == "probe"
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.open_count == 2
        # Not yet: the cooldown restarted at the probe failure.
        clock.advance(0.5)
        assert breaker.acquire() == "fallback"
        clock.advance(0.6)
        assert breaker.acquire() == "probe"

    def test_threshold_one_opens_immediately(self, clock):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_snapshot_shape(self, breaker):
        snap = breaker.snapshot()
        assert snap == {
            "state": CLOSED,
            "consecutive_failures": 0,
            "open_count": 0,
            "recovery_count": 0,
        }

    def test_validation(self, clock):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0, clock=clock)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0, clock=clock)


@pytest.fixture()
def service():
    registry = TreeRegistry()
    registry.register("doc", chain(32, labels=("a", "b")))
    svc = QueryService(
        registry,
        workers=1,  # serial routing makes the transition sequence deterministic
        retry=RetryPolicy(max_attempts=1),  # isolate the breaker from retries
        breaker_threshold=3,
        breaker_cooldown=0.05,
    )
    yield svc
    svc.shutdown()


def _eval_request():
    return QueryRequest(op="eval", query="<descendant[b]>", tree="doc")


class TestBreakerUnderInjectedFaults:
    def test_full_cycle_closed_open_halfopen_closed(self, service):
        breaker = service.breakers["xpath"]

        # Phase 1: persistent bitset faults → threshold failures → open.
        with faults.scoped("xpath.bitset"):
            results = service.run_batch([_eval_request() for _ in range(4)])
        assert breaker.snapshot()["state"] == OPEN
        assert breaker.open_count == 1
        # Every request still produced a correct answer via the oracle.
        assert all(r.status == "ok" for r in results)
        assert {tuple(r.value) for r in results} == {tuple(results[0].value)}
        # Once open, requests route around the broken engine.
        assert results[-1].routed == "oracle"

        # Phase 2: faults cleared, cooldown passes → probe → closed.
        import time

        time.sleep(0.06)
        probe = service.run_batch([_eval_request()])[0]
        assert probe.status == "ok"
        assert probe.routed == "bitset"  # the probe itself ran the fast path
        assert breaker.snapshot()["state"] == CLOSED
        assert breaker.recovery_count == 1

    def test_failed_probe_reopens(self, service):
        breaker = service.breakers["xpath"]
        with faults.scoped("xpath.bitset"):
            service.run_batch([_eval_request() for _ in range(3)])
            assert breaker.snapshot()["state"] == OPEN
            import time

            time.sleep(0.06)
            # Probe runs with the fault still armed: fails, re-opens.
            result = service.run_batch([_eval_request()])[0]
        assert result.status == "ok"  # served by the oracle fallback
        assert breaker.snapshot()["state"] == OPEN
        assert breaker.open_count == 2
        assert breaker.recovery_count == 0

    def test_logic_breaker_is_independent(self, service):
        with faults.scoped("xpath.bitset"):
            service.run_batch([_eval_request() for _ in range(3)])
        assert service.breakers["xpath"].snapshot()["state"] == OPEN
        assert service.breakers["logic"].snapshot()["state"] == CLOSED
        check = service.run_batch(
            [QueryRequest(op="check", formula="exists x. b(x)", tree="doc")]
        )[0]
        assert check.status == "ok"
        assert check.routed == "bitset"  # logic family unaffected
