"""QueryService end-to-end: correctness, budgets, shedding, drain, streams."""

import threading

import pytest

from repro.logic import ModelChecker, parse_formula
from repro.runtime import ServiceClosedError, faults
from repro.runtime.guarded import stats as fallback_stats
from repro.service import (
    PendingResult,
    QueryRequest,
    QueryService,
    RetryPolicy,
    TreeRegistry,
)
from repro.trees import chain, parse_xml
from repro.xpath import Evaluator, parse_node, parse_path

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"


@pytest.fixture()
def registry():
    reg = TreeRegistry()
    reg.register("talk", parse_xml(DOC))
    reg.register("chain", chain(48, labels=("a", "b")))
    return reg


@pytest.fixture()
def service(registry):
    svc = QueryService(registry, workers=3, queue_limit=32)
    yield svc
    svc.shutdown()


class TestCorrectness:
    def test_eval_matches_direct_evaluation(self, service, registry):
        result = service.run_batch(
            [QueryRequest(op="eval", query="<descendant[i]>", tree="talk")]
        )[0]
        expected = sorted(
            Evaluator(registry.get("talk")).nodes(parse_node("<descendant[i]>"))
        )
        assert result.status == "ok"
        assert result.value == expected
        assert result.routed == "bitset"

    def test_select_matches_direct_evaluation(self, service, registry):
        result = service.run_batch(
            [QueryRequest(op="select", query="descendant[i]", tree="talk")]
        )[0]
        expected = sorted(
            Evaluator(registry.get("talk")).image(parse_path("descendant[i]"), {0})
        )
        assert result.status == "ok"
        assert result.value == expected

    def test_check_sentence_nodes_and_pairs(self, service, registry):
        tree = registry.get("talk")
        results = service.run_batch(
            [
                QueryRequest(op="check", formula="exists x. i(x)", tree="talk"),
                QueryRequest(op="check", formula="i(x)", tree="talk"),
                QueryRequest(op="check", formula="child(x, y)", tree="talk"),
            ]
        )
        checker = ModelChecker(tree)
        assert results[0].value is True
        assert results[1].value == sorted(
            checker.node_set(parse_formula("i(x)"), "x")
        )
        assert results[2].value == [
            list(p) for p in sorted(checker.pairs(parse_formula("child(x, y)"), "x", "y"))
        ]

    def test_equivalent_exact_and_corpus(self, service):
        results = service.run_batch(
            [
                QueryRequest(
                    op="equivalent", left="W(<descendant[b]>)", right="<descendant[b]>"
                ),
                QueryRequest(op="equivalent", left="<parent[a]>", right="<parent[b]>"),
            ]
        )
        assert results[0].value["equivalent"] is True
        assert results[0].value["method"] == "exact"
        assert results[1].value["equivalent"] is False
        assert results[1].value["method"] == "corpus"  # parent is not downward

    def test_inline_xml_document(self, service):
        result = service.run_batch(
            [QueryRequest(op="eval", query="b", xml="<b><b/></b>")]
        )[0]
        assert result.status == "ok"
        assert result.value == [0, 1]

    def test_results_keep_input_order(self, service):
        requests = [
            QueryRequest(op="eval", query="<descendant[b]>", tree="chain", id=f"r{i}")
            for i in range(20)
        ]
        results = service.run_batch(requests)
        assert [r.id for r in requests] == [r.id for r in results]


class TestStructuredErrors:
    def test_unknown_op(self, service):
        result = service.run_batch([QueryRequest(op="mystery")])[0]
        assert result.status == "error"
        assert result.error["exit_code"] == 2

    def test_missing_required_field(self, service):
        result = service.run_batch([QueryRequest(op="eval", tree="talk")])[0]
        assert result.status == "error"
        assert "query" in result.error["message"]

    def test_unknown_tree(self, service):
        result = service.run_batch(
            [QueryRequest(op="eval", query="b", tree="nope")]
        )[0]
        assert result.status == "error"
        assert "unknown tree" in result.error["message"]

    def test_syntax_error_is_an_input_error(self, service):
        result = service.run_batch(
            [QueryRequest(op="eval", query="<<<", tree="talk")]
        )[0]
        assert result.status == "error"
        assert result.error["type"] == "XPathSyntaxError"
        assert result.error["exit_code"] == 2
        assert result.retries == 0  # input errors are never retried

    def test_step_budget_exhaustion(self, service):
        # A star query ticks the budget once per fixpoint iteration, so a
        # zero-step allowance trips on the first round.
        result = service.run_batch(
            [
                QueryRequest(
                    op="eval",
                    query="<(child[a])*[b]>",
                    tree="chain",
                    max_steps=0,
                )
            ]
        )[0]
        assert result.status == "error"
        assert result.error["exit_code"] == 5

    def test_too_many_free_variables(self, service):
        result = service.run_batch(
            [QueryRequest(op="check", formula="child(x,y) & child(y,z)", tree="talk")]
        )[0]
        assert result.status == "error"
        assert "free variables" in result.error["message"]


class TestSheddingAndDeadlines:
    def test_expired_deadline_is_shed_not_run(self, service):
        result = service.run_batch(
            [QueryRequest(op="eval", query="b", tree="talk", timeout=0.0)]
        )[0]
        assert result.status == "shed"
        assert result.error["type"] == "RequestShedError"
        assert result.error["exit_code"] == 4  # sheds follow the deadline code
        assert result.routed == "none"

    def test_default_timeout_applies(self, registry):
        with QueryService(registry, workers=1, default_timeout=0.0) as svc:
            result = svc.run_batch(
                [QueryRequest(op="eval", query="b", tree="talk")]
            )[0]
        assert result.status == "shed"

    def test_per_request_timeout_overrides_default(self, registry):
        with QueryService(registry, workers=1, default_timeout=0.0) as svc:
            result = svc.run_batch(
                [QueryRequest(op="eval", query="b", tree="talk", timeout=5.0)]
            )[0]
        assert result.status == "ok"


class TestRetriesAndFallback:
    def test_transient_fault_is_retried_to_success(self, registry):
        svc = QueryService(
            registry,
            workers=1,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
        )
        try:
            with faults.scoped(("service.worker", 2)):
                result = svc.run_batch(
                    [QueryRequest(op="eval", query="<descendant[b]>", tree="chain")]
                )[0]
            assert result.status == "ok"
            assert result.retries == 2
            assert result.routed == "bitset"
            assert not result.fallback
        finally:
            svc.shutdown()

    def test_exhausted_retries_degrade_to_oracle(self, registry):
        svc = QueryService(
            registry,
            workers=1,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, max_delay=0.0),
            breaker_threshold=100,  # keep the breaker out of this test
        )
        try:
            before = fallback_stats.fallback_count
            with faults.scoped("xpath.bitset"):
                result = svc.run_batch(
                    [QueryRequest(op="eval", query="<descendant[b]>", tree="chain")]
                )[0]
            expected = sorted(
                Evaluator(registry.get("chain")).nodes(parse_node("<descendant[b]>"))
            )
            assert result.status == "ok"
            assert result.value == expected
            assert result.fallback
            assert result.routed == "oracle"
            assert result.retries == 1
            # The degradation is visible in the PR 3 process-wide counter.
            assert fallback_stats.fallback_count == before + 1
        finally:
            svc.shutdown()

    def test_stats_account_for_every_request(self, registry):
        svc = QueryService(registry, workers=2)
        try:
            svc.run_batch(
                [QueryRequest(op="eval", query="b", tree="talk") for _ in range(5)]
                + [QueryRequest(op="eval", query="b", tree="talk", timeout=0.0)]
                + [QueryRequest(op="bogus")]
            )
            snap = svc.stats_snapshot()
            assert snap["submitted"] == 7
            assert snap["completed"] == 7
            assert snap["ok"] == 5
            assert snap["shed"] == 1
            assert snap["errors"] == 1
            assert snap["breakers"]["xpath"]["state"] == "closed"
        finally:
            svc.shutdown()


class TestLifecycle:
    def test_context_manager_drains(self, registry):
        with QueryService(registry, workers=2) as svc:
            handles = [
                svc.submit(QueryRequest(op="eval", query="b", tree="talk"))
                for _ in range(10)
            ]
        # After the block every handle is resolved (drain completed them).
        assert all(handle.done() for handle in handles)
        assert all(handle.result().status == "ok" for handle in handles)

    def test_submit_after_shutdown_raises(self, registry):
        svc = QueryService(registry, workers=1)
        svc.shutdown()
        with pytest.raises(ServiceClosedError):
            svc.submit(QueryRequest(op="eval", query="b", tree="talk"))

    def test_nongraceful_shutdown_sheds_the_remainder(self, registry):
        svc = QueryService(registry, workers=1, queue_limit=128)
        handles = [
            svc.submit(
                QueryRequest(op="eval", query="<descendant[b]>", tree="chain")
            )
            for _ in range(40)
        ]
        svc.shutdown(drain=False)
        results = [handle.result(timeout=5.0) for handle in handles]
        # Zero lost: every request resolved, as a result or a structured shed.
        assert all(r.status in ("ok", "shed") for r in results)
        snap = svc.stats_snapshot()
        assert snap["completed"] == snap["submitted"] == 40

    def test_shutdown_is_idempotent(self, registry):
        svc = QueryService(registry, workers=1)
        svc.shutdown()
        svc.shutdown()

    def test_pending_result_timeout(self):
        pending = PendingResult()
        with pytest.raises(TimeoutError):
            pending.result(timeout=0.01)


class TestStreaming:
    def test_map_stream_yields_in_order(self, service):
        requests = [
            QueryRequest(op="eval", query="b", tree="talk", id=f"s{i}")
            for i in range(25)
        ]
        results = list(service.map_stream(iter(requests)))
        assert [r.id for r in results] == [f"s{i}" for i in range(25)]
        assert all(r.status == "ok" for r in results)

    def test_concurrent_submitters_all_resolve(self, registry):
        svc = QueryService(registry, workers=3, queue_limit=8)
        outcomes = []
        lock = threading.Lock()

        def submitter(n):
            batch = [
                QueryRequest(op="eval", query="<descendant[b]>", tree="chain")
                for _ in range(n)
            ]
            results = svc.run_batch(batch)
            with lock:
                outcomes.extend(results)

        threads = [
            threading.Thread(target=submitter, args=(15,), daemon=True)
            for _ in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30.0)
            assert len(outcomes) == 60
            assert all(r.status == "ok" for r in outcomes)
        finally:
            svc.shutdown()
