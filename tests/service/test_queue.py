"""BoundedRequestQueue: FIFO, backpressure, shedding, close semantics."""

import threading

import pytest

from repro.runtime import QueueFullError, ServiceClosedError
from repro.service import BoundedRequestQueue


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class Item:
    def __init__(self, name, deadline=None):
        self.name = name
        self.deadline = deadline

    def __repr__(self):
        return f"Item({self.name})"


class TestFifoAndBounds:
    def test_fifo_order(self):
        q = BoundedRequestQueue(8)
        for name in "abc":
            q.put(Item(name))
        assert [q.get().name for _ in range(3)] == ["a", "b", "c"]

    def test_len(self):
        q = BoundedRequestQueue(8)
        assert len(q) == 0
        q.put(Item("a"))
        q.put(Item("b"))
        assert len(q) == 2

    def test_nonblocking_put_raises_when_full(self):
        q = BoundedRequestQueue(2)
        q.put(Item("a"))
        q.put(Item("b"))
        with pytest.raises(QueueFullError):
            q.put(Item("c"), block=False)

    def test_blocking_put_times_out(self):
        q = BoundedRequestQueue(1)
        q.put(Item("a"))
        with pytest.raises(QueueFullError):
            q.put(Item("b"), timeout=0.02)

    def test_blocked_put_released_by_get(self):
        q = BoundedRequestQueue(1)
        q.put(Item("a"))
        done = threading.Event()

        def producer():
            q.put(Item("b"))
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert q.get().name == "a"
        assert done.wait(2.0)
        assert q.get().name == "b"

    def test_get_timeout_returns_none(self):
        q = BoundedRequestQueue(2)
        assert q.get(timeout=0.01) is None


class TestDeadlineShedding:
    def test_shed_expired_removes_only_expired(self):
        clock = FakeClock()
        q = BoundedRequestQueue(8, clock=clock)
        q.put(Item("live", deadline=10.0))
        q.put(Item("dead", deadline=1.0))
        q.put(Item("forever", deadline=None))
        clock.advance(5.0)
        shed = q.shed_expired()
        assert [item.name for item in shed] == ["dead"]
        assert [q.get().name for _ in range(2)] == ["live", "forever"]

    def test_full_put_sheds_expired_to_make_room(self):
        clock = FakeClock()
        q = BoundedRequestQueue(2, clock=clock)
        q.put(Item("dead", deadline=1.0))
        q.put(Item("live", deadline=100.0))
        clock.advance(2.0)
        shed = q.put(Item("new", deadline=100.0))
        assert [item.name for item in shed] == ["dead"]
        assert [q.get().name for _ in range(2)] == ["live", "new"]

    def test_full_put_without_expired_still_blocks(self):
        clock = FakeClock()
        q = BoundedRequestQueue(1, clock=clock)
        q.put(Item("live", deadline=None))
        with pytest.raises(QueueFullError):
            q.put(Item("new"), block=False)


class TestCloseSemantics:
    def test_put_after_close_raises(self):
        q = BoundedRequestQueue(2)
        q.close()
        with pytest.raises(ServiceClosedError):
            q.put(Item("a"))

    def test_get_drains_then_returns_none(self):
        q = BoundedRequestQueue(4)
        q.put(Item("a"))
        q.put(Item("b"))
        q.close()
        assert q.get().name == "a"
        assert q.get().name == "b"
        assert q.get() is None

    def test_close_wakes_blocked_consumer(self):
        q = BoundedRequestQueue(2)
        got = []

        def consumer():
            got.append(q.get())

        thread = threading.Thread(target=consumer, daemon=True)
        thread.start()
        q.close()
        thread.join(2.0)
        assert got == [None]

    def test_drain_returns_remainder(self):
        q = BoundedRequestQueue(4)
        q.put(Item("a"))
        q.put(Item("b"))
        q.close()
        assert [item.name for item in q.drain()] == ["a", "b"]
        assert len(q) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            BoundedRequestQueue(0)
