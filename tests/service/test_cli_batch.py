"""``repro batch``: JSONL framing, ordering, exit-code contract, chaos flag."""

import io
import json

import pytest

from repro.cli import main

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"


@pytest.fixture()
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


def _write_requests(tmp_path, lines):
    path = tmp_path / "requests.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return str(path)


def _output_lines(capsys):
    captured = capsys.readouterr()
    return [json.loads(line) for line in captured.out.splitlines() if line], captured.err


class TestBatchHappyPath:
    def test_mixed_batch_in_input_order(self, tmp_path, doc_file, capsys):
        requests = _write_requests(
            tmp_path,
            [
                json.dumps({"id": "a", "op": "eval", "query": "<child[i]>", "tree": "doc"}),
                json.dumps({"id": "b", "op": "select", "query": "descendant[i]", "tree": "doc"}),
                json.dumps({"id": "c", "op": "check", "formula": "exists x. i(x)", "tree": "doc"}),
                json.dumps({"id": "d", "op": "equivalent", "left": "<child[b]>", "right": "<child[b]>"}),
            ],
        )
        assert main(["batch", requests, "--tree", f"doc={doc_file}"]) == 0
        lines, _ = _output_lines(capsys)
        assert [line["id"] for line in lines] == ["a", "b", "c", "d"]
        assert all(line["status"] == "ok" for line in lines)
        assert lines[2]["value"] is True
        assert lines[3]["value"]["equivalent"] is True

    def test_inline_xml_needs_no_registry(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [json.dumps({"id": "x", "op": "eval", "query": "b", "xml": "<b><b/></b>"})],
        )
        assert main(["batch", requests]) == 0
        lines, _ = _output_lines(capsys)
        assert lines[0]["value"] == [0, 1]

    def test_stdin_input(self, capsys, monkeypatch):
        line = json.dumps({"id": "s", "op": "eval", "query": "b", "xml": "<b/>"})
        monkeypatch.setattr("sys.stdin", io.StringIO(line + "\n"))
        assert main(["batch"]) == 0
        lines, _ = _output_lines(capsys)
        assert lines[0]["id"] == "s"

    def test_stats_go_to_stderr(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [json.dumps({"op": "eval", "query": "b", "xml": "<b/>"})],
        )
        assert main(["batch", requests, "--stats"]) == 0
        lines, err = _output_lines(capsys)
        stats = json.loads(err)
        assert stats["submitted"] == 1
        assert stats["ok"] == 1
        assert "breakers" in stats


class TestBatchErrorContract:
    def test_malformed_json_line_reports_and_continues(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [
                "this is not json",
                json.dumps({"id": "ok", "op": "eval", "query": "b", "xml": "<b/>"}),
            ],
        )
        assert main(["batch", requests]) == 2
        lines, _ = _output_lines(capsys)
        assert lines[0]["id"] == "line-1"
        assert lines[0]["status"] == "error"
        assert lines[0]["error"]["exit_code"] == 2
        assert lines[1]["status"] == "ok"  # one bad line never hides the rest

    def test_unknown_field_is_rejected_structurally(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [json.dumps({"id": "u", "op": "eval", "query": "b", "xml": "<b/>", "wat": 1})],
        )
        assert main(["batch", requests]) == 2
        lines, _ = _output_lines(capsys)
        assert lines[0]["id"] == "u"
        assert "wat" in lines[0]["error"]["message"]

    def test_shed_request_exits_with_deadline_code(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [
                json.dumps(
                    {"id": "late", "op": "eval", "query": "b", "xml": "<b/>", "timeout": 0.0}
                )
            ],
        )
        assert main(["batch", requests]) == 4
        lines, _ = _output_lines(capsys)
        assert lines[0]["status"] == "shed"
        assert lines[0]["error"]["type"] == "RequestShedError"

    def test_first_failure_wins_the_exit_code(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [
                json.dumps({"id": "bad", "op": "eval", "query": "<<<", "xml": "<b/>"}),
                json.dumps(
                    {"id": "late", "op": "eval", "query": "b", "xml": "<b/>", "timeout": 0.0}
                ),
            ],
        )
        assert main(["batch", requests]) == 2  # syntax (first), not deadline
        lines, _ = _output_lines(capsys)
        assert [line["status"] for line in lines] == ["error", "shed"]

    def test_bad_tree_spec_is_a_usage_error(self, tmp_path, capsys):
        requests = _write_requests(tmp_path, ["{}"])
        assert main(["batch", requests, "--tree", "no-equals-sign"]) == 2
        assert "NAME=FILE" in capsys.readouterr().err

    def test_missing_tree_file_is_io_error(self, tmp_path, capsys):
        requests = _write_requests(tmp_path, ["{}"])
        assert main(["batch", requests, "--tree", "doc=/nonexistent/doc.xml"]) == 3


class TestBatchChaos:
    def test_injected_service_fault_retries_to_success(self, tmp_path, capsys):
        requests = _write_requests(
            tmp_path,
            [
                json.dumps({"id": f"r{i}", "op": "eval", "query": "b", "xml": "<b/>"})
                for i in range(4)
            ],
        )
        # Uncounted arm: every fast attempt faults, so every request degrades
        # to the oracle — the batch still succeeds end to end.
        assert main(["batch", requests, "--workers", "2", "--inject-fault", "xpath.bitset"]) == 0
        lines, _ = _output_lines(capsys)
        assert all(line["status"] == "ok" for line in lines)
        assert all(line["routed"] == "oracle" for line in lines)
        assert any(line["retries"] > 0 or line["fallback"] for line in lines)
