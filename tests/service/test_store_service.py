"""The eviction-hardened registry over a disk-backed store.

Covers the races the LRU tier must survive:

* cold trees load from the store on first touch, **single-flight** (one
  concurrent load per name, everyone gets the same snapshot);
* the resident set is bounded by the byte budget, least-recently-used
  unpinned trees evicted first, and ``registry_resident_bytes`` tracks it;
* ``evict`` refuses a pinned tree; an evict *between* a load and the
  query re-loads transparently; epochs survive eviction so the result
  cache's freshness guard holds across an evict/reload cycle;
* mutations write through to the store (stored epoch == published epoch)
  and shards in store mode heal from ``drop`` invalidations.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import obs
from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import TreeStore, index_nbytes, parse_xml, tree_index
from repro.trees.store import open_handles

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")

DOCS = {
    "alpha": "<a><b/><b/><c/></a>",
    "beta": "<a><c><b/></c><b/></a>",
    "gamma": "<a><b><c/><c/></b></a>",
    "delta": "<a><c/><c/><b/><b/></a>",
}


def make_registry(budget_trees: float = 2.5) -> "tuple[TreeRegistry, TreeStore]":
    """A registry over a tmp store whose budget holds ~``budget_trees`` trees."""
    registry = TreeRegistry()
    trees = {name: parse_xml(xml) for name, xml in DOCS.items()}
    for name, tree in trees.items():
        registry.register(name, tree)
    per_tree = max(index_nbytes(tree_index(t)) for t in trees.values())
    store = TreeStore(make_registry.tmp_path / "store")
    registry.attach_store(store, resident_budget=int(per_tree * budget_trees))
    return registry, store


@pytest.fixture(autouse=True)
def _tmp_store_dir(tmp_path):
    make_registry.tmp_path = tmp_path
    yield
    del make_registry.tmp_path


class TestColdLoads:
    def test_attach_packs_and_evicts_to_budget(self):
        registry, store = make_registry()
        assert sorted(store.names()) == sorted(DOCS)
        assert registry.names() == sorted(DOCS)
        assert len(registry.resident_names()) < len(DOCS)
        assert registry.resident_bytes <= registry.resident_budget
        assert obs.gauge("registry_resident_bytes").value == registry.resident_bytes

    def test_cold_tree_loads_on_first_touch(self):
        registry, _ = make_registry()
        cold = sorted(set(DOCS) - set(registry.resident_names()))[0]
        before = obs.counter("store_loads_total", event="ok").value
        tree = registry.get(cold)
        assert tree.labels[0] == "a"
        assert obs.counter("store_loads_total", event="ok").value == before + 1
        assert cold in registry.resident_names()
        assert registry.resident_bytes <= registry.resident_budget

    def test_unknown_tree_still_a_value_error(self):
        registry, _ = make_registry()
        with pytest.raises(ValueError, match="unknown tree"):
            registry.get("ghost")

    def test_single_flight_concurrent_cold_load(self):
        registry, _ = make_registry()
        cold = sorted(set(DOCS) - set(registry.resident_names()))[0]
        before = obs.counter("store_loads_total", event="ok").value
        results = []
        barrier = threading.Barrier(8)

        def touch():
            barrier.wait()
            results.append(registry.get(cold))

        threads = [threading.Thread(target=touch) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len({id(tree) for tree in results}) == 1
        assert obs.counter("store_loads_total", event="ok").value == before + 1

    def test_register_writes_through(self):
        registry, store = make_registry()
        registry.register("fresh", parse_xml("<a><b/></a>"))
        assert "fresh" in store
        assert store.epoch("fresh") == registry.epoch("fresh") == 1
        assert registry.resident_bytes <= registry.resident_budget


class TestEviction:
    def test_lru_order(self):
        registry, _ = make_registry(budget_trees=1.5)
        # Touch in a known order; the budget holds one tree, so each touch
        # evicts the previous one.
        for name in sorted(DOCS):
            registry.get(name)
            assert registry.resident_names() == [name]
        assert obs.counter("store_evictions_total").value >= len(DOCS) - 1

    def test_evict_while_pinned_refused(self):
        registry, _ = make_registry()
        name = registry.resident_names()[0]
        with registry.pin(name):
            with pytest.raises(ValueError, match="pinned"):
                registry.evict(name)
            assert name in registry.resident_names()
        freed = registry.evict(name)  # released: eviction proceeds
        assert freed > 0
        assert name not in registry.resident_names()

    def test_budget_pressure_skips_pinned_trees(self):
        registry, _ = make_registry(budget_trees=1.5)
        names = sorted(DOCS)
        with registry.pin(names[0]):
            for name in names[1:]:
                registry.get(name)
            assert names[0] in registry.resident_names()

    def test_evict_cold_tree_is_a_noop(self):
        registry, _ = make_registry()
        cold = sorted(set(DOCS) - set(registry.resident_names()))[0]
        assert registry.evict(cold) == 0

    def test_evict_unknown_tree_raises(self):
        registry, _ = make_registry()
        with pytest.raises(ValueError, match="unknown"):
            registry.evict("ghost")

    def test_evict_between_load_and_query_reloads_transparently(self):
        registry, _ = make_registry()
        name = sorted(DOCS)[0]
        first = registry.get(name)
        registry.evict(name)
        assert name not in registry.resident_names()
        again = registry.get(name)  # transparent reload
        assert again.labels == first.labels
        assert name in registry.resident_names()

    def test_epoch_survives_eviction(self):
        registry, _ = make_registry()
        name = sorted(DOCS)[0]
        registry.mutate(name, {"kind": "relabel", "node": 0, "label": "c"})
        epoch = registry.epoch(name)
        assert epoch == 2
        registry.evict(name)
        assert registry.epoch(name) == epoch  # epochs outlive residency
        _, loaded_epoch = registry.snapshot(name)
        assert loaded_epoch == epoch

    def test_pin_epoch_stable_across_evict_of_other_trees(self):
        registry, _ = make_registry(budget_trees=1.5)
        names = sorted(DOCS)
        pin = registry.pin(names[0])
        for name in names[1:]:  # pressure: everything else cycles through
            registry.get(name)
        assert registry.epoch(pin.name) == pin.epoch
        assert pin.tree.labels[0] == "a"  # snapshot still readable
        pin.release()


class TestWriteThrough:
    def test_mutate_packs_new_generation(self):
        registry, store = make_registry()
        name = sorted(DOCS)[0]
        before = store.epoch(name)
        _, epoch = registry.mutate(
            name, {"kind": "insert", "parent": 0, "index": 0, "xml": "<b/>"}
        )
        assert epoch == before + 1
        assert store.epoch(name) == epoch
        loaded, loaded_epoch = store.load(name)
        assert loaded_epoch == epoch
        assert loaded.labels.count("b") == parse_xml(DOCS[name]).labels.count("b") + 1

    def test_mutated_then_evicted_tree_reloads_current(self):
        registry, _ = make_registry()
        name = sorted(DOCS)[0]
        registry.mutate(name, {"kind": "relabel", "node": 0, "label": "z"})
        registry.evict(name)
        assert registry.get(name).labels[0] == "z"

    def test_refresh_drops_stale_resident(self):
        registry, _ = make_registry()
        name = registry.resident_names()[0]
        registry.refresh(name, registry.epoch(name))  # current: no-op
        assert name in registry.resident_names()
        registry.refresh(name, registry.epoch(name) + 1)  # newer elsewhere
        assert name not in registry.resident_names()


class TestResultCacheGuard:
    def run(self, svc, query="descendant[b]", tree="alpha"):
        return svc.run_batch(
            [QueryRequest(op="select", query=query, tree=tree)]
        )[0]

    def test_cache_stays_fresh_across_evict_and_mutate(self):
        registry, _ = make_registry()
        with QueryService(
            registry, workers=2, optimize=True, result_cache=True
        ) as svc:
            first = self.run(svc)
            assert first.status == "ok"
            # Eviction does not bump the epoch: the cached result stays
            # valid and the re-loaded tree must agree with it.
            registry.evict("alpha")
            again = self.run(svc)
            assert again.value == first.value
            # A mutation *does* bump the epoch — the changed answer must
            # be recomputed, never served from the pre-edit cache entry.
            registry.mutate(
                "alpha", {"kind": "insert", "parent": 0, "index": 0, "xml": "<b/>"}
            )
            registry.evict("alpha")
            fresh = self.run(svc)
            assert fresh.status == "ok"
            assert len(fresh.value) == len(first.value) + 1

    def test_store_load_fault_is_retried_transparently(self):
        registry, _ = make_registry()
        cold = sorted(set(DOCS) - set(registry.resident_names()))[0]
        with QueryService(
            registry, workers=1, retry=RetryPolicy(max_attempts=3, base_delay=0.0)
        ) as svc:
            faults.arm("store.load", times=1)
            result = self.run(svc, tree=cold)
            assert result.status == "ok"
            assert result.retries == 1


class TestShardedStoreMode:
    def test_reads_mutations_and_drop_invalidations(self):
        registry, store = make_registry()
        svc = ShardedQueryService(
            registry, shards=2, start_method=START_METHOD, workers_per_shard=1
        )
        try:
            for name in sorted(DOCS):
                result = svc.run_batch(
                    [QueryRequest(op="select", query="descendant[b]", tree=name)]
                )[0]
                assert result.status == "ok"
                expected = [
                    i
                    for i, lbl in enumerate(parse_xml(DOCS[name]).labels)
                    if lbl == "b"
                ]
                assert result.value == expected
            mutated = svc.run_batch(
                [
                    QueryRequest(
                        op="mutate",
                        tree="alpha",
                        edit={"kind": "insert", "parent": 0, "index": 0, "xml": "<b/>"},
                    )
                ]
            )[0]
            assert mutated.status == "ok"
            epoch = registry.epoch("alpha")
            assert store.epoch("alpha") == epoch  # packed before broadcast
            # Every shard must serve the new generation: min_epoch asserts
            # freshness, and the drop invalidation is what makes it pass.
            for _ in range(6):
                fresh = svc.run_batch(
                    [
                        QueryRequest(
                            op="select",
                            query="descendant[b]",
                            tree="alpha",
                            min_epoch=epoch,
                        )
                    ]
                )[0]
                assert fresh.status == "ok"
                assert len(fresh.value) == 3
        finally:
            svc.shutdown()

    def test_post_startup_register_reaches_shards_via_store(self):
        registry, store = make_registry()
        svc = ShardedQueryService(
            registry, shards=2, start_method=START_METHOD, workers_per_shard=1
        )
        try:
            svc.register("fresh", parse_xml("<a><b/><b/></a>"))
            assert "fresh" in store
            for _ in range(4):
                result = svc.run_batch(
                    [
                        QueryRequest(
                            op="select",
                            query="descendant[b]",
                            tree="fresh",
                            min_epoch=registry.epoch("fresh"),
                        )
                    ]
                )[0]
                assert result.status == "ok"
                assert result.value == [1, 2]
        finally:
            svc.shutdown()


class TestHandleHygiene:
    def test_no_handle_leak_after_evict_cycle(self):
        registry, _ = make_registry(budget_trees=1.5)
        import gc

        for name in sorted(DOCS) * 3:
            registry.get(name)
        gc.collect()
        # At most the resident trees keep mappings open; evicted trees'
        # handles die with their tree objects.
        assert len(open_handles()) <= len(registry.resident_names()) + 1
