"""Disk-backed store acceptance soak: a corpus ≥ 10× the resident budget
served through a mixed read/mutate batch with zero wrong answers.

The acceptance contract (threaded and sharded variants):

* the stored corpus's total index bytes are at least **10× the resident
  byte budget**, so most trees are cold at any moment and almost every
  read crosses the mmap cold-load path;
* a 500-request mixed read/mutate batch resolves with **zero wrong
  answers**: reads on read-only trees equal the exact sets-backend
  oracle; reads on the live (mutated) trees equal the oracle of some
  epoch inside the request's observation window (the mutation-soak
  staleness contract);
* the write history reconciles — published epochs contiguous, the final
  tree equal to the structural fold of the applied edits — even though
  the live trees are evicted and reloaded from disk throughout;
* ``registry_resident_bytes`` never exceeds the budget at any drain
  point (pins held by in-flight requests may overshoot transiently, so
  the gauge is sampled whenever the service is quiescent);
* mid-run ``store.load`` fault bursts surface as retried-or-structured
  outcomes, never as wrong answers.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import TreeStore, index_nbytes, random_tree, tree_index
from repro.trees.mutate import apply_edit, edit_from_json
from repro.xpath import Evaluator, parse_node

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")

#: Net-growth edit cycle from the mutation soak: size never drops below 2,
#: so delete-of-node-1 stays legal forever.
_EDITS = [
    {"kind": "insert", "parent": 0, "index": 0, "xml": "<x/>"},
    {"kind": "insert", "parent": 0, "index": 1, "xml": "<b><x/></b>"},
    {"kind": "delete", "node": 1},
    {"kind": "relabel", "node": 0, "label": "r"},
    {"kind": "insert", "parent": 1, "index": 0, "xml": "<b/>"},
    {"kind": "relabel", "node": 0, "label": "a"},
]

_QUERIES = ["b", "x", "<descendant[b]>", "<child[x]>"]

READONLY = 26  # cold corpus trees
LIVE = ("live0", "live1")  # the mutated trees


def _oracle(tree, query: str):
    return sorted(Evaluator(tree, backend="sets").nodes(parse_node(query)))


def _build_corpus(tmp_path):
    """A registry + store whose corpus is >= 10x the resident budget."""
    import random

    registry = TreeRegistry()
    originals = {}
    for i in range(READONLY):
        name = f"doc{i:02d}"
        originals[name] = random_tree(40 + (i * 7) % 25, "abx", random.Random(i))
        registry.register(name, originals[name])
    for name in LIVE:
        originals[name] = random_tree(12, "abx", random.Random(hash(name) % 1000))
        registry.register(name, originals[name])
    total = sum(
        index_nbytes(tree_index(tree)) for tree in originals.values()
    )
    budget = total // 12
    assert budget >= max(
        index_nbytes(tree_index(tree)) for tree in originals.values()
    ), "budget must admit the largest single tree"
    store = TreeStore(tmp_path / "store")
    registry.attach_store(store, resident_budget=budget)
    assert store.total_bytes() >= 10 * budget, (
        f"corpus {store.total_bytes()} bytes must be >= 10x budget {budget}"
    )
    return registry, store, originals, budget


def _run_soak(tmp_path, make_service, *, sharded: bool, total: int) -> None:
    registry, store, originals, budget = _build_corpus(tmp_path)
    names = sorted(originals)
    service = make_service(registry)
    edits: dict[str, tuple[str, dict]] = {}
    reads: dict[str, tuple[str, str]] = {}
    windows: dict[str, list] = {}
    results = {}
    gauge = obs.gauge("registry_resident_bytes")
    gauge_samples = []
    try:
        for chunk_start in range(0, total, 25):
            handles = {}
            for i in range(chunk_start, min(chunk_start + 25, total)):
                if i == total // 3 or i == 2 * total // 3:
                    # Chaos mid-run: cold loads fail transiently, workers
                    # fault, and (sharded) a drop broadcast goes missing.
                    faults.arm("store.load", times=3)
                    faults.arm("service.worker", times=4)
                    if sharded:
                        faults.arm("service.reshare", times=1)
                rid = f"mix-{i}"
                if i % 5 == 4:
                    live = LIVE[i % len(LIVE)]
                    edit = _EDITS[(i // 5) % len(_EDITS)]
                    edits[rid] = (live, edit)
                    request = QueryRequest(op="mutate", id=rid, tree=live, edit=edit)
                    windows[rid] = [registry.epoch(live), None]
                else:
                    name = names[i % len(names)]
                    query = _QUERIES[i % len(_QUERIES)]
                    reads[rid] = (name, query)
                    request = QueryRequest(op="eval", id=rid, query=query, tree=name)
                    windows[rid] = [registry.epoch(name), None]
                handle = service.submit(request)

                def _record(result, window=windows[rid], name=request.tree):
                    window[1] = registry.epoch(name)

                handle.add_done_callback(_record)
                handles[rid] = handle
            for rid, handle in handles.items():
                results[rid] = handle.result(timeout=120.0)
            # Quiescent: every pin released, so the budget must hold.
            gauge_samples.append(gauge.value)

        # Leftover armed faults must not leak into the verification phase
        # (its own registry touches cross the store.load site too).
        faults.disarm()

        # -- every request resolved exactly once, structurally ---------------
        assert set(results) == {f"mix-{i}" for i in range(total)}
        for rid, result in results.items():
            assert result.status in ("ok", "error", "shed"), rid
            if result.status != "ok":
                assert result.error is not None

        # -- resident bytes bounded at every drain point ---------------------
        assert gauge_samples and all(s <= budget for s in gauge_samples), (
            f"resident bytes exceeded budget {budget}: {gauge_samples}"
        )

        # -- write history reconciles per live tree --------------------------
        epoch_trees = {name: {1: originals[name]} for name in LIVE}
        max_epoch = {}
        for live in LIVE:
            ok_writes = sorted(
                (results[rid].value["epoch"], rid)
                for rid, (name, _) in edits.items()
                if name == live and results[rid].status == "ok"
            )
            assert [e for e, _ in ok_writes] == list(
                range(2, 2 + len(ok_writes))
            ), f"{live}: published epochs must be exactly contiguous"
            for epoch, rid in ok_writes:
                epoch_trees[live][epoch] = apply_edit(
                    epoch_trees[live][epoch - 1], edit_from_json(edits[rid][1])
                )
            max_epoch[live] = 1 + len(ok_writes)
            assert registry.epoch(live) == max_epoch[live]
            # The final tree survives an evict/reload round trip intact.
            assert store.epoch(live) == max_epoch[live]
            registry.evict(live)
            assert registry.get(live) == epoch_trees[live][max_epoch[live]]

        # -- zero wrong answers ----------------------------------------------
        answers: dict[tuple, list] = {}

        def answer(tree, key, query):
            if (key, query) not in answers:
                answers[(key, query)] = _oracle(tree, query)
            return answers[(key, query)]

        ok_reads = 0
        for rid, (name, query) in reads.items():
            result = results[rid]
            if result.status != "ok":
                continue
            ok_reads += 1
            if name not in epoch_trees:
                assert result.value == answer(originals[name], name, query), (
                    f"{rid}: wrong answer for read-only {name!r}"
                )
                continue
            e_lo, e_hi = windows[rid]
            assert e_hi is not None, rid
            window_epochs = range(e_lo, min(e_hi + 1, max_epoch[name]) + 1)
            assert any(
                result.value
                == answer(epoch_trees[name][epoch], (name, epoch), query)
                for epoch in window_epochs
            ), f"{rid}: torn or stale read of {name!r}"

        ok_total = sum(1 for r in results.values() if r.status == "ok")
        assert ok_total >= total * 0.9
        assert ok_reads >= 1 and len(edits) >= 1
        assert obs.counter("store_loads_total", event="ok").value > 0
        assert obs.counter("store_evictions_total").value > 0
    finally:
        faults.disarm()
        service.shutdown()


@pytest.mark.soak
def test_store_soak_threaded(tmp_path):
    _run_soak(
        tmp_path,
        lambda registry: QueryService(
            registry,
            workers=4,
            queue_limit=48,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
            breaker_threshold=4,
            breaker_cooldown=0.02,
        ),
        sharded=False,
        total=500,
    )


@pytest.mark.soak
def test_store_soak_sharded(tmp_path):
    _run_soak(
        tmp_path,
        lambda registry: ShardedQueryService(
            registry,
            shards=2,
            start_method=START_METHOD,
            workers_per_shard=1,
            queue_limit=48,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
        ),
        sharded=True,
        total=250,
    )
