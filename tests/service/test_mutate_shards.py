"""Live documents across the shard pool: mutate end-to-end, epoch-stamped
reads, and the reshare-fault → stale → heal cycle."""

from __future__ import annotations

import os

from repro import obs
from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import parse_xml

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")


def make_registry() -> TreeRegistry:
    registry = TreeRegistry()
    registry.register("doc", parse_xml("<a><b/><c/></a>"))
    registry.register("other", parse_xml("<a><b/></a>"))
    return registry


def _eval(svc, tree="doc", query="b", **extra):
    return svc.run_batch([QueryRequest(op="eval", query=query, tree=tree, **extra)])[0]


def _mutate(svc, edit, tree="doc"):
    return svc.run_batch([QueryRequest(op="mutate", tree=tree, edit=edit)])[0]


class TestShardedMutate:
    def test_mutate_end_to_end(self):
        registry = make_registry()
        with ShardedQueryService(
            registry, shards=2, start_method=START_METHOD
        ) as svc:
            assert _eval(svc).value == [1]
            result = _mutate(
                svc, {"kind": "insert", "parent": 0, "index": 0, "xml": "<b/>"}
            )
            assert result.status == "ok"
            assert result.routed == "mutate"
            assert result.value == {"tree": "doc", "epoch": 2, "kind": "insert", "size": 4}
            # The re-shared segment serves the post-edit answer from shards.
            after = _eval(svc)
            assert after.status == "ok"
            assert after.value == [1, 2]
            # Other trees are untouched.
            assert _eval(svc, tree="other").value == [1]
        assert registry.epoch("doc") == 2

    def test_edit_script_matches_inprocess_service(self):
        script = [
            {"kind": "insert", "parent": 0, "index": 1, "xml": "<x><b/></x>"},
            {"kind": "relabel", "node": 1, "label": "x"},
            {"kind": "delete", "node": 4},
            {"kind": "insert", "parent": 2, "index": 0, "xml": "<b/>"},
        ]
        queries = ["b", "x", "<descendant[b]>", "<child[x]> and not <right[b]>"]

        def run(service_cls, **kwargs):
            registry = make_registry()
            answers = []
            with service_cls(registry, **kwargs) as svc:
                for edit in script:
                    assert _mutate(svc, edit).status == "ok"
                    answers.append([_eval(svc, query=q).value for q in queries])
            return answers

        sharded = run(ShardedQueryService, shards=2, start_method=START_METHOD)
        local = run(QueryService, workers=2)
        assert sharded == local

    def test_mutation_invalidates_shard_caches(self):
        registry = make_registry()
        with ShardedQueryService(
            registry, shards=2, start_method=START_METHOD, result_cache=True
        ) as svc:
            assert _eval(svc).value == [1]
            assert _eval(svc).routed == "cache"
            _mutate(svc, {"kind": "relabel", "node": 1, "label": "z"})
            fresh = _eval(svc)
            assert fresh.routed != "cache"
            assert fresh.value == []

    def test_reshare_fault_heals_via_stale_retry(self):
        registry = make_registry()
        with ShardedQueryService(
            registry, shards=2, start_method=START_METHOD
        ) as svc:
            # Drop EVERY shard's broadcast: the mutation still succeeds
            # (re-sharing is best-effort per shard), but both shards are
            # now one epoch behind the published registry.
            with faults.scoped(("service.reshare", 2)):
                result = _mutate(
                    svc, {"kind": "insert", "parent": 0, "index": 0, "xml": "<b/>"}
                )
            assert result.status == "ok"
            assert obs.counter("tree_reshare_total", event="fault").value == 2
            # The next stamped read finds its shard stale, the parent
            # re-shares the current segment and re-dispatches, and the
            # caller sees the fresh answer — never the stale one.
            read = _eval(svc)
            assert read.status == "ok"
            assert read.value == [1, 2]
            assert obs.counter("tree_reshare_total", event="heal").value >= 1

    def test_mutate_fault_in_parent_is_retried(self):
        registry = make_registry()
        with ShardedQueryService(
            registry, shards=1, start_method=START_METHOD
        ) as svc:
            with faults.scoped(("trees.mutate", 1)):
                result = _mutate(svc, {"kind": "relabel", "node": 1, "label": "z"})
            assert result.status == "ok"
            assert result.retries == 1
            assert _eval(svc, query="z").value == [1]

    def test_mutate_validation_is_local(self):
        registry = make_registry()
        with ShardedQueryService(
            registry, shards=1, start_method=START_METHOD
        ) as svc:
            bad = _mutate(svc, {"kind": "warp"})
            assert bad.status == "error"
            assert "unknown edit kind" in bad.error["message"]
            assert registry.epoch("doc") == 1
