"""The ``mutate`` op through QueryService: epochs, retries, cache freshness,
and the min_epoch staleness contract."""

import pytest

from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    RetryPolicy,
    TreeRegistry,
)
from repro.trees import parse_xml


def make_registry() -> TreeRegistry:
    registry = TreeRegistry()
    registry.register("doc", parse_xml("<a><b/><c/></a>"))
    return registry


def _eval(svc, query="b", tree="doc", **extra):
    return svc.run_batch([QueryRequest(op="eval", query=query, tree=tree, **extra)])[0]


def _mutate(svc, edit, tree="doc", **extra):
    return svc.run_batch([QueryRequest(op="mutate", tree=tree, edit=edit, **extra)])[0]


class TestMutateOp:
    def test_mutate_publishes_and_reports_epoch(self):
        registry = make_registry()
        with QueryService(registry, workers=2) as svc:
            before = _eval(svc)  # nodes labeled b
            assert before.value == [1]
            result = _mutate(
                svc, {"kind": "insert", "parent": 0, "index": 0, "xml": "<b/>"}
            )
            assert result.status == "ok"
            assert result.routed == "mutate"
            assert result.value == {"tree": "doc", "epoch": 2, "kind": "insert", "size": 4}
            after = _eval(svc)
            assert after.value == [1, 2]
        assert registry.epoch("doc") == 2

    def test_mutate_validation_errors(self):
        registry = make_registry()
        with QueryService(registry, workers=1) as svc:
            # Admission-time: mutate takes no inline xml document.
            bad = svc.run_batch(
                [
                    QueryRequest(
                        op="mutate",
                        tree="doc",
                        xml="<a/>",
                        edit={"kind": "relabel", "node": 0, "label": "z"},
                    )
                ]
            )[0]
            assert bad.status == "error"
            assert "'xml' is not allowed" in bad.error["message"]
            # Worker-time: malformed edit payloads and unknown trees.
            assert "unknown edit kind" in _mutate(svc, {"kind": "warp"}).error["message"]
            assert (
                "unknown tree"
                in _mutate(
                    svc, {"kind": "relabel", "node": 0, "label": "z"}, tree="ghost"
                ).error["message"]
            )
            # A rejected edit is not retried and publishes nothing.
            out_of_range = _mutate(svc, {"kind": "delete", "node": 99})
            assert out_of_range.status == "error"
            assert out_of_range.retries == 0
        assert registry.epoch("doc") == 1

    def test_injected_mutation_fault_is_retried(self):
        registry = make_registry()
        with QueryService(
            registry, workers=1, retry=RetryPolicy(max_attempts=3, base_delay=0.0)
        ) as svc:
            with faults.scoped(("trees.mutate", 1)):
                result = _mutate(svc, {"kind": "relabel", "node": 1, "label": "z"})
            assert result.status == "ok"
            assert result.retries == 1
            assert result.value["epoch"] == 2
        assert registry.get("doc").labels[1] == "z"

    def test_exhausted_mutation_fault_is_structured(self):
        registry = make_registry()
        with QueryService(
            registry, workers=1, retry=RetryPolicy(max_attempts=2, base_delay=0.0)
        ) as svc:
            with faults.scoped("trees.mutate"):
                result = _mutate(svc, {"kind": "relabel", "node": 1, "label": "z"})
            assert result.status == "error"
            assert result.error["type"] == "InjectedFaultError"
            assert result.exit_code == 8
            assert result.retries == 1
        # Nothing was published.
        assert registry.epoch("doc") == 1
        assert registry.get("doc").labels[1] == "b"

    def test_mutations_serialize_under_concurrency(self):
        registry = make_registry()
        with QueryService(registry, workers=4) as svc:
            edits = [
                QueryRequest(
                    op="mutate",
                    tree="doc",
                    edit={"kind": "insert", "parent": 0, "index": 0, "xml": "<x/>"},
                )
                for _ in range(8)
            ]
            results = svc.run_batch(edits)
        assert all(r.status == "ok" for r in results)
        # Each mutation published exactly one epoch: 8 edits -> epochs 2..9.
        assert sorted(r.value["epoch"] for r in results) == list(range(2, 10))
        assert registry.get("doc").size == 3 + 8


class TestMinEpoch:
    def test_fresh_read_passes_and_stale_read_is_structured(self):
        registry = make_registry()
        with QueryService(registry, workers=1) as svc:
            ok = _eval(svc, min_epoch=registry.epoch("doc"))
            assert ok.status == "ok"
            stale = _eval(svc, min_epoch=registry.epoch("doc") + 3)
            assert stale.status == "error"
            assert stale.error["type"] == "StaleEpochError"
            assert stale.exit_code == 8  # retryable, by the engine contract

    def test_min_epoch_validation(self):
        with pytest.raises(ValueError, match="min_epoch"):
            QueryRequest(op="eval", query="b", tree="doc", min_epoch=-1).validate()

    def test_stamped_read_on_missing_tree_is_stale_not_unknown(self):
        # A replica that never attached the tree (e.g. a shard whose
        # re-share broadcast was dropped) must answer a stamped read with
        # the healable staleness signal, not an "unknown tree" dead end.
        registry = make_registry()
        with QueryService(registry, workers=1) as svc:
            plain = _eval(svc, tree="ghost")
            assert plain.error["type"] == "ValueError"
            stamped = _eval(svc, tree="ghost", min_epoch=1)
            assert stamped.error["type"] == "StaleEpochError"
            assert "epoch 0" in stamped.error["message"]


class TestCacheFreshness:
    def test_mutation_invalidates_result_cache(self):
        registry = make_registry()
        with QueryService(registry, workers=1, result_cache=True) as svc:
            assert _eval(svc).value == [1]
            cached = _eval(svc)
            assert cached.routed == "cache"
            _mutate(svc, {"kind": "relabel", "node": 1, "label": "x"})
            fresh = _eval(svc)
            assert fresh.routed != "cache"
            assert fresh.value == []
            assert _eval(svc, query="x").value == [1]
