"""Cross-process chaos soak: 300 mixed requests through the shard pool.

The multiprocess restatement of ``test_soak.py``'s acceptance contract:

* every admitted request ends in exactly one structured outcome — zero
  lost, zero duplicated, across process boundaries and a mid-run fault
  burst broadcast to every shard;
* ``ok`` answers are correct against oracle-engine ground truth computed
  outside the service;
* the merged stats balance (``submitted == ok + errors + shed``) and the
  merged metrics registry reconciles **to the unit**: summing the
  ``service_results_total`` series across the parent and every shard's
  delta yields exactly the request count.

The start method comes from ``REPRO_START_METHOD`` (default ``fork``), so
CI runs the same soak under both ``fork`` and ``spawn``.
"""

from __future__ import annotations

import os

import pytest

from repro.service import QueryRequest, RetryPolicy, ShardedQueryService, TreeRegistry
from repro.trees import chain, parse_xml

from .test_soak import _WORKLOAD, _ground_truth, _request, DOC

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")
TOTAL = 300


@pytest.mark.soak
def test_cross_process_chaos_soak_zero_lost_requests():
    registry = TreeRegistry()
    registry.register("talk", parse_xml(DOC))
    registry.register("chain", chain(48, labels=("a", "b")))
    truth = _ground_truth(registry)

    service = ShardedQueryService(
        registry,
        shards=2,
        start_method=START_METHOD,
        workers_per_shard=2,
        queue_limit=48,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
        breaker_threshold=4,
        breaker_cooldown=0.02,
    )
    results = {}
    try:
        handles = {}
        for i in range(TOTAL):
            if i == TOTAL // 3:
                # Mid-run chaos, broadcast over the control channel so the
                # burst lands inside every shard process.
                service.arm_faults("xpath.bitset", times=30)
                service.arm_faults("logic.bitset", times=20)
                service.arm_faults("service.worker", times=10)
            request = _request(i)
            handles[request.id] = service.submit(request)
        for request_id, handle in handles.items():
            results[request_id] = handle.result(timeout=120.0)

        # -- zero lost, zero duplicated --------------------------------------
        assert set(results) == {f"soak-{i}" for i in range(TOTAL)}

        # -- exactly one structured outcome each -----------------------------
        for request_id, result in results.items():
            assert result.status in ("ok", "error", "shed"), request_id
            if result.status == "ok":
                assert result.error is None
            else:
                assert result.error is not None

        # -- ok results are correct, whichever shard served them -------------
        checked = 0
        for i in range(TOTAL):
            result = results[f"soak-{i}"]
            if result.status != "ok":
                continue
            op, _, text, tree_name = _WORKLOAD[i % len(_WORKLOAD)]
            if op == "equivalent":
                assert result.value["equivalent"] is (
                    text == ("W(<descendant[b]>)", "<descendant[b]>")
                )
            else:
                assert result.value == truth[(op, str(text), tree_name)], (
                    f"wrong answer from {result.worker} for {text!r}"
                )
            checked += 1
        assert checked >= TOTAL * 0.9

        # -- merged stats balance --------------------------------------------
        snapshot = service.stats_snapshot()
        assert snapshot["submitted"] == TOTAL
        assert snapshot["ok"] + snapshot["errors"] + snapshot["shed"] == TOTAL
        assert snapshot["completed"] == TOTAL
        # Both shards actually served (the workload names two documents
        # that hash to different shards, plus round-robin equivalence).
        shard_submitted = [
            s["submitted"] for s in snapshot["shards"].values()
        ]
        assert len(shard_submitted) == 2
        assert all(count > 0 for count in shard_submitted)
        # The broadcast burst left a trace in some shard.
        assert snapshot["retries"] >= 1

        # -- the merged registry reconciles to the unit ----------------------
        metrics = service.metrics_snapshot()
        results_total = sum(
            value
            for series, value in metrics["counters"].items()
            if series.startswith("service_results_total")
        )
        assert results_total == TOTAL
        latency_counts = sum(
            payload["count"]
            for series, payload in metrics["histograms"].items()
            if series.startswith("service_latency_seconds")
        )
        assert latency_counts == TOTAL
    finally:
        service.shutdown(drain=True)

    # -- teardown leaves no orphans ------------------------------------------
    assert all(not process.is_alive() for process in service.processes)
