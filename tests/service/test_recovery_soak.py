"""End-to-end crash/recovery chaos soak: the ISSUE 9 acceptance gauntlet.

A mixed read/write sharded workload runs with a durable WAL attached and a
supervised shard pool while the soak:

* **SIGKILLs the serving shard mid-burst** (at 1/3 and 2/3 of the run) —
  in-flight and queued requests must re-dispatch through the respawned
  replacement, never resolve as crashed, and ``shard_restarts_total``
  must reconcile *exactly* with the injected kills;
* **bursts the ``wal.append`` fault site mid-edit-script** — the mutator
  retries; a fired append aborts with registry and log untouched, so the
  durable history stays torn-free and gapless;
* **tears the log tail after shutdown** (simulating a crash mid-append) —
  :func:`repro.trees.wal.recover` must fold snapshot + intact suffix into
  a registry *bit-identical* to the live one: same epochs, same trees,
  same ``index_fingerprint`` as a from-scratch rebuild.

Zero lost, zero duplicated, zero torn — and availability restored without
operator action.
"""

from __future__ import annotations

import os
import time
import zlib

import pytest

from repro import obs
from repro.runtime import faults
from repro.service import (
    QueryRequest,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import Tree, parse_xml, tree_index
from repro.trees.mutate import apply_edit, edit_from_json, index_fingerprint
from repro.trees.wal import WriteAheadLog, recover

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")

DOC = "<a><b/><c/></a>"

#: Always-valid edit cycle (net growth; node 1 always deletable), as in
#: the mutation soak.
_EDITS = [
    {"kind": "insert", "parent": 0, "index": 0, "xml": "<x/>"},
    {"kind": "insert", "parent": 0, "index": 1, "xml": "<b><x/></b>"},
    {"kind": "delete", "node": 1},
    {"kind": "relabel", "node": 0, "label": "r"},
    {"kind": "insert", "parent": 1, "index": 0, "xml": "<b/>"},
    {"kind": "relabel", "node": 0, "label": "a"},
]

_QUERIES = ["b", "x", "<descendant[b]>", "<child[x]>"]


def _wait_alive(service, shard, prev=None, timeout=30.0):
    """Wait for a live shard process that is NOT ``prev``.

    ``is_alive`` alone is not enough between two kills: a just-SIGKILLed
    process can still report alive until the kernel reaps it, and a second
    kill landing on that corpse would not produce a second restart.  The
    respawn swaps in a fresh ``Process`` object, so identity is the
    reliable signal that the supervisor has actually replaced the victim.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        process = service.processes[shard]
        try:
            if process is not prev and process.is_alive():
                return process
        except ValueError:
            pass
        time.sleep(0.02)
    raise AssertionError(f"shard {shard} never came (back) up")


@pytest.mark.soak
def test_recovery_soak_kill_and_wal(tmp_path):
    wal = WriteAheadLog.open(tmp_path / "wal", snapshot_every=8)
    registry = TreeRegistry()
    registry.attach_wal(wal)
    registry.register("live", parse_xml(DOC))

    shards = 2
    live_shard = zlib.crc32(b"live") % shards
    service = ShardedQueryService(
        registry,
        shards=shards,
        start_method=START_METHOD,
        workers_per_shard=1,
        queue_limit=48,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
        max_restarts=4,
    )
    total = 180
    kill_points = {total // 3, 2 * total // 3}
    kills = 0
    restarts_before = obs.REGISTRY.total("shard_restarts_total")
    edits: dict[str, dict] = {}
    handles = {}
    last_victim = None
    try:
        for i in range(total):
            if i in kill_points:
                # Only a *fresh, live* victim counts: a second SIGKILL
                # landing on the previous (possibly not-yet-reaped) corpse
                # would not produce a second restart, and the
                # reconciliation below demands exactly one per kill.
                last_victim = _wait_alive(service, live_shard, prev=last_victim)
                last_victim.kill()
                kills += 1
                # Mid-edit-script WAL chaos: the next two appends fail and
                # must be retried by the mutator without torn/gapped
                # history (max_attempts=3 outlasts the burst).
                faults.arm("wal.append", times=2)
            rid = f"soak-{i}"
            if i % 4 == 3:
                edit = _EDITS[(i // 4) % len(_EDITS)]
                edits[rid] = edit
                request = QueryRequest(op="mutate", id=rid, tree="live", edit=edit)
            else:
                query = _QUERIES[i % len(_QUERIES)]
                request = QueryRequest(op="eval", id=rid, query=query, tree="live")
            handles[rid] = service.submit(request)
        results = {rid: h.result(timeout=120.0) for rid, h in handles.items()}

        # -- zero lost / duplicated / crashed --------------------------------
        assert set(results) == {f"soak-{i}" for i in range(total)}
        for rid, result in results.items():
            assert result.status in ("ok", "error", "shed"), rid
            assert result.error is None or result.error["type"] not in (
                "ShardCrashedError",
                "ShardUnavailableError",
            ), (rid, result.error)

        # -- availability restored without operator action -------------------
        assert service.restart_counts[live_shard] == kills == 2
        assert (
            obs.REGISTRY.total("shard_restarts_total") - restarts_before == kills
        )
        faults.disarm()
        post = service.run_batch(
            [QueryRequest(op="eval", query=q, tree="live") for q in _QUERIES]
        )
        assert [r.status for r in post] == ["ok"] * len(_QUERIES)

        # -- the write history reconciles ------------------------------------
        ok_writes = sorted(
            (results[rid].value["epoch"], rid)
            for rid in edits
            if results[rid].status == "ok"
        )
        assert len(ok_writes) >= 1
        assert [epoch for epoch, _ in ok_writes] == list(
            range(2, 2 + len(ok_writes))
        ), "published epochs must be exactly contiguous (none lost/doubled)"
        oracle = parse_xml(DOC)
        for _epoch, rid in ok_writes:
            oracle = apply_edit(oracle, edit_from_json(edits[rid]))
        assert registry.epoch("live") == 1 + len(ok_writes)
        assert registry.get("live") == oracle
    finally:
        faults.disarm()
        service.shutdown()
        wal.close()

    # -- crash-and-recover: torn tail + bit-identical replay -----------------
    log_path = tmp_path / "wal" / "wal.jsonl"
    intact = log_path.read_bytes()
    log_path.write_bytes(intact + b"00000042 deadbeef {\"torn\": tr")  # crash mid-append
    recovered = recover(tmp_path / "wal")
    assert recovered.names() == registry.names()
    for name in registry.names():
        live_tree, live_epoch = registry.snapshot(name)
        got_tree, got_epoch = recovered.snapshot(name)
        assert got_epoch == live_epoch, name
        assert got_tree == live_tree, name
        assert index_fingerprint(tree_index(got_tree)) == index_fingerprint(
            tree_index(Tree(list(live_tree.labels), list(live_tree.parent)))
        ), name
    # The writer heals the tear on reopen; recovery is then idempotent.
    reopened = WriteAheadLog.open(tmp_path / "wal")
    assert reopened.truncated_bytes > 0
    reopened.close()
    assert log_path.read_bytes() == intact
    again = recover(tmp_path / "wal")
    assert again.snapshot("live") == recovered.snapshot("live")
