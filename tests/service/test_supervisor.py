"""Shard self-healing: crash detection, budgeted respawn, re-dispatch,
terminal degradation, and fault re-arming.

Companion to ``tests/service/test_shards.py`` (the unsupervised tier, where
a dead shard's requests resolve as ``ShardCrashedError``).  Everything here
runs with ``max_restarts`` set, which changes the contract: a SIGKILLed
shard is respawned with full state resync, its in-flight requests are
re-dispatched (no caller-visible crash), and only an exhausted restart
budget degrades to the structured :class:`ShardUnavailableError` (exit
code 10).
"""

from __future__ import annotations

import os
import time
import zlib

import pytest

from repro import obs
from repro.runtime import faults
from repro.runtime.errors import ShardUnavailableError, exit_code_for
from repro.service import (
    QueryRequest,
    RestartBudget,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.service.shards import _ShardJob
from repro.trees import parse_xml

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")

DOC = "<a><b/><c><b/></c></a>"


def shard_for(name: str, shards: int) -> int:
    """Mirror of the service's tree-affinity routing."""
    return zlib.crc32(name.encode("utf-8")) % shards


def make_service(registry, **kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("start_method", START_METHOD)
    kwargs.setdefault("workers_per_shard", 1)
    kwargs.setdefault("max_restarts", 3)
    return ShardedQueryService(registry, **kwargs)


def wait_until(predicate, timeout: float = 20.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


@pytest.fixture
def registry():
    reg = TreeRegistry()
    reg.register("doc", parse_xml(DOC))
    return reg


# -- RestartBudget -----------------------------------------------------------


def test_restart_budget_window():
    budget = RestartBudget(2, window=10.0)
    assert budget.allow(0.0) and budget.spent(0.0) == 0
    budget.record(0.0)
    budget.record(1.0)
    assert not budget.allow(2.0) and budget.spent(2.0) == 2
    # The window rolls: the t=0 restart ages out just past t=10.
    assert budget.allow(10.5) and budget.spent(10.5) == 1
    assert not budget.allow(10.5) or budget.max_restarts > 1


def test_restart_budget_zero_never_allows():
    budget = RestartBudget(0, window=5.0)
    assert not budget.allow(0.0)


@pytest.mark.parametrize(
    "kwargs", [dict(max_restarts=-1, window=1.0), dict(max_restarts=1, window=0.0)]
)
def test_restart_budget_validation(kwargs):
    with pytest.raises(ValueError):
        RestartBudget(kwargs["max_restarts"], kwargs["window"])


def test_service_rejects_negative_max_restarts(registry):
    with pytest.raises(ValueError, match="max_restarts"):
        ShardedQueryService(
            registry, shards=2, start_method=START_METHOD, max_restarts=-1
        )


# -- kill -> respawn -> heal -------------------------------------------------


@pytest.mark.soak
def test_killed_shard_respawns_and_serves_again(registry):
    service = make_service(registry)
    try:
        shard = shard_for("doc", 2)
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        warm = service.run_batch([request])
        assert warm[0].status == "ok" and warm[0].value == [0, 2]

        before = obs.REGISTRY.total("shard_restarts_total")
        service.processes[shard].kill()
        # Submitted *while dead*: the feeder waits out the respawn instead
        # of failing over to ShardCrashedError.
        results = service.run_batch([request] * 8)
        assert [r.status for r in results] == ["ok"] * 8
        assert all(r.value == [0, 2] for r in results)
        assert service.restart_counts[shard] == 1
        assert obs.REGISTRY.total("shard_restarts_total") - before == 1
        # The replacement holds the re-shared segments: a fresh mutation
        # round-trips through it too.
        mutated = service.run_batch(
            [
                QueryRequest(
                    op="mutate",
                    tree="doc",
                    edit={"kind": "relabel", "node": 1, "label": "z"},
                ),
                QueryRequest(op="eval", query="<child[z]>", tree="doc", min_epoch=2),
            ]
        )
        assert [r.status for r in mutated] == ["ok", "ok"]
    finally:
        service.shutdown()
    # Counts are stable across shutdown (the supervisor stops first).
    assert service.restart_counts[shard] == 1


@pytest.mark.soak
def test_in_flight_requests_redispatch_not_crash(registry):
    service = make_service(registry, workers_per_shard=2)
    try:
        shard = shard_for("doc", 2)
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        handles = [service.submit(request) for _ in range(24)]
        service.processes[shard].kill()  # mid-burst: some are in flight
        results = [h.result(timeout=60.0) for h in handles]
        assert [r.status for r in results] == ["ok"] * 24, [
            r.error for r in results if r.status != "ok"
        ]
        assert service.restart_counts[shard] >= 1
    finally:
        service.shutdown()


@pytest.mark.soak
def test_repeated_kills_within_budget(registry):
    service = make_service(registry, max_restarts=5)
    try:
        shard = shard_for("doc", 2)
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        for round_number in range(1, 4):
            service.processes[shard].kill()
            results = service.run_batch([request] * 3)
            assert [r.status for r in results] == ["ok"] * 3
            assert service.restart_counts[shard] == round_number
    finally:
        service.shutdown()


# -- budget exhaustion: graceful degradation ---------------------------------


@pytest.mark.soak
def test_exhausted_budget_degrades_to_unavailable(registry):
    service = make_service(registry, max_restarts=0)
    try:
        shard = shard_for("doc", 2)
        other = next(n for n in "xyzw" if shard_for(n, 2) != shard)
        service.register(other, parse_xml("<r><b/></r>"))

        service.processes[shard].kill()
        wait_until(
            lambda: service._failed[shard], what="terminal unavailability"
        )
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        result = service.submit(request).result(timeout=30.0)
        assert result.status == "error"
        assert result.error["type"] == "ShardUnavailableError"
        assert result.error["exit_code"] == 10
        assert service.restart_counts[shard] == 0
        # The *other* shard keeps serving: degradation is per-shard.
        healthy = service.submit(
            QueryRequest(op="eval", query="<descendant[b]>", tree=other)
        ).result(timeout=30.0)
        assert healthy.status == "ok"
    finally:
        service.shutdown()


def test_unavailable_error_contract():
    exc = ShardUnavailableError("shard 0 exhausted its restart budget")
    assert exit_code_for(exc) == 10


# -- fault arming: outcomes and re-arm-on-respawn ----------------------------


@pytest.mark.soak
def test_arm_faults_reports_dead_shard_and_respawn_rearms(registry):
    service = make_service(
        registry, retry=RetryPolicy(max_attempts=1), workers_per_shard=1
    )
    try:
        shard = shard_for("doc", 2)
        outcome = service.arm_faults("service.worker")
        assert outcome == {0: True, 1: True}

        service.processes[shard].kill()
        wait_until(
            lambda: service.restart_counts[shard] == 1, what="respawn after kill"
        )
        # While dead (or once failed) the arm is reported undelivered —
        # here, after respawn, delivery is clean again.
        outcome = service.arm_faults("service.worker")
        assert outcome == {0: True, 1: True}

        # The respawned shard inherited the tracked arm: the fault fires
        # on its fast path (degrading the answer to the oracle fallback),
        # proving state resync covers fault injection.
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        result = service.submit(request).result(timeout=60.0)
        assert result.status == "ok"
        assert result.fallback is True

        disarm = service.disarm_faults("service.worker")
        assert disarm == {0: True, 1: True}
        result = service.submit(request).result(timeout=60.0)
        assert result.status == "ok"
        assert result.fallback is False
    finally:
        faults.disarm()
        service.shutdown()


def test_arm_faults_outcome_false_for_dead_shard_unsupervised(registry):
    service = ShardedQueryService(
        registry, shards=2, start_method=START_METHOD, workers_per_shard=1
    )
    try:
        shard = shard_for("doc", 2)
        service.processes[shard].kill()
        wait_until(
            lambda: service.processes[shard].is_alive() is False,
            what="kill to land",
        )
        # Let the collector notice the death before asserting the outcome.
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        service.submit(request).result(timeout=30.0)
        outcome = service.arm_faults("service.worker", times=1)
        assert outcome[shard] is False
        assert outcome[1 - shard] is True
        service.disarm_faults()
    finally:
        faults.disarm()
        service.shutdown()


# -- the service.shard_kill chaos site ---------------------------------------


@pytest.mark.soak
def test_shard_kill_fault_site_reconciles(registry):
    service = make_service(registry, max_restarts=6)
    try:
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        assert service.run_batch([request])[0].status == "ok"
        before = obs.REGISTRY.total("shard_restarts_total")
        faults.arm("service.shard_kill", times=2)
        wait_until(
            lambda: service._supervisor.kills == 2, what="both injected kills"
        )
        wait_until(
            lambda: sum(service.restart_counts) == 2,
            what="both respawns",
        )
        # Exact reconciliation: every injected kill produced one restart.
        assert obs.REGISTRY.total("shard_restarts_total") - before == 2
        results = service.run_batch([request] * 6)
        assert [r.status for r in results] == ["ok"] * 6
    finally:
        faults.disarm()
        service.shutdown()


# -- satellite: the closed-handle crash result -------------------------------


def test_crashed_result_survives_closed_process_handle(registry):
    service = ShardedQueryService(
        registry, shards=1, start_method=START_METHOD, workers_per_shard=1
    )
    try:
        request = QueryRequest(op="eval", query="<descendant[b]>", tree="doc")
        assert service.run_batch([request])[0].status == "ok"
    finally:
        service.shutdown()
    # Close the (already joined) handle: ``.exitcode`` now raises
    # ValueError.  The crash formatter must degrade to ``exitcode None``
    # instead of raising from the resolving thread.
    process = service._processes[0]
    process.join(timeout=10.0)
    process.close()
    job = _ShardJob(request, None, 0.0, 0)
    result = service._crashed_result(job)
    assert result.status == "error"
    assert result.error["type"] == "ShardCrashedError"
    assert "exitcode None" in result.error["message"]
