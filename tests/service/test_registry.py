"""TreeRegistry live-document surface: epochs, snapshots, pins, mutate,
and exception-isolated listeners."""

import pytest

from repro import obs
from repro.runtime import faults
from repro.runtime.errors import InjectedFaultError
from repro.service import TreeRegistry
from repro.trees import Tree, tree_index
from repro.trees.mutate import InsertSubtree, Relabel, index_fingerprint


def _tree(shape=("a", ["b", "c"])):
    return Tree.build(shape)


# -- epochs ------------------------------------------------------------------


def test_register_bumps_epoch():
    registry = TreeRegistry()
    assert registry.epoch("doc") == 0
    assert registry.register("doc", _tree()) == 1
    assert registry.epoch("doc") == 1
    assert registry.register("doc", _tree()) == 2
    assert registry.epoch("doc") == 2


def test_register_with_explicit_epoch():
    registry = TreeRegistry()
    assert registry.register("doc", _tree(), epoch=7) == 7
    assert registry.epoch("doc") == 7
    # Default bump continues from the pinned value.
    assert registry.register("doc", _tree()) == 8


def test_snapshot_is_atomic_pair():
    registry = TreeRegistry()
    t = _tree()
    registry.register("doc", t)
    tree, epoch = registry.snapshot("doc")
    assert tree is t
    assert epoch == 1
    with pytest.raises(ValueError, match="unknown tree"):
        registry.snapshot("missing")


# -- pins --------------------------------------------------------------------


def test_pin_holds_snapshot_and_tracks_gauge():
    registry = TreeRegistry()
    t = _tree()
    registry.register("doc", t)
    gauge = obs.gauge("snapshot_pins")
    base = gauge.value
    pin = registry.pin("doc")
    assert gauge.value == base + 1
    assert pin.tree is t and pin.epoch == 1 and pin.name == "doc"
    # A mutation does not disturb the pinned snapshot.
    registry.mutate("doc", Relabel(0, "z"))
    assert pin.tree is t
    assert pin.tree.labels[0] == "a"
    pin.release()
    assert gauge.value == base
    pin.release()  # idempotent
    assert gauge.value == base


def test_pin_is_a_context_manager():
    registry = TreeRegistry()
    registry.register("doc", _tree())
    gauge = obs.gauge("snapshot_pins")
    base = gauge.value
    with registry.pin("doc") as pin:
        assert gauge.value == base + 1
        assert pin.epoch == 1
    assert gauge.value == base


# -- mutate ------------------------------------------------------------------


def test_mutate_publishes_new_epoch_copy_on_write():
    registry = TreeRegistry()
    old = _tree()
    registry.register("doc", old)
    new_tree, epoch = registry.mutate(
        "doc", InsertSubtree(parent=0, index=0, subtree=Tree.leaf("x"))
    )
    assert epoch == 2
    assert registry.get("doc") is new_tree
    assert new_tree.to_shape() == ("a", ["x", "b", "c"])
    assert old.to_shape() == ("a", ["b", "c"])
    # The published index was maintained incrementally, bit-exact vs rebuild.
    assert index_fingerprint(tree_index(new_tree)) == index_fingerprint(
        tree_index(Tree(new_tree.labels, new_tree.parent))
    )


def test_mutate_accepts_json_edits_and_counts_by_kind():
    registry = TreeRegistry()
    registry.register("doc", _tree())
    counter = obs.counter("tree_mutations_total", kind="relabel")
    base = counter.value
    registry.mutate("doc", {"kind": "relabel", "node": 1, "label": "q"})
    assert registry.get("doc").labels[1] == "q"
    assert counter.value == base + 1


def test_mutate_unknown_tree_and_invalid_edit():
    registry = TreeRegistry()
    with pytest.raises(ValueError, match="unknown tree"):
        registry.mutate("missing", Relabel(0, "x"))
    registry.register("doc", _tree())
    with pytest.raises(ValueError, match="out of range"):
        registry.mutate("doc", Relabel(99, "x"))
    # A rejected edit publishes nothing.
    assert registry.epoch("doc") == 1


def test_mutate_fault_is_atomic():
    """An injected trees.mutate fault leaves tree and epoch untouched."""
    registry = TreeRegistry()
    t = _tree()
    registry.register("doc", t)
    with faults.scoped(("trees.mutate", 1)):
        with pytest.raises(InjectedFaultError):
            registry.mutate("doc", Relabel(0, "x"))
        assert registry.get("doc") is t
        assert registry.epoch("doc") == 1
        # The site is consumed; the retry succeeds.
        _, epoch = registry.mutate("doc", Relabel(0, "x"))
    assert epoch == 2
    assert registry.get("doc").labels[0] == "x"


# -- listener isolation (satellite regression) -------------------------------


def test_throwing_listener_does_not_abort_register_or_skip_later_listeners():
    registry = TreeRegistry()
    calls = []

    def bad(name):
        calls.append(("bad", name))
        raise RuntimeError("listener bug")

    def good(name):
        calls.append(("good", name))

    registry.subscribe(bad)
    registry.subscribe(good)
    errors = obs.counter("registry_listener_errors_total")
    base = errors.value
    epoch = registry.register("doc", _tree())
    assert epoch == 1
    assert registry.get("doc") is not None
    assert calls == [("bad", "doc"), ("good", "doc")]
    assert errors.value == base + 1


def test_listener_reentrancy_does_not_corrupt_epochs():
    """A listener that calls back into the registry (subscribing another
    listener, or re-registering a *different* tree) runs outside the
    registry lock, so reentrancy must neither deadlock nor corrupt epoch
    bookkeeping."""
    registry = TreeRegistry()
    seen = []

    def late(name):
        seen.append(("late", name, registry.epoch(name)))

    def reentrant(name):
        seen.append(("reentrant", name, registry.epoch(name)))
        # Subscribe from inside a callback: takes the registry lock again.
        registry.subscribe(late)
        # Register a *different* tree from inside the callback (bounded:
        # "shadow" has no reentrant listener cascade of its own).
        if name == "doc":
            registry.register("shadow", _tree())

    registry.subscribe(reentrant)
    epoch = registry.register("doc", _tree())
    assert epoch == 1
    # The nested registration published cleanly under its own epoch...
    assert registry.epoch("doc") == 1
    assert registry.epoch("shadow") == 1
    # ...and every listener observed a fully published state (the epoch
    # the callback reads is never the pre-publish value).
    assert ("reentrant", "doc", 1) in seen
    assert ("reentrant", "shadow", 1) in seen
    # A later registration reaches the listener subscribed re-entrantly,
    # and epochs keep advancing monotonically per tree.
    registry.register("doc", _tree())
    assert registry.epoch("doc") == 2
    assert ("late", "doc", 2) in seen
    # The reentrant listener fired for "doc" again and re-registered
    # "shadow" under the next epoch — advanced, not corrupted.
    assert registry.epoch("shadow") == 2


def test_reentrant_self_reregistration_is_bounded_and_consistent():
    """A listener re-registering the SAME tree must converge (the test
    bounds the recursion itself) with a strictly increasing epoch chain."""
    registry = TreeRegistry()
    fires = []

    def bump_once(name):
        fires.append(registry.epoch(name))
        if len(fires) < 3:  # the test's own recursion guard
            registry.register(name, _tree())

    registry.subscribe(bump_once)
    registry.register("doc", _tree())
    # Three nested publications, each one epoch further on, no epoch lost
    # or doubled by the reentrancy.
    assert registry.epoch("doc") == 3
    assert sorted(fires) == fires and len(set(fires)) == len(fires)
