"""Mixed read/write chaos soak: live-document edits racing reads under
fault bursts, with the write history reconciled edit by edit.

The acceptance contract (threaded and sharded variants):

* **zero lost / duplicated** — every admitted request resolves exactly
  once, reads and writes alike;
* **zero torn** — every ``ok`` read equals the *exact* oracle answer of
  some published epoch (a value matching no epoch would mean a reader saw
  a half-applied edit);
* **zero stale-beyond-epoch** — that epoch lies inside the request's
  observation window: at least the epoch published when it was submitted
  (no going back in time), at most one past the epoch published when it
  resolved (the broadcast-before-publish handover means a shard can serve
  an epoch the parent is nanoseconds from publishing);
* **write history reconciles** — the ``ok`` mutations' epochs are exactly
  contiguous (each published one epoch, none lost, none doubled), and the
  registry's final tree equals the structural fold of those edits in epoch
  order — computed with :func:`repro.trees.mutate.apply_edit`, never the
  incremental path, so the soak cross-checks delta maintenance end to end;
* faults burst *mid-mutation*: ``trees.mutate`` (writer retries),
  ``service.worker`` / ``xpath.bitset`` (reader retries + degradation),
  and — sharded — ``service.reshare`` (dropped re-share broadcasts that
  must heal through the stale-epoch retry path).
"""

from __future__ import annotations

import os

import pytest

from repro.runtime import faults
from repro.service import (
    QueryRequest,
    QueryService,
    RetryPolicy,
    ShardedQueryService,
    TreeRegistry,
)
from repro.trees import parse_xml
from repro.trees.mutate import apply_edit, edit_from_json
from repro.xpath import Evaluator, parse_node

START_METHOD = os.environ.get("REPRO_START_METHOD", "fork")

DOC = "<a><b/><c/></a>"

#: Always-valid edit cycle (size never drops below 2, node 0 is the root,
#: node 1 always exists): net growth keeps delete-of-node-1 legal forever.
_EDITS = [
    {"kind": "insert", "parent": 0, "index": 0, "xml": "<x/>"},
    {"kind": "insert", "parent": 0, "index": 1, "xml": "<b><x/></b>"},
    {"kind": "delete", "node": 1},
    {"kind": "relabel", "node": 0, "label": "r"},
    {"kind": "insert", "parent": 1, "index": 0, "xml": "<b/>"},
    {"kind": "relabel", "node": 0, "label": "a"},
]

_QUERIES = ["b", "x", "<descendant[b]>", "<child[x]>"]


def _oracle(tree, query: str):
    return sorted(Evaluator(tree, backend="sets").nodes(parse_node(query)))


def _run_soak(make_service, *, sharded: bool) -> None:
    registry = TreeRegistry()
    registry.register("live", parse_xml(DOC))
    total = 240
    service = make_service(registry)
    edits: dict[str, dict] = {}
    reads: dict[str, str] = {}
    windows: dict[str, list] = {}
    handles = {}
    try:
        for i in range(total):
            if i == total // 3:
                # Chaos mid-run, bursting while mutations are in flight.
                faults.arm("trees.mutate", times=2)
                faults.arm("service.worker", times=8)
                faults.arm("xpath.bitset", times=12)
                if sharded:
                    faults.arm("service.reshare", times=2)
            if i == 2 * total // 3:
                faults.arm("trees.mutate", times=1)
                if sharded:
                    faults.arm("service.reshare", times=1)
            rid = f"mix-{i}"
            if i % 4 == 3:
                edit = _EDITS[(i // 4) % len(_EDITS)]
                edits[rid] = edit
                request = QueryRequest(op="mutate", id=rid, tree="live", edit=edit)
            else:
                query = _QUERIES[i % len(_QUERIES)]
                reads[rid] = query
                request = QueryRequest(op="eval", id=rid, query=query, tree="live")
            window = [registry.epoch("live"), None]
            windows[rid] = window
            handle = service.submit(request)

            def _record(result, window=window):
                window[1] = registry.epoch("live")

            handle.add_done_callback(_record)
            handles[rid] = handle
        results = {rid: h.result(timeout=120.0) for rid, h in handles.items()}

        # -- zero lost, zero duplicated, one structured outcome each ---------
        assert set(results) == {f"mix-{i}" for i in range(total)}
        for rid, result in results.items():
            assert result.status in ("ok", "error", "shed"), rid
            if result.status != "ok":
                assert result.error is not None
                assert result.error["exit_code"] in range(2, 10)

        # -- the write history reconciles, edit by edit ----------------------
        ok_writes = [
            (results[rid].value["epoch"], rid)
            for rid in edits
            if results[rid].status == "ok"
        ]
        ok_writes.sort()
        assert [epoch for epoch, _ in ok_writes] == list(
            range(2, 2 + len(ok_writes))
        ), "published epochs must be exactly contiguous"
        epoch_trees = {1: parse_xml(DOC)}
        for epoch, rid in ok_writes:
            # The structural (non-incremental) fold is the oracle here.
            epoch_trees[epoch] = apply_edit(
                epoch_trees[epoch - 1], edit_from_json(edits[rid])
            )
        max_epoch = 1 + len(ok_writes)
        assert registry.epoch("live") == max_epoch
        assert registry.get("live") == epoch_trees[max_epoch]

        # -- ok reads: exact answer of an epoch inside the window ------------
        answers: dict[tuple[int, str], list] = {}

        def answer(epoch: int, query: str):
            key = (epoch, query)
            if key not in answers:
                answers[key] = _oracle(epoch_trees[epoch], query)
            return answers[key]

        ok_reads = 0
        for rid, query in reads.items():
            result = results[rid]
            if result.status != "ok":
                continue
            ok_reads += 1
            e_lo, e_hi = windows[rid]
            assert e_hi is not None, rid
            window_epochs = range(e_lo, min(e_hi + 1, max_epoch) + 1)
            assert any(
                result.value == answer(epoch, query) for epoch in window_epochs
            ), (
                f"{rid}: value {result.value!r} for {query!r} matches no epoch "
                f"in window {list(window_epochs)} (torn or stale read)"
            )

        # The bursts cannot have killed the workload.
        ok_total = sum(1 for r in results.values() if r.status == "ok")
        assert ok_total >= total * 0.9
        assert ok_reads >= 1 and len(ok_writes) >= 1

        # -- convergence: post-chaos reads see exactly the final tree --------
        faults.disarm()
        final = service.run_batch(
            [QueryRequest(op="eval", query=q, tree="live") for q in _QUERIES]
        )
        for request_query, result in zip(_QUERIES, final):
            assert result.status == "ok"
            assert result.value == answer(max_epoch, request_query)
    finally:
        faults.disarm()
        service.shutdown()


@pytest.mark.soak
def test_mutation_soak_threaded():
    _run_soak(
        lambda registry: QueryService(
            registry,
            workers=4,
            queue_limit=48,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
            breaker_threshold=4,
            breaker_cooldown=0.02,
        ),
        sharded=False,
    )


@pytest.mark.soak
def test_mutation_soak_sharded():
    _run_soak(
        lambda registry: ShardedQueryService(
            registry,
            shards=2,
            start_method=START_METHOD,
            workers_per_shard=1,
            queue_limit=48,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
        ),
        sharded=True,
    )
