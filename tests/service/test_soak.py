"""Chaos soak: ≥500 mixed requests with faults armed mid-run, zero lost.

The acceptance contract this test enforces (and the CI chaos job re-runs
with ``REPRO_FAULTS`` armed in the environment on top):

* every admitted request ends in **exactly one** of {correct result,
  structured error/shed} — none lost, none duplicated, none resolved
  twice;
* ``ok`` results are *correct*, not just present: eval/select/check
  answers are compared against ground truth computed on the row-wise
  oracle engines outside the service;
* the xpath circuit breaker **opens** under the injected fault burst and
  **recovers** (half-open probe → closed) once the burst passes;
* the aggregate stats balance: ``submitted == ok + errors + shed``.

The fault burst is armed *mid-run* through the PR 3 registry — the chaos
driver the ISSUE names — with counted arms, so the engines break for a
window and then heal, which is exactly the transient-incident shape the
retry + breaker machinery exists for.
"""

import time

import pytest

from repro import obs
from repro.logic import ModelChecker, parse_formula
from repro.runtime import faults
from repro.service import QueryRequest, QueryService, RetryPolicy, TreeRegistry
from repro.trees import chain, parse_xml
from repro.xpath import Evaluator, parse_node, parse_path

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"

#: (op, payload-field, text, tree) — the mixed workload template.
_WORKLOAD = [
    ("eval", "query", "<descendant[b]>", "chain"),
    ("eval", "query", "<child[i]>", "talk"),
    ("eval", "query", "<(child[a])*[b]>", "chain"),
    ("select", "query", "descendant[i]", "talk"),
    ("select", "query", "(child)*[b]", "chain"),
    ("check", "formula", "exists x. b(x)", "chain"),
    ("check", "formula", "i(x)", "talk"),
    ("check", "formula", "child(x, y)", "talk"),
    ("equivalent", None, ("<child[b]>", "<descendant[b]>"), None),
    ("equivalent", None, ("W(<descendant[b]>)", "<descendant[b]>"), None),
]


def _request(i: int) -> QueryRequest:
    op, fld, text, tree = _WORKLOAD[i % len(_WORKLOAD)]
    if op == "equivalent":
        return QueryRequest(op=op, id=f"soak-{i}", left=text[0], right=text[1])
    kwargs = {fld: text}
    return QueryRequest(op=op, id=f"soak-{i}", tree=tree, **kwargs)


def _ground_truth(registry: TreeRegistry) -> dict:
    """Oracle-engine answers for every (op, text, tree) workload entry."""
    truth = {}
    for op, _, text, tree_name in _WORKLOAD:
        if op == "equivalent":
            continue
        tree = registry.get(tree_name)
        if op == "eval":
            value = sorted(Evaluator(tree, backend="sets").nodes(parse_node(text)))
        elif op == "select":
            value = sorted(
                Evaluator(tree, backend="sets").image(parse_path(text), {0})
            )
        else:
            formula = parse_formula(text)
            from repro.logic.ast import free_variables

            free = tuple(sorted(free_variables(formula)))
            checker = ModelChecker(tree, backend="table")
            if not free:
                value = checker.holds(formula)
            elif len(free) == 1:
                value = sorted(checker.node_set(formula, free[0]))
            else:
                value = [
                    list(p) for p in sorted(checker.pairs(formula, free[0], free[1]))
                ]
        truth[(op, str(text), tree_name)] = value
    return truth


@pytest.mark.soak
def test_chaos_soak_zero_lost_requests():
    registry = TreeRegistry()
    registry.register("talk", parse_xml(DOC))
    registry.register("chain", chain(48, labels=("a", "b")))
    truth = _ground_truth(registry)

    total = 600
    service = QueryService(
        registry,
        workers=4,
        queue_limit=48,
        retry=RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.004),
        breaker_threshold=4,
        breaker_cooldown=0.02,
    )
    results = {}
    try:
        handles = {}
        for i in range(total):
            if i == total // 3:
                # Mid-run chaos: a counted burst at every engine boundary the
                # service exercises, armed through the PR 3 fault registry.
                faults.arm("xpath.bitset", times=40)
                faults.arm("logic.bitset", times=25)
                faults.arm("service.worker", times=15)
            if i == 2 * total // 3:
                # A second, smaller aftershock while recovery is under way.
                faults.arm("xpath.bitset.star", times=5)
                faults.arm("logic.bitset.tc", times=5)
            request = _request(i)
            handles[request.id] = service.submit(request)
        for request_id, handle in handles.items():
            results[request_id] = handle.result(timeout=60.0)

        # -- zero lost, zero duplicated --------------------------------------
        assert set(results) == {f"soak-{i}" for i in range(total)}
        assert len(results) == total

        # -- exactly one structured outcome each -----------------------------
        for request_id, result in results.items():
            assert result.status in ("ok", "error", "shed"), request_id
            if result.status == "ok":
                assert result.error is None
            else:
                assert result.error is not None
                assert result.error["exit_code"] in range(2, 10)

        # -- ok results are *correct*, whatever engine served them -----------
        checked = 0
        for i in range(total):
            result = results[f"soak-{i}"]
            if result.status != "ok":
                continue
            op, _, text, tree_name = _WORKLOAD[i % len(_WORKLOAD)]
            if op == "equivalent":
                assert result.value["equivalent"] is (
                    text == ("W(<descendant[b]>)", "<descendant[b]>")
                )
            else:
                assert result.value == truth[(op, str(text), tree_name)], (
                    f"{result.routed} backend returned a wrong answer for {text!r}"
                )
            checked += 1
        # The burst cannot have killed the workload: the vast majority of a
        # no-deadline soak must still succeed (errors only from the window
        # where retries AND the oracle both hit armed sites).
        assert checked >= total * 0.9

        # -- the breaker opened under the burst ------------------------------
        snap = service.stats_snapshot()
        opened = (
            snap["breakers"]["xpath"]["open_count"]
            + snap["breakers"]["logic"]["open_count"]
        )
        assert opened >= 1, snap["breakers"]
        assert snap["retries"] >= 1
        assert snap["submitted"] == snap["completed"] == total
        assert snap["ok"] + snap["errors"] + snap["shed"] == total

        # -- the process-wide metrics registry reconciles exactly ------------
        # ServiceStats only *records into* obs.REGISTRY, so the labelled
        # series must agree with the per-service snapshot to the unit, even
        # after a chaos burst hammered them from four worker threads.
        svc = service.stats.service
        reg = obs.REGISTRY
        assert reg.counter("service_submitted_total", service=svc).value == total
        by_status = {
            status: reg.counter(
                "service_results_total", service=svc, status=status
            ).value
            for status in ("ok", "error", "shed")
        }
        assert by_status["ok"] == snap["ok"]
        assert by_status["error"] == snap["errors"]
        assert by_status["shed"] == snap["shed"]
        assert sum(by_status.values()) == total
        assert (
            reg.counter("service_retries_total", service=svc).value
            == snap["retries"]
        )
        # Every completed request contributed exactly one latency sample.
        assert (
            reg.histogram("service_latency_seconds", service=svc).count == total
        )
        assert reg.total("breaker_transitions_total") >= opened
        assert reg.total("faults_injected_total") >= 1
        assert reg.gauge("service_queue_depth", service=svc).value == 0

        # -- and recovered: healthy traffic after the burst closes it --------
        # End the burst: any counted arms the run did not drain are disarmed
        # (the incident is over), then the cooldown elapses and probes heal.
        faults.disarm()
        time.sleep(0.05)  # let the cooldown of any open breaker elapse
        recovery = service.run_batch(
            [
                QueryRequest(op="eval", query="<descendant[b]>", tree="chain"),
                QueryRequest(op="check", formula="exists x. b(x)", tree="chain"),
            ]
            * 3
        )
        assert all(r.status == "ok" for r in recovery)
        final = service.stats_snapshot()["breakers"]
        assert final["xpath"]["state"] == "closed"
        assert final["logic"]["state"] == "closed"
        if opened:
            assert (
                final["xpath"]["recovery_count"] + final["logic"]["recovery_count"]
                >= 1
            )
    finally:
        service.shutdown()
