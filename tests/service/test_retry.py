"""RetryPolicy: exponential ceilings, full jitter, transience classes."""

import random

import pytest

from repro.runtime import (
    BudgetExceededError,
    DeadlineExceededError,
    EngineFaultError,
    InjectedFaultError,
)
from repro.service import RetryPolicy
from repro.service.retry import is_transient


class TestCeiling:
    def test_grows_exponentially(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=10.0, multiplier=2.0)
        assert policy.ceiling(1) == pytest.approx(0.01)
        assert policy.ceiling(2) == pytest.approx(0.02)
        assert policy.ceiling(3) == pytest.approx(0.04)

    def test_capped_at_max_delay(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=0.03, multiplier=2.0)
        assert policy.ceiling(10) == pytest.approx(0.03)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().ceiling(0)


class TestJitter:
    def test_delay_within_full_jitter_bounds(self):
        policy = RetryPolicy(base_delay=0.01, max_delay=1.0, multiplier=3.0)
        rng = random.Random(7)
        for attempt in range(1, 6):
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.0 <= delay <= policy.ceiling(attempt)

    def test_deterministic_under_seeded_rng(self):
        policy = RetryPolicy()
        a = [policy.delay(i, random.Random(42)) for i in range(1, 4)]
        b = [policy.delay(i, random.Random(42)) for i in range(1, 4)]
        assert a == b


class TestValidation:
    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)

    def test_rejects_shrinking_multiplier(self):
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestTransience:
    def test_engine_faults_are_transient(self):
        assert is_transient(EngineFaultError("boom"))
        assert is_transient(InjectedFaultError("some.site"))

    def test_budget_and_deadline_are_not(self):
        assert not is_transient(BudgetExceededError("fuel"))
        assert not is_transient(DeadlineExceededError("late"))

    def test_input_errors_are_not(self):
        assert not is_transient(ValueError("bad"))
        assert not is_transient(TypeError("bad"))
