"""The disk-backed RSTR v1 store: fidelity, laziness, and corruption.

The registry's eviction tier depends on the properties proven here:

* **round-trip fidelity** — ``TreeStore.pack`` → file → ``TreeStore.load``
  reproduces every engine-visible mask *bit-exactly* for arbitrary trees,
  including trees produced by the mutation edit scripts (the write-through
  path packs exactly those).  The comparison is ``index_fingerprint``
  equality on the full big-int masks, not a sample.
* **mmap-backed answers** — all three backend families (the XPath
  sets/bitset evaluators, the FO(MTC) table/bitset model checkers, and the
  tree walking automata) answer a pinned query corpus identically from the
  mapped index, without the quadratic slabs ever being materialized up
  front.
* **structured corruption failure** — a truncated tail, a flipped payload
  bit, or a version-skewed header raises
  :class:`~repro.runtime.errors.StoreCorruptError` (exit code 3), never an
  unstructured error and never a silently wrong answer.
"""

from __future__ import annotations

import os
import random
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import faults
from repro.runtime.errors import (
    EngineFaultError,
    InjectedFaultError,
    StoreCorruptError,
    exit_code_for,
)
from repro.trees import (
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    Tree,
    TreeStore,
    apply_edit,
    chain,
    index_nbytes,
    pack_bytes,
    parse_xml,
    random_tree,
    release_tree,
    to_xml,
    tree_index,
)
from repro.trees.mutate import index_fingerprint
from repro.trees.store import (
    FORMAT_VERSION,
    _HEADER,
    _decode_name,
    _encode_name,
    close_open_handles,
    open_handles,
)

#: The pinned cross-backend query corpus: every family must answer these
#: identically from a mapped index and from a freshly built one.
XPATH_QUERIES = ("descendant[a]", "child[b]", "following[a]", "ancestor[b]")
MTC_FORMULAS = ("exists x. a(x)", "a(x)", "tc[u,v](child(u,v))(x,y)")


def roundtrip(store: TreeStore, tree: Tree, name: str = "t") -> Tree:
    store.pack(name, tree)
    loaded, _ = store.load(name)
    return loaded


class TestRoundTrip:
    def test_single_node(self, tmp_path):
        store = TreeStore(tmp_path)
        tree = parse_xml("<a/>")
        loaded = roundtrip(store, tree)
        assert loaded.size == 1
        assert index_fingerprint(tree_index(loaded)) == index_fingerprint(
            tree_index(tree)
        )

    def test_empty_labels(self, tmp_path):
        tree = Tree(labels=["", "a", "", "b"], parents=[-1, 0, 0, 2])
        loaded = roundtrip(TreeStore(tmp_path), tree)
        assert loaded.labels == tree.labels
        assert index_fingerprint(tree_index(loaded)) == index_fingerprint(
            tree_index(tree)
        )

    def test_deep_chain(self, tmp_path):
        tree = chain(300, "abc")
        loaded = roundtrip(TreeStore(tmp_path), tree)
        assert loaded.parent == tree.parent
        assert to_xml(loaded) == to_xml(tree)

    def test_epoch_stamp_round_trips(self, tmp_path):
        store = TreeStore(tmp_path)
        tree = random_tree(20, "ab", random.Random(1))
        store.pack("t", tree, epoch=41)
        assert store.epoch("t") == 41
        _, epoch = store.load("t")
        assert epoch == 41

    def test_predicted_size_is_exact(self, tmp_path):
        store = TreeStore(tmp_path)
        for seed in (1, 2, 3):
            tree = random_tree(10 + 30 * seed, "abcd", random.Random(seed))
            nbytes = store.pack("t", tree)
            assert nbytes == index_nbytes(tree_index(tree))
            assert store.nbytes("t") == nbytes

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=80),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        alphabet=st.sampled_from(["a", "ab", "abc", "xyzw"]),
    )
    def test_random_trees_bit_exact(self, tmp_path_factory, size, seed, alphabet):
        tree = random_tree(size, alphabet, random.Random(seed))
        store = TreeStore(tmp_path_factory.mktemp("store"))
        loaded = roundtrip(store, tree)
        assert loaded.labels == tree.labels
        assert loaded.parent == tree.parent
        assert index_fingerprint(tree_index(loaded)) == index_fingerprint(
            tree_index(tree)
        )
        release_tree(loaded)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_post_mutation_trees_bit_exact(self, tmp_path_factory, seed):
        # The write-through path packs trees produced by the edit scripts;
        # they must round-trip exactly like freshly built ones.
        rng = random.Random(seed)
        tree = random_tree(rng.randint(2, 40), "abc", rng)
        for _ in range(3):
            kind = rng.randrange(3)
            if kind == 0:
                edit = Relabel(rng.randrange(tree.size), rng.choice("abc"))
            elif kind == 1:
                parent = rng.randrange(tree.size)
                width = len(tree.children_ids(parent))
                edit = InsertSubtree(
                    parent,
                    rng.randint(0, width),
                    random_tree(rng.randint(1, 5), "abc", rng),
                )
            elif tree.size > 1:
                edit = DeleteSubtree(rng.randrange(1, tree.size))
            else:
                continue
            tree = apply_edit(tree, edit)
        store = TreeStore(tmp_path_factory.mktemp("store"))
        loaded = roundtrip(store, tree)
        assert index_fingerprint(tree_index(loaded)) == index_fingerprint(
            tree_index(tree)
        )
        release_tree(loaded)


class TestBackendAgreement:
    def test_all_backends_answer_from_the_mapping(self, tmp_path):
        from repro.automata import random_twa
        from repro.logic import ModelChecker, parse_formula
        from repro.logic.ast import free_variables
        from repro.xpath import evaluate_path, parse_path

        tree = random_tree(120, "ab", random.Random(11))
        loaded = roundtrip(TreeStore(tmp_path), tree)
        assert loaded._engine_index is not None  # live index, no rebuild
        sources = range(tree.size)
        for query in XPATH_QUERIES:
            expr = parse_path(query)
            for backend in ("sets", "bitset"):
                assert evaluate_path(loaded, expr, sources, backend=backend) == (
                    evaluate_path(tree, expr, sources, backend=backend)
                ), (query, backend)
        for text in MTC_FORMULAS:
            formula = parse_formula(text)
            free = tuple(sorted(free_variables(formula)))
            for backend in ("table", "bitset"):
                ref = ModelChecker(tree, backend=backend)
                got = ModelChecker(loaded, backend=backend)
                if not free:
                    assert got.holds(formula) == ref.holds(formula), (text, backend)
                elif len(free) == 1:
                    assert got.node_set(formula, free[0]) == ref.node_set(
                        formula, free[0]
                    ), (text, backend)
                else:
                    assert got.pairs(formula, *free) == ref.pairs(formula, *free)
        for seed in range(3):
            twa = random_twa(alphabet=("a", "b"), num_states=3, rng=random.Random(seed))
            assert twa.accepts(loaded) == twa.accepts(tree)

    def test_quadratic_slabs_stay_lazy(self, tmp_path):
        from repro.trees import MaskSlab

        tree = random_tree(60, "ab", random.Random(2))
        loaded = roundtrip(TreeStore(tmp_path), tree)
        index = tree_index(loaded)
        assert isinstance(index.prefix, MaskSlab)
        assert isinstance(index.children_of, MaskSlab)
        reference = tree_index(tree)
        assert index.prefix[tree.size] == reference.prefix[tree.size]
        assert index.children_of[0] == reference.children_of[0]


class TestHandleLifecycle:
    def test_release_closes_the_mapping(self, tmp_path):
        tree = random_tree(30, "ab", random.Random(4))
        loaded = roundtrip(TreeStore(tmp_path), tree)
        assert loaded._store_handle is not None
        assert open_handles()
        release_tree(loaded)
        assert loaded._store_handle is None
        assert not open_handles()
        release_tree(loaded)  # idempotent

    def test_materialized_masks_survive_close(self, tmp_path):
        from repro.runtime.errors import TreeShareError

        tree = random_tree(30, "ab", random.Random(4))
        loaded = roundtrip(TreeStore(tmp_path), tree)
        index = tree_index(loaded)
        want = tree_index(tree).prefix[tree.size]
        assert index.prefix[tree.size] == want
        release_tree(loaded)
        assert index.prefix[tree.size] == want  # cached
        with pytest.raises(TreeShareError, match="detach"):
            index.prefix[1]  # unmaterialized reads fail loudly

    def test_close_open_handles_sweep(self, tmp_path):
        store = TreeStore(tmp_path)
        store.pack("t", random_tree(10, "ab", random.Random(1)))
        kept, _ = store.load("t")
        assert close_open_handles() == 1
        assert close_open_handles() == 0
        assert kept._store_handle.closed


class TestDirectory:
    def test_names_contains_remove(self, tmp_path):
        store = TreeStore(tmp_path)
        tree = random_tree(10, "ab", random.Random(1))
        store.pack("beta", tree)
        store.pack("alpha", tree)
        assert store.names() == ["alpha", "beta"]
        assert "alpha" in store and store.contains("beta")
        assert "gamma" not in store
        assert store.total_bytes() == 2 * index_nbytes(tree_index(tree))
        assert store.remove("alpha") is True
        assert store.remove("alpha") is False
        assert store.names() == ["beta"]

    def test_weird_names_round_trip(self, tmp_path):
        store = TreeStore(tmp_path)
        tree = random_tree(5, "ab", random.Random(1))
        names = ["a tree/with weird:name", "ünïcode", "..", "%41", "a.b-c_d"]
        for name in names:
            store.pack(name, tree)
        assert store.names() == sorted(names)
        for name in names:
            loaded, _ = store.load(name)
            assert loaded.labels == tree.labels
        # Every encoded file name is a plain single path component.
        for entry in os.listdir(tmp_path):
            assert "/" not in entry and entry not in (".", "..")

    def test_encode_decode_inverse(self):
        for name in ("plain", "a b", "ü", "%", "%25", "x/y\\z", "."):
            assert _decode_name(_encode_name(name)) == name

    def test_missing_tree_raises_keyerror(self, tmp_path):
        store = TreeStore(tmp_path)
        with pytest.raises(KeyError):
            store.load("ghost")
        with pytest.raises(KeyError):
            store.verify("ghost")
        assert store.epoch("ghost") is None
        assert store.nbytes("ghost") is None

    def test_verify_report(self, tmp_path):
        store = TreeStore(tmp_path)
        tree = random_tree(25, "abc", random.Random(6))
        nbytes = store.pack("doc", tree, epoch=7)
        report = store.verify("doc")
        assert report["name"] == "doc"
        assert report["bytes"] == nbytes
        assert report["n"] == tree.size
        assert report["epoch"] == 7
        assert report["sections"] == 11


class TestCorruption:
    def packed(self, tmp_path) -> "tuple[TreeStore, bytes]":
        store = TreeStore(tmp_path)
        store.pack("t", random_tree(50, "ab", random.Random(9)))
        return store, store._path("t").read_bytes()

    def rewrite(self, store: TreeStore, blob: bytes) -> None:
        store._path("t").write_bytes(blob)

    def test_truncated_tail(self, tmp_path):
        store, blob = self.packed(tmp_path)
        for cut in (0, 3, _HEADER.size, len(blob) // 2, len(blob) - 1):
            self.rewrite(store, blob[:cut])
            with pytest.raises(StoreCorruptError):
                store.load("t")

    def test_bad_magic(self, tmp_path):
        store, blob = self.packed(tmp_path)
        corrupt = bytearray(blob)
        corrupt[0] ^= 0xFF
        self.rewrite(store, bytes(corrupt))
        with pytest.raises(StoreCorruptError, match="magic"):
            store.load("t")
        assert store.epoch("t") is None  # header probe refuses it too

    def test_version_skew(self, tmp_path):
        store, blob = self.packed(tmp_path)
        corrupt = bytearray(blob)
        struct.pack_into("<H", corrupt, 4, FORMAT_VERSION + 1)
        self.rewrite(store, bytes(corrupt))
        with pytest.raises(StoreCorruptError, match="version"):
            store.load("t")

    def test_flipped_section_bit_fails_that_sections_crc(self, tmp_path):
        store, blob = self.packed(tmp_path)
        corrupt = bytearray(blob)
        corrupt[-10] ^= 0x01
        self.rewrite(store, bytes(corrupt))
        with pytest.raises(StoreCorruptError, match="checksum"):
            store.load("t")
        with pytest.raises(StoreCorruptError, match="checksum"):
            store.verify("t")

    def test_flipped_table_byte_fails_header_crc(self, tmp_path):
        store, blob = self.packed(tmp_path)
        corrupt = bytearray(blob)
        corrupt[_HEADER.size + 4] ^= 0xFF  # a table entry's offset field
        self.rewrite(store, bytes(corrupt))
        with pytest.raises(StoreCorruptError, match="checksum"):
            store.load("t")

    def test_foreign_tail_data(self, tmp_path):
        store, blob = self.packed(tmp_path)
        self.rewrite(store, blob + b"x")
        with pytest.raises(StoreCorruptError, match="size"):
            store.load("t")

    def test_empty_file(self, tmp_path):
        store, _ = self.packed(tmp_path)
        self.rewrite(store, b"")
        with pytest.raises(StoreCorruptError, match="empty"):
            store.load("t")

    def test_corrupt_load_counts_and_leaves_no_handle(self, tmp_path):
        from repro import obs

        store, blob = self.packed(tmp_path)
        corrupt = bytearray(blob)
        corrupt[-1] ^= 0x01
        self.rewrite(store, bytes(corrupt))
        before = len(open_handles())
        with pytest.raises(StoreCorruptError):
            store.load("t")
        assert len(open_handles()) == before
        counters = obs.REGISTRY.to_json()["counters"]
        assert counters["store_loads_total{event=corrupt}"] >= 1

    def test_error_maps_to_io_exit_code(self):
        assert exit_code_for(StoreCorruptError("x")) == 3

    def test_load_fault_site(self, tmp_path):
        store, _ = self.packed(tmp_path)
        faults.arm("store.load", times=1)
        with pytest.raises(InjectedFaultError):
            store.load("t")
        assert isinstance(InjectedFaultError("store.load"), EngineFaultError)
        tree, _ = store.load("t")  # the next touch retries and succeeds
        assert tree.size == 50


class TestAtomicity:
    def test_pack_replaces_atomically(self, tmp_path):
        store = TreeStore(tmp_path)
        old = random_tree(20, "ab", random.Random(1))
        new = random_tree(30, "ab", random.Random(2))
        store.pack("t", old, epoch=1)
        store.pack("t", new, epoch=2)
        loaded, epoch = store.load("t")
        assert epoch == 2
        assert loaded.labels == new.labels
        assert [p.name for p in store.directory.iterdir()] == ["t.rstr"]

    def test_pack_bytes_standalone(self):
        tree = random_tree(15, "ab", random.Random(3))
        blob = pack_bytes(tree_index(tree), epoch=5)
        assert blob[:4] == b"RSTR"
        assert len(blob) == index_nbytes(tree_index(tree))
