"""The mutation write-ahead log: framing, torn tails, snapshots, recovery.

The durability contract under test:

* **framing round-trips** and rejects every torn/corrupt shape;
* **torn tails heal**: a crash mid-append leaves at most one bad record at
  the end of the log — ``WriteAheadLog.open`` truncates it, ``recover``
  tolerates it, and neither loses an intact record;
* **mid-log damage is fatal**: an intact record *after* a corrupt one is
  history damage, never silently skipped (``WalCorruptError``);
* **recovery is bit-exact**: the recovered registry matches the structural
  oracle fold of the logged edits — same epochs, and per-tree
  ``index_fingerprint`` identical to a from-scratch rebuild;
* **log-ahead atomicity**: a failed append (the ``wal.append`` fault site)
  aborts the mutation with both the registry and the log untouched;
* **snapshots are an optimization**: they bound replay, prune to the
  latest two, and a tampered snapshot falls back to older history.
"""

from __future__ import annotations

import json
import random
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import faults
from repro.runtime.errors import InjectedFaultError, WalCorruptError
from repro.service import TreeRegistry
from repro.trees import Tree, WriteAheadLog, parse_xml, random_tree, tree_digest
from repro.trees.mutate import (
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    apply_edit,
    edit_to_json,
    index_fingerprint,
)
from repro.trees.index import tree_index
from repro.trees.wal import _frame, _parse_frame, recover
from repro.testing import trees


def _registry_with_wal(tmp_path, **wal_kwargs):
    wal = WriteAheadLog.open(tmp_path / "wal", **wal_kwargs)
    registry = TreeRegistry()
    registry.attach_wal(wal)
    return registry, wal


def assert_recovered_matches(recovered: TreeRegistry, oracle: TreeRegistry) -> None:
    """Same names, same epochs, bit-identical index fingerprints."""
    assert recovered.names() == oracle.names()
    for name in oracle.names():
        expected_tree, expected_epoch = oracle.snapshot(name)
        got_tree, got_epoch = recovered.snapshot(name)
        assert got_epoch == expected_epoch, name
        assert got_tree == expected_tree, name
        assert index_fingerprint(tree_index(got_tree)) == index_fingerprint(
            tree_index(Tree(list(expected_tree.labels), list(expected_tree.parent)))
        ), name


# -- framing -----------------------------------------------------------------


def test_frame_round_trip():
    payload = {"rec": "register", "tree": "t", "epoch": 1, "seq": 7}
    line = _frame(payload)
    assert line.endswith(b"\n")
    assert _parse_frame(line) == payload
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
    assert line == b"%08x %08x %s\n" % (len(body), zlib.crc32(body), body)


@pytest.mark.parametrize(
    "mangle",
    [
        lambda line: line[:-1],  # no trailing newline (torn write)
        lambda line: line[: len(line) // 2],  # cut mid-body
        lambda line: line.replace(b"register", b"registex"),  # CRC mismatch
        lambda line: b"zz" + line[2:],  # bad length field
        lambda line: b"",  # empty
        lambda line: b"not a frame at all\n",
    ],
)
def test_parse_frame_rejects_damage(mangle):
    line = _frame({"rec": "register", "tree": "t", "epoch": 1, "seq": 1})
    assert _parse_frame(mangle(line)) is None


def test_tree_digest_is_structural():
    t1 = Tree.build(("a", ["b", "c"]))
    t2 = Tree.build(("a", ["b", "c"]))
    t3 = Tree.build(("a", [("b", ["c"])]))  # same labels, different shape
    assert tree_digest(t1) == tree_digest(t2)
    assert tree_digest(t1) != tree_digest(t3)
    assert tree_digest(t1) != tree_digest(Tree.build(("a", ["b", "x"])))


# -- append + recover --------------------------------------------------------


def test_register_and_mutate_recover(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/><c/></a>"))
    registry.mutate("doc", Relabel(1, "z"))
    registry.mutate("doc", InsertSubtree(0, 0, Tree.leaf("q")))
    registry.register("other", Tree.leaf("o"))
    wal.close()

    recovered = recover(tmp_path / "wal")
    assert_recovered_matches(recovered, registry)
    assert recovered.epoch("doc") == 3
    assert recovered.epoch("other") == 1


def test_recover_matches_structural_oracle_fold(tmp_path):
    """The acceptance criterion: recovery == the apply_edit oracle fold."""
    rng = random.Random(9)
    base = random_tree(30, ("a", "b", "c"), rng)
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("live", base)
    oracle = base
    for step in range(20):
        if oracle.size > 2 and step % 3 == 2:
            edit = DeleteSubtree(rng.randrange(1, oracle.size))
        elif step % 3 == 1:
            edit = Relabel(rng.randrange(oracle.size), rng.choice("abcx"))
        else:
            parent = rng.randrange(oracle.size)
            index = rng.randint(0, len(oracle.children_ids(parent)))
            edit = InsertSubtree(parent, index, random_tree(3, ("x",), rng))
        registry.mutate("live", edit)
        # The oracle is the *structural* fold — never the incremental path.
        oracle = apply_edit(oracle, edit)
    wal.close()

    recovered = recover(tmp_path / "wal")
    assert recovered.epoch("live") == 21
    assert recovered.get("live") == oracle
    assert index_fingerprint(tree_index(recovered.get("live"))) == index_fingerprint(
        tree_index(Tree(list(oracle.labels), list(oracle.parent)))
    )


def test_recover_into_existing_registry_and_empty_dir(tmp_path):
    assert recover(tmp_path / "missing").names() == []
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", Tree.leaf("a"))
    wal.close()
    target = TreeRegistry()
    assert recover(tmp_path / "wal", registry=target) is target
    assert target.names() == ["doc"]


def test_reopen_resumes_sequence(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/></a>"))
    registry.mutate("doc", Relabel(1, "z"))
    assert wal.last_seq == 2
    wal.close()

    wal2 = WriteAheadLog.open(tmp_path / "wal")
    assert wal2.last_seq == 2
    assert wal2.known_trees == {"doc"}
    registry2 = recover(tmp_path / "wal")
    registry2.attach_wal(wal2)
    registry2.mutate("doc", Relabel(0, "r"))
    wal2.close()
    final = recover(tmp_path / "wal")
    assert final.epoch("doc") == 3
    assert final.get("doc").labels[0] == "r"


# -- torn tails and corruption ----------------------------------------------


def test_torn_tail_truncated_on_open(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/></a>"))
    registry.mutate("doc", Relabel(1, "z"))
    wal.close()
    path = tmp_path / "wal" / "wal.jsonl"
    intact = path.read_bytes()
    torn = _frame({"rec": "mutate", "tree": "doc", "epoch": 3, "seq": 3})[:-7]
    path.write_bytes(intact + torn)

    # recover() tolerates the torn tail without truncating...
    recovered = recover(tmp_path / "wal")
    assert recovered.epoch("doc") == 2
    assert path.read_bytes() == intact + torn

    # ...the writer truncates it back to the last intact record.
    wal2 = WriteAheadLog.open(tmp_path / "wal")
    assert wal2.truncated_bytes == len(torn)
    assert wal2.last_seq == 2
    wal2.close()
    assert path.read_bytes() == intact
    assert_recovered_matches(recover(tmp_path / "wal"), registry)


def test_crash_after_append_before_publish_rolls_forward(tmp_path):
    """The log-ahead contract: the durable history wins on recovery."""
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/></a>"))
    # Simulate the crash window: the record is durable, the epoch never
    # published (the registry still holds epoch 1).
    post = apply_edit(registry.get("doc"), Relabel(1, "z"))
    wal.append_mutate("doc", 2, edit_to_json(Relabel(1, "z")), post)
    wal.close()
    assert registry.epoch("doc") == 1
    recovered = recover(tmp_path / "wal")
    assert recovered.epoch("doc") == 2
    assert recovered.get("doc") == post


def test_intact_record_after_corruption_is_fatal(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/></a>"))
    registry.mutate("doc", Relabel(1, "z"))
    registry.mutate("doc", Relabel(1, "w"))
    wal.close()
    path = tmp_path / "wal" / "wal.jsonl"
    lines = path.read_bytes().splitlines(keepends=True)
    assert len(lines) == 3
    lines[1] = lines[1][:10] + b"!" + lines[1][11:]  # damage the middle record
    path.write_bytes(b"".join(lines))
    with pytest.raises(WalCorruptError, match="after corrupt record"):
        recover(tmp_path / "wal")
    with pytest.raises(WalCorruptError, match="after corrupt record"):
        WriteAheadLog.open(tmp_path / "wal")


def test_digest_mismatch_is_fatal(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/></a>"))
    wal.close()
    path = tmp_path / "wal" / "wal.jsonl"
    payload = _parse_frame(path.read_bytes())
    payload["sha"] = "0" * 16  # valid frame, lying digest
    path.write_bytes(_frame(payload))
    with pytest.raises(WalCorruptError, match="digest mismatch"):
        recover(tmp_path / "wal")
    assert recover(tmp_path / "wal", verify=False).names() == ["doc"]


def test_mutate_of_unknown_tree_is_fatal(tmp_path):
    wal = WriteAheadLog.open(tmp_path / "wal")
    post = apply_edit(parse_xml("<a><b/></a>"), Relabel(1, "z"))
    wal.append_mutate("ghost", 2, edit_to_json(Relabel(1, "z")), post)
    wal.close()
    with pytest.raises(WalCorruptError, match="unknown tree"):
        recover(tmp_path / "wal")


# -- the wal.append fault site: log-ahead atomicity --------------------------


def test_failed_append_aborts_mutation_untouched(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", parse_xml("<a><b/></a>"))
    log_before = wal.path.read_bytes()
    with faults.scoped(("wal.append", 1)):
        with pytest.raises(InjectedFaultError):
            registry.mutate("doc", Relabel(1, "z"))
    # Registry untouched (no half-published epoch), log untouched (no
    # record for the aborted edit), sequence not consumed.
    assert registry.epoch("doc") == 1
    assert registry.get("doc").labels[1] == "b"
    assert wal.path.read_bytes() == log_before
    assert wal.last_seq == 1
    # The next mutation proceeds normally at the next epoch.
    registry.mutate("doc", Relabel(1, "z"))
    assert registry.epoch("doc") == 2
    wal.close()
    assert_recovered_matches(recover(tmp_path / "wal"), registry)


def test_failed_append_aborts_registration(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    with faults.scoped(("wal.append", 1)):
        with pytest.raises(InjectedFaultError):
            registry.register("doc", Tree.leaf("a"))
    assert registry.names() == []
    assert wal.last_seq == 0
    wal.close()


# -- fsync policies ----------------------------------------------------------


@pytest.mark.parametrize("policy", ["always", "never", 4])
def test_fsync_policies_accepted(tmp_path, policy):
    registry, wal = _registry_with_wal(tmp_path, fsync=policy)
    registry.register("doc", parse_xml("<a><b/></a>"))
    for _ in range(6):
        registry.mutate("doc", Relabel(1, "z"))
    wal.close()  # close always syncs
    assert recover(tmp_path / "wal").epoch("doc") == 7


@pytest.mark.parametrize("policy", ["sometimes", 0, -3, True, 1.5, None])
def test_bad_fsync_policy_rejected(tmp_path, policy):
    with pytest.raises(ValueError, match="fsync policy"):
        WriteAheadLog(tmp_path / "wal", fsync=policy)


def test_batched_fsync_counts_appends(tmp_path):
    wal = WriteAheadLog.open(tmp_path / "wal", fsync=3)
    tree = Tree.leaf("a")
    wal.append_register("t", 1, tree)
    wal.append_register("t", 2, tree)
    assert wal._unsynced == 2
    wal.append_register("t", 3, tree)  # third append crosses the batch
    assert wal._unsynced == 0
    wal.close()


# -- snapshots ---------------------------------------------------------------


def test_snapshot_cadence_and_pruning(tmp_path):
    registry, wal = _registry_with_wal(tmp_path, snapshot_every=4)
    registry.register("doc", parse_xml("<a><b/></a>"))
    for _ in range(14):
        registry.mutate("doc", Relabel(1, "z"))
    snapshots = sorted((tmp_path / "wal").glob("snapshot-*.json"))
    assert len(snapshots) == 2  # pruned to the latest two
    assert snapshots[-1].name == "snapshot-000000000012.json"
    wal.close()
    assert_recovered_matches(recover(tmp_path / "wal"), registry)


def test_recovery_prefers_snapshot_but_survives_tampering(tmp_path):
    registry, wal = _registry_with_wal(tmp_path, snapshot_every=3)
    registry.register("doc", parse_xml("<a><b/></a>"))
    for label in "zwxyv":
        registry.mutate("doc", Relabel(1, label))
    wal.close()
    snapshots = sorted((tmp_path / "wal").glob("snapshot-*.json"))
    assert snapshots, "cadence must have produced snapshots"
    # Tampered newest snapshot: recovery falls back to older history
    # (an older snapshot or the full log) and still converges.
    snapshots[-1].write_bytes(b"garbage that is not a frame\n")
    assert_recovered_matches(recover(tmp_path / "wal"), registry)
    # All snapshots gone: the log alone carries the full history.
    for path in snapshots:
        path.unlink()
    assert_recovered_matches(recover(tmp_path / "wal"), registry)


def test_attach_wal_baselines_preexisting_trees(tmp_path):
    registry = TreeRegistry()
    registry.register("early", parse_xml("<a><b/></a>"))
    registry.mutate("early", Relabel(1, "z"))  # un-logged history
    wal = WriteAheadLog.open(tmp_path / "wal")
    registry.attach_wal(wal)
    assert wal.known_trees == {"early"}  # baselined at attach time
    registry.mutate("early", Relabel(1, "w"))
    wal.close()
    recovered = recover(tmp_path / "wal")
    # The baseline captured epoch 2's state; the logged edit took it to 3.
    assert recovered.epoch("early") == 3
    assert_recovered_matches(recovered, registry)


def test_attach_does_not_rebaseline_known_trees(tmp_path):
    registry, wal = _registry_with_wal(tmp_path)
    registry.register("doc", Tree.leaf("a"))
    wal.close()
    wal2 = WriteAheadLog.open(tmp_path / "wal")
    registry2 = recover(tmp_path / "wal", registry=TreeRegistry())
    registry2.attach_wal(wal2)
    assert wal2.last_seq == 1  # no duplicate register record appended
    wal2.close()


def test_closed_wal_rejects_appends(tmp_path):
    wal = WriteAheadLog.open(tmp_path / "wal")
    wal.close()
    with pytest.raises(ValueError, match="closed"):
        wal.append_register("t", 1, Tree.leaf("a"))
    wal.close()  # idempotent


# -- property: arbitrary edit scripts survive the full round trip ------------


def _draw_edit(data, tree):
    kinds = ["insert", "relabel"] + (["delete"] if tree.size > 1 else [])
    kind = data.draw(st.sampled_from(kinds), label="kind")
    if kind == "relabel":
        return Relabel(data.draw(st.integers(0, tree.size - 1)), data.draw(st.sampled_from("abcx")))
    if kind == "delete":
        return DeleteSubtree(data.draw(st.integers(1, tree.size - 1)))
    parent = data.draw(st.integers(0, tree.size - 1))
    index = data.draw(st.integers(0, len(tree.children_ids(parent))))
    return InsertSubtree(parent, index, data.draw(trees(max_size=4, alphabet=("a", "x"))))


@settings(max_examples=40)
@given(data=st.data())
def test_wal_round_trip_arbitrary_scripts(data, tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("wal-prop")
    registry, wal = _registry_with_wal(tmp_path, snapshot_every=3)
    base = data.draw(trees(max_size=10, alphabet=("a", "b")))
    registry.register("t", base)
    oracle = base
    for _ in range(data.draw(st.integers(1, 6), label="script length")):
        edit = _draw_edit(data, oracle)
        registry.mutate("t", edit)
        oracle = apply_edit(oracle, edit)
    wal.close()
    recovered = recover(tmp_path / "wal")
    assert recovered.get("t") == oracle
    assert recovered.epoch("t") == registry.epoch("t")
    assert index_fingerprint(tree_index(recovered.get("t"))) == index_fingerprint(
        tree_index(Tree(list(oracle.labels), list(oracle.parent)))
    )
