"""Unit and property tests for axis relations, including W-scoping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import (
    Axis,
    Tree,
    axis_image,
    axis_pairs,
    axis_steps,
    inverse_axis,
    random_tree,
)

ALL_AXES = list(Axis)


def tree_strategy(max_size=12):
    return st.integers(min_value=1, max_value=max_size).flatmap(
        lambda n: st.integers(min_value=0, max_value=10_000).map(
            lambda seed: random_tree(n, rng=__import__("random").Random(seed))
        )
    )


class TestPrimitiveAxes:
    def test_child(self, mixed_tree):
        assert set(axis_steps(mixed_tree, 0, Axis.CHILD)) == {1, 2, 6}
        assert set(axis_steps(mixed_tree, 2, Axis.CHILD)) == {3, 4, 5}
        assert set(axis_steps(mixed_tree, 1, Axis.CHILD)) == set()

    def test_parent(self, mixed_tree):
        assert set(axis_steps(mixed_tree, 3, Axis.PARENT)) == {2}
        assert set(axis_steps(mixed_tree, 0, Axis.PARENT)) == set()

    def test_right_left(self, mixed_tree):
        assert set(axis_steps(mixed_tree, 1, Axis.RIGHT)) == {2}
        assert set(axis_steps(mixed_tree, 6, Axis.RIGHT)) == set()
        assert set(axis_steps(mixed_tree, 2, Axis.LEFT)) == {1}
        assert set(axis_steps(mixed_tree, 1, Axis.LEFT)) == set()

    def test_self(self, mixed_tree):
        assert set(axis_steps(mixed_tree, 4, Axis.SELF)) == {4}


class TestDerivedAxes:
    def test_descendant(self, mixed_tree):
        assert set(axis_steps(mixed_tree, 2, Axis.DESCENDANT)) == {3, 4, 5}
        assert set(axis_steps(mixed_tree, 0, Axis.DESCENDANT)) == set(range(1, 8))

    def test_ancestor(self, mixed_tree):
        assert list(axis_steps(mixed_tree, 4, Axis.ANCESTOR)) == [2, 0]

    def test_or_self_variants(self, mixed_tree):
        assert set(axis_steps(mixed_tree, 2, Axis.DESCENDANT_OR_SELF)) == {2, 3, 4, 5}
        assert set(axis_steps(mixed_tree, 4, Axis.ANCESTOR_OR_SELF)) == {4, 2, 0}

    def test_sibling_closures(self, mixed_tree):
        assert list(axis_steps(mixed_tree, 1, Axis.FOLLOWING_SIBLING)) == [2, 6]
        assert list(axis_steps(mixed_tree, 6, Axis.PRECEDING_SIBLING)) == [2, 1]

    def test_following(self, mixed_tree):
        # following(2) = everything after subtree {2,3,4,5} in doc order
        assert set(axis_steps(mixed_tree, 2, Axis.FOLLOWING)) == {6, 7}
        assert set(axis_steps(mixed_tree, 1, Axis.FOLLOWING)) == {2, 3, 4, 5, 6, 7}

    def test_preceding(self, mixed_tree):
        # preceding(6) = before 6 in doc order minus ancestors {0}
        assert set(axis_steps(mixed_tree, 6, Axis.PRECEDING)) == {1, 2, 3, 4, 5}
        assert set(axis_steps(mixed_tree, 3, Axis.PRECEDING)) == {1}


class TestInverses:
    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_inverse_is_involution(self, axis):
        assert inverse_axis(inverse_axis(axis)) is axis

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_inverse_axis_pairs(self, axis, mixed_tree):
        forward = axis_pairs(mixed_tree, axis)
        backward = axis_pairs(mixed_tree, inverse_axis(axis))
        assert forward == {(b, a) for (a, b) in backward}

    @settings(max_examples=30, deadline=None)
    @given(tree=tree_strategy())
    def test_inverse_axis_pairs_random(self, tree):
        for axis in (Axis.CHILD, Axis.RIGHT, Axis.DESCENDANT, Axis.FOLLOWING):
            forward = axis_pairs(tree, axis)
            backward = axis_pairs(tree, inverse_axis(axis))
            assert forward == {(b, a) for (a, b) in backward}


class TestAxisDecompositions:
    """Cross-axis identities that must hold on every tree."""

    @settings(max_examples=30, deadline=None)
    @given(tree=tree_strategy())
    def test_following_decomposition(self, tree):
        # following = ancestor_or_self ; following_sibling ; descendant_or_self
        composed = set()
        for n in tree.node_ids:
            for z in axis_steps(tree, n, Axis.ANCESTOR_OR_SELF):
                for w in axis_steps(tree, z, Axis.FOLLOWING_SIBLING):
                    for m in axis_steps(tree, w, Axis.DESCENDANT_OR_SELF):
                        composed.add((n, m))
        assert composed == axis_pairs(tree, Axis.FOLLOWING)

    @settings(max_examples=30, deadline=None)
    @given(tree=tree_strategy())
    def test_document_order_partition(self, tree):
        # For any two distinct nodes: exactly one of ancestor, descendant,
        # preceding, following relates them.
        for n in tree.node_ids:
            desc = set(axis_steps(tree, n, Axis.DESCENDANT))
            anc = set(axis_steps(tree, n, Axis.ANCESTOR))
            fol = set(axis_steps(tree, n, Axis.FOLLOWING))
            pre = set(axis_steps(tree, n, Axis.PRECEDING))
            union = desc | anc | fol | pre
            assert len(union) == len(desc) + len(anc) + len(fol) + len(pre)
            assert union == set(tree.node_ids) - {n}


class TestScopedAxes:
    """Scoped navigation must match navigation in a materialized subtree."""

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_scope_matches_materialized_subtree(self, axis, mixed_tree):
        tree = mixed_tree
        for scope in tree.node_ids:
            sub = tree.subtree(scope)
            scoped = axis_pairs(tree, axis, scope=scope)
            rebased = {(a - scope, b - scope) for (a, b) in scoped}
            assert rebased == axis_pairs(sub, axis)

    @settings(max_examples=20, deadline=None)
    @given(tree=tree_strategy(max_size=10))
    def test_scope_matches_materialized_subtree_random(self, tree):
        for scope in tree.node_ids:
            sub = tree.subtree(scope)
            for axis in (Axis.PARENT, Axis.LEFT, Axis.ANCESTOR, Axis.PRECEDING):
                scoped = axis_pairs(tree, axis, scope=scope)
                rebased = {(a - scope, b - scope) for (a, b) in scoped}
                assert rebased == axis_pairs(sub, axis)


class TestAxisImage:
    def test_image_of_set(self, mixed_tree):
        assert axis_image(mixed_tree, {1, 2}, Axis.RIGHT) == {2, 6}
        assert axis_image(mixed_tree, {3, 4, 5}, Axis.PARENT) == {2}

    def test_image_empty_sources(self, mixed_tree):
        assert axis_image(mixed_tree, set(), Axis.CHILD) == set()
