"""Tests for the hand-rolled XML reader/writer."""

import pytest

from repro.trees import Tree, XmlReadOptions, XmlSyntaxError, parse_xml, to_xml


class TestBasicParsing:
    def test_single_element(self):
        assert parse_xml("<a/>").labels == ("a",)
        assert parse_xml("<a></a>").labels == ("a",)

    def test_nesting_and_order(self):
        t = parse_xml("<r><x/><y><z/></y><x/></r>")
        assert t.labels == ("r", "x", "y", "z", "x")
        assert t.parent == (-1, 0, 0, 2, 0)

    def test_whitespace_between_elements(self):
        t = parse_xml("<r>\n  <x/>\n  <y/>\n</r>")
        assert t.labels == ("r", "x", "y")

    def test_xml_declaration_and_doctype_skipped(self):
        t = parse_xml('<?xml version="1.0"?><!DOCTYPE r SYSTEM "r.dtd"><r/>')
        assert t.labels == ("r",)

    def test_comments_skipped(self):
        t = parse_xml("<r><!-- note --><x/><!-- <fake/> --></r>")
        assert t.labels == ("r", "x")

    def test_processing_instructions_skipped(self):
        t = parse_xml("<r><?php echo ?><x/></r>")
        assert t.labels == ("r", "x")

    def test_names_with_punctuation(self):
        t = parse_xml("<ns:doc><my-tag.v2/></ns:doc>")
        assert t.labels == ("ns:doc", "my-tag.v2")

    def test_text_ignored_by_default(self):
        t = parse_xml("<r>hello <x/> world</r>")
        assert t.labels == ("r", "x")


class TestAttributesAndText:
    def test_attributes_ignored_by_default(self):
        t = parse_xml('<talk date="15-Dec-2010"><speaker uni="Leicester"/></talk>')
        assert t.labels == ("talk", "speaker")

    def test_attributes_as_children(self):
        options = XmlReadOptions(attributes_as_children=True)
        t = parse_xml('<talk date="15-Dec-2010"><speaker/></talk>', options)
        assert t.labels == ("talk", "@date=15-Dec-2010", "speaker")
        assert t.parent == (-1, 0, 0)

    def test_text_as_children(self):
        options = XmlReadOptions(text_as_children=True)
        t = parse_xml("<r>hello<x/>world</r>", options)
        assert t.labels == ("r", "#text", "x", "#text")

    def test_whitespace_only_text_dropped(self):
        options = XmlReadOptions(text_as_children=True)
        t = parse_xml("<r>  \n <x/></r>", options)
        assert t.labels == ("r", "x")

    def test_cdata_counts_as_text(self):
        options = XmlReadOptions(text_as_children=True)
        t = parse_xml("<r><![CDATA[<not-a-tag/>]]></r>", options)
        assert t.labels == ("r", "#text")

    def test_entities_in_attributes(self):
        options = XmlReadOptions(attributes_as_children=True)
        t = parse_xml('<r a="x&lt;y&amp;z"/>', options)
        assert t.labels[1] == "@a=x<y&z"

    def test_numeric_entities(self):
        options = XmlReadOptions(attributes_as_children=True)
        t = parse_xml('<r a="&#65;&#x42;"/>', options)
        assert t.labels[1] == "@a=AB"


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<a>",
            "<a></b>",
            "<a/><b/>",
            "<a attr=value/>",
            "<a attr='x/>",
            "<a><!-- unterminated </a>",
            "< a/>",
            "<a>&unknown;</a>",
        ],
    )
    def test_malformed_rejected(self, text):
        options = XmlReadOptions(text_as_children=True)
        with pytest.raises(XmlSyntaxError):
            parse_xml(text, options)

    def test_error_carries_position(self):
        try:
            parse_xml("<a></b>")
        except XmlSyntaxError as exc:
            assert exc.position > 0
        else:  # pragma: no cover
            pytest.fail("expected XmlSyntaxError")


class TestSerialization:
    def test_roundtrip_structure(self):
        t = Tree.build(("r", ["x", ("y", ["z"]), "x"]))
        assert parse_xml(to_xml(t)) == t

    def test_roundtrip_with_attributes(self):
        options = XmlReadOptions(attributes_as_children=True)
        source = '<talk date="now"><speaker uni="L"/></talk>'
        t = parse_xml(source, options)
        assert parse_xml(to_xml(t), options) == t

    def test_pretty_printing_indents(self):
        t = Tree.build(("r", [("x", ["y"])]))
        text = to_xml(t, indent="  ")
        assert text.splitlines() == ["<r>", "  <x>", "    <y/>", "  </x>", "</r>"]

    def test_attribute_escaping(self):
        options = XmlReadOptions(attributes_as_children=True)
        t = parse_xml('<r a="x&lt;y"/>', options)
        assert '&lt;' in to_xml(t)
        assert parse_xml(to_xml(t), options) == t


class TestRoundTripProperty:
    """Serialization followed by parsing is the identity, on random trees."""

    def test_random_trees_roundtrip(self):
        import random

        from repro.trees import random_tree

        rng = random.Random(6)
        for __ in range(50):
            tree = random_tree(
                rng.randint(1, 40), alphabet=("doc", "a", "b-1", "x.y"), rng=rng
            )
            assert parse_xml(to_xml(tree)) == tree
            assert parse_xml(to_xml(tree, indent="  ")) == tree

    def test_deep_tree_roundtrip(self):
        from repro.trees import chain

        tree = chain(300, labels=("a", "b"))
        assert parse_xml(to_xml(tree)) == tree


class TestReadLimits:
    """XmlReadOptions caps: depth, node count, and text length."""

    def test_depth_limit_raises_input_limit_not_recursion(self):
        from repro.runtime import InputLimitError

        doc = "<a>" * 10_000 + "</a>" * 10_000
        with pytest.raises(InputLimitError) as info:
            parse_xml(doc)
        assert "depth" in str(info.value)
        assert info.value.limit == 400  # the documented default

    def test_depth_limit_boundary(self):
        from repro.runtime import InputLimitError

        options = XmlReadOptions(max_depth=3)
        assert parse_xml("<a><b><c/></b></a>", options).labels == ("a", "b", "c")
        with pytest.raises(InputLimitError):
            parse_xml("<a><b><c><d/></c></b></a>", options)

    def test_node_count_limit(self):
        from repro.runtime import InputLimitError

        options = XmlReadOptions(max_nodes=3)
        assert parse_xml("<r><x/><y/></r>", options).labels == ("r", "x", "y")
        with pytest.raises(InputLimitError, match="node-count"):
            parse_xml("<r><x/><y/><z/></r>", options)

    def test_node_count_counts_synthetic_children(self):
        from repro.runtime import InputLimitError

        options = XmlReadOptions(
            attributes_as_children=True, text_as_children=True, max_nodes=2
        )
        with pytest.raises(InputLimitError):
            parse_xml('<r a="1" b="2"/>', options)
        with pytest.raises(InputLimitError):
            parse_xml("<r>hello<x/>world</r>", options)

    def test_text_length_limit_on_text_runs(self):
        from repro.runtime import InputLimitError

        options = XmlReadOptions(max_text_length=10)
        assert parse_xml("<r>0123456789</r>", options).labels == ("r",)
        with pytest.raises(InputLimitError, match="length"):
            parse_xml("<r>0123456789x</r>", options)

    def test_text_length_limit_on_attributes_and_cdata(self):
        from repro.runtime import InputLimitError

        options = XmlReadOptions(max_text_length=4)
        with pytest.raises(InputLimitError):
            parse_xml('<r a="12345"/>', options)
        with pytest.raises(InputLimitError):
            parse_xml("<r><![CDATA[12345]]></r>", options)

    def test_entity_heavy_text_rejected_on_raw_length(self):
        """The cap is checked on the *raw* source span, so a payload of
        entity references is refused before any decoding work happens."""
        from repro.runtime import InputLimitError

        options = XmlReadOptions(max_text_length=64)
        payload = "&amp;" * 1_000  # 5000 raw chars, would decode to 1000
        with pytest.raises(InputLimitError):
            parse_xml(f"<r>{payload}</r>", options)
        # The same budget in *decoded* terms fits comfortably below the cap.
        assert parse_xml("<r>&amp;&lt;&gt;</r>", options).labels == ("r",)

    def test_limit_errors_are_value_errors(self):
        doc = "<a>" * 10_000 + "</a>" * 10_000
        with pytest.raises(ValueError):
            parse_xml(doc)

    def test_unlimited_options_unchanged(self):
        """Defaults keep accepting everything the seed suite accepted."""
        doc = "<r>" + "<x/>" * 500 + "</r>"
        assert len(parse_xml(doc).labels) == 501
