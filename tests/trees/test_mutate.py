"""Live-document edits: structure, delta reindexing vs the full-rebuild
oracle, copy-on-write snapshot isolation, and the JSON wire format."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees import Tree, TreeIndex, random_tree, tree_index
from repro.trees.mutate import (
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    apply_edit,
    apply_edit_indexed,
    apply_edits,
    edit_from_json,
    edit_to_json,
    index_fingerprint,
)
from repro.testing import trees


def assert_index_exact(tree: Tree) -> None:
    """The incremental index on ``tree`` is bit-exact vs a scratch rebuild."""
    incremental = index_fingerprint(tree_index(tree))
    oracle = index_fingerprint(TreeIndex(Tree(tree.labels, tree.parent)))
    assert incremental == oracle


# -- structural application --------------------------------------------------


def test_insert_as_middle_child():
    t = Tree.build(("a", ["b", ("c", ["d"]), "e"]))
    sub = Tree.build(("x", ["y"]))
    t2 = apply_edit(t, InsertSubtree(parent=0, index=1, subtree=sub))
    assert t2.to_shape() == ("a", ["b", ("x", ["y"]), ("c", ["d"]), "e"])
    # Copy-on-write: the source tree is untouched.
    assert t.to_shape() == ("a", ["b", ("c", ["d"]), "e"])


def test_insert_at_end_and_into_leaf():
    t = Tree.build(("a", ["b"]))
    t2 = apply_edit(t, InsertSubtree(parent=0, index=1, subtree=Tree.leaf("z")))
    assert t2.to_shape() == ("a", ["b", "z"])
    t3 = apply_edit(t2, InsertSubtree(parent=1, index=0, subtree=Tree.leaf("w")))
    assert t3.to_shape() == ("a", [("b", ["w"]), "z"])


def test_delete_subtree():
    t = Tree.build(("a", ["b", ("c", ["d", "e"]), "f"]))
    t2 = apply_edit(t, DeleteSubtree(node=2))  # the whole c-subtree
    assert t2.to_shape() == ("a", ["b", "f"])


def test_relabel():
    t = Tree.build(("a", ["b", "c"]))
    t2 = apply_edit(t, Relabel(node=2, label="q"))
    assert t2.to_shape() == ("a", ["b", "q"])
    assert t.labels[2] == "c"


def test_apply_edits_folds_in_order():
    t = Tree.leaf("a")
    t2 = apply_edits(
        t,
        [
            InsertSubtree(0, 0, Tree.leaf("b")),
            InsertSubtree(0, 1, Tree.leaf("c")),
            Relabel(1, "x"),
            DeleteSubtree(2),
        ],
    )
    assert t2.to_shape() == ("a", ["x"])


@pytest.mark.parametrize(
    "edit, message",
    [
        (DeleteSubtree(0), "root"),
        (DeleteSubtree(99), "out of range"),
        (Relabel(99, "a"), "out of range"),
        (Relabel(0, ""), "non-empty"),
        (InsertSubtree(99, 0, Tree.leaf("a")), "out of range"),
        (InsertSubtree(0, 5, Tree.leaf("a")), "index 5 out of range"),
        (InsertSubtree(0, -1, Tree.leaf("a")), "out of range"),
        (InsertSubtree(0, 0, "not a tree"), "must be a Tree"),
        ("bogus", "unknown edit"),
    ],
)
def test_invalid_edits_raise(edit, message):
    t = Tree.build(("a", ["b", "c"]))
    with pytest.raises(ValueError, match=message):
        apply_edit(t, edit)
    with pytest.raises(ValueError, match=message):
        apply_edit_indexed(t, edit)


# -- incremental index vs the full-reindex oracle ----------------------------


def test_insert_incremental_index_every_position():
    t = Tree.build(("a", ["b", ("c", ["d", "e"]), ("f", ["g"])]))
    sub = Tree.build(("x", ["y", ("z", ["w"])]))
    for parent in range(t.size):
        for index in range(len(t.children_ids(parent)) + 1):
            t2 = apply_edit_indexed(t, InsertSubtree(parent, index, sub))
            assert_index_exact(t2)


def test_delete_incremental_index_every_node():
    t = Tree.build(("a", ["b", ("c", ["d", ("e", ["h"])]), ("f", ["g"])]))
    for node in range(1, t.size):
        t2 = apply_edit_indexed(t, DeleteSubtree(node))
        assert_index_exact(t2)


def test_relabel_shares_structural_tables():
    t = Tree.build(("a", ["b", "c"]))
    old = tree_index(t)
    t2 = apply_edit_indexed(t, Relabel(1, "q"))
    new = tree_index(t2)
    assert_index_exact(t2)
    # Relabel is O(1): every structural table is shared, labels are not.
    assert new.prefix is old.prefix
    assert new.after is old.after
    assert new.delta_groups is old.delta_groups
    assert new.label_masks is not old.label_masks


def _draw_edit(data, tree: Tree):
    kinds = ["insert", "relabel"] + (["delete"] if tree.size > 1 else [])
    kind = data.draw(st.sampled_from(kinds), label="kind")
    if kind == "relabel":
        node = data.draw(
            st.integers(0, tree.size - 1), label="relabel node"
        )
        label = data.draw(st.sampled_from("abcx"), label="label")
        return Relabel(node, label)
    if kind == "delete":
        node = data.draw(st.integers(1, tree.size - 1), label="delete node")
        return DeleteSubtree(node)
    parent = data.draw(st.integers(0, tree.size - 1), label="insert parent")
    index = data.draw(
        st.integers(0, len(tree.children_ids(parent))), label="insert index"
    )
    sub = data.draw(trees(max_size=5, alphabet=("a", "x")), label="subtree")
    return InsertSubtree(parent, index, sub)


@settings(max_examples=120)
@given(data=st.data())
def test_random_edit_scripts_are_bit_exact(data):
    """The acceptance-criteria property: after ANY edit script the
    incrementally maintained index equals a full reindex, bit for bit
    (and the incremental input of step i+1 is itself incremental)."""
    tree = data.draw(trees(max_size=16, alphabet=("a", "b", "c")))
    steps = data.draw(st.integers(1, 5), label="script length")
    for _ in range(steps):
        edit = _draw_edit(data, tree)
        tree = apply_edit_indexed(tree, edit)
        Tree(tree.labels, tree.parent)  # re-validates document order
        assert_index_exact(tree)


@settings(max_examples=60)
@given(data=st.data())
def test_edit_scripts_match_structural_fold(data):
    """apply_edit_indexed and apply_edit agree on the resulting tree."""
    tree = data.draw(trees(max_size=12))
    edits = []
    shadow = tree
    for _ in range(data.draw(st.integers(1, 4), label="script length")):
        edit = _draw_edit(data, shadow)
        edits.append(edit)
        shadow = apply_edit(shadow, edit)
        tree = apply_edit_indexed(tree, edit)
    assert tree == shadow
    assert apply_edits(Tree(shadow.labels, shadow.parent), []) == shadow


# -- snapshot isolation ------------------------------------------------------


def test_old_snapshot_untouched_by_edits():
    rng = random.Random(2008)
    t = random_tree(40, ("a", "b"), rng)
    before = index_fingerprint(tree_index(t))
    shape_before = t.to_shape()
    t2 = apply_edit_indexed(t, InsertSubtree(0, 0, random_tree(5, ("c",), rng)))
    t3 = apply_edit_indexed(t2, DeleteSubtree(1))
    assert t.to_shape() == shape_before
    assert index_fingerprint(tree_index(t)) == before
    assert t3.size == t.size  # inserted 5, deleted the inserted root's span


def test_pinned_reader_sees_pre_edit_results_on_every_backend():
    """A reader holding the old tree gets pre-edit answers from both
    evaluator backends and both checker backends, even after edits."""
    from repro.logic import parse_formula
    from repro.logic.modelcheck import ModelChecker
    from repro.xpath import parse_node
    from repro.xpath.evaluator import Evaluator

    rng = random.Random(7)
    old = random_tree(30, ("a", "b"), rng)
    query = parse_node("<child[a]>")
    formula = parse_formula("exists y. child(x,y) & b(y)")
    expect_nodes = sorted(Evaluator(old, backend="sets").nodes(query))
    expect_set = sorted(ModelChecker(old, backend="table").node_set(formula, "x"))

    new = apply_edit_indexed(old, DeleteSubtree(1))
    new = apply_edit_indexed(new, InsertSubtree(0, 0, random_tree(4, ("b",), rng)))

    for backend in ("sets", "bitset"):
        assert sorted(Evaluator(old, backend=backend).nodes(query)) == expect_nodes
    for backend in ("table", "bitset"):
        assert (
            sorted(ModelChecker(old, backend=backend).node_set(formula, "x"))
            == expect_set
        )
    # And the new snapshot agrees with itself across backends (the bitset
    # side runs on the incrementally maintained index).
    assert sorted(Evaluator(new, backend="bitset").nodes(query)) == sorted(
        Evaluator(new, backend="sets").nodes(query)
    )
    assert sorted(
        ModelChecker(new, backend="bitset").node_set(formula, "x")
    ) == sorted(ModelChecker(new, backend="table").node_set(formula, "x"))


@settings(max_examples=40)
@given(data=st.data())
def test_backends_agree_on_mutated_trees(data):
    """Identical query results on all backends after random edit scripts."""
    from repro.xpath import parse_node
    from repro.xpath.evaluator import Evaluator

    tree = data.draw(trees(max_size=10))
    for _ in range(data.draw(st.integers(1, 3), label="steps")):
        tree = apply_edit_indexed(tree, _draw_edit(data, tree))
    query = parse_node(
        data.draw(
            st.sampled_from(
                [
                    "<child[a]>",
                    "<descendant[b]>",
                    "<child[a]> and not <right[b]>",
                    "<(child[a])*[x]>",
                ]
            ),
            label="query",
        )
    )
    fast = sorted(Evaluator(tree, backend="bitset").nodes(query))
    oracle = sorted(Evaluator(tree, backend="sets").nodes(query))
    assert fast == oracle


# -- JSON wire format --------------------------------------------------------


def test_edit_json_round_trip():
    edits = [
        Relabel(3, "x"),
        DeleteSubtree(2),
        InsertSubtree(1, 0, Tree.build(("x", ["y", ("z", ["w"])]))),
    ]
    for edit in edits:
        assert edit_from_json(edit_to_json(edit)) == edit


def test_edit_from_json_accepts_xml_subtree():
    edit = edit_from_json(
        {"kind": "insert", "parent": 0, "index": 0, "xml": "<x><y/></x>"}
    )
    assert edit.subtree.to_shape() == ("x", ["y"])


@pytest.mark.parametrize(
    "payload, message",
    [
        ("nope", "must be a JSON object"),
        ({"kind": "teleport"}, "unknown edit kind"),
        ({"kind": "relabel", "node": 0}, "requires 'node' and 'label'"),
        ({"kind": "delete"}, "requires 'node'"),
        ({"kind": "delete", "node": 1, "label": "x"}, "unknown edit field"),
        ({"kind": "insert", "parent": 0, "index": 0}, "exactly one of"),
        (
            {"kind": "insert", "parent": 0, "index": 0, "xml": "<a/>", "shape": "b"},
            "exactly one of",
        ),
        (
            {"kind": "insert", "parent": 0, "index": 0, "shape": ["a"]},
            "bad shape",
        ),
        (
            {"kind": "insert", "parent": 0, "index": 0, "shape": [1, []]},
            "bad shape",
        ),
    ],
)
def test_edit_from_json_rejects_malformed(payload, message):
    with pytest.raises(ValueError, match=message):
        edit_from_json(payload)


def test_deep_shapes_round_trip_iteratively():
    shape = "a"
    for _ in range(3000):  # far past the recursion limit
        shape = ["a", [shape]]
    edit = edit_from_json(
        {"kind": "insert", "parent": 0, "index": 0, "shape": shape}
    )
    assert edit.subtree.size == 3001
    assert edit_from_json(edit_to_json(edit)) == edit
