"""Unit tests for the tree data model."""

import pytest

from repro.trees import Tree


class TestConstruction:
    def test_single_node(self):
        t = Tree.leaf("a")
        assert t.size == 1
        assert t.root.label == "a"
        assert t.root.is_root and t.root.is_leaf

    def test_build_from_shape(self):
        t = Tree.build(("a", ["b", ("c", ["d"])]))
        assert t.labels == ("a", "b", "c", "d")
        assert t.parent == (-1, 0, 0, 2)

    def test_build_deep_chain_no_recursion_error(self):
        shape = "a"
        for __ in range(5000):
            shape = ("b", [shape])
        t = Tree.build(shape)
        assert t.size == 5001
        assert t.height == 5000

    def test_to_shape_roundtrip(self):
        shape = ("a", ["b", ("c", ["d", "e"]), "f"])
        assert Tree.build(shape).to_shape() == shape

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            Tree([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Tree(["a", "b"], [-1])

    def test_non_root_first_node_rejected(self):
        with pytest.raises(ValueError):
            Tree(["a", "b"], [0, -1])

    def test_forward_parent_pointer_rejected(self):
        with pytest.raises(ValueError):
            Tree(["a", "b", "c"], [-1, 2, 0])

    def test_non_preorder_ids_rejected(self):
        # 0 -> {1, 2}, but 3 is a child of 1: subtree of 1 is {1, 3}, not
        # contiguous.
        with pytest.raises(ValueError):
            Tree(["a", "b", "c", "d"], [-1, 0, 0, 1])


class TestNavigation:
    def test_parent_child_links(self, mixed_tree):
        t = mixed_tree
        assert [n.label for n in t.root.children] == ["b", "c", "b"]
        c = t.node(2)
        assert c.label == "c"
        assert c.parent == t.root
        assert [k.label for k in c.children] == ["a", "b", "a"]

    def test_sibling_links(self, mixed_tree):
        t = mixed_tree
        first, second, third = t.root.children
        assert first.next_sibling == second
        assert second.prev_sibling == first
        assert second.next_sibling == third
        assert third.next_sibling is None
        assert first.prev_sibling is None

    def test_first_last_flags(self, mixed_tree):
        t = mixed_tree
        first, second, third = t.root.children
        assert first.is_first_sibling and not first.is_last_sibling
        assert not second.is_first_sibling and not second.is_last_sibling
        assert third.is_last_sibling and not third.is_first_sibling
        assert t.root.is_first_sibling and t.root.is_last_sibling

    def test_depths(self, mixed_tree):
        assert mixed_tree.depths == (0, 1, 1, 2, 2, 2, 1, 2)
        assert mixed_tree.height == 2

    def test_child_indexes(self, mixed_tree):
        assert mixed_tree.child_indexes[1] == 0
        assert mixed_tree.child_indexes[2] == 1
        assert mixed_tree.child_indexes[6] == 2

    def test_subtree_sizes(self, mixed_tree):
        assert mixed_tree.subtree_sizes[0] == 8
        assert mixed_tree.subtree_sizes[2] == 4
        assert mixed_tree.subtree_sizes[6] == 2

    def test_descendant_ids_contiguous(self, mixed_tree):
        assert list(mixed_tree.descendant_ids(2)) == [3, 4, 5]
        assert list(mixed_tree.subtree_ids(6)) == [6, 7]

    def test_is_descendant(self, mixed_tree):
        assert mixed_tree.is_descendant(3, 2)
        assert mixed_tree.is_descendant(3, 0)
        assert not mixed_tree.is_descendant(2, 3)
        assert not mixed_tree.is_descendant(2, 2)
        assert not mixed_tree.is_descendant(6, 2)

    def test_iter_ancestors(self, mixed_tree):
        assert [n.node_id for n in mixed_tree.node(4).iter_ancestors()] == [2, 0]

    def test_iter_descendants_document_order(self, mixed_tree):
        ids = [n.node_id for n in mixed_tree.node(2).iter_descendants()]
        assert ids == [3, 4, 5]


class TestSubtreeExtraction:
    def test_subtree_copy(self, mixed_tree):
        sub = mixed_tree.subtree(2)
        assert sub.labels == ("c", "a", "b", "a")
        assert sub.parent == (-1, 0, 0, 0)

    def test_subtree_of_root_is_whole_tree(self, mixed_tree):
        assert mixed_tree.subtree(0) == mixed_tree

    def test_subtree_of_leaf(self, mixed_tree):
        assert mixed_tree.subtree(1) == Tree.leaf("b")


class TestEqualityAndDisplay:
    def test_structural_equality(self):
        assert Tree.build(("a", ["b"])) == Tree.build(("a", ["b"]))
        assert Tree.build(("a", ["b"])) != Tree.build(("a", ["c"]))
        assert Tree.build(("a", ["b", "c"])) != Tree.build(("a", [("b", ["c"])]))

    def test_hashable(self):
        assert len({Tree.leaf("a"), Tree.leaf("a"), Tree.leaf("b")}) == 2

    def test_pretty(self, mixed_tree):
        lines = mixed_tree.pretty().splitlines()
        assert lines[0] == "a"
        assert lines[1] == "  b"
        assert lines[3] == "    a"

    def test_relabel(self, mixed_tree):
        swapped = mixed_tree.relabel({"a": "b", "b": "a"})
        assert swapped.labels[0] == "b"
        assert swapped.labels[1] == "a"
        assert swapped.parent == mixed_tree.parent

    def test_alphabet(self, mixed_tree):
        assert mixed_tree.alphabet == frozenset({"a", "b", "c"})

    def test_len(self, mixed_tree):
        assert len(mixed_tree) == 8


class TestToShapeDeep:
    def test_to_shape_deep_chain_no_recursion_error(self):
        # shape_of used to be recursive and overflow around depth ~1000.
        from repro.trees import chain

        t = chain(5000, labels=("a", "b"))
        shape = t.to_shape()
        depth = 0
        while not isinstance(shape, str):
            label, kids = shape
            assert len(kids) == 1
            shape = kids[0]
            depth += 1
        assert depth == 4999

    def test_to_shape_roundtrips_deep(self):
        from repro.trees import chain

        t = chain(3000)
        assert Tree.build(t.to_shape()) == t


class TestPostorder:
    def _reference_postorder(self, tree):
        ranks = [0] * tree.size
        counter = 0
        stack = [(0, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                ranks[node] = counter
                counter += 1
            else:
                stack.append((node, True))
                for child in reversed(tree.children_ids(node)):
                    stack.append((child, False))
        return tuple(ranks)

    def test_postorder_matches_explicit_walk(self, mixed_tree):
        assert mixed_tree.postorder == self._reference_postorder(mixed_tree)

    def test_postorder_random_trees(self):
        import random

        from repro.trees import random_tree

        for seed in range(25):
            rng = random.Random(seed)
            t = random_tree(rng.randint(1, 40), rng=rng)
            assert t.postorder == self._reference_postorder(t)

    def test_pre_post_window_characterizes_ancestry(self):
        import random

        from repro.trees import random_tree

        t = random_tree(30, rng=random.Random(5))
        post = t.postorder
        for u in t.node_ids:
            for v in t.node_ids:
                is_anc = u < v and post[u] > post[v]
                assert is_anc == t.is_descendant(v, u)
