"""Shared-memory TreeIndex serialization: bit-exactness and corruption.

The multiprocess tier depends on two properties proven here:

* **round-trip fidelity** — ``dump_index`` → (any buffer, including a
  mapped shared-memory segment) → ``load_tree`` reproduces every mask the
  engines consult *bit-exactly*, for arbitrary trees (random shapes, empty
  labels, single node, deep chains).  A single flipped bit in a prefix or
  children mask silently corrupts every query answer, so the comparison is
  integer equality on the full big-int masks, not a sample.
* **structured corruption failure** — a truncated, bit-flipped, or
  version-skewed segment raises
  :class:`~repro.runtime.errors.TreeShareError` (the PR 3 error taxonomy's
  ``io`` exit code), never an unstructured struct/index error and never a
  silently wrong tree.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.errors import TreeShareError, exit_code_for
from repro.trees import (
    Tree,
    chain,
    dump_index,
    dump_tree,
    load_tree,
    parse_xml,
    random_tree,
    to_xml,
    tree_index,
)
from repro.trees.share import FORMAT_VERSION, MaskSlab, detach_tree


def assert_index_equal(original, loaded):
    """Every engine-visible mask family, compared bit-exactly."""
    assert loaded.n == original.n
    assert loaded.full == original.full
    assert list(loaded.prefix) == list(original.prefix)
    assert list(loaded.children_of) == list(original.children_of)
    assert loaded.label_masks == original.label_masks
    assert loaded.after == original.after
    assert loaded.leaf_mask == original.leaf_mask
    assert loaded.internal_mask == original.internal_mask
    assert loaded.first_mask == original.first_mask
    assert loaded.last_mask == original.last_mask
    assert loaded.delta_groups == original.delta_groups
    assert loaded.sib_groups == original.sib_groups
    assert loaded.last_child_groups == original.last_child_groups


def roundtrip(tree: Tree) -> Tree:
    return load_tree(dump_index(tree_index(tree)))


class TestRoundTrip:
    def test_single_node(self):
        tree = parse_xml("<a/>")
        loaded = roundtrip(tree)
        assert loaded.size == 1
        assert_index_equal(tree_index(tree), tree_index(loaded))

    def test_empty_labels(self):
        # Empty-string labels are legal in the data model and must survive
        # the length-prefixed label table.
        tree = Tree(labels=["", "a", "", "b"], parents=[-1, 0, 0, 2])
        loaded = roundtrip(tree)
        assert loaded.labels == tree.labels
        assert_index_equal(tree_index(tree), tree_index(loaded))

    def test_deep_chain(self):
        tree = chain(300, "abc")
        loaded = roundtrip(tree)
        assert loaded.parent == tree.parent
        assert_index_equal(tree_index(tree), tree_index(loaded))

    def test_xml_identity(self):
        tree = random_tree(120, "abc", random.Random(3))
        assert to_xml(roundtrip(tree)) == to_xml(tree)

    def test_dump_tree_convenience(self):
        tree = random_tree(40, "ab", random.Random(5))
        loaded = load_tree(dump_tree(tree))
        assert_index_equal(tree_index(tree), tree_index(loaded))

    @settings(max_examples=40, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=80),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        alphabet=st.sampled_from(["a", "ab", "abc", "xyzw"]),
    )
    def test_random_trees_bit_exact(self, size, seed, alphabet):
        tree = random_tree(size, alphabet, random.Random(seed))
        loaded = roundtrip(tree)
        assert loaded.labels == tree.labels
        assert loaded.parent == tree.parent
        assert_index_equal(tree_index(tree), tree_index(loaded))

    def test_loaded_tree_answers_queries(self):
        # The reconstructed index is the live engine index (no rebuild).
        from repro.xpath import evaluate_path, parse_path

        tree = random_tree(150, "ab", random.Random(11))
        loaded = load_tree(dump_tree(tree))
        assert loaded._engine_index is not None
        sources = range(tree.size)
        for query in ("descendant[a]", "child[b]", "following[a]"):
            expr = parse_path(query)
            assert evaluate_path(loaded, expr, sources, backend="bitset") == (
                evaluate_path(tree, expr, sources, backend="bitset")
            )


class TestMaskSlab:
    def test_lazy_views_and_detach(self):
        tree = random_tree(60, "ab", random.Random(2))
        payload = dump_index(tree_index(tree))
        loaded = load_tree(payload)
        index = tree_index(loaded)
        assert isinstance(index.prefix, MaskSlab)
        assert isinstance(index.children_of, MaskSlab)
        reference = tree_index(tree)
        assert index.prefix[len(loaded.labels)] == reference.prefix[tree.size]
        assert index.children_of[0] == reference.children_of[0]
        detach_tree(loaded)
        # Materialized masks survive the detach; unmaterialized reads fail
        # with the structured error, never a raw NoneType crash.
        assert index.prefix[len(loaded.labels)] == reference.prefix[tree.size]
        with pytest.raises(TreeShareError, match="detach"):
            index.prefix[1]

    def test_slab_refuses_pickle(self):
        import pickle

        tree = random_tree(10, "ab", random.Random(1))
        loaded = load_tree(dump_tree(tree))
        with pytest.raises(TypeError):
            pickle.dumps(tree_index(loaded).prefix)


class TestCorruption:
    def payload(self) -> bytes:
        return dump_tree(random_tree(50, "ab", random.Random(9)))

    def test_truncated_segment(self):
        payload = self.payload()
        for cut in (0, 3, 16, len(payload) // 2, len(payload) - 1):
            with pytest.raises(TreeShareError):
                load_tree(payload[:cut])

    def test_bad_magic(self):
        payload = bytearray(self.payload())
        payload[0] ^= 0xFF
        with pytest.raises(TreeShareError, match="magic"):
            load_tree(bytes(payload))

    def test_version_skew(self):
        import struct

        payload = bytearray(self.payload())
        struct.pack_into("<H", payload, 4, FORMAT_VERSION + 1)
        with pytest.raises(TreeShareError, match="version"):
            load_tree(bytes(payload))

    def test_flipped_payload_bit_fails_crc(self):
        payload = bytearray(self.payload())
        payload[-10] ^= 0x01
        with pytest.raises(TreeShareError, match="checksum"):
            load_tree(bytes(payload))

    def test_error_maps_to_io_exit_code(self):
        assert exit_code_for(TreeShareError("x")) == 3
