"""Tests for the workload generators (exhaustive, random, shaped)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import (
    Tree,
    all_shapes,
    all_trees,
    binary_string_tree,
    chain,
    comb,
    count_shapes,
    full_kary,
    random_deep_tree,
    random_tree,
    star,
)

CATALAN = [1, 1, 2, 5, 14, 42, 132]


class TestExhaustiveEnumeration:
    @pytest.mark.parametrize("size", range(1, 7))
    def test_shape_counts_are_catalan(self, size):
        shapes = list(all_shapes(size))
        assert len(shapes) == CATALAN[size - 1]
        assert count_shapes(size) == CATALAN[size - 1]

    @pytest.mark.parametrize("size", range(1, 6))
    def test_shapes_are_distinct_and_valid(self, size):
        shapes = list(all_shapes(size))
        assert len({tuple(s) for s in shapes}) == len(shapes)
        for shape in shapes:
            tree = Tree(["a"] * size, shape)  # Tree validates preorder
            assert tree.size == size

    def test_labelled_counts(self):
        # Catalan(n-1) * 2^n over a 2-letter alphabet.
        by_size = {}
        for t in all_trees(4):
            by_size[t.size] = by_size.get(t.size, 0) + 1
        assert by_size == {1: 2, 2: 4, 3: 16, 4: 80}

    def test_all_trees_distinct(self):
        trees = list(all_trees(4))
        assert len(set(trees)) == len(trees)

    def test_single_letter_alphabet(self):
        trees = list(all_trees(4, alphabet=("a",)))
        assert len(trees) == 1 + 1 + 2 + 5


class TestRandomGeneration:
    @settings(max_examples=25, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_random_tree_valid(self, size, seed):
        t = random_tree(size, rng=random.Random(seed))
        assert t.size == size
        assert t.alphabet <= {"a", "b"}

    def test_max_branch_respected(self):
        rng = random.Random(1)
        t = random_tree(60, rng=rng, max_branch=2)
        assert all(len(t.children_ids(v)) <= 2 for v in t.node_ids)

    def test_deep_tree_is_deep(self):
        rng = random.Random(7)
        t = random_deep_tree(40, rng=rng, depth_bias=1.0)
        assert t.height == 39  # pure chain at bias 1.0

    def test_deterministic_given_seed(self):
        t1 = random_tree(20, rng=random.Random(5))
        t2 = random_tree(20, rng=random.Random(5))
        assert t1 == t2

    def test_size_zero_rejected(self):
        with pytest.raises(ValueError):
            random_tree(0)


class TestShapedFamilies:
    def test_chain(self):
        t = chain(5, labels=("a", "b"))
        assert t.size == 5
        assert t.height == 4
        assert t.labels == ("a", "b", "a", "b", "a")
        assert all(len(t.children_ids(v)) <= 1 for v in t.node_ids)

    def test_star(self):
        t = star(6)
        assert t.size == 7
        assert t.height == 1
        assert len(t.children_ids(0)) == 6

    def test_comb(self):
        t = comb(4)
        assert t.size == 8
        assert t.height == 4
        spine = [v for v in t.node_ids if t.labels[v] == "a"]
        assert len(spine) == 4

    @pytest.mark.parametrize("depth,k,expected", [(0, 2, 1), (1, 2, 3), (2, 2, 7), (2, 3, 13)])
    def test_full_kary_size(self, depth, k, expected):
        t = full_kary(depth, k)
        assert t.size == expected
        assert t.height == depth

    def test_full_kary_labels_cycle_by_depth(self):
        t = full_kary(2, 2, alphabet=("x", "y"))
        assert t.labels[0] == "x"
        for v in t.node_ids:
            assert t.labels[v] == ("x", "y")[t.depths[v] % 2]

    def test_binary_string_tree(self):
        t = binary_string_tree("abba")
        assert t.labels == ("a", "b", "b", "a")
        assert t.height == 3

    def test_binary_string_tree_empty_rejected(self):
        with pytest.raises(ValueError):
            binary_string_tree("")

    def test_chain_length_zero_rejected(self):
        with pytest.raises(ValueError):
            chain(0)
