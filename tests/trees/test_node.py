"""Node-handle API tests."""

import pytest

from repro.trees import Node, Tree


class TestHandleBasics:
    def test_out_of_range_rejected(self, mixed_tree):
        with pytest.raises(IndexError):
            Node(mixed_tree, 99)
        with pytest.raises(IndexError):
            Node(mixed_tree, -1)

    def test_equality_is_per_tree(self, mixed_tree):
        other = Tree(mixed_tree.labels, mixed_tree.parent)
        assert mixed_tree.node(1) == mixed_tree.node(1)
        assert mixed_tree.node(1) != other.node(1)  # different tree objects
        assert mixed_tree.node(1) != mixed_tree.node(2)

    def test_hash_consistency(self, mixed_tree):
        assert len({mixed_tree.node(1), mixed_tree.node(1)}) == 1

    def test_repr(self, mixed_tree):
        assert "label='c'" in repr(mixed_tree.node(2))


class TestDerivedProperties:
    def test_depth_and_index(self, mixed_tree):
        node = mixed_tree.node(4)
        assert node.depth == 2
        assert node.child_index == 1

    def test_subtree_size(self, mixed_tree):
        assert mixed_tree.node(2).subtree_size == 4
        assert mixed_tree.node(3).subtree_size == 1

    def test_first_last_child(self, mixed_tree):
        c = mixed_tree.node(2)
        assert c.first_child.node_id == 3
        assert c.last_child.node_id == 5
        leaf = mixed_tree.node(3)
        assert leaf.first_child is None and leaf.last_child is None

    def test_nodes_iteration_in_document_order(self, mixed_tree):
        ids = [n.node_id for n in mixed_tree.nodes()]
        assert ids == list(range(mixed_tree.size))

    def test_root_accessor(self, mixed_tree):
        assert mixed_tree.root.node_id == 0
        assert mixed_tree.root.parent is None
