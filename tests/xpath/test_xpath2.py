"""XPath 2.0 path operators: intersection ``&`` and complementation ``~``.

The literature this paper sits in contrasts the navigational core of XPath
1.0 (no path booleans — not a relation algebra) with XPath 2.0, whose
logical core closes path expressions under the booleans and becomes
FO-complete for binary queries (ten Cate–Marx).  These tests cover parsing,
both evaluators, converses, rewriting, fragment classification, and the T2
upgrade the operators enable.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formula_pairs, parse_formula
from repro.translations import (
    UnsupportedFormula,
    mtc_to_path_expr,
    xpath_to_mtc,
)
from repro.trees import random_tree
from repro.xpath import (
    Dialect,
    ast as xp,
    converse,
    dialect,
    evaluate_pairs,
    is_core_xpath,
    is_downward,
    parse_path,
    path_pairs,
    simplify,
    unparse,
    uses_path_booleans,
)
from repro.xpath.random_exprs import ExprSampler


class TestSyntax:
    def test_precedence_union_isect_seq(self):
        expr = parse_path("child | parent & right/left")
        assert expr == xp.Union(
            xp.CHILD, xp.Intersect(xp.PARENT, xp.Seq(xp.RIGHT, xp.LEFT))
        )

    def test_complement_binds_tightly(self):
        assert parse_path("~child/right") == xp.Seq(xp.Complement(xp.CHILD), xp.RIGHT)
        assert parse_path("~(child/right)") == xp.Complement(xp.Seq(xp.CHILD, xp.RIGHT))

    def test_operator_builders(self):
        assert (xp.CHILD & xp.DESCENDANT) == parse_path("child & descendant")
        assert ~xp.CHILD == parse_path("~child")

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 12))
    def test_roundtrip(self, seed, budget):
        sampler = ExprSampler(rng=random.Random(seed), path_booleans=True)
        expr = sampler.path(budget)
        assert parse_path(unparse(expr)) == expr


class TestSemantics:
    def test_intersection_pairs(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("child & descendant"))
        assert got == evaluate_pairs(mixed_tree, parse_path("child"))

    def test_complement_is_relative_to_all_pairs(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("~child"))
        n = mixed_tree.size
        assert len(got) == n * n - len(evaluate_pairs(mixed_tree, xp.CHILD))

    def test_proper_descendant_not_child(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("descendant & ~child"))
        assert got == {(0, 3), (0, 4), (0, 5), (0, 7)}

    def test_sibling_difference(self, mixed_tree):
        # following_sibling minus the immediate one.
        got = evaluate_pairs(mixed_tree, parse_path("following_sibling & ~right"))
        assert got == {(1, 6), (3, 5)}

    def test_intersection_not_pointwise_on_sets(self, mixed_tree):
        # The classic pitfall: image(p∩q, S) ⊊ image(p,S) ∩ image(q,S).
        from repro.xpath import Evaluator

        ev = Evaluator(mixed_tree)
        p = parse_path("child[a]")
        q = parse_path("child[b]")
        sources = {0, 2}
        naive = ev.image(p, sources) & ev.image(q, sources)
        correct = ev.image(xp.Intersect(p, q), sources)
        assert correct == set()  # no node is both a- and b-labelled
        assert naive != correct or not naive  # guard: the pitfall is real here

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 8), size=st.integers(1, 9))
    def test_reference_agreement(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, path_booleans=True).path(budget)
        tree = random_tree(size, rng=rng)
        assert path_pairs(tree, expr) == evaluate_pairs(tree, expr)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 8), size=st.integers(1, 8))
    def test_converse_and_simplify(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, path_booleans=True).path(budget)
        tree = random_tree(size, rng=rng)
        forward = evaluate_pairs(tree, expr)
        assert evaluate_pairs(tree, converse(expr)) == {(b, a) for a, b in forward}
        assert evaluate_pairs(tree, simplify(expr)) == forward


class TestRewriteRules:
    def test_intersection_idempotent(self):
        assert simplify(parse_path("child & child")) == xp.CHILD

    def test_intersection_with_empty(self):
        assert simplify(parse_path("child & 0")) == xp.EmptyPath()

    def test_contradiction(self):
        assert simplify(parse_path("child & ~child")) == xp.EmptyPath()

    def test_double_complement(self):
        assert simplify(parse_path("~~child")) == xp.CHILD


class TestClassification:
    def test_dialect_core2(self):
        assert dialect(parse_path("child & parent")) is Dialect.CORE2
        assert uses_path_booleans(parse_path("~child"))
        assert not is_core_xpath(parse_path("~child"))

    def test_dialect_top_when_mixed(self):
        assert dialect(parse_path("(child/child)* & parent")) is Dialect.REGULAR_W

    def test_partial_order(self):
        assert Dialect.CORE <= Dialect.CORE2 <= Dialect.REGULAR_W
        assert Dialect.CORE <= Dialect.REGULAR <= Dialect.REGULAR_W
        assert not Dialect.REGULAR <= Dialect.CORE2
        assert not Dialect.CORE2 <= Dialect.REGULAR

    def test_not_downward(self):
        assert not is_downward(parse_path("child & child[a]"))


class TestLogicSide:
    @pytest.mark.parametrize(
        "text",
        ["child & descendant", "~child", "descendant & ~(child/child)", "~self & right"],
    )
    def test_forward_translation(self, text, small_trees):
        expr = parse_path(text)
        formula = xpath_to_mtc(expr)
        for tree in small_trees[:50]:
            assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")

    def test_t2_upgrade_intersection(self, small_trees):
        formula = parse_formula("child(x,y) & descendant(x,y)")
        expr = mtc_to_path_expr(formula, "x", "y", allow_path_booleans=True)
        assert uses_path_booleans(expr)
        for tree in small_trees[:50]:
            assert formula_pairs(tree, formula, "x", "y") == path_pairs(tree, expr)

    def test_t2_upgrade_negation(self, small_trees):
        formula = parse_formula("~child(x,y)")
        expr = mtc_to_path_expr(formula, "x", "y", allow_path_booleans=True)
        for tree in small_trees[:50]:
            assert formula_pairs(tree, formula, "x", "y") == path_pairs(tree, expr)

    def test_flag_off_still_rejects(self):
        with pytest.raises(UnsupportedFormula):
            mtc_to_path_expr(parse_formula("child(x,y) & descendant(x,y)"), "x", "y")

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 7), size=st.integers(1, 8))
    def test_t1_random_with_booleans(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, path_booleans=True).path(budget)
        formula = xpath_to_mtc(expr)
        tree = random_tree(size, rng=rng)
        assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")
