"""Pretty-printer edge cases: precedence, quoting, sugar restoration."""

import pytest

from repro.trees.axes import Axis
from repro.xpath import ast as xp, parse_node, parse_path, unparse


class TestPrecedence:
    def test_union_under_composition_parenthesized(self):
        expr = xp.Seq(xp.Union(xp.CHILD, xp.PARENT), xp.RIGHT)
        assert unparse(expr) == "(child | parent)/right"
        assert parse_path(unparse(expr)) == expr

    def test_composition_under_star_parenthesized(self):
        expr = xp.Star(xp.Seq(xp.CHILD, xp.RIGHT))
        assert unparse(expr) == "(child/right)*"

    def test_or_under_and_parenthesized(self):
        expr = xp.And(xp.Or(xp.Label("a"), xp.Label("b")), xp.Label("c"))
        assert unparse(expr) == "(a or b) and c"
        assert parse_node(unparse(expr)) == expr

    def test_and_under_not_parenthesized(self):
        expr = xp.Not(xp.And(xp.Label("a"), xp.Label("b")))
        assert unparse(expr) == "not (a and b)"
        assert parse_node(unparse(expr)) == expr

    def test_nested_star(self):
        expr = xp.Star(xp.Star(xp.CHILD))
        assert parse_path(unparse(expr)) == expr


class TestSugarRestoration:
    def test_plus_restored(self):
        assert unparse(parse_path("child+")) == "child+"
        assert unparse(parse_path("(child/right)+")) == "(child/right)+"

    def test_filter_restored(self):
        assert unparse(parse_path("child[a][b]")) == "child[a][b]"

    def test_constants_restored(self):
        for text in ("true", "false", "root", "leaf", "first", "last"):
            assert unparse(parse_node(text)) == text

    def test_check_of_label(self):
        assert unparse(xp.Check(xp.Label("a"))) == "?a"

    def test_check_of_complex_test(self):
        expr = xp.Check(xp.And(xp.Label("a"), xp.Label("b")))
        assert unparse(expr) == "?(a and b)"
        assert parse_path(unparse(expr)) == expr


class TestQuoting:
    @pytest.mark.parametrize("name", ["child", "not", "true", "W", "self", "0"])
    def test_keyword_labels_quoted(self, name):
        expr = xp.Label(name)
        text = unparse(expr)
        assert text == f'"{name}"'
        assert parse_node(text) == expr

    def test_exotic_label_quoted(self):
        expr = xp.Label("weird name!")
        assert parse_node(unparse(expr)) == expr

    def test_ordinary_label_unquoted(self):
        assert unparse(xp.Label("title")) == "title"

    def test_xmlish_labels_roundtrip(self):
        for name in ("#text", "@id=5", "ns:doc"):
            expr = xp.Label(name)
            assert parse_node(unparse(expr)) == expr


class TestAllAxesPrintable:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_every_axis_roundtrips(self, axis):
        expr = xp.Step(axis)
        assert parse_path(unparse(expr)) == expr

    def test_unparse_rejects_non_expressions(self):
        with pytest.raises(TypeError):
            unparse("child")  # type: ignore[arg-type]
