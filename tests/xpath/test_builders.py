"""Tests for the Python builder algebra on AST nodes."""

import pytest

from repro.trees.axes import Axis
from repro.xpath import ast, parse_node, parse_path


class TestPathOperators:
    def test_truediv_is_composition(self):
        assert ast.CHILD / ast.PARENT == parse_path("child/parent")

    def test_or_is_union(self):
        assert (ast.LEFT | ast.RIGHT) == parse_path("left | right")

    def test_getitem_is_filter(self):
        assert ast.CHILD[ast.label("a")] == parse_path("child[a]")

    def test_getitem_coerces_path_to_exists(self):
        assert ast.CHILD[ast.RIGHT] == parse_path("child[<right>]")

    def test_star_plus_methods(self):
        assert ast.CHILD.star() == parse_path("child*")
        assert ast.CHILD.plus() == parse_path("child+")

    def test_exists_method(self):
        assert ast.CHILD.exists() == parse_node("<child>")

    def test_chained_expression(self):
        built = (ast.CHILD / ast.CHILD)[ast.label("a")].star()
        assert built == parse_path("((child/child)[a])*")

    def test_type_errors(self):
        with pytest.raises(TypeError):
            ast.CHILD / ast.label("a")  # node where path expected
        with pytest.raises(TypeError):
            ast.CHILD | "child"


class TestNodeOperators:
    def test_and_or_invert(self):
        a, b = ast.label("a"), ast.label("b")
        assert (a & b) == parse_node("a and b")
        assert (a | b) == parse_node("a or b")
        assert ~a == parse_node("not a")

    def test_coercion_of_paths_in_node_position(self):
        a = ast.label("a")
        assert (a & ast.CHILD) == parse_node("a and <child>")
        assert (a | ast.RIGHT) == parse_node("a or <right>")

    def test_within_builder(self):
        assert ast.within(ast.label("a")) == parse_node("W(a)")
        assert ast.within(ast.CHILD) == parse_node("W(<child>)")


class TestConstants:
    def test_axis_constants(self):
        assert ast.DESCENDANT == ast.Step(Axis.DESCENDANT)
        assert ast.SELF == ast.Step(Axis.SELF)

    def test_node_constants_match_parser(self):
        assert ast.TRUE == parse_node("true")
        assert ast.FALSE == parse_node("false")
        assert ast.IS_ROOT == parse_node("root")
        assert ast.IS_LEAF == parse_node("leaf")

    def test_walk_enumerates_subexpressions(self):
        expr = parse_path("child[a]/right")
        kinds = [type(e).__name__ for e in expr.walk()]
        assert kinds.count("Step") == 2
        assert "Check" in kinds and "Label" in kinds

    def test_str_uses_unparse(self):
        assert str(parse_path("child[a]")) == "child[a]"
        assert str(parse_node("not a")) == "not a"
