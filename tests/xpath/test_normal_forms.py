"""Normal-form tests: modal form and sum-of-sum-free, semantics preserved."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import random_tree
from repro.xpath import ast as xp, node_set, parse_node, parse_path, path_pairs
from repro.xpath.fragments import Dialect
from repro.xpath.normal_forms import (
    NotCoreXPath,
    distribute_unions,
    is_simple_node,
    to_modal_form,
)
from repro.xpath.random_exprs import ExprSampler


class TestModalForm:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "<child/parent>",
            "<descendant[a]/right>",
            "not <child[<right[b]>]>",
            "<(child | parent)/left>",
            "<child*[a]>",
            "<?b/child>",
            "<child[a][b]>",
            "<ancestor+>",
        ],
    )
    def test_shape_and_semantics(self, text, small_trees):
        expr = parse_node(text)
        modal = to_modal_form(expr)
        assert is_simple_node(modal), f"{modal} is not simple"
        for tree in small_trees[:60]:
            assert node_set(tree, modal) == node_set(tree, expr)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10), size=st.integers(1, 9))
    def test_random_core_expressions(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.CORE).node(budget)
        modal = to_modal_form(expr)
        assert is_simple_node(modal)
        tree = random_tree(size, rng=rng)
        assert node_set(tree, modal) == node_set(tree, expr)

    def test_self_star_collapses(self):
        assert to_modal_form(parse_node("<self/child>")) == parse_node("<child>")

    def test_general_star_rejected(self):
        with pytest.raises(NotCoreXPath):
            to_modal_form(parse_node("<(child/child)*>"))

    def test_within_rejected(self):
        with pytest.raises(NotCoreXPath):
            to_modal_form(parse_node("W(a)"))

    def test_simple_checker_rejects_compound_paths(self):
        assert not is_simple_node(parse_node("<child/parent>"))
        assert is_simple_node(parse_node("<child[a and <right>]>"))


class TestDistributeUnions:
    def test_flat_union(self):
        members = distribute_unions(parse_path("child | parent | right"))
        assert len(members) == 3

    def test_distribution_over_composition(self):
        members = distribute_unions(parse_path("(child | parent)/(left | right)"))
        assert len(members) == 4
        assert all(not isinstance(m, xp.Union) for m in members)

    def test_empty_path_vanishes(self):
        assert distribute_unions(parse_path("0 | child")) == [parse_path("child")]

    def test_union_under_star_kept(self):
        members = distribute_unions(parse_path("(child | parent)*"))
        assert len(members) == 1
        assert isinstance(members[0], xp.Star)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10), size=st.integers(1, 9))
    def test_union_of_members_is_original(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng).path(budget)
        members = distribute_unions(expr)
        tree = random_tree(size, rng=rng)
        rebuilt: set = set()
        for member in members:
            rebuilt |= path_pairs(tree, member)
        assert rebuilt == path_pairs(tree, expr)
