"""Rewrite-engine tests: targeted rules + global soundness property."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import random_tree
from repro.xpath import ast, node_set, parse_node, parse_path, path_pairs, simplify
from repro.xpath.random_exprs import ExprSampler


def simp(text, parse=parse_path):
    return simplify(parse(text))


class TestPathRules:
    def test_unit_elimination(self):
        assert simp("self/child/self") == ast.CHILD

    def test_zero_annihilates(self):
        assert simp("child/0/parent") == ast.EmptyPath()
        assert simp("0 | child") == ast.CHILD

    def test_union_dedup(self):
        assert simp("child | child") == ast.CHILD

    def test_filter_true_elimination(self):
        assert simp("child[true]") == ast.CHILD

    def test_filter_false_empties(self):
        assert simp("child[false]") == ast.EmptyPath()

    def test_filter_fusion(self):
        got = simp("child[a][b]")
        assert got == ast.Seq(ast.CHILD, ast.Check(ast.And(ast.Label("a"), ast.Label("b"))))

    def test_child_star_is_descendant_or_self(self):
        assert simp("child*") == ast.Step(ast.Axis.DESCENDANT_OR_SELF)

    def test_child_plus_is_descendant(self):
        assert simp("child+") == ast.DESCENDANT

    def test_right_star(self):
        assert simp("right*") == ast.Union(ast.SELF, ast.FOLLOWING_SIBLING)

    def test_star_star_collapse(self):
        assert simp("(child*)*") == ast.Step(ast.Axis.DESCENDANT_OR_SELF)

    def test_star_of_test_is_self(self):
        assert simp("(?a)*") == ast.SELF

    def test_star_absorbs_self_member(self):
        got = simp("(self | child/parent)*")
        assert got == ast.Star(ast.Seq(ast.CHILD, ast.PARENT))

    def test_self_descendant_union(self):
        assert simp("self | descendant") == ast.Step(ast.Axis.DESCENDANT_OR_SELF)

    def test_descendant_star(self):
        assert simp("descendant*") == ast.Step(ast.Axis.DESCENDANT_OR_SELF)


class TestNodeRules:
    def test_double_negation(self):
        assert simp("not not a", parse_node) == ast.Label("a")

    def test_conjunction_units(self):
        assert simp("a and true", parse_node) == ast.Label("a")
        assert simp("a and false", parse_node) == ast.FALSE
        assert simp("a or false", parse_node) == ast.Label("a")
        assert simp("a or true", parse_node) == ast.TRUE

    def test_contradiction_and_tautology(self):
        assert simp("a and not a", parse_node) == ast.FALSE
        assert simp("a or not a", parse_node) == ast.TRUE

    def test_exists_self_is_true(self):
        assert simp("<self>", parse_node) == ast.TRUE

    def test_exists_star_is_true(self):
        assert simp("<(child/parent)*>", parse_node) == ast.TRUE

    def test_exists_check_unwraps(self):
        assert simp("<?a>", parse_node) == ast.Label("a")

    def test_exists_union_splits(self):
        got = simp("<child[a] | 0>", parse_node)
        assert got == ast.Exists(ast.Seq(ast.CHILD, ast.Check(ast.Label("a"))))

    def test_leading_test_hoisted(self):
        got = simp("<?a/child>", parse_node)
        assert got == ast.And(ast.Label("a"), ast.Exists(ast.CHILD))

    def test_within_of_label(self):
        assert simp("W(a)", parse_node) == ast.Label("a")

    def test_within_of_downward(self):
        assert simp("W(<child[b]>)", parse_node) == parse_node("<child[b]>")

    def test_within_of_upward_kept(self):
        got = simp("W(<parent>)", parse_node)
        assert isinstance(got, ast.Within)

    def test_within_idempotent(self):
        assert simp("W(W(<parent>))", parse_node) == simp("W(<parent>)", parse_node)


class TestSoundness:
    """Every simplification must preserve semantics on random inputs."""

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 14), size=st.integers(1, 10))
    def test_path_simplify_sound(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng).path(budget)
        tree = random_tree(size, rng=rng)
        assert path_pairs(tree, simplify(expr)) == path_pairs(tree, expr)

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 14), size=st.integers(1, 10))
    def test_node_simplify_sound(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng).node(budget)
        tree = random_tree(size, rng=rng)
        assert node_set(tree, simplify(expr)) == node_set(tree, expr)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 12))
    def test_simplify_idempotent(self, seed, budget):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng).node(budget)
        once = simplify(expr)
        assert simplify(once) == once

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 12))
    def test_simplify_never_grows_much(self, seed, budget):
        # Not a semantics check: the rewriter is a simplifier, so output
        # size should not explode (allow small growth from e.g. axis
        # unfoldings like right* -> self | following_sibling).
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng).path(budget)
        assert simplify(expr).size <= expr.size + 4
