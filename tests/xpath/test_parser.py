"""Parser and pretty-printer tests (round-trip properties included)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees.axes import Axis
from repro.xpath import XPathSyntaxError, ast, parse_node, parse_path, unparse
from repro.xpath.fragments import Dialect
from repro.xpath.random_exprs import ExprSampler


class TestPathParsing:
    def test_single_axes(self):
        assert parse_path("child") == ast.CHILD
        assert parse_path("parent") == ast.PARENT
        assert parse_path("left") == ast.LEFT
        assert parse_path("right") == ast.RIGHT
        assert parse_path(".") == ast.SELF
        assert parse_path("self") == ast.SELF

    def test_derived_axes(self):
        assert parse_path("descendant") == ast.DESCENDANT
        assert parse_path("following-sibling") == ast.FOLLOWING_SIBLING
        assert parse_path("ancestor_or_self") == ast.Step(Axis.ANCESTOR_OR_SELF)

    def test_arrow_aliases(self):
        assert parse_path("↓/↑") == ast.Seq(ast.CHILD, ast.PARENT)
        assert parse_path("→+") == ast.plus(ast.RIGHT)

    def test_composition_left_associative(self):
        assert parse_path("child/parent/right") == ast.Seq(
            ast.Seq(ast.CHILD, ast.PARENT), ast.RIGHT
        )

    def test_union_binds_weaker_than_composition(self):
        assert parse_path("child/parent | right") == ast.Union(
            ast.Seq(ast.CHILD, ast.PARENT), ast.RIGHT
        )

    def test_star_and_plus(self):
        assert parse_path("child*") == ast.Star(ast.CHILD)
        assert parse_path("child+") == ast.Seq(ast.CHILD, ast.Star(ast.CHILD))
        assert parse_path("(child/right)*") == ast.Star(ast.Seq(ast.CHILD, ast.RIGHT))

    def test_filter_desugars_to_check(self):
        assert parse_path("child[a]") == ast.Seq(ast.CHILD, ast.Check(ast.Label("a")))

    def test_nested_filters(self):
        expr = parse_path("child[a][b]")
        assert expr == ast.Seq(
            ast.Seq(ast.CHILD, ast.Check(ast.Label("a"))), ast.Check(ast.Label("b"))
        )

    def test_check_atom(self):
        assert parse_path("?a") == ast.Check(ast.Label("a"))
        assert parse_path("?(a and b)") == ast.Check(
            ast.And(ast.Label("a"), ast.Label("b"))
        )

    def test_empty_path(self):
        assert parse_path("0") == ast.EmptyPath()

    def test_parentheses(self):
        assert parse_path("child/(parent | right)") == ast.Seq(
            ast.CHILD, ast.Union(ast.PARENT, ast.RIGHT)
        )

    @pytest.mark.parametrize("text", ["", "child/", "[a]", "child |", "(child", "child)"])
    def test_malformed_rejected(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_path(text)


class TestNodeParsing:
    def test_label(self):
        assert parse_node("title") == ast.Label("title")

    def test_quoted_label_collision(self):
        assert parse_node('"child"') == ast.Label("child")
        assert parse_node('"not"') == ast.Label("not")

    def test_constants(self):
        assert parse_node("true") == ast.TRUE
        assert parse_node("false") == ast.FALSE
        assert parse_node("root") == ast.IS_ROOT
        assert parse_node("leaf") == ast.IS_LEAF
        assert parse_node("first") == ast.IS_FIRST
        assert parse_node("last") == ast.IS_LAST

    def test_boolean_precedence(self):
        assert parse_node("a or b and c") == ast.Or(
            ast.Label("a"), ast.And(ast.Label("b"), ast.Label("c"))
        )
        assert parse_node("not a and b") == ast.And(
            ast.Not(ast.Label("a")), ast.Label("b")
        )

    def test_exists_brackets(self):
        assert parse_node("<child/parent>") == ast.Exists(
            ast.Seq(ast.CHILD, ast.PARENT)
        )

    def test_axis_word_starts_path_in_node_context(self):
        assert parse_node("child[b]") == ast.Exists(
            ast.Seq(ast.CHILD, ast.Check(ast.Label("b")))
        )

    def test_within(self):
        assert parse_node("W(a)") == ast.Within(ast.Label("a"))
        assert parse_node("within(a or b)") == ast.Within(
            ast.Or(ast.Label("a"), ast.Label("b"))
        )

    @pytest.mark.parametrize("text", ["", "and a", "W a", "<child", "not"])
    def test_malformed_rejected(self, text):
        with pytest.raises(XPathSyntaxError):
            parse_node(text)


class TestRoundTrip:
    SAMPLES_PATH = [
        "child",
        "descendant[i]",
        "child*[a]/descendant | parent",
        "(child[a]/right)+",
        "?(not a)/child",
        "child[not <right>]/parent+",
        "0 | self",
    ]
    SAMPLES_NODE = [
        "a",
        "not <child[b]> and W(<descendant> or root)",
        "leaf or first or last",
        '"child" and a',
        "W(W(not a))",
    ]

    @pytest.mark.parametrize("text", SAMPLES_PATH)
    def test_path_roundtrip(self, text):
        expr = parse_path(text)
        assert parse_path(unparse(expr)) == expr

    @pytest.mark.parametrize("text", SAMPLES_NODE)
    def test_node_roundtrip(self, text):
        expr = parse_node(text)
        assert parse_node(unparse(expr)) == expr

    @settings(max_examples=200, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9), budget=st.integers(1, 14))
    def test_random_path_roundtrip(self, seed, budget):
        import random

        sampler = ExprSampler(rng=random.Random(seed), dialect=Dialect.REGULAR_W)
        expr = sampler.path(budget)
        assert parse_path(unparse(expr)) == expr

    @settings(max_examples=200, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**9), budget=st.integers(1, 14))
    def test_random_node_roundtrip(self, seed, budget):
        import random

        sampler = ExprSampler(rng=random.Random(seed), dialect=Dialect.REGULAR_W)
        expr = sampler.node(budget)
        assert parse_node(unparse(expr)) == expr
