"""Evaluator tests: unit semantics + the reference/optimized agreement
property (the project's central correctness anchor)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import Tree, chain, random_tree
from repro.xpath import (
    Evaluator,
    ast,
    converse,
    evaluate_nodes,
    evaluate_pairs,
    node_set,
    parse_node,
    parse_path,
    path_pairs,
    select,
)
from repro.xpath.random_exprs import ExprSampler


class TestNodeSemantics:
    def test_label(self, mixed_tree):
        assert evaluate_nodes(mixed_tree, ast.Label("a")) == {0, 3, 5, 7}

    def test_true_false(self, mixed_tree):
        assert evaluate_nodes(mixed_tree, ast.TRUE) == frozenset(range(8))
        assert evaluate_nodes(mixed_tree, ast.FALSE) == frozenset()

    def test_boolean_connectives(self, mixed_tree):
        a = ast.Label("a")
        b = ast.Label("b")
        assert evaluate_nodes(mixed_tree, ast.And(a, ast.IS_LEAF)) == {3, 5, 7}
        assert evaluate_nodes(mixed_tree, ast.Or(a, b)) == frozenset(range(8)) - {2}
        assert evaluate_nodes(mixed_tree, ast.Not(a)) == {1, 2, 4, 6}

    def test_exists(self, mixed_tree):
        # Nodes with a b-child: 0 (child 1, 6) and 2 (child 4).
        assert evaluate_nodes(mixed_tree, parse_node("<child[b]>")) == {0, 2}

    def test_constants(self, mixed_tree):
        assert evaluate_nodes(mixed_tree, ast.IS_ROOT) == {0}
        assert evaluate_nodes(mixed_tree, ast.IS_LEAF) == {1, 3, 4, 5, 7}
        assert evaluate_nodes(mixed_tree, ast.IS_FIRST) == {0, 1, 3, 7}
        assert evaluate_nodes(mixed_tree, ast.IS_LAST) == {0, 5, 6, 7}

    def test_within_root_constant(self, mixed_tree):
        # Inside its own subtree every node is the root.
        assert evaluate_nodes(mixed_tree, parse_node("W(root)")) == frozenset(range(8))

    def test_within_blocks_upward_navigation(self, mixed_tree):
        # <parent[c]> holds at 3,4,5 globally, but W(<parent[c]>) never holds.
        assert evaluate_nodes(mixed_tree, parse_node("parent[c]")) == {3, 4, 5}
        assert evaluate_nodes(mixed_tree, parse_node("W(<parent[c]>)")) == frozenset()

    def test_within_sees_subtree_only(self):
        # "some b exists" within the subtree.
        t = Tree.build(("a", [("a", ["b"]), "a"]))
        got = evaluate_nodes(t, parse_node("W(<descendant_or_self[b]>)"))
        assert got == {0, 1, 2}

    def test_nested_within(self):
        t = Tree.build(("a", [("b", ["a", "b"])]))
        # W(not <right>) is true everywhere (each node is last in its scope).
        assert evaluate_nodes(t, parse_node("W(not <right>)")) == {0, 1, 2, 3}


class TestPathSemantics:
    def test_step_pairs(self, mixed_tree):
        assert evaluate_pairs(mixed_tree, ast.CHILD) == {
            (0, 1), (0, 2), (0, 6), (2, 3), (2, 4), (2, 5), (6, 7),
        }

    def test_seq(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("child/child"))
        assert got == {(0, 3), (0, 4), (0, 5), (0, 7)}

    def test_union(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("left | right"))
        assert (1, 2) in got and (2, 1) in got

    def test_star_is_reflexive(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("child*"))
        assert all((n, n) in got for n in mixed_tree.node_ids)
        assert got == evaluate_pairs(mixed_tree, ast.Step(ast.Axis.DESCENDANT_OR_SELF))

    def test_general_star(self, mixed_tree):
        # (child/child)* reaches even depths below.
        got = evaluate_pairs(mixed_tree, parse_path("(child/child)*"))
        assert (0, 3) in got and (0, 0) in got
        assert (0, 2) not in got

    def test_filter(self, mixed_tree):
        got = evaluate_pairs(mixed_tree, parse_path("child[a]"))
        assert got == {(2, 3), (2, 5), (6, 7)}
        got = evaluate_pairs(mixed_tree, parse_path("descendant[a]"))
        assert got == {(0, 3), (0, 5), (0, 7), (2, 3), (2, 5), (6, 7)}

    def test_empty_path(self, mixed_tree):
        assert evaluate_pairs(mixed_tree, ast.EmptyPath()) == set()

    def test_select_from_root(self, mixed_tree):
        assert select(mixed_tree, parse_path("child[b]/child")) == {7}

    def test_image_and_preimage(self, mixed_tree):
        ev = Evaluator(mixed_tree)
        p = parse_path("child")
        assert ev.image(p, {2}) == {3, 4, 5}
        assert ev.preimage(p, {3, 7}) == {2, 6}


class TestConverse:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10), size=st.integers(1, 12))
    def test_converse_inverts_relation(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng)
        expr = sampler.path(budget)
        tree = random_tree(size, rng=rng)
        forward = evaluate_pairs(tree, expr)
        backward = evaluate_pairs(tree, converse(expr))
        assert forward == {(b, a) for (a, b) in backward}

    def test_converse_involution_semantics(self, mixed_tree):
        p = parse_path("child[a]/descendant | right+")
        assert evaluate_pairs(mixed_tree, converse(converse(p))) == evaluate_pairs(
            mixed_tree, p
        )


class TestReferenceAgreement:
    """The two independent evaluators must agree — on everything."""

    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 12), size=st.integers(1, 12))
    def test_node_sets_agree(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng)
        expr = sampler.node(budget)
        tree = random_tree(size, rng=rng)
        assert set(evaluate_nodes(tree, expr)) == node_set(tree, expr)

    @settings(max_examples=150, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10), size=st.integers(1, 10))
    def test_path_pairs_agree(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng)
        expr = sampler.path(budget)
        tree = random_tree(size, rng=rng)
        assert evaluate_pairs(tree, expr) == path_pairs(tree, expr)

    def test_exhaustive_small_trees(self, small_trees):
        suite = [
            parse_node("W(<descendant[b]>) and not <right>"),
            parse_node("<(child[a])*[leaf]>"),
            parse_node("not W(<child[W(root)]>)"),
        ]
        for tree in small_trees:
            for expr in suite:
                assert set(evaluate_nodes(tree, expr)) == node_set(tree, expr)


class TestEvaluatorCaching:
    def test_repeated_queries_same_result(self, mixed_tree):
        ev = Evaluator(mixed_tree)
        expr = parse_node("<descendant[a]>")
        first = ev.nodes(expr)
        second = ev.nodes(expr)
        assert first == second
        assert first is second  # cached object

    def test_scope_distinguished_in_cache(self, mixed_tree):
        ev = Evaluator(mixed_tree)
        expr = parse_node("root")
        whole = ev.nodes(expr)
        scoped = ev.nodes(expr, scope=2)
        assert whole == {0}
        assert scoped == {2}


class TestDeepTrees:
    def test_star_on_long_chain(self):
        t = chain(300)
        got = select(t, parse_path("child*[leaf]"))
        assert got == {299}

    def test_alternating_star(self):
        t = chain(10, labels=("a", "b"))
        got = select(t, parse_path("(child[b]/child[a])*"))
        assert got == {0, 2, 4, 6, 8}
