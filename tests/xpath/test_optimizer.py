"""The cost-based query optimizer: canonical forms, semantic keys, cost model.

The load-bearing properties are the two the module docstring promises —
canonicalization is *idempotent* and *semantics-preserving* (checked
against the naive reference semantics on random expression/tree pairs, for
both evaluator backends) — plus the compile-count regression: evaluating a
syntactic variant of an already-compiled query must not compile a second
plan.
"""

import random

import pytest
from hypothesis import given, settings

from repro import obs
from repro.testing import node_expressions, path_expressions, trees
from repro.trees import chain, parse_xml, random_tree
from repro.trees.index import tree_index
from repro.xpath import (
    CostModel,
    Evaluator,
    QueryOptimizer,
    SemanticKeyer,
    canonical_key,
    canonicalize,
    canonicalize_path,
    node_set,
    parse_node,
    parse_path,
    path_pairs,
)
from repro.xpath import ast
from repro.xpath.engine.plan import compile_node_plan, compile_path_plan
from repro.xpath.optimizer import labels_used


class TestCanonicalize:
    @settings(max_examples=60, deadline=None)
    @given(expr=node_expressions(max_budget=10))
    def test_idempotent_nodes(self, expr):
        canon = canonicalize(expr)
        assert canonicalize(canon) == canon

    @settings(max_examples=60, deadline=None)
    @given(expr=path_expressions(max_budget=10))
    def test_idempotent_paths(self, expr):
        canon = canonicalize(expr)
        assert canonicalize(canon) == canon

    @settings(max_examples=40, deadline=None)
    @given(tree=trees(max_size=10), expr=node_expressions(max_budget=8))
    def test_semantics_preserved_nodes(self, tree, expr):
        # The reference evaluator never canonicalizes, so comparing it on
        # the *raw* expression against both backends on the *canonical*
        # form checks every rewrite+ordering rule end to end.
        expected = node_set(tree, expr)
        canon = canonicalize(expr)
        for backend in ("sets", "bitset"):
            got = set(Evaluator(tree, backend=backend).nodes(canon))
            assert got == expected, (backend, expr, canon)

    @settings(max_examples=40, deadline=None)
    @given(tree=trees(max_size=10), expr=path_expressions(max_budget=8))
    def test_semantics_preserved_paths(self, tree, expr):
        expected = path_pairs(tree, expr)
        canon = canonicalize(expr)
        for backend in ("sets", "bitset"):
            got = set(Evaluator(tree, backend=backend).pairs(canon))
            assert got == expected, (backend, expr, canon)

    @pytest.mark.parametrize(
        "left, right",
        [
            ("<descendant[b]>", "<child/child*[b]>"),
            ("<parent*[a]>", "<ancestor_or_self[a]>"),
            ("<child[a or b]>", "<child[b or a]>"),
            ("<child[a]> and <right>", "<right> and <child[a]>"),
        ],
    )
    def test_node_variants_share_one_key(self, left, right):
        assert canonical_key(parse_node(left)) == canonical_key(parse_node(right))

    @pytest.mark.parametrize(
        "left, right",
        [
            ("descendant[a]", "child/child*[a]"),
            ("child | parent", "parent | child"),
            ("child & (child | parent)", "(parent | child) & child"),
        ],
    )
    def test_path_variants_share_one_key(self, left, right):
        assert canonical_key(parse_path(left)) == canonical_key(parse_path(right))

    def test_keys_are_sorted(self):
        # Node and path sorts must never alias, whatever the unparse text.
        assert canonical_key(parse_node("<child>")).startswith("N:")
        assert canonical_key(parse_path("child")).startswith("P:")

    def test_labels_used(self):
        expr = parse_node("<descendant[a and <right[b]>]>")
        assert labels_used(expr) == {"a", "b"}


class TestPlanCompileCount:
    """Satellite (a): canonical plan aliasing stops duplicate compilation."""

    def test_variant_does_not_recompile(self):
        tree = random_tree(64, rng=random.Random(7))
        index = tree_index(tree)
        compiles = obs.counter("xpath_plan_compile_total")
        ev = Evaluator(tree, backend="bitset")

        ev.nodes(parse_node("<descendant[b]>"))
        before = compiles.value
        ev.nodes(parse_node("<child/child*[b]>"))  # same canonical form
        assert compiles.value == before, "variant triggered a structural compile"
        # The raw key is cached as an alias of the canonical plan object.
        raw = parse_path("child/child*[b]")
        assert compile_path_plan(index, raw) is compile_path_plan(
            index, canonicalize_path(raw)
        )

    def test_node_plan_aliases_canonical(self):
        tree = chain(16, labels=("a", "b"))
        index = tree_index(tree)
        raw = parse_node("<child[b or a]>")
        canon = canonicalize(raw)
        assert canon != raw
        assert compile_node_plan(index, raw) is compile_node_plan(index, canon)


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()

    def test_features_selectivity_bounds(self):
        tree = parse_xml("<a><b/><b/><c/></a>")
        index = tree_index(tree)
        f = CostModel.features(parse_node("<descendant[b]>"), index)
        assert 0.0 <= f["selectivity"] <= 1.0
        assert f["heavy_steps"] == 1
        # A label absent from the tree is perfectly selective.
        absent = CostModel.features(parse_node("<descendant[z]>"), index)
        assert absent["selectivity"] == 0.0

    def test_estimate_scales_with_tree_size(self):
        expr = parse_node("<descendant[a]>")
        small = CostModel.estimate(expr, tree_index(chain(8, labels=("a",))))
        large = CostModel.estimate(expr, tree_index(chain(512, labels=("a",))))
        assert large["bitset"] > small["bitset"]
        assert large["sets"] > small["sets"]

    def test_choose_prefers_sets_on_tiny_trees(self):
        # The bitset dispatch floor dominates a 4-node document.
        tree = parse_xml("<a><b/><b/><c/></a>")
        assert self.model.choose(parse_node("<child[b]>"), tree) == "sets"

    def test_choose_prefers_bitset_on_star_heavy_work(self):
        tree = chain(512, labels=("a", "b"))
        expr = parse_path("(child[a] | child[b])*")
        assert self.model.choose(expr, tree) == "bitset"

    def test_observe_calibrates_rates(self):
        tree = chain(64, labels=("a", "b"))
        expr = parse_node("<descendant[a]>")
        units = CostModel.estimate(expr, tree_index(tree))["bitset"]
        self.model.observe("bitset", expr, tree, seconds=units * 5e-6)
        # The first observation replaces the prior outright (alpha=1).
        assert self.model.rates()["bitset"] == pytest.approx(5e-6)
        self.model.observe("bitset", expr, tree, seconds=units * 1e-5)
        rate = self.model.rates()["bitset"]
        assert 5e-6 < rate < 1e-5  # EWMA moves toward, not onto, the sample

    def test_choice_adapts_to_observed_latency(self):
        tree = parse_xml("<a><b/><b/><c/></a>")
        expr = parse_node("<child[b]>")
        assert self.model.choose(expr, tree) == "sets"
        # Feed back a pathologically slow sets run: the choice flips.
        units = CostModel.estimate(expr, tree_index(tree))["sets"]
        self.model.observe("sets", expr, tree, seconds=units * 1.0)
        assert self.model.choose(expr, tree) == "bitset"

    def test_observe_ignores_unknown_backend_and_bad_samples(self):
        tree = parse_xml("<a/>")
        expr = parse_node("<child>")
        before = self.model.rates()
        self.model.observe("oracle", expr, tree, seconds=1.0)
        self.model.observe("sets", expr, tree, seconds=-1.0)
        assert self.model.rates() == before


class TestSemanticKeyer:
    def test_probe_collapses_equivalent_downward_queries(self):
        keyer = SemanticKeyer()
        base = canonicalize(parse_path("descendant"))
        variant = canonicalize(parse_path("descendant[a] | descendant"))
        assert keyer.key_for(variant) == keyer.key_for(base)

    def test_inequivalent_queries_keep_distinct_keys(self):
        keyer = SemanticKeyer()
        left = canonicalize(parse_node("<descendant[a]>"))
        right = canonicalize(parse_node("<descendant[b]>"))
        assert keyer.key_for(left) != keyer.key_for(right)

    def test_budget_trip_keeps_syntactic_key(self):
        # With a one-step probe budget every probe trips; collapsing is an
        # optimization, so the keyer must degrade to canonical keys.
        keyer = SemanticKeyer(probe_steps=1, probe_timeout=1e-9)
        base = canonicalize(parse_path("descendant"))
        variant = canonicalize(parse_path("descendant[a] | descendant"))
        assert keyer.key_for(base) != keyer.key_for(variant)

    def test_oversize_and_non_downward_skip_probes(self):
        keyer = SemanticKeyer(max_size=2)
        big = canonicalize(parse_path("descendant[a] | descendant"))
        assert keyer.key_for(big) == canonical_key(big)
        upward = canonicalize(parse_path("parent[a]"))
        assert keyer.key_for(upward) == canonical_key(upward)

    def test_representative_set_is_bounded(self):
        keyer = SemanticKeyer(max_representatives=4)
        for i in range(16):
            keyer.key_for(canonicalize(parse_node(f"<descendant[l{i}]>")))
        assert len(keyer._reps["N"]) <= 4


class TestQueryOptimizerFacade:
    def test_prepare_returns_canonical_and_key(self):
        opt = QueryOptimizer(semantic_probes=False)
        raw = parse_node("<child/child*[b]>")
        canon, key = opt.prepare(raw)
        assert canon == canonicalize(raw)
        assert key == canonical_key(raw)

    def test_prepare_path_and_node_type_narrow(self):
        opt = QueryOptimizer(semantic_probes=False)
        canon, _ = opt.prepare_path(parse_path("child/child*"))
        assert isinstance(canon, ast.PathExpr)
        canon, _ = opt.prepare_node(parse_node("<child>"))
        assert isinstance(canon, ast.NodeExpr)

    def test_choose_and_observe_round_trip(self):
        opt = QueryOptimizer(semantic_probes=False)
        tree = chain(64, labels=("a", "b"))
        expr = parse_node("<descendant[a]>")
        backend = opt.choose(expr, tree)
        assert backend in ("sets", "bitset")
        opt.observe(backend, expr, tree, seconds=1e-4)
        assert opt.cost.rates()[backend] > 0
