"""Dialect/fragment classification tests."""

import pytest

from repro.trees.axes import Axis
from repro.xpath import (
    Dialect,
    axes_used,
    dialect,
    filter_depth,
    is_core_xpath,
    is_downward,
    is_regular_xpath,
    parse_node,
    parse_path,
    star_height,
    uses_within,
)


class TestDialectLadder:
    @pytest.mark.parametrize(
        "text",
        ["child", "descendant[a]/parent+", "child[not <right[b]>]", "ancestor | left"],
    )
    def test_core_expressions(self, text):
        expr = parse_path(text)
        assert dialect(expr) is Dialect.CORE
        assert is_core_xpath(expr) and is_regular_xpath(expr)

    @pytest.mark.parametrize("text", ["(child/child)*", "(child[a])+", "(left|right)*"])
    def test_regular_expressions(self, text):
        expr = parse_path(text)
        assert dialect(expr) is Dialect.REGULAR
        assert not is_core_xpath(expr) and is_regular_xpath(expr)

    @pytest.mark.parametrize("text", ["W(a)", "not W(<child>)", "<child[W(root)]>"])
    def test_regular_w_expressions(self, text):
        expr = parse_node(text)
        assert dialect(expr) is Dialect.REGULAR_W
        assert uses_within(expr)

    def test_core_allows_single_axis_closure(self):
        # s+ and s* over primitive steps stay Core (they are the built-in
        # transitive axes).
        assert dialect(parse_path("child+")) is Dialect.CORE
        assert dialect(parse_path("right*")) is Dialect.CORE

    def test_dialect_order(self):
        assert Dialect.CORE <= Dialect.REGULAR <= Dialect.REGULAR_W
        assert not Dialect.REGULAR_W <= Dialect.CORE


class TestAxesUsed:
    def test_primitive_attribution(self):
        assert axes_used(parse_path("descendant/left")) == {Axis.CHILD, Axis.LEFT}
        assert axes_used(parse_path("ancestor_or_self")) == {Axis.PARENT}

    def test_self_contributes_nothing(self):
        assert axes_used(parse_path("self")) == frozenset()

    def test_following_counts_all(self):
        assert axes_used(parse_path("following")) == {
            Axis.CHILD, Axis.PARENT, Axis.LEFT, Axis.RIGHT,
        }

    def test_node_expression_axes(self):
        assert axes_used(parse_node("<child> and not <right>")) == {
            Axis.CHILD, Axis.RIGHT,
        }


class TestDownwardFragment:
    @pytest.mark.parametrize(
        "text", ["a", "<child[b]>", "W(<descendant>)", "<(child/child)*>", "leaf"]
    )
    def test_downward(self, text):
        assert is_downward(parse_node(text))

    @pytest.mark.parametrize("text", ["<parent>", "root", "first", "<right>", "<ancestor[a]>"])
    def test_not_downward(self, text):
        assert not is_downward(parse_node(text))


class TestMetrics:
    def test_star_height(self):
        assert star_height(parse_path("child")) == 0
        assert star_height(parse_path("child*")) == 1
        assert star_height(parse_path("descendant")) == 1
        assert star_height(parse_path("((child*)[a]/right)*")) == 2

    def test_filter_depth(self):
        assert filter_depth(parse_path("child")) == 0
        assert filter_depth(parse_path("child[a]")) == 1
        assert filter_depth(parse_path("child[<child[b]>]")) == 3  # Check, Exists, Check

    def test_size(self):
        assert parse_path("child").size == 1
        assert parse_path("child/parent").size == 3
        assert parse_node("a and b").size == 3
