"""Scoped (``W``-operator) axis edge cases, asserted identically on both
evaluation backends and against the materialized ``subtree()`` ground truth.

The ``W`` operator evaluates its test *in the subtree rooted at the current
node*: the scope root must behave exactly like the root of a standalone
tree (no parent, no siblings, nothing preceding it), and the horizontal
document-order axes must clip at the subtree boundary."""

import random

import pytest

from repro.trees import Tree, random_tree
from repro.trees.axes import Axis, axis_image
from repro.xpath import Evaluator, parse_node
from repro.xpath.random_exprs import ExprSampler

BACKENDS = ("sets", "bitset")


def both(tree, expr, scope=None):
    """Evaluate on both backends, assert agreement, return the node set."""
    results = {
        backend: set(Evaluator(tree, backend=backend).nodes(expr, scope))
        for backend in BACKENDS
    }
    assert results["sets"] == results["bitset"], expr
    return results["sets"]


@pytest.fixture(scope="module")
def bushy():
    # a(b(a, b), c(a(b), b), a)  — ids 0..8, scope roots at every depth.
    return Tree.build(
        ("a", [("b", ["a", "b"]), ("c", [("a", ["b"]), "b"]), "a"])
    )


class TestScopeRootIsolation:
    """The scope root has no parent and no siblings inside its scope."""

    def test_no_parent_within_scope(self, bushy):
        # Globally every non-root has a parent; under W nobody does at the top.
        assert both(bushy, parse_node("<parent>")) == set(range(1, 9))
        assert both(bushy, parse_node("W(<parent>)")) == set()

    def test_no_siblings_within_scope(self, bushy):
        assert both(bushy, parse_node("W(<right>)")) == set()
        assert both(bushy, parse_node("W(<left>)")) == set()
        assert both(bushy, parse_node("W(<right+>)")) == set()
        assert both(bushy, parse_node("W(<left+>)")) == set()

    def test_no_ancestor_within_scope(self, bushy):
        assert both(bushy, parse_node("W(<ancestor>)")) == set()

    def test_scoped_image_from_scope_root(self, bushy):
        for scope in bushy.node_ids:
            for backend in BACKENDS:
                ev = Evaluator(bushy, backend=backend)
                for text in ("parent", "right", "left", "ancestor"):
                    from repro.xpath import parse_path

                    assert ev.image(parse_path(text), {scope}, scope) == set(), (
                        scope,
                        text,
                        backend,
                    )


class TestHorizontalClipping:
    """``following``/``preceding`` stop at the scope's subtree boundary."""

    def test_following_clipped(self, bushy):
        # Node 2 ("b", second child of node 1) globally has following nodes,
        # but within the subtree of node 1 only node 3 follows node 2.
        ev = {b: Evaluator(bushy, backend=b) for b in BACKENDS}
        from repro.xpath import parse_path

        for backend, e in ev.items():
            glob = e.image(parse_path("following"), {2})
            scoped = e.image(parse_path("following"), {2}, scope=1)
            assert scoped == {3}, backend
            assert scoped < glob, backend

    def test_preceding_clipped(self, bushy):
        from repro.xpath import parse_path

        for backend in BACKENDS:
            e = Evaluator(bushy, backend=backend)
            glob = e.image(parse_path("preceding"), {7})
            scoped = e.image(parse_path("preceding"), {7}, scope=4)
            # Within subtree(4) = {4,5,6,7}, only 5 and 6 precede 7.
            assert scoped == {5, 6}, backend
            assert scoped < glob, backend

    def test_kernel_level_clipping_random(self):
        rng = random.Random(77)
        from repro.xpath.engine import from_ids, to_set, tree_index

        for __ in range(25):
            tree = random_tree(rng.randint(2, 25), rng=rng)
            scope = rng.randrange(tree.size)
            index = tree_index(tree)
            sc = index.scope(scope)
            members = set(tree.subtree_ids(scope))
            for axis in (Axis.FOLLOWING, Axis.PRECEDING):
                sources = {n for n in members if rng.random() < 0.5}
                got = to_set(index.kernel(axis)(from_ids(sources), sc))
                assert got == axis_image(tree, sources, axis, scope)
                assert got <= members


class TestWithinAtLeaf:
    def test_leaf_scope_is_trivial(self, bushy):
        # In a leaf's subtree the leaf is root, leaf, first and last at once.
        leaves = both(bushy, parse_node("leaf"))
        assert both(bushy, parse_node("W(root and leaf)")) >= leaves
        assert both(bushy, parse_node("W(<child>)")) == both(
            bushy, parse_node("<child>")
        )

    def test_leaf_scope_no_navigation(self, bushy):
        # Any move off a leaf-scope root is impossible.
        got = both(bushy, parse_node("leaf and W(<descendant | parent | right | left>)"))
        assert got == set()


class TestNestedWithin:
    def test_nested_within_within(self, bushy):
        # W(W φ) == W φ: the inner scope of the scope root is the same scope.
        inner = both(bushy, parse_node("W(<descendant[b]>)"))
        nested = both(bushy, parse_node("W(W(<descendant[b]>))"))
        assert inner == nested

    def test_within_under_navigation_inside_within(self, bushy):
        # A W nested under navigation re-scopes at a *deeper* node.
        expr = parse_node("W(<child[W(<child[b]>)]>)")
        got = both(bushy, expr)
        # Node 0: child 4 has a b-child within subtree(4) -> holds.
        assert 0 in got
        # Node 3 (subtree of 1): children of 3? none -> fails.
        assert 3 not in got

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_random_nested_within_agree(self, backend):
        rng = random.Random(2008)
        sampler = ExprSampler(rng=rng)
        from repro.xpath import ast
        from repro.xpath.reference import node_set

        for __ in range(30):
            tree = random_tree(rng.randint(1, 10), rng=rng)
            expr = ast.Within(ast.Within(sampler.node(5)))
            got = set(Evaluator(tree, backend=backend).nodes(expr))
            assert got == node_set(tree, expr)


class TestSubtreeGroundTruth:
    """n ⊨ W φ on T  iff  root ⊨ φ on the standalone copy subtree(n),
    for both backends — the specification reading of ``W``."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_against_materialized_subtrees(self, backend):
        rng = random.Random(424242)
        sampler = ExprSampler(rng=rng)
        for __ in range(20):
            tree = random_tree(rng.randint(1, 12), rng=rng)
            test = sampler.node(rng.randint(1, 8))
            from repro.xpath import ast

            within_holds = set(
                Evaluator(tree, backend=backend).nodes(ast.Within(test))
            )
            for n in tree.node_ids:
                standalone = Evaluator(tree.subtree(n), backend=backend)
                assert (n in within_holds) == standalone.holds_at(test, 0), (
                    tree.to_shape(),
                    test,
                    n,
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_scoped_evaluation_matches_subtree_copy(self, backend):
        # nodes(φ, scope=s) on T must equal nodes(φ) on subtree(s), shifted.
        rng = random.Random(11)
        sampler = ExprSampler(rng=rng)
        for __ in range(20):
            tree = random_tree(rng.randint(2, 12), rng=rng)
            scope = rng.randrange(tree.size)
            expr = sampler.node(rng.randint(1, 8))
            scoped = set(Evaluator(tree, backend=backend).nodes(expr, scope))
            copied = set(
                Evaluator(tree.subtree(scope), backend=backend).nodes(expr)
            )
            assert scoped == {n + scope for n in copied}, (
                tree.to_shape(),
                scope,
                expr,
            )
