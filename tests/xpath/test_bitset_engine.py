"""Bitset backend tests: kernel-level ground truth, backend dispatch, plan
sharing, and the three-way agreement property (bitset = sets = reference)
over the full Regular XPath(W) + path-boolean language."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trees import Tree, chain, random_tree
from repro.trees.axes import Axis, axis_image, axis_pairs, interval_axis_pairs
from repro.xpath import (
    BitsetEvaluator,
    Evaluator,
    SetEvaluator,
    ast,
    parse_node,
    parse_path,
)
from repro.xpath.engine import (
    bit,
    compile_node_plan,
    compile_path_plan,
    from_ids,
    iter_bits,
    iter_bits_reversed,
    to_frozenset,
    to_ids,
    to_set,
    tree_index,
)
from repro.xpath.random_exprs import ExprSampler
from repro.xpath.reference import node_set, path_pairs


class TestBitsetPrimitives:
    def test_roundtrip(self):
        ids = [0, 3, 5, 70, 200]
        mask = from_ids(ids)
        assert to_ids(mask) == ids
        assert to_set(mask) == set(ids)
        assert to_frozenset(mask) == frozenset(ids)

    def test_iter_bits_orders(self):
        mask = from_ids([1, 64, 65, 300])
        assert list(iter_bits(mask)) == [1, 64, 65, 300]
        assert list(iter_bits_reversed(mask)) == [300, 65, 64, 1]

    def test_empty_mask(self):
        assert to_ids(0) == []
        assert list(iter_bits(0)) == []

    def test_bit(self):
        assert bit(5) == 32


class TestKernelsAgainstAxisImage:
    """Every kernel must equal the per-node generator semantics, scoped and
    unscoped, on randomized trees and source sets."""

    @pytest.mark.parametrize("axis", list(Axis))
    def test_unscoped(self, axis):
        rng = random.Random(hash(axis.value) & 0xFFFF)
        for __ in range(20):
            tree = random_tree(rng.randint(1, 30), rng=rng)
            index = tree_index(tree)
            sources = {n for n in tree.node_ids if rng.random() < 0.4}
            expected = axis_image(tree, sources, axis)
            sc = index.scope(None)
            got = index.kernel(axis)(from_ids(sources), sc)
            assert to_set(got) == expected, (axis, tree.to_shape(), sources)

    @pytest.mark.parametrize("axis", list(Axis))
    def test_scoped(self, axis):
        rng = random.Random(hash(axis.value) & 0xFFF7)
        for __ in range(20):
            tree = random_tree(rng.randint(2, 30), rng=rng)
            index = tree_index(tree)
            scope = rng.randrange(tree.size)
            in_scope = list(tree.subtree_ids(scope))
            sources = {n for n in in_scope if rng.random() < 0.5}
            expected = axis_image(tree, sources, axis, scope)
            sc = index.scope(scope)
            got = index.kernel(axis)(from_ids(sources), sc)
            assert to_set(got) == expected, (axis, tree.to_shape(), scope, sources)

    def test_full_universe_matches_axis_pairs_targets(self):
        tree = random_tree(40, rng=random.Random(9))
        index = tree_index(tree)
        sc = index.scope(None)
        for axis in Axis:
            targets = {m for __, m in axis_pairs(tree, axis)}
            got = index.kernel(axis)(index.full, sc)
            assert to_set(got) == targets, axis


class TestBackendDispatch:
    def test_default_is_sets(self, mixed_tree):
        ev = Evaluator(mixed_tree)
        assert isinstance(ev, SetEvaluator)
        assert ev.backend == "sets"

    def test_bitset_dispatch(self, mixed_tree):
        ev = Evaluator(mixed_tree, backend="bitset")
        assert isinstance(ev, BitsetEvaluator)
        assert isinstance(ev, Evaluator)
        assert ev.backend == "bitset"

    def test_unknown_backend_rejected(self, mixed_tree):
        with pytest.raises(ValueError):
            Evaluator(mixed_tree, backend="numpy")

    def test_subclass_direct_construction(self, mixed_tree):
        assert isinstance(SetEvaluator(mixed_tree), SetEvaluator)
        assert isinstance(BitsetEvaluator(mixed_tree), BitsetEvaluator)

    def test_subclass_backend_mismatch_rejected(self, mixed_tree):
        with pytest.raises(ValueError):
            SetEvaluator(mixed_tree, backend="bitset")


class TestPlanSharing:
    def test_plans_shared_structurally(self, mixed_tree):
        index = tree_index(mixed_tree)
        p1 = parse_path("child[a]/descendant")
        p2 = parse_path("child[a]/descendant")
        assert p1 is not p2  # distinct objects ...
        assert compile_path_plan(index, p1) is compile_path_plan(index, p2)

    def test_plans_shared_across_evaluators(self, mixed_tree):
        expr = parse_node("<descendant[a]>")
        e1 = Evaluator(mixed_tree, backend="bitset")
        e2 = Evaluator(mixed_tree, backend="bitset")
        assert e1.index is e2.index
        compile_node_plan(e1.index, expr)
        assert expr in e1.index.node_plans
        assert e1.nodes(expr) == e2.nodes(expr)

    def test_node_memo_structural(self, mixed_tree):
        ev = Evaluator(mixed_tree, backend="bitset")
        first = ev.nodes(parse_node("<descendant[a]>"))
        second = ev.nodes(parse_node("<descendant[a]>"))
        assert first == second
        assert first is not None

    def test_sets_memo_structural(self, mixed_tree):
        # The sets backend's memo is keyed on the expression itself now,
        # so structurally equal parses share one cache entry.
        ev = Evaluator(mixed_tree)
        first = ev.nodes(parse_node("<descendant[a]>"))
        second = ev.nodes(parse_node("<descendant[a]>"))
        assert first is second


class TestThreeWayAgreement:
    """bitset = sets = reference on random trees × random expressions,
    including ``W``, ``Intersect`` and ``Complement``."""

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 12), size=st.integers(1, 12))
    def test_node_sets_agree(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, path_booleans=True)
        expr = sampler.node(budget)
        tree = random_tree(size, rng=rng)
        reference = node_set(tree, expr)
        assert set(Evaluator(tree, backend="bitset").nodes(expr)) == reference
        assert set(Evaluator(tree, backend="sets").nodes(expr)) == reference

    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10), size=st.integers(1, 10))
    def test_pairs_agree(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, path_booleans=True)
        expr = sampler.path(budget)
        tree = random_tree(size, rng=rng)
        reference = path_pairs(tree, expr)
        assert Evaluator(tree, backend="bitset").pairs(expr) == reference
        assert Evaluator(tree, backend="sets").pairs(expr) == reference

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10), size=st.integers(1, 12))
    def test_images_and_preimages_agree(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, path_booleans=True)
        expr = sampler.path(budget)
        tree = random_tree(size, rng=rng)
        sources = {n for n in tree.node_ids if rng.random() < 0.5}
        bits = Evaluator(tree, backend="bitset")
        sets_ = Evaluator(tree, backend="sets")
        assert bits.image(expr, sources) == sets_.image(expr, sources)
        assert bits.preimage(expr, sources) == sets_.preimage(expr, sources)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 8), size=st.integers(2, 12))
    def test_scoped_nodes_agree(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, path_booleans=True)
        expr = sampler.node(budget)
        tree = random_tree(size, rng=rng)
        scope = rng.randrange(tree.size)
        assert Evaluator(tree, backend="bitset").nodes(expr, scope) == Evaluator(
            tree, backend="sets"
        ).nodes(expr, scope)


class TestPairsFastPath:
    @pytest.mark.parametrize(
        "axis",
        [
            Axis.DESCENDANT,
            Axis.DESCENDANT_OR_SELF,
            Axis.ANCESTOR,
            Axis.ANCESTOR_OR_SELF,
            Axis.FOLLOWING,
            Axis.PRECEDING,
        ],
    )
    def test_interval_pairs_match_reference(self, axis):
        rng = random.Random(hash(axis.value) & 0xFFF)
        for __ in range(15):
            tree = random_tree(rng.randint(1, 25), rng=rng)
            assert interval_axis_pairs(tree, axis) == axis_pairs(tree, axis)
            scope = rng.randrange(tree.size)
            assert interval_axis_pairs(tree, axis, scope) == axis_pairs(
                tree, axis, scope
            )

    def test_non_interval_axis_returns_none(self, mixed_tree):
        assert interval_axis_pairs(mixed_tree, Axis.CHILD) is None

    @pytest.mark.parametrize("backend", ("sets", "bitset"))
    def test_evaluator_pairs_use_fast_path_consistently(self, backend, mixed_tree):
        for text in ("descendant", "ancestor", "following", "preceding"):
            expr = parse_path(text)
            got = Evaluator(mixed_tree, backend=backend).pairs(expr)
            assert got == path_pairs(mixed_tree, expr), text


class TestStarStrengthReduction:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_star_of_axis_equals_reference(self, axis):
        rng = random.Random(hash(axis.value) & 0x7FF)
        for __ in range(8):
            tree = random_tree(rng.randint(1, 14), rng=rng)
            expr = ast.Star(ast.Step(axis))
            assert Evaluator(tree, backend="bitset").pairs(expr) == path_pairs(
                tree, expr
            )

    def test_deep_chain_star_no_recursion(self):
        tree = chain(3000, labels=("a", "b"))
        got = Evaluator(tree, backend="bitset").image(parse_path("child*[leaf]"), {0})
        assert got == {2999}

    def test_general_star_saturation(self):
        tree = chain(10, labels=("a", "b"))
        got = Evaluator(tree, backend="bitset").image(
            parse_path("(child[b]/child[a])*"), {0}
        )
        assert got == {0, 2, 4, 6, 8}


class TestBitsetExtras:
    def test_node_mask(self, mixed_tree):
        ev = BitsetEvaluator(mixed_tree)
        mask = ev.node_mask(parse_node("a"))
        assert to_set(mask) == {0, 3, 5, 7}

    def test_image_mask(self, mixed_tree):
        ev = BitsetEvaluator(mixed_tree)
        got = ev.image_mask(parse_path("child"), bit(2))
        assert to_set(got) == {3, 4, 5}

    def test_holds_at(self, mixed_tree):
        ev = Evaluator(mixed_tree, backend="bitset")
        assert ev.holds_at(parse_node("<child[b]>"), 0)
        assert not ev.holds_at(parse_node("<child[b]>"), 1)
