"""Unit tests for the reference-semantics helpers (the spec's vocabulary)."""

from repro.trees import Tree
from repro.xpath.reference import compose, transitive_reflexive_closure


class TestCompose:
    def test_basic_composition(self):
        left = {(0, 1), (0, 2)}
        right = {(1, 3), (2, 3), (2, 4)}
        assert compose(left, right) == {(0, 3), (0, 4)}

    def test_empty_operands(self):
        assert compose(set(), {(0, 1)}) == set()
        assert compose({(0, 1)}, set()) == set()

    def test_composition_is_associative(self):
        a = {(0, 1), (1, 2)}
        b = {(1, 1), (2, 0)}
        c = {(0, 2), (1, 0)}
        assert compose(compose(a, b), c) == compose(a, compose(b, c))

    def test_identity_neutral(self):
        rel = {(0, 1), (2, 2)}
        identity = {(n, n) for n in range(3)}
        assert compose(rel, identity) == rel
        assert compose(identity, rel) == rel


class TestClosure:
    def test_reflexive_part(self):
        closed = transitive_reflexive_closure(set(), range(3))
        assert closed == {(0, 0), (1, 1), (2, 2)}

    def test_chain_closure(self):
        relation = {(0, 1), (1, 2), (2, 3)}
        closed = transitive_reflexive_closure(relation, range(4))
        assert (0, 3) in closed and (1, 3) in closed
        assert (3, 0) not in closed

    def test_cycle_closure(self):
        relation = {(0, 1), (1, 0)}
        closed = transitive_reflexive_closure(relation, range(2))
        assert closed == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_idempotent(self):
        relation = {(0, 1), (1, 2)}
        once = transitive_reflexive_closure(relation, range(3))
        twice = transitive_reflexive_closure(once, range(3))
        assert once == twice
