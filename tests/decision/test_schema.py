"""Schema-aware exact static analysis (satisfiability/equivalence under a DTD)."""

import pytest

from repro.automata import Dtd
from repro.decision import (
    exact_contained_under,
    exact_equivalent,
    exact_equivalent_under,
    exact_satisfiable,
    exact_satisfiable_under,
)
from repro.xpath import Evaluator, parse_node


@pytest.fixture(scope="module")
def biblio():
    return Dtd(
        root="bib",
        content={
            "bib": "(conf | journal)*",
            "conf": "paper+",
            "journal": "paper*",
            "paper": "title, author+, award?",
            "title": "EMPTY",
            "author": "EMPTY",
            "award": "EMPTY",
        },
    )


class TestSatisfiabilityUnderSchema:
    def test_witness_conforms_and_satisfies(self, biblio):
        expr = parse_node("award")
        witness = exact_satisfiable_under(expr, biblio)
        assert witness is not None
        assert biblio.conforms(witness)
        assert any(
            witness.labels[v] == "award" for v in witness.node_ids
        )

    def test_schema_prunes_general_satisfiability(self, biblio):
        # An authorless paper exists in general but not under the schema.
        expr = parse_node("paper and not <child[author]>")
        assert exact_satisfiable(expr, biblio.elements) is not None
        assert exact_satisfiable_under(expr, biblio) is None

    def test_at_root_variant(self, biblio):
        # Only the root is a bib; a paper can never be the root.
        assert exact_satisfiable_under(parse_node("bib"), biblio, at_root=True) is not None
        assert exact_satisfiable_under(parse_node("paper"), biblio, at_root=True) is None
        # ...but a paper exists somewhere.
        assert exact_satisfiable_under(parse_node("paper"), biblio) is not None

    def test_unsatisfiable_regardless(self, biblio):
        assert exact_satisfiable_under(parse_node("title and <child>"), biblio) is None

    def test_deep_structural_requirement(self, biblio):
        expr = parse_node("conf and <child[paper and <child[award]>]>")
        witness = exact_satisfiable_under(expr, biblio)
        assert witness is not None
        assert biblio.conforms(witness)
        nodes = Evaluator(witness).nodes(expr)
        assert nodes


class TestEquivalenceUnderSchema:
    def test_schema_relative_theorem(self, biblio):
        # Under this DTD every paper has a title child — not true in general.
        left = parse_node("paper")
        right = parse_node("paper and <child[title]>")
        assert exact_equivalent_under(left, right, biblio) is None
        assert exact_equivalent(left, right, biblio.elements) is not None

    def test_inequivalence_detected_with_conforming_witness(self, biblio):
        left = parse_node("paper")
        right = parse_node("paper and <child[award]>")
        witness = exact_equivalent_under(left, right, biblio)
        assert witness is not None
        assert biblio.conforms(witness)
        evaluator = Evaluator(witness)
        assert evaluator.nodes(left) != evaluator.nodes(right)

    def test_leaves_are_schema_determined(self, biblio):
        # titles, authors, awards are EMPTY: 'title' ≡ 'title and leaf'.
        assert exact_equivalent_under(
            parse_node("title"), parse_node("title and leaf"), biblio
        ) is None


class TestContainmentUnderSchema:
    def test_containment_holds_under_schema_only(self, biblio):
        # Every award sits under a paper that also has an author.
        small = parse_node("<child[award]>")
        large = parse_node("<child[author]>")
        assert exact_contained_under(small, large, biblio) is None
        # Without the schema this fails.
        from repro.decision import exact_contained

        assert exact_contained(small, large, biblio.elements) is not None

    def test_violation_witnessed(self, biblio):
        small = parse_node("<child[paper]>")
        large = parse_node("conf")
        witness = exact_contained_under(small, large, biblio)
        assert witness is not None  # journals also contain papers
        assert biblio.conforms(witness)
