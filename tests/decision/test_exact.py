"""Exact decision procedures for the downward fragment.

These are *complete*: a None answer is a theorem over all trees of the
alphabet, not corpus-bounded evidence.  The tests cross-validate against the
evaluator (every witness must actually witness) and against the corpus
harness (exact-equivalent pairs must have no corpus counterexample).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.decision import (
    DownwardAnalysis,
    NotDownward,
    check_node_equivalence,
    exact_contained,
    exact_equivalent,
    exact_satisfiable,
    standard_corpus,
)
from repro.trees import all_trees
from repro.xpath import Evaluator, parse_node, simplify
from repro.xpath.fragments import is_downward
from repro.xpath.random_exprs import ExprSampler


def holds_at_root(tree, expr) -> bool:
    return 0 in Evaluator(tree).nodes(expr)


class TestSatisfiability:
    @pytest.mark.parametrize(
        "text",
        [
            "a",
            "<child[a]> and <child[b]> and not a",
            "<descendant[b and leaf]>",
            "W(<(child/child)+[a]>)",
            "not <child> and b",
        ],
    )
    def test_satisfiable_with_valid_witness(self, text):
        expr = parse_node(text)
        witness = exact_satisfiable(expr)
        assert witness is not None
        assert holds_at_root(witness, expr)

    @pytest.mark.parametrize(
        "text",
        [
            "a and not a",
            "leaf and <child>",
            "false",
            "<child[a and b]>",  # over a disjoint-label tree model... labels
        ],
    )
    def test_unsatisfiable(self, text):
        # NOTE: 'a and b' is unsatisfiable because our trees carry a single
        # label per node (the unique-labelling abstraction).
        assert exact_satisfiable(parse_node(text)) is None

    def test_alphabet_matters(self):
        expr = parse_node("c")
        assert exact_satisfiable(expr, alphabet=("a", "b")) is None
        assert exact_satisfiable(expr, alphabet=("a", "b", "c")) is not None

    def test_deep_requirement(self):
        # Needs a chain of three a's: the witness search must build depth.
        expr = parse_node("<child[a and <child[a and <child[a]>]>]>")
        witness = exact_satisfiable(expr)
        assert witness is not None and witness.height >= 3


class TestEquivalence:
    def test_w_transparency_is_a_theorem(self):
        # Not just "no corpus counterexample": exact over ALL trees.
        assert exact_equivalent(
            parse_node("W(<descendant[b]>)"), parse_node("<descendant[b]>")
        ) is None

    def test_within_within(self):
        assert exact_equivalent(
            parse_node("W(W(<child[a]>))"), parse_node("<child[a]>")
        ) is None

    def test_star_unfolding_theorem(self):
        left = parse_node("<(child[a])*[b]>")
        right = parse_node("b or <child[a and <(child[a])*[b]>]>")
        # unfold once: ⟨p*[b]⟩ = b ∨ ⟨p[⟨p*[b]⟩]⟩ with p = child[a]
        assert exact_equivalent(left, right) is None

    def test_inequivalence_with_witness(self):
        witness = exact_equivalent(parse_node("<child[a]>"), parse_node("<descendant[a]>"))
        assert witness is not None
        left = holds_at_root(witness, parse_node("<child[a]>"))
        right = holds_at_root(witness, parse_node("<descendant[a]>"))
        assert left != right

    def test_non_downward_rejected(self):
        with pytest.raises(NotDownward):
            exact_equivalent(parse_node("<parent>"), parse_node("true"))


class TestContainment:
    def test_child_in_descendant(self):
        assert exact_contained(parse_node("<child[a]>"), parse_node("<descendant[a]>")) is None

    def test_reverse_fails_with_witness(self):
        witness = exact_contained(parse_node("<descendant[a]>"), parse_node("<child[a]>"))
        assert witness is not None
        assert holds_at_root(witness, parse_node("<descendant[a]>"))
        assert not holds_at_root(witness, parse_node("<child[a]>"))

    def test_filter_weakening(self):
        assert exact_contained(
            parse_node("<child[a and leaf]>"), parse_node("<child[a]>")
        ) is None


class TestCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_exact_vs_corpus(self, seed):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, downward_only=True)
        left = sampler.node(rng.randint(1, 7))
        right = sampler.node(rng.randint(1, 7))
        witness = exact_equivalent(left, right)
        if witness is None:
            report = check_node_equivalence(left, right, standard_corpus())
            assert report.equivalent_on_corpus
        else:
            assert holds_at_root(witness, left) != holds_at_root(witness, right)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_simplify_is_exactly_sound_on_downward(self, seed):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, downward_only=True).node(rng.randint(1, 8))
        simplified = simplify(expr)
        if is_downward(simplified):
            assert exact_equivalent(expr, simplified) is None


class TestAnalysisInternals:
    def test_state_of_tree_matches_evaluator(self, small_trees):
        exprs = [
            parse_node("<child[a]>"),
            parse_node("<descendant[b and leaf]>"),
            parse_node("not <(child/child)*[b]>"),
        ]
        analysis = DownwardAnalysis(exprs, ("a", "b"))
        for tree in small_trees:
            state = analysis.state_of_tree(tree)
            for expr in exprs:
                assert analysis.bit_of(expr, state) == holds_at_root(tree, expr)

    def test_reachable_states_all_witnessed(self):
        expr = parse_node("<child[a]> or <descendant[b]>")
        analysis = DownwardAnalysis([expr], ("a", "b"))
        for state, witness in analysis.reachable_states().items():
            assert analysis.state_of_tree(witness) == state

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            DownwardAnalysis([parse_node("a")], ())


class TestExactPathEquivalence:
    """Relation equivalence for downward paths, via the marking reduction."""

    def test_identity_laws(self):
        from repro.decision import exact_path_equivalent
        from repro.xpath import parse_path

        assert exact_path_equivalent(parse_path("child/self"), parse_path("child")) is None
        assert exact_path_equivalent(
            parse_path("child/descendant_or_self"), parse_path("descendant")
        ) is None

    def test_filter_distribution_theorem(self):
        from repro.decision import exact_path_equivalent
        from repro.xpath import parse_path

        assert exact_path_equivalent(
            parse_path("child[a] | child[not a]"), parse_path("child")
        ) is None

    def test_refutation_with_marked_witness(self):
        from repro.decision import exact_path_equivalent
        from repro.xpath import Evaluator, parse_path

        left, right = parse_path("child"), parse_path("descendant")
        witness = exact_path_equivalent(left, right)
        assert witness is not None
        marked = {v for v in witness.node_ids if witness.labels[v].endswith("#")}
        stripped = witness.relabel({l: l.rstrip("#") for l in witness.alphabet})
        ev = Evaluator(stripped)
        assert bool(ev.image(left, {0}) & marked) != bool(ev.image(right, {0}) & marked)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_cross_validated_against_corpus(self, seed):
        from repro.decision import check_path_equivalence, exact_path_equivalent

        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, downward_only=True)
        left = sampler.path(rng.randint(1, 6))
        right = sampler.path(rng.randint(1, 6))
        if exact_path_equivalent(left, right) is None:
            report = check_path_equivalence(left, right, standard_corpus())
            assert report.equivalent_on_corpus

    def test_non_downward_rejected(self):
        from repro.decision import exact_path_equivalent
        from repro.xpath import parse_path

        with pytest.raises(NotDownward):
            exact_path_equivalent(parse_path("parent"), parse_path("self"))
