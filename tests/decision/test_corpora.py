"""Corpus construction tests."""

from repro.decision import standard_corpus
from repro.trees import all_trees


class TestStandardCorpus:
    def test_contains_exhaustive_prefix(self):
        corpus = standard_corpus(exhaustive_size=3)
        exhaustive = list(all_trees(3))
        assert corpus.trees[: len(exhaustive)] == exhaustive
        assert corpus.exhaustive_size == 3

    def test_random_part_bounded(self):
        corpus = standard_corpus(exhaustive_size=3, random_count=5, max_random_size=10)
        randoms = corpus.trees[len(list(all_trees(3))) : -3]
        assert len(randoms) == 5
        assert all(4 <= t.size <= 10 for t in randoms)

    def test_shaped_extremes_present(self):
        corpus = standard_corpus(max_random_size=12)
        chainy, starry, comby = corpus.trees[-3:]
        assert chainy.height == chainy.size - 1  # the chain
        assert starry.height == 1  # the star
        assert comby.height > 1  # the comb

    def test_deterministic(self):
        assert standard_corpus(seed=5).trees == standard_corpus(seed=5).trees
        assert standard_corpus(seed=5).trees != standard_corpus(seed=6).trees

    def test_alphabet_respected(self):
        corpus = standard_corpus(alphabet=("x", "y", "z"), exhaustive_size=2)
        assert all(t.alphabet <= {"x", "y", "z"} for t in corpus)

    def test_len_and_iter(self):
        corpus = standard_corpus(exhaustive_size=2, random_count=2)
        assert len(corpus) == len(list(corpus))
