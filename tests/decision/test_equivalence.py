"""Equivalence/containment harness tests — including the talk's motivating
"which expressions are equivalent?" quiz, decided mechanically."""

import pytest

from repro.decision import (
    check_node_containment,
    check_node_equivalence,
    check_path_containment,
    check_path_equivalence,
    find_satisfying_node,
    node_equivalent,
    path_equivalent,
    standard_corpus,
)
from repro.xpath import parse_node, parse_path


@pytest.fixture(scope="module")
def corp():
    return standard_corpus()


class TestTheQuiz:
    """The three puzzles from the talk literature ("Let's give it a try")."""

    def test_down_up_projection(self, corp):
        # ⟨child/parent⟩ ≈ ⟨child⟩ — going down and back up is the domain.
        assert node_equivalent(
            parse_node("<child/parent>"), parse_node("<child>"), corp
        )

    def test_descendant_composition(self, corp):
        # descendant/descendant vs descendant+ as relations: both are
        # "two or more child steps" vs "one or more" — NOT equivalent...
        report = check_path_equivalence(
            parse_path("descendant/descendant"), parse_path("descendant"), corp
        )
        assert not report.equivalent_on_corpus
        # ...but descendant/descendant_or_self IS descendant ∘ reflexive.
        assert path_equivalent(
            parse_path("descendant/descendant_or_self"),
            parse_path("descendant"),
            corp,
        )

    def test_filter_placement_matters(self, corp):
        # child[a]/descendant vs child/descendant[a]: different filters.
        report = check_path_equivalence(
            parse_path("child[a]/descendant"), parse_path("child/descendant[a]"), corp
        )
        assert not report.equivalent_on_corpus
        assert report.counterexample is not None


class TestReports:
    def test_equivalent_report_counts_whole_corpus(self, corp):
        report = check_node_equivalence(parse_node("a"), parse_node("a"), corp)
        assert report.equivalent_on_corpus
        assert report.trees_checked == len(corp)
        assert report.exhaustive_to == corp.exhaustive_size

    def test_counterexample_is_minimal_ish(self, corp):
        # Corpus iterates exhaustively by size first, so the witness found
        # for root vs true is the smallest possible: a 2-node tree.
        report = check_node_equivalence(parse_node("root"), parse_node("true"), corp)
        assert report.counterexample is not None
        assert report.counterexample.tree.size == 2

    def test_counterexample_str(self, corp):
        report = check_node_equivalence(parse_node("a"), parse_node("b"), corp)
        assert "tree" in str(report.counterexample)


class TestContainment:
    def test_node_containment(self, corp):
        small = parse_node("<child[a]>")
        large = parse_node("<child>")
        assert check_node_containment(small, large, corp).equivalent_on_corpus
        assert not check_node_containment(large, small, corp).equivalent_on_corpus

    def test_path_containment(self, corp):
        assert check_path_containment(
            parse_path("child"), parse_path("descendant"), corp
        ).equivalent_on_corpus
        assert not check_path_containment(
            parse_path("descendant"), parse_path("child"), corp
        ).equivalent_on_corpus

    def test_equivalence_is_mutual_containment(self, corp):
        left = parse_path("child/child")
        right = parse_path("descendant")
        c1 = check_path_containment(left, right, corp).equivalent_on_corpus
        c2 = check_path_containment(right, left, corp).equivalent_on_corpus
        eq = check_path_equivalence(left, right, corp).equivalent_on_corpus
        assert eq == (c1 and c2)


class TestSatisfiability:
    def test_satisfiable(self, corp):
        witness = find_satisfying_node(parse_node("a and <child[b]>"), corp)
        assert witness is not None

    def test_unsatisfiable(self, corp):
        assert find_satisfying_node(parse_node("a and not a"), corp) is None

    def test_root_with_parent_unsatisfiable(self, corp):
        assert find_satisfying_node(parse_node("root and <parent>"), corp) is None

    def test_within_contradiction(self, corp):
        # W(<parent>) is unsatisfiable: in its own subtree a node is root.
        assert find_satisfying_node(parse_node("W(<parent>)"), corp) is None


class TestWKillerExamples:
    """Equivalences where the W operator genuinely matters."""

    def test_w_changes_semantics(self, corp):
        report = check_node_equivalence(
            parse_node("W(<following_sibling[b]>)"),
            parse_node("<following_sibling[b]>"),
            corp,
        )
        assert not report.equivalent_on_corpus

    def test_w_transparent_on_downward(self, corp):
        assert node_equivalent(
            parse_node("W(<descendant[b]>)"), parse_node("<descendant[b]>"), corp
        )
