"""Experiment A1: soundness of the axiomatization literature's schemes."""

import random

import pytest

from repro.decision import AXIOM_SCHEMES, scheme_by_name, standard_corpus, verify_scheme
from repro.decision.axioms import Scheme
from repro.xpath import ast as xp


@pytest.fixture(scope="module")
def corp():
    # A slightly lighter corpus keeps the full-catalog sweep fast.
    return standard_corpus(exhaustive_size=4, random_count=8, max_random_size=14)


class TestCatalog:
    def test_catalog_is_substantial(self):
        assert len(AXIOM_SCHEMES) >= 30

    def test_names_unique(self):
        names = [s.name for s in AXIOM_SCHEMES]
        assert len(set(names)) == len(names)

    def test_lookup(self):
        assert scheme_by_name("union-comm").name == "union-comm"
        with pytest.raises(KeyError):
            scheme_by_name("no-such-scheme")

    def test_arity_enforced(self):
        scheme = scheme_by_name("union-comm")
        with pytest.raises(ValueError):
            scheme.instantiate([xp.CHILD], [])


@pytest.mark.parametrize("scheme", AXIOM_SCHEMES, ids=lambda s: s.name)
def test_scheme_is_sound(scheme, corp):
    """Every scheme must hold under random instantiation on the corpus.

    This is the executable soundness half of the axiomatization story: a
    single failing instance would be a counterexample to a published law
    (or, far more likely, a bug in our evaluator)."""
    report = verify_scheme(scheme, corp, trials=3, rng=random.Random(hash(scheme.name) & 0xFFFF))
    assert report.equivalent_on_corpus, report.counterexample


class TestUnsoundSchemeIsCaught:
    """The harness must actually be able to falsify wrong laws."""

    def test_fake_equivalence_detected(self, corp):
        fake = Scheme(
            "fake-filter-swap",
            "path",
            1,
            1,
            # A[φ]/child ≈ A/child[φ] — plausible-looking and wrong.
            lambda a, p: (
                xp.Seq(xp.filter_(a, p), xp.CHILD),
                xp.filter_(xp.Seq(a, xp.CHILD), p),
            ),
        )
        report = verify_scheme(fake, corp, trials=8, rng=random.Random(1))
        assert not report.equivalent_on_corpus

    def test_star_is_not_plus(self, corp):
        fake = Scheme(
            "fake-star-plus", "path", 1, 0, lambda a: (xp.Star(a), xp.plus(a))
        )
        report = verify_scheme(fake, corp, trials=8, rng=random.Random(2))
        assert not report.equivalent_on_corpus

    def test_within_or_does_not_distribute_backwards(self, corp):
        # W distributes over ∧ and ¬ (in the catalog) — and hence over ∨
        # too; sanity-check the harness accepts the derived law as well.
        derived = Scheme(
            "within-or",
            "node",
            0,
            2,
            lambda p, q: (xp.Within(xp.Or(p, q)), xp.Or(xp.Within(p), xp.Within(q))),
        )
        report = verify_scheme(derived, corp, trials=5, rng=random.Random(3))
        assert report.equivalent_on_corpus
