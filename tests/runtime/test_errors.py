"""The exception taxonomy and the CLI exit-code contract."""

import pytest

from repro.logic import FormulaSyntaxError
from repro.runtime import (
    EXIT_CODES,
    BudgetExceededError,
    DeadlineExceededError,
    DepthLimitError,
    EngineFaultError,
    InjectedFaultError,
    InputLimitError,
    QueueFullError,
    ReproError,
    ReproSyntaxError,
    RequestShedError,
    ServiceClosedError,
    ServiceError,
    ShardUnavailableError,
    exit_code_for,
)
from repro.trees.xml_io import XmlSyntaxError
from repro.xpath import XPathSyntaxError


class TestTaxonomy:
    @pytest.mark.parametrize("cls", [
        ReproSyntaxError,
        XPathSyntaxError,
        FormulaSyntaxError,
        XmlSyntaxError,
        DepthLimitError,
        InputLimitError,
        BudgetExceededError,
        DeadlineExceededError,
        EngineFaultError,
        InjectedFaultError,
        ServiceError,
        QueueFullError,
        RequestShedError,
        ServiceClosedError,
    ])
    def test_everything_is_a_repro_error(self, cls):
        assert issubclass(cls, ReproError)

    @pytest.mark.parametrize("cls", [
        ReproSyntaxError,
        XPathSyntaxError,
        FormulaSyntaxError,
        XmlSyntaxError,
        DepthLimitError,
        InputLimitError,
    ])
    def test_input_errors_stay_value_errors(self, cls):
        """Pre-existing ``except ValueError`` call sites keep working."""
        assert issubclass(cls, ValueError)

    @pytest.mark.parametrize("cls", [
        BudgetExceededError,
        DeadlineExceededError,
        EngineFaultError,
        InjectedFaultError,
    ])
    def test_operational_errors_are_not_value_errors(self, cls):
        assert not issubclass(cls, ValueError)

    def test_syntax_error_carries_position(self):
        exc = ReproSyntaxError("bad input", 17)
        assert exc.position == 17
        assert "offset 17" in str(exc)

    def test_limit_errors_carry_position_and_limit(self):
        for cls in (DepthLimitError, InputLimitError):
            exc = cls("too deep", 42, 200)
            assert exc.position == 42
            assert exc.limit == 200
            assert "offset 42" in str(exc) and "limit 200" in str(exc)

    def test_injected_fault_carries_site(self):
        exc = InjectedFaultError("xpath.bitset")
        assert exc.site == "xpath.bitset"
        assert "xpath.bitset" in str(exc)


class TestExitCodes:
    def test_contract_values(self):
        assert EXIT_CODES == {
            "syntax": 2,
            "io": 3,
            "deadline": 4,
            "budget": 5,
            "depth": 6,
            "input_limit": 7,
            "engine": 8,
            "overload": 9,
            "unavailable": 10,
        }

    @pytest.mark.parametrize("exc, code", [
        (XPathSyntaxError("bad", 0), 2),
        (FileNotFoundError("gone"), 3),
        (DeadlineExceededError("late"), 4),
        (BudgetExceededError("dry"), 5),
        (DepthLimitError("deep", 0, 1), 6),
        (InputLimitError("big", 0, 1), 7),
        (InjectedFaultError("xpath.bitset"), 8),
        (QueueFullError("full"), 9),
        (ServiceClosedError("closed"), 9),
        (ShardUnavailableError("shard 0 out of restarts"), 10),
        (RequestShedError("late"), 4),  # a shed is a deadline outcome
        (ValueError("anything else"), 2),
    ])
    def test_exit_code_for(self, exc, code):
        assert exit_code_for(exc) == code

    def test_deadline_beats_its_budget_superclass(self):
        """The subclass check must come first in the dispatch."""
        assert exit_code_for(DeadlineExceededError("late")) == 4
