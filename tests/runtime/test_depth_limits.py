"""Parser depth limits: pathological nesting dies cleanly, never by stack.

The acceptance shape: expressions nested 10,000 deep — fifty times past the
default limit and deep enough to overflow CPython's interpreter stack if the
recursive-descent parsers ran unguarded — must raise a positioned
:class:`DepthLimitError`, never ``RecursionError``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import parse_formula
from repro.logic.parser import DEFAULT_MAX_DEPTH as FORMULA_MAX_DEPTH
from repro.runtime import DepthLimitError
from repro.xpath import parse_node, parse_path
from repro.xpath.parser import DEFAULT_MAX_DEPTH as XPATH_MAX_DEPTH

DEEP = 10_000

#: (parse function, a depth-n adversarial input builder) for every
#: recursion-prone production of the three grammars.
ADVERSARIAL = {
    "path parens": (parse_path, lambda n: "(" * n + "child" + ")" * n),
    "path complement": (parse_path, lambda n: "~" * n + "child"),
    "path filters": (parse_path, lambda n: ".[" * n + "true" + "]" * n),
    "node parens": (parse_node, lambda n: "(" * n + "true" + ")" * n),
    "node not-chain": (parse_node, lambda n: "not " * n + "true"),
    "node exists": (parse_node, lambda n: ".[" * n + "<child>" + "]" * n),
    "formula parens": (parse_formula, lambda n: "(" * n + "true" + ")" * n),
    "formula negations": (parse_formula, lambda n: "~" * n + "true"),
    "formula implications": (parse_formula, lambda n: "true -> " * n + "true"),
    "formula quantifiers": (parse_formula, lambda n: "exists x. " * n + "x = x"),
}


class TestDeepInputsDieCleanly:
    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    def test_10k_deep_raises_depth_limit_not_recursion(self, name):
        parse, build = ADVERSARIAL[name]
        with pytest.raises(DepthLimitError) as info:
            parse(build(DEEP))
        assert info.value.position >= 0
        assert info.value.limit in (XPATH_MAX_DEPTH, FORMULA_MAX_DEPTH)

    @pytest.mark.parametrize("name", sorted(ADVERSARIAL))
    # 500 > any default limit in grammar-nesting units, so every sampled
    # depth is past the cap for every adversarial shape.
    @given(depth=st.integers(min_value=500, max_value=DEEP))
    @settings(max_examples=10, deadline=None)
    def test_any_depth_past_the_limit_raises(self, name, depth):
        parse, build = ADVERSARIAL[name]
        with pytest.raises(DepthLimitError):
            parse(build(depth))


class TestLimitBoundary:
    def test_moderate_nesting_still_parses(self):
        assert parse_path("(" * 50 + "child" + ")" * 50)
        assert parse_node("not " * 50 + "true")
        assert parse_formula("~" * 50 + "true")

    def test_custom_limit_is_respected(self):
        text = "(" * 20 + "child" + ")" * 20
        assert parse_path(text, max_depth=100)
        with pytest.raises(DepthLimitError) as info:
            parse_path(text, max_depth=10)
        assert info.value.limit == 10

    def test_error_is_still_a_value_error(self):
        """Legacy ``except ValueError`` handlers keep catching parse failures."""
        with pytest.raises(ValueError):
            parse_path("(" * DEEP + "child" + ")" * DEEP)
