"""ExecutionBudget unit behavior plus end-to-end governance of the engines."""

import random
import time

import pytest

from repro.logic import ModelChecker, parse_formula
from repro.runtime import (
    BudgetExceededError,
    DeadlineExceededError,
    ExecutionBudget,
)
from repro.trees import chain, random_deep_tree, random_tree
from repro.xpath import Evaluator, parse_node, parse_path

STAR_QUERY = parse_path("(child[a] | child[b]/right)*")
TC_HEAVY = parse_formula(
    "exists x. exists y. tc[u,v](child(u,v) | right(u,v))(x,y) & last(y) & leaf(y)"
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestBudgetUnit:
    def test_unlimited_budget_never_trips(self):
        budget = ExecutionBudget()
        for _ in range(1000):
            budget.tick()
        budget.check_size(10**9)
        assert budget.steps == 1000

    def test_step_cap_trips_strictly_above(self):
        budget = ExecutionBudget(max_steps=3)
        budget.tick()
        budget.tick(weight=2)  # exactly at the cap: still fine
        with pytest.raises(BudgetExceededError):
            budget.tick()

    def test_deadline_uses_the_injected_clock(self):
        clock = FakeClock()
        budget = ExecutionBudget(timeout=5.0, clock=clock)
        clock.now = 4.999
        budget.tick()
        clock.now = 5.0
        with pytest.raises(DeadlineExceededError):
            budget.tick()

    def test_check_size(self):
        budget = ExecutionBudget(max_nodes=10)
        budget.check_size(10)
        with pytest.raises(BudgetExceededError, match="pair relation"):
            budget.check_size(11, "pair relation")

    def test_reset_steps_refunds_fuel_but_not_time(self):
        clock = FakeClock()
        budget = ExecutionBudget(timeout=1.0, max_steps=1, clock=clock)
        budget.tick()
        with pytest.raises(BudgetExceededError):
            budget.tick()
        budget.reset_steps()
        budget.tick()  # fuel is back
        budget.reset_steps()
        clock.now = 2.0
        with pytest.raises(DeadlineExceededError):
            budget.tick()  # the deadline is not extended by the refund

    def test_inspection_properties(self):
        clock = FakeClock(100.0)
        budget = ExecutionBudget(timeout=2.0, max_steps=5, clock=clock)
        clock.now = 100.5
        assert budget.elapsed == pytest.approx(0.5)
        assert budget.remaining_time == pytest.approx(1.5)
        budget.tick(weight=3)
        assert budget.remaining_steps == 2
        assert ExecutionBudget().remaining_time is None
        assert ExecutionBudget().remaining_steps is None

    @pytest.mark.parametrize("kwargs", [
        {"timeout": -1.0},
        {"max_steps": -1},
        {"max_nodes": -5},
    ])
    def test_negative_caps_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionBudget(**kwargs)

    def test_budget_errors_are_not_value_errors(self):
        """Operational exhaustion must not be swallowed by input validation."""
        assert not issubclass(BudgetExceededError, ValueError)
        assert issubclass(DeadlineExceededError, BudgetExceededError)


class TestEngineGovernance:
    """The budget actually governs every engine family."""

    def test_deadline_promptness_on_adversarial_input(self):
        """The acceptance gate: a 50ms deadline trips in under 2x the
        deadline on a workload that takes ~4x longer ungoverned."""
        tree = random_tree(2000, rng=random.Random(5))
        ungoverned = Evaluator(tree, backend="bitset")
        assert ungoverned.pairs(STAR_QUERY)  # completes (and warms caches)

        budget = ExecutionBudget(timeout=0.05)
        governed = Evaluator(tree, backend="bitset", budget=budget)
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            governed.pairs(STAR_QUERY)
        assert time.monotonic() - start < 0.10

    @pytest.mark.parametrize("backend", ["bitset", "sets"])
    def test_step_cap_on_evaluator(self, backend):
        tree = chain(64, labels=("a", "b"))
        budget = ExecutionBudget(max_steps=5)
        ev = Evaluator(tree, backend=backend, budget=budget)
        with pytest.raises(BudgetExceededError):
            ev.pairs(STAR_QUERY)

    @pytest.mark.parametrize("backend", ["bitset", "sets"])
    def test_cardinality_cap_on_evaluator(self, backend):
        tree = chain(64, labels=("a", "b"))
        budget = ExecutionBudget(max_nodes=10)
        ev = Evaluator(tree, backend=backend, budget=budget)
        with pytest.raises(BudgetExceededError):
            ev.nodes(parse_node("true"))

    @pytest.mark.parametrize("backend", ["bitset", "table"])
    def test_step_cap_on_model_checker(self, backend):
        tree = random_deep_tree(128, rng=random.Random(1))
        budget = ExecutionBudget(max_steps=3)
        checker = ModelChecker(tree, backend=backend, budget=budget)
        with pytest.raises(BudgetExceededError):
            checker.holds(TC_HEAVY)

    @pytest.mark.parametrize("strategy", ["bitset", "deque"])
    def test_step_cap_on_twa(self, strategy):
        from repro.translations import compile_exists_path

        automaton = compile_exists_path(
            parse_path("descendant[a]/descendant[b]"), ("a", "b")
        )
        tree = chain(200, labels=("a", "b"))
        budget = ExecutionBudget(max_steps=2)
        with pytest.raises(BudgetExceededError):
            automaton.accepts(tree, strategy=strategy, budget=budget)

    def test_step_cap_on_decision_procedures(self):
        from repro.decision import exact_equivalent

        left = parse_node("<descendant[a]>")
        right = parse_node("<child[a]> or <child[<descendant[a]>]>")
        budget = ExecutionBudget(max_steps=2)
        with pytest.raises(BudgetExceededError):
            exact_equivalent(left, right, ("a", "b"), budget)

    def test_ample_budget_changes_nothing(self):
        """Same results with and without a (never-tripping) budget."""
        tree = random_tree(200, rng=random.Random(9))
        plain = Evaluator(tree, backend="bitset").image(STAR_QUERY, {0})
        budget = ExecutionBudget(timeout=60.0, max_steps=10**9, max_nodes=10**9)
        governed = Evaluator(tree, backend="bitset", budget=budget)
        assert governed.image(STAR_QUERY, {0}) == plain
        assert budget.steps > 0  # the checkpoints actually ran
