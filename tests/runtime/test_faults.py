"""Fault-injection machinery and its wiring into the engine kernels."""

import random

import pytest

from repro.logic import ModelChecker, parse_formula
from repro.runtime import InjectedFaultError, faults
from repro.trees import chain, random_tree
from repro.xpath import Evaluator, parse_node, parse_path


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disarm()
    yield
    faults.disarm()


class TestFaultRegistry:
    def test_armed_site_raises_with_site_attribute(self):
        faults.arm("some.site")
        with pytest.raises(InjectedFaultError) as info:
            faults.check("some.site")
        assert info.value.site == "some.site"

    def test_unarmed_site_is_silent(self):
        faults.arm("some.site")
        faults.check("another.site")  # no raise

    def test_counted_arm_fires_exactly_n_times(self):
        faults.arm("some.site", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                faults.check("some.site")
        faults.check("some.site")  # exhausted
        assert faults.armed_sites() == {}

    def test_counted_arm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            faults.arm("some.site", times=0)

    def test_disarm_one_and_all(self):
        faults.arm("a")
        faults.arm("b")
        faults.disarm("a")
        assert set(faults.armed_sites()) == {"b"}
        faults.disarm()
        assert faults.armed_sites() == {}

    def test_inject_scope(self):
        with faults.inject("scoped.site"):
            with pytest.raises(InjectedFaultError):
                faults.check("scoped.site")
        faults.check("scoped.site")  # disarmed on exit

    def test_reload_from_env_spec(self):
        faults.reload_from_env("xpath.bitset, logic.bitset.tc:3")
        assert faults.armed_sites() == {"xpath.bitset": None, "logic.bitset.tc": 3}

    def test_reload_from_env_empty_is_noop(self):
        faults.reload_from_env("")
        assert faults.armed_sites() == {}


class TestScoped:
    """``faults.scoped`` snapshots the registry and restores it exactly."""

    def test_arms_inside_and_restores_outside(self):
        with faults.scoped("a.site"):
            with pytest.raises(InjectedFaultError):
                faults.check("a.site")
        faults.check("a.site")  # gone
        assert faults.armed_sites() == {}

    def test_counted_arm_via_tuple(self):
        with faults.scoped(("a.site", 1)):
            with pytest.raises(InjectedFaultError):
                faults.check("a.site")
            faults.check("a.site")  # count exhausted inside the scope

    def test_restores_preexisting_arms(self):
        """The leakage bug the scope exists to fix: a test arming inside a
        scope must not clobber (or leave behind) arms from outside it."""
        faults.arm("outer.site", times=3)
        with faults.scoped("inner.site"):
            faults.arm("extra.site")  # even manual arms inside are undone
            faults.disarm("outer.site")  # and manual disarms are undone too
        assert faults.armed_sites() == {"outer.site": 3}

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with faults.scoped("a.site"):
                raise RuntimeError("boom")
        assert faults.armed_sites() == {}

    def test_multiple_sites_in_one_scope(self):
        with faults.scoped("a.site", ("b.site", 2)):
            assert faults.armed_sites() == {"a.site": None, "b.site": 2}
        assert faults.armed_sites() == {}


class TestThreadSafety:
    def test_concurrent_arm_check_disarm_is_racefree(self):
        """Hammer the registry from several threads; counted arms must fire
        exactly ``times`` faults in total, never more (the old unlocked
        decrement could double-fire or lose counts)."""
        import threading

        fired = []
        lock = threading.Lock()
        faults.arm("hot.site", times=200)

        def worker():
            local = 0
            for _ in range(100):
                try:
                    faults.check("hot.site")
                except InjectedFaultError:
                    local += 1
            with lock:
                fired.append(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(fired) == 200
        assert faults.armed_sites() == {}


class TestEngineWiring:
    """Each documented site actually fires inside its engine."""

    def test_xpath_bitset_entry(self):
        tree = chain(8, labels=("a", "b"))
        ev = Evaluator(tree, backend="bitset")
        with faults.inject("xpath.bitset"):
            with pytest.raises(InjectedFaultError):
                ev.nodes(parse_node("a"))
        assert ev.nodes(parse_node("a"))  # healthy again once disarmed

    def test_xpath_bitset_star_sweep(self):
        tree = chain(8, labels=("a", "b"))
        ev = Evaluator(tree, backend="bitset")
        # A starred union is not a precomputed axis closure, so evaluating it
        # actually enters the frontier sweep where the site is checked.
        with faults.inject("xpath.bitset.star"):
            with pytest.raises(InjectedFaultError):
                ev.image(parse_path("(child[a] | child)*"), {0})

    def test_logic_bitset_entry(self):
        tree = random_tree(16, rng=random.Random(0))
        checker = ModelChecker(tree, backend="bitset")
        with faults.inject("logic.bitset"):
            with pytest.raises(InjectedFaultError):
                checker.holds(parse_formula("exists x. a(x)"))

    def test_logic_bitset_tc_sweep(self):
        tree = chain(8, labels=("a", "b"))
        checker = ModelChecker(tree, backend="bitset")
        with faults.inject("logic.bitset.tc"):
            with pytest.raises(InjectedFaultError):
                checker.holds(
                    parse_formula("exists x. exists y. tc[u,v](child(u,v))(x,y)")
                )

    def test_automata_bitset_sweep(self):
        from repro.translations import compile_exists_path

        automaton = compile_exists_path(parse_path("descendant[b]"), ("a", "b"))
        tree = chain(8, labels=("a", "b"))
        with faults.inject("automata.bitset"):
            with pytest.raises(InjectedFaultError):
                automaton.accepts(tree, strategy="bitset")

    def test_sets_oracle_is_unaffected(self):
        """Faults target the fast engines; the oracles keep working."""
        tree = chain(8, labels=("a", "b"))
        with faults.inject("xpath.bitset"):
            result = Evaluator(tree, backend="sets").nodes(parse_node("a"))
        assert result
