"""Fault-injection machinery and its wiring into the engine kernels."""

import random

import pytest

from repro.logic import ModelChecker, parse_formula
from repro.runtime import InjectedFaultError, faults
from repro.trees import chain, random_tree
from repro.xpath import Evaluator, parse_node, parse_path


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disarm()
    yield
    faults.disarm()


class TestFaultRegistry:
    def test_armed_site_raises_with_site_attribute(self):
        faults.arm("some.site")
        with pytest.raises(InjectedFaultError) as info:
            faults.check("some.site")
        assert info.value.site == "some.site"

    def test_unarmed_site_is_silent(self):
        faults.arm("some.site")
        faults.check("another.site")  # no raise

    def test_counted_arm_fires_exactly_n_times(self):
        faults.arm("some.site", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                faults.check("some.site")
        faults.check("some.site")  # exhausted
        assert faults.armed_sites() == {}

    def test_counted_arm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            faults.arm("some.site", times=0)

    def test_disarm_one_and_all(self):
        faults.arm("a")
        faults.arm("b")
        faults.disarm("a")
        assert set(faults.armed_sites()) == {"b"}
        faults.disarm()
        assert faults.armed_sites() == {}

    def test_inject_scope(self):
        with faults.inject("scoped.site"):
            with pytest.raises(InjectedFaultError):
                faults.check("scoped.site")
        faults.check("scoped.site")  # disarmed on exit

    def test_reload_from_env_spec(self):
        faults.reload_from_env("xpath.bitset, logic.bitset.tc:3")
        assert faults.armed_sites() == {"xpath.bitset": None, "logic.bitset.tc": 3}

    def test_reload_from_env_empty_is_noop(self):
        faults.reload_from_env("")
        assert faults.armed_sites() == {}


class TestEngineWiring:
    """Each documented site actually fires inside its engine."""

    def test_xpath_bitset_entry(self):
        tree = chain(8, labels=("a", "b"))
        ev = Evaluator(tree, backend="bitset")
        with faults.inject("xpath.bitset"):
            with pytest.raises(InjectedFaultError):
                ev.nodes(parse_node("a"))
        assert ev.nodes(parse_node("a"))  # healthy again once disarmed

    def test_xpath_bitset_star_sweep(self):
        tree = chain(8, labels=("a", "b"))
        ev = Evaluator(tree, backend="bitset")
        # A starred union is not a precomputed axis closure, so evaluating it
        # actually enters the frontier sweep where the site is checked.
        with faults.inject("xpath.bitset.star"):
            with pytest.raises(InjectedFaultError):
                ev.image(parse_path("(child[a] | child)*"), {0})

    def test_logic_bitset_entry(self):
        tree = random_tree(16, rng=random.Random(0))
        checker = ModelChecker(tree, backend="bitset")
        with faults.inject("logic.bitset"):
            with pytest.raises(InjectedFaultError):
                checker.holds(parse_formula("exists x. a(x)"))

    def test_logic_bitset_tc_sweep(self):
        tree = chain(8, labels=("a", "b"))
        checker = ModelChecker(tree, backend="bitset")
        with faults.inject("logic.bitset.tc"):
            with pytest.raises(InjectedFaultError):
                checker.holds(
                    parse_formula("exists x. exists y. tc[u,v](child(u,v))(x,y)")
                )

    def test_automata_bitset_sweep(self):
        from repro.translations import compile_exists_path

        automaton = compile_exists_path(parse_path("descendant[b]"), ("a", "b"))
        tree = chain(8, labels=("a", "b"))
        with faults.inject("automata.bitset"):
            with pytest.raises(InjectedFaultError):
                automaton.accepts(tree, strategy="bitset")

    def test_sets_oracle_is_unaffected(self):
        """Faults target the fast engines; the oracles keep working."""
        tree = chain(8, labels=("a", "b"))
        with faults.inject("xpath.bitset"):
            result = Evaluator(tree, backend="sets").nodes(parse_node("a"))
        assert result
