"""Guarded degradation: bitset fast path falling back to the row-wise oracles."""

import random
import warnings

import pytest

from repro.logic import ModelChecker, parse_formula
from repro.runtime import (
    BudgetExceededError,
    DeadlineExceededError,
    ExecutionBudget,
    GuardedEvaluator,
    GuardedModelChecker,
    InjectedFaultError,
    faults,
    guarded_check,
    stats,
)
from repro.trees import chain, random_tree
from repro.xpath import Evaluator, parse_node, parse_path

QUERY = parse_node("<descendant[a and <right[b]>]> and not <child[not <child>]>")
STAR = parse_path("(child[a] | child)*")
FORMULA = parse_formula("exists y. tc[u,v](child(u,v) & a(v))(x,y) & leaf(y)")


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disarm()
    stats.reset()
    yield
    faults.disarm()
    stats.reset()


@pytest.fixture()
def tree():
    return random_tree(120, rng=random.Random(17))


class TestEvaluatorFallback:
    def test_fallback_matches_the_oracle(self, tree):
        """The acceptance gate: with the bitset engine faulted, every guarded
        call returns exactly what the sets oracle computes."""
        oracle = Evaluator(tree, backend="sets")
        guarded = GuardedEvaluator(tree)
        faults.arm("xpath.bitset")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert guarded.nodes(QUERY) == oracle.nodes(QUERY)
            assert guarded.image(STAR, {0}) == oracle.image(STAR, {0})
            assert guarded.preimage(STAR, {0}) == oracle.preimage(STAR, {0})
            assert guarded.pairs(STAR) == oracle.pairs(STAR)
            assert guarded.holds_at(QUERY, 0) == oracle.holds_at(QUERY, 0)
        assert guarded.fallback_count == 5
        assert stats.fallback_count == 5
        assert isinstance(stats.last_error, InjectedFaultError)

    def test_warns_once_not_per_call(self, tree):
        guarded = GuardedEvaluator(tree)
        faults.arm("xpath.bitset")
        with pytest.warns(RuntimeWarning, match="falling back"):
            guarded.nodes(QUERY)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would fail here
            guarded.nodes(QUERY)
        assert guarded.fallback_count == 2

    def test_healthy_path_stays_on_bitset(self, tree):
        guarded = GuardedEvaluator(tree)
        assert guarded.nodes(QUERY) == Evaluator(tree, backend="bitset").nodes(QUERY)
        assert guarded.fallback_count == 0
        assert stats.fallback_count == 0

    def test_input_errors_are_not_retried(self, tree):
        """A malformed AST fails identically on the oracle; no fallback."""
        guarded = GuardedEvaluator(tree)
        with pytest.raises(TypeError):
            guarded.nodes("not an expression")
        assert guarded.fallback_count == 0


class TestBudgetDegradation:
    def test_budget_trip_raises_without_opt_in(self, tree):
        budget = ExecutionBudget(max_steps=1)
        guarded = GuardedEvaluator(tree, budget)
        with pytest.raises(BudgetExceededError):
            guarded.pairs(STAR)
        assert guarded.fallback_count == 0

    def test_budget_trip_retries_with_refunded_fuel(self):
        """A budget nearly drained by earlier work trips the fast engine;
        the retry refunds the fuel, so the oracle completes the call."""
        tree = chain(64, labels=("a", "b"))
        probe = ExecutionBudget(max_steps=10**9)
        Evaluator(tree, backend="bitset", budget=probe).pairs(STAR)
        drain = probe.steps  # fuel one pairs() call costs on the fast engine

        budget = ExecutionBudget(max_steps=drain + drain // 2)
        guarded = GuardedEvaluator(tree, budget, retry_on_budget=True)
        first = guarded.pairs(STAR)  # fits: uses `drain` of the fuel
        assert guarded.fallback_count == 0
        with pytest.warns(RuntimeWarning, match="falling back"):
            second = guarded.pairs(STAR)  # trips mid-run, retried on the oracle
        assert second == first
        assert guarded.fallback_count == 1

    def test_deadline_is_never_retried(self, tree):
        budget = ExecutionBudget(timeout=0.0)
        guarded = GuardedEvaluator(tree, budget, retry_on_budget=True)
        with pytest.raises(DeadlineExceededError):
            guarded.pairs(STAR)
        assert guarded.fallback_count == 0


class TestStatsThreadSafety:
    def test_concurrent_records_are_not_lost(self):
        """``FallbackStats.record`` is called from service worker threads;
        the unlocked ``+= 1`` could drop increments under contention."""
        import threading

        from repro.runtime.guarded import FallbackStats

        local = FallbackStats()
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(500):
                local.record(InjectedFaultError("x"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert local.fallback_count == 8 * 500
        assert isinstance(local.last_error, InjectedFaultError)
        local.reset()
        assert local.fallback_count == 0
        assert local.last_error is None


class TestModelCheckerFallback:
    def test_fallback_matches_the_table_oracle(self, tree):
        oracle = ModelChecker(tree, backend="table")
        guarded = GuardedModelChecker(tree)
        faults.arm("logic.bitset")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert guarded.node_set(FORMULA, "x") == oracle.node_set(FORMULA, "x")
            sentence = parse_formula("exists x. exists y. tc[u,v](child(u,v))(x,y)")
            assert guarded.holds(sentence) == oracle.holds(sentence)
        assert guarded.fallback_count == 2

    def test_tc_sweep_fault_falls_back(self, tree):
        """A fault deep inside the TC kernel (not at the entry) degrades too."""
        guarded = GuardedModelChecker(tree)
        expected = ModelChecker(tree, backend="table").node_set(FORMULA, "x")
        faults.arm("logic.bitset.tc")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert guarded.node_set(FORMULA, "x") == expected

    def test_guarded_check_convenience(self, tree):
        sentence = parse_formula("exists x. a(x)")
        expected = ModelChecker(tree, backend="table").holds(sentence)
        faults.arm("logic.bitset")
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert guarded_check(tree, sentence) == expected
