"""Experiment T3: downward Regular XPath(W) ≡ nested TWA.

The compiled automaton, run with scope v, must decide ``v ⊨ expr`` for
every node of every corpus tree.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.translations import UnsupportedForTwa, compile_exists_path, compile_node_expr
from repro.trees import random_tree
from repro.xpath import Evaluator, parse_node, parse_path
from repro.xpath.random_exprs import ExprSampler

DOWNWARD_SUITE = [
    "a",
    "true",
    "false",
    "not a",
    "leaf",
    "<child>",
    "<child[b]>",
    "<descendant[a and not leaf]>",
    "W(<child>) and not <(child[a])*[b and leaf]>",
    "<(child/child)*[b]>",
    "not <child[not <child[a]>]>",
    "<descendant_or_self[b]> or leaf",
    "W(W(a))",
    "<child[a]> and <child[b]>",
    "<self[a]/descendant[b]>",
]


def nodes_by_automaton(automaton, tree):
    return {v for v in tree.node_ids if automaton.accepts(tree, scope=v)}


class TestDownwardCompilation:
    @pytest.mark.parametrize("text", DOWNWARD_SUITE)
    def test_on_exhaustive_corpus(self, text, small_trees):
        expr = parse_node(text)
        automaton = compile_node_expr(expr, ("a", "b"))
        for tree in small_trees:
            expected = set(Evaluator(tree).nodes(expr))
            assert nodes_by_automaton(automaton, tree) == expected, (
                f"{text} differs on {tree.to_shape()}"
            )

    @pytest.mark.parametrize("text", DOWNWARD_SUITE[:8])
    def test_on_random_trees(self, text):
        rng = random.Random(31)
        expr = parse_node(text)
        automaton = compile_node_expr(expr, ("a", "b"))
        for __ in range(8):
            tree = random_tree(rng.randint(5, 18), rng=rng)
            expected = set(Evaluator(tree).nodes(expr))
            assert nodes_by_automaton(automaton, tree) == expected

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 8), size=st.integers(1, 9))
    def test_random_downward_expressions(self, seed, budget, size):
        rng = random.Random(seed)
        sampler = ExprSampler(rng=rng, downward_only=True)
        expr = sampler.node(budget)
        automaton = compile_node_expr(expr, ("a", "b"))
        tree = random_tree(size, rng=rng)
        expected = set(Evaluator(tree).nodes(expr))
        assert nodes_by_automaton(automaton, tree) == expected


class TestPathCompilation:
    @pytest.mark.parametrize(
        "text",
        ["child", "child/child", "descendant[b]", "(child[a])*", "child[b] | self[a]"],
    )
    def test_exists_path(self, text, small_trees):
        path = parse_path(text)
        automaton = compile_exists_path(path, ("a", "b"))
        from repro.xpath import ast

        expr = ast.Exists(path)
        for tree in small_trees[:60]:
            expected = set(Evaluator(tree).nodes(expr))
            assert nodes_by_automaton(automaton, tree) == expected


class TestNestingStructure:
    def test_negation_costs_one_level(self):
        inner = compile_node_expr(parse_node("a"), ("a", "b"))
        outer = compile_node_expr(parse_node("not a"), ("a", "b"))
        assert outer.depth == inner.depth + 1

    def test_filters_nest(self):
        automaton = compile_node_expr(parse_node("<child[not <child[a]>]>"), ("a", "b"))
        assert automaton.depth >= 2

    def test_within_is_free(self):
        plain = compile_node_expr(parse_node("<child[b]>"), ("a", "b"))
        within = compile_node_expr(parse_node("W(<child[b]>)"), ("a", "b"))
        assert within.depth == plain.depth


class TestFragmentBoundary:
    @pytest.mark.parametrize("text", ["<parent>", "root", "<right>", "first", "<ancestor>"])
    def test_non_downward_rejected(self, text):
        with pytest.raises(UnsupportedForTwa):
            compile_node_expr(parse_node(text), ("a", "b"))
