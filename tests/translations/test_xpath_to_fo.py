"""Core XPath → FO over the extended signature (T1's classical sibling)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formula_node_set, formula_pairs
from repro.logic import ast as fo
from repro.translations import UnsupportedExpression, xpath_to_fo
from repro.trees import random_tree
from repro.xpath import node_set, parse_node, parse_path, path_pairs
from repro.xpath.fragments import Dialect
from repro.xpath.random_exprs import ExprSampler


class TestCoreTranslation:
    SUITE = [
        "descendant[a]",
        "ancestor | following_sibling",
        "child[not <right[b]>]/parent",
        "preceding_sibling[a and b]",
        "following",
        "preceding",
        "descendant_or_self/left",
    ]

    @pytest.mark.parametrize("text", SUITE)
    def test_path_semantics(self, text, small_trees):
        expr = parse_path(text)
        formula = xpath_to_fo(expr)
        for tree in small_trees[:60]:
            assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 9), size=st.integers(1, 9))
    def test_random_core_node_expressions(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.CORE).node(budget)
        formula = xpath_to_fo(expr)
        tree = random_tree(size, rng=rng)
        assert set(node_set(tree, expr)) == formula_node_set(tree, formula, "x")

    def test_no_tc_in_output(self):
        formula = xpath_to_fo(parse_path("descendant[a]/following_sibling"))
        assert not any(isinstance(f, fo.TC) for f in formula.walk())

    def test_uses_extended_signature(self):
        formula = xpath_to_fo(parse_path("descendant"))
        rels = {f.name for f in formula.walk() if isinstance(f, fo.Rel)}
        assert rels == {"descendant"}


class TestFragmentBoundary:
    def test_general_star_rejected(self):
        with pytest.raises(UnsupportedExpression):
            xpath_to_fo(parse_path("(child/child)*"))

    def test_within_rejected(self):
        with pytest.raises(UnsupportedExpression):
            xpath_to_fo(parse_node("W(a)"))

    def test_same_expressions_accepted_by_mtc(self):
        from repro.translations import xpath_to_mtc

        xpath_to_mtc(parse_path("(child/child)*"))
        xpath_to_mtc(parse_node("W(a)"))
