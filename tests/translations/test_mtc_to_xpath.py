"""Experiment T2: FO(MTC) fragment → Regular XPath.

Two validation modes: hand-written formulas checked against the model
checker, and the *round-trip* property — forward-translate random W-free
expressions (T1), translate back, and compare semantics.  The round trip
exercises every constructor of the compositional fragment.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formula_node_set, formula_pairs, parse_formula
from repro.translations import (
    UnsupportedFormula,
    mtc_to_node_expr,
    mtc_to_path_expr,
    xpath_to_mtc,
)
from repro.trees import random_tree
from repro.xpath import node_set, parse_node, path_pairs
from repro.xpath.fragments import Dialect
from repro.xpath.random_exprs import ExprSampler

NODE_FORMULAS = [
    "a(x)",
    "true",
    "~a(x) & b(x)",
    "exists y. child(x,y) & a(y)",
    "~(exists y. descendant(x,y) & b(y))",
    "exists y. tc[u,v](child(u,v) & a(v))(x,y) & leaf(y)",
    "all y. (child(x,y) -> a(y))",
    "exists y. rtc[u,v](right(u,v))(x,y) & b(y)",
    "exists y. child(y,x) & exists z. right(y,z)",
    "exists y. (child(x,y) | right(x,y)) & a(y)",
    "exists y z. child(x,y) & child(y,z) & b(z)",
    "root(x)",
    "leaf(x) | ~leaf(x)",
    "exists y. true & child(x,y)",
]

PATH_FORMULAS = [
    "child(x,y)",
    "child(y,x)",
    "x=y",
    "tc[u,v](child(u,v))(x,y)",
    "tc[u,v](child(u,v))(y,x)",
    "child(x,y) | right(x,y)",
    "exists z. child(x,z) & tc[u,v](right(u,v))(z,y) & a(y)",
    "a(x) & descendant(x,y) & b(y)",
    "a(x) & b(y)",  # a product (cylinder pair)
    "rtc[u,v](exists w. child(u,w) & child(w,v))(x,y)",
    "exists z. child(x,z) & leaf(z) & child(z,y)",
]


class TestHandWrittenFormulas:
    @pytest.mark.parametrize("text", NODE_FORMULAS)
    def test_node_formulas(self, text, small_trees):
        formula = parse_formula(text)
        expr = mtc_to_node_expr(formula, "x")
        for tree in small_trees[:70]:
            assert formula_node_set(tree, formula, "x") == set(node_set(tree, expr))

    @pytest.mark.parametrize("text", PATH_FORMULAS)
    def test_path_formulas(self, text, small_trees):
        formula = parse_formula(text)
        expr = mtc_to_path_expr(formula, "x", "y")
        for tree in small_trees[:70]:
            assert formula_pairs(tree, formula, "x", "y") == path_pairs(tree, expr)


class TestRoundTrip:
    """xpath → FO(MTC) → xpath must preserve semantics on the W-free dialect."""

    @settings(max_examples=70, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 9), size=st.integers(1, 9))
    def test_node_roundtrip(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.REGULAR).node(budget)
        formula = xpath_to_mtc(expr)
        back = mtc_to_node_expr(formula, "x")  # the fragment covers T1's image
        tree = random_tree(size, rng=rng)
        assert set(node_set(tree, expr)) == set(node_set(tree, back))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 7), size=st.integers(1, 8))
    def test_path_roundtrip(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.REGULAR).path(budget)
        formula = xpath_to_mtc(expr)
        back = mtc_to_path_expr(formula, "x", "y")
        tree = random_tree(size, rng=rng)
        assert path_pairs(tree, expr) == path_pairs(tree, back)


class TestFragmentBoundary:
    """Formulas outside the compositional fragment are rejected loudly —
    these are exactly the shapes whose translation is the paper's hard
    contribution."""

    def test_path_intersection_rejected(self):
        with pytest.raises(UnsupportedFormula, match="intersection"):
            mtc_to_path_expr(parse_formula("child(x,y) & descendant(x,y)"), "x", "y")

    def test_tc_loop_rejected(self):
        with pytest.raises(UnsupportedFormula):
            mtc_to_node_expr(
                parse_formula("tc[u,v](right(u,v) | right(v,u))(x,x)"), "x"
            )

    def test_negated_binary_rejected(self):
        with pytest.raises(UnsupportedFormula):
            mtc_to_path_expr(parse_formula("~child(x,y)"), "x", "y")

    def test_cross_join_conjunct_rejected(self):
        with pytest.raises(UnsupportedFormula):
            mtc_to_path_expr(
                parse_formula("exists z. child(x,z) & child(z,y) & descendant(x,y)"),
                "x",
                "y",
            )

    def test_wrong_free_variables_rejected(self):
        with pytest.raises(UnsupportedFormula):
            mtc_to_node_expr(parse_formula("child(x,y)"), "x")

    def test_same_variable_pair_rejected(self):
        with pytest.raises(ValueError):
            mtc_to_path_expr(parse_formula("a(x)"), "x", "x")
