"""Conditional XPath (Marx): the FO-complete dialect, via the until pattern.

Conditional XPath = Core XPath + closures of conditional steps
``(?α / s / ?β)+``.  Marx's theorem says it is *exactly* first-order
complete on ordered trees; our Core-XPath → FO translation accepts it by
encoding conditional closures with the strict-until pattern over the
extended signature.  These tests validate the encoding semantically and the
fragment classifier syntactically.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formula_node_set, formula_pairs
from repro.logic import ast as fo
from repro.translations import UnsupportedExpression, xpath_to_fo
from repro.translations.xpath_to_logic import conditional_step
from repro.trees import Axis, chain, random_tree
from repro.xpath import (
    ast as xp,
    is_conditional_xpath,
    node_set,
    parse_node,
    parse_path,
    path_pairs,
)

UNTIL_SUITE = [
    "(child[a])*",
    "(child[a])+",
    "(?b/child)*",
    "(?a/right[b])+",
    "(parent[a])*",
    "(left[not b])+",
    "(?a/child/?b)*",
    "(right[a and not leaf])+",
    "(?(not a)/parent)*",
]


class TestUntilTranslation:
    @pytest.mark.parametrize("text", UNTIL_SUITE)
    def test_path_semantics(self, text, small_trees):
        expr = parse_path(text)
        formula = xpath_to_fo(expr)
        for tree in small_trees[:70]:
            assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y"), (
                f"{text} differs on {tree.to_shape()}"
            )

    @pytest.mark.parametrize(
        "text", ["<(child[a])+[b]>", "not <(?a/right)+[leaf]>", "<(parent[b])*[root]>"]
    )
    def test_node_semantics(self, text, small_trees):
        expr = parse_node(text)
        formula = xpath_to_fo(expr)
        for tree in small_trees[:70]:
            assert node_set(tree, expr) == formula_node_set(tree, formula, "x")

    @pytest.mark.parametrize("text", UNTIL_SUITE[:4])
    def test_on_larger_random_trees(self, text):
        rng = random.Random(41)
        expr = parse_path(text)
        formula = xpath_to_fo(expr)
        for __ in range(6):
            tree = random_tree(rng.randint(5, 14), rng=rng)
            assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")

    def test_no_tc_in_output(self):
        formula = xpath_to_fo(parse_path("(child[a])+"))
        assert not any(isinstance(f, fo.TC) for f in formula.walk())

    def test_alternating_until_on_chain(self):
        # The classic until query: an unbroken run of a's down to a b.
        tree = chain(6, labels=("a", "a", "a", "b", "a", "b"))
        expr = parse_node("<(child[a])*[<child[b]>]>")
        formula = xpath_to_fo(expr)
        assert formula_node_set(tree, formula, "x") == set(node_set(tree, expr)) == {0, 1, 2, 3, 4}


class TestConditionalStepDecomposition:
    def test_plain_axis(self):
        axis, alpha, beta = conditional_step(parse_path("child"))
        assert axis is Axis.CHILD and alpha is None and beta is None

    def test_filtered_axis(self):
        axis, alpha, beta = conditional_step(parse_path("child[a]"))
        assert axis is Axis.CHILD and alpha is None and beta == xp.Label("a")

    def test_tests_on_both_sides(self):
        axis, alpha, beta = conditional_step(parse_path("?a/right/?b"))
        assert axis is Axis.RIGHT
        assert alpha == xp.Label("a") and beta == xp.Label("b")

    def test_multiple_tests_folded(self):
        axis, alpha, beta = conditional_step(parse_path("child[a][b]"))
        assert beta == xp.And(xp.Label("a"), xp.Label("b"))

    @pytest.mark.parametrize("text", ["child/child", "child | right", "self", "descendant/child"])
    def test_non_conditional_rejected(self, text):
        assert conditional_step(parse_path(text)) is None


class TestClassifier:
    @pytest.mark.parametrize(
        "text", ["(child[a])*", "(?b/right)+", "descendant[a]", "child[<(parent[b])*[root]>]"]
    )
    def test_conditional(self, text):
        assert is_conditional_xpath(parse_path(text))

    @pytest.mark.parametrize("text", ["(child/child)*", "((child[a])*[b]/right)*"])
    def test_not_conditional(self, text):
        assert not is_conditional_xpath(parse_path(text))

    def test_within_excluded(self):
        assert not is_conditional_xpath(parse_node("W(a)"))

    def test_general_star_still_rejected_by_fo(self):
        with pytest.raises(UnsupportedExpression):
            xpath_to_fo(parse_path("(child/child)*"))


class TestRandomizedConditional:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(1, 9))
    def test_random_conditional_stars(self, seed, size):
        rng = random.Random(seed)
        # Build a random conditional step: optional tests around an axis.
        from repro.xpath.fragments import Dialect
        from repro.xpath.random_exprs import ExprSampler

        sampler = ExprSampler(rng=rng, dialect=Dialect.CORE)
        axis = rng.choice([xp.CHILD, xp.PARENT, xp.LEFT, xp.RIGHT])
        parts = []
        if rng.random() < 0.5:
            parts.append(xp.Check(sampler.node(3)))
        parts.append(axis)
        if rng.random() < 0.5:
            parts.append(xp.Check(sampler.node(3)))
        body = parts[0]
        for part in parts[1:]:
            body = xp.Seq(body, part)
        expr = xp.Star(body) if rng.random() < 0.5 else xp.plus(body)
        formula = xpath_to_fo(expr)
        tree = random_tree(size, rng=rng)
        assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")
