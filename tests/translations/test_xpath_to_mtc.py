"""Experiment T1: Regular XPath(W) ⊆ FO(MTC).

Every expression is translated and the two semantics compared on the
exhaustive corpus (all trees ≤ 4 nodes) and random larger trees — the
machine-checkable rendering of the paper's easy direction.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formula_node_set, formula_pairs
from repro.logic import ast as fo
from repro.translations import xpath_to_mtc
from repro.trees import random_tree
from repro.xpath import node_set, parse_node, parse_path, path_pairs
from repro.xpath.fragments import Dialect
from repro.xpath.random_exprs import ExprSampler

NODE_SUITE = [
    "a",
    "true",
    "false",
    "not <child>",
    "root",
    "leaf",
    "first",
    "last",
    "<child[b]> and not a",
    "<descendant[a and <right>]>",
    "<(child/right)*[b]>",
    "<(child[a] | right)+>",
    "W(not <parent>)",
    "W(<descendant[b]>) and a",
    "not W(<child[W(root)]>)",
    "W(<following_sibling>)",
    "<ancestor[W(<child[b]>)]>",
    "<following[a]>",
    "<preceding>",
]

PATH_SUITE = [
    "child",
    "parent/child",
    "descendant_or_self[a]",
    "(child[a]/right)*",
    "descendant[W(<child>)]",
    "child+ | right+",
    "?(not a)/following_sibling",
    "0 | self",
    "preceding_sibling/ancestor_or_self",
]


class TestNodeTranslation:
    @pytest.mark.parametrize("text", NODE_SUITE)
    def test_on_exhaustive_corpus(self, text, small_trees):
        expr = parse_node(text)
        formula = xpath_to_mtc(expr)
        for tree in small_trees:
            assert set(node_set(tree, expr)) == formula_node_set(tree, formula, "x"), (
                f"{text} differs on {tree.to_shape()}"
            )

    @pytest.mark.parametrize("text", NODE_SUITE[:10])
    def test_on_random_trees(self, text):
        rng = random.Random(17)
        expr = parse_node(text)
        formula = xpath_to_mtc(expr)
        for __ in range(10):
            tree = random_tree(rng.randint(5, 25), alphabet=("a", "b", "c"), rng=rng)
            assert set(node_set(tree, expr)) == formula_node_set(tree, formula, "x")


class TestPathTranslation:
    @pytest.mark.parametrize("text", PATH_SUITE)
    def test_on_exhaustive_corpus(self, text, small_trees):
        expr = parse_path(text)
        formula = xpath_to_mtc(expr)
        for tree in small_trees:
            assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y"), (
                f"{text} differs on {tree.to_shape()}"
            )

    @pytest.mark.parametrize("text", PATH_SUITE[:5])
    def test_on_random_trees(self, text):
        rng = random.Random(23)
        expr = parse_path(text)
        formula = xpath_to_mtc(expr)
        for __ in range(8):
            tree = random_tree(rng.randint(5, 16), rng=rng)
            assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")


class TestRandomizedT1:
    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 9), size=st.integers(1, 9))
    def test_random_node_expressions(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.REGULAR_W).node(budget)
        formula = xpath_to_mtc(expr)
        tree = random_tree(size, rng=rng)
        assert set(node_set(tree, expr)) == formula_node_set(tree, formula, "x")

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 8), size=st.integers(1, 8))
    def test_random_path_expressions(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.REGULAR_W).path(budget)
        formula = xpath_to_mtc(expr)
        tree = random_tree(size, rng=rng)
        assert path_pairs(tree, expr) == formula_pairs(tree, formula, "x", "y")


class TestTranslationShape:
    def test_star_becomes_tc(self):
        formula = xpath_to_mtc(parse_path("(child/right)*"))
        assert any(isinstance(f, fo.TC) for f in formula.walk())

    def test_within_guards_quantifiers(self):
        formula = xpath_to_mtc(parse_node("W(<child>)"))
        # The subtree guard is itself a TC over child (descendant-or-self).
        tcs = [f for f in formula.walk() if isinstance(f, fo.TC)]
        assert tcs, "relativisation should introduce a TC guard"

    def test_core_translation_has_bounded_free_vars(self):
        formula = xpath_to_mtc(parse_node("<child[<right[a]>]>"))
        assert fo.free_variables(formula) == {"x"}

    def test_size_polynomial(self):
        # Size of the output grows linearly-ish in input size for a
        # star-tower (each star adds one TC wrapper).
        sizes = []
        text = "child"
        for __ in range(5):
            text = f"({text})*"
            sizes.append(xpath_to_mtc(parse_path(text)).size)
        growth = [b - a for a, b in zip(sizes, sizes[1:])]
        assert all(g == growth[0] for g in growth)  # constant increments
