"""The Marx–de Rijke FO² characterization: Core XPath in two variables."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import formula_node_set
from repro.translations.xpath_to_fo2 import variables_used, xpath_to_fo2
from repro.trees import random_tree
from repro.xpath import node_set, parse_node
from repro.xpath.fragments import Dialect
from repro.xpath.normal_forms import NotCoreXPath
from repro.xpath.random_exprs import ExprSampler

SUITE = [
    "a",
    "not <child>",
    "<child[b and <right[a]>]>",
    "<descendant[<parent/child>]>",  # deep nesting reuses variables
    "<ancestor[a]> and not <following_sibling>",
    "<child[<child[<child[a]>]>]>",  # three levels: x, y, x, y alternate
    "root or leaf",
]


class TestTwoVariableProperty:
    @pytest.mark.parametrize("text", SUITE)
    def test_only_two_names(self, text):
        formula = xpath_to_fo2(parse_node(text))
        assert variables_used(formula) <= {"x", "y"}

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 10))
    def test_random_core_only_two_names(self, seed, budget):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.CORE).node(budget)
        formula = xpath_to_fo2(expr)
        assert variables_used(formula) <= {"x", "y"}

    def test_custom_names(self):
        formula = xpath_to_fo2(parse_node("<child[<child>]>"), "u", "v")
        assert variables_used(formula) <= {"u", "v"}

    def test_same_names_rejected(self):
        with pytest.raises(ValueError):
            xpath_to_fo2(parse_node("a"), "x", "x")


class TestSemantics:
    @pytest.mark.parametrize("text", SUITE)
    def test_agrees_with_evaluator(self, text, small_trees):
        expr = parse_node(text)
        formula = xpath_to_fo2(expr)
        for tree in small_trees[:60]:
            assert formula_node_set(tree, formula, "x") == set(node_set(tree, expr))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 9), size=st.integers(1, 9))
    def test_random_agreement(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng, dialect=Dialect.CORE).node(budget)
        formula = xpath_to_fo2(expr)
        tree = random_tree(size, rng=rng)
        assert formula_node_set(tree, formula, "x") == set(node_set(tree, expr))

    def test_agrees_with_many_variable_translation(self, small_trees):
        from repro.translations import xpath_to_fo

        expr = parse_node("<child[<right[<parent[b]>]>]>")
        two_var = xpath_to_fo2(expr)
        many_var = xpath_to_fo(expr)
        assert len(variables_used(two_var)) <= 2
        assert len(variables_used(many_var)) > 2  # fresh names per quantifier
        for tree in small_trees[:40]:
            assert formula_node_set(tree, two_var, "x") == formula_node_set(
                tree, many_var, "x"
            )


class TestFragmentBoundary:
    @pytest.mark.parametrize("text", ["W(a)", "<(child/child)*>"])
    def test_outside_core_rejected(self, text):
        with pytest.raises(NotCoreXPath):
            xpath_to_fo2(parse_node(text))
