"""Public-API façade tests: the Query object ties the whole diagram together."""

import pytest

from repro import Query, Tree, parse_xml
from repro.logic import formula_node_set
from repro.xpath import Dialect, ast as xp


@pytest.fixture(scope="module")
def doc():
    return parse_xml(
        "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"
    )


class TestConstruction:
    def test_node_from_text(self):
        q = Query.node("a and <child>")
        assert not q.is_path
        assert str(q) == "a and <child>"

    def test_path_from_text(self):
        q = Query.path("child[a]/descendant")
        assert q.is_path

    def test_from_ast(self):
        q = Query.node(xp.Label("a"))
        assert q.evaluate(Tree.leaf("a")) == {0}

    def test_sort_mismatch_rejected(self):
        with pytest.raises(TypeError):
            Query.node(xp.CHILD)
        with pytest.raises(TypeError):
            Query.path(xp.Label("a"))

    def test_repr(self):
        assert "Query.node" in repr(Query.node("a"))
        assert "Query.path" in repr(Query.path("child"))


class TestEvaluation:
    def test_node_evaluation(self, doc):
        q = Query.node("<child[i]>")
        assert q.evaluate(doc) == {2, 4}  # title and location contain <i>

    def test_path_selection(self, doc):
        q = Query.path("descendant[i]")
        assert q.select(doc) == {3, 5}

    def test_pairs(self, doc):
        q = Query.path("child")
        assert (0, 1) in q.pairs(doc)

    def test_holds_at(self, doc):
        q = Query.node("i")
        assert q.holds_at(doc, 3)
        assert not q.holds_at(doc, 0)

    def test_sort_checks(self, doc):
        with pytest.raises(TypeError):
            Query.path("child").evaluate(doc)
        with pytest.raises(TypeError):
            Query.node("a").pairs(doc)


class TestClassification:
    def test_dialects(self):
        assert Query.node("<child>").dialect is Dialect.CORE
        assert Query.path("(child/child)*").dialect is Dialect.REGULAR
        assert Query.node("W(a)").dialect is Dialect.REGULAR_W

    def test_downward(self):
        assert Query.node("<child[b]>").is_downward
        assert not Query.node("<parent>").is_downward

    def test_size(self):
        assert Query.path("child/parent").size == 3


class TestDiagram:
    """Round the full square: XPath → FO(MTC) → XPath; XPath → nested TWA."""

    def test_to_fo_mtc_preserves_semantics(self, doc):
        q = Query.node("W(<descendant[i]>)")
        formula = q.to_fo_mtc()
        assert set(q.evaluate(doc)) == formula_node_set(doc, formula, "x")

    def test_from_fo_mtc_roundtrip(self, doc):
        q = Query.node("<child[i]> and not <right>")
        back = Query.from_fo_mtc(q.to_fo_mtc())
        assert back.evaluate(doc) == q.evaluate(doc)

    def test_from_fo_mtc_path(self, doc):
        q = Query.path("child+")
        back = Query.from_fo_mtc(q.to_fo_mtc(), "x", "y")
        assert back.pairs(doc) == q.pairs(doc)

    def test_to_nested_twa(self, doc):
        q = Query.node("<descendant[b]>")
        automaton = q.to_nested_twa(doc.alphabet)
        accepted = {v for v in doc.node_ids if automaton.accepts(doc, scope=v)}
        assert accepted == set(q.evaluate(doc))

    def test_to_nested_twa_rejects_paths(self):
        with pytest.raises(TypeError):
            Query.path("child").to_nested_twa(("a",))

    def test_to_fo_for_core(self):
        formula = Query.node("<descendant[a]>").to_fo()
        assert formula is not None


class TestComparison:
    def test_equivalent(self):
        assert Query.path("child/self").equivalent(Query.path("child"))
        assert not Query.path("child").equivalent(Query.path("descendant"))

    def test_compare_report(self):
        report = Query.node("root").compare(Query.node("not <parent>"))
        assert report.equivalent_on_corpus

    def test_compare_sort_mismatch(self):
        with pytest.raises(TypeError):
            Query.node("a").compare(Query.path("child"))

    def test_simplify(self):
        q = Query.path("self/child[true]/self")
        assert str(q.simplify()) == "child"
