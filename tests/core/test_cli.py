"""CLI tests (driving ``repro.cli.main`` directly, capturing output)."""

import pytest

from repro.cli import main

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"


@pytest.fixture()
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


class TestEvalAndSelect:
    def test_eval(self, doc_file, capsys):
        assert main(["eval", "<child[i]>", doc_file]) == 0
        out = capsys.readouterr().out
        assert "2 node(s)" in out
        assert "<title>" in out and "<location>" in out

    def test_select(self, doc_file, capsys):
        assert main(["select", "descendant[i]", doc_file]) == 0
        out = capsys.readouterr().out
        assert "2 node(s)" in out

    def test_eval_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(DOC))
        assert main(["eval", "b"]) == 0
        assert "1 node(s)" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["eval", "a", "/nonexistent/file.xml"]) == 2
        assert "error" in capsys.readouterr().err


class TestTranslate:
    def test_roundtrip_shown(self, capsys):
        assert main(["translate", "<child[a]>"]) == 0
        out = capsys.readouterr().out
        assert "FO(MTC):" in out and "child(x," in out
        assert "back:" in out

    def test_w_query_outside_fragment(self, capsys):
        assert main(["translate", "W(<parent>)"]) == 0
        out = capsys.readouterr().out
        assert "FO(MTC):" in out


class TestEquivalent:
    def test_exact_equivalence(self, capsys):
        assert main(["equivalent", "W(<descendant[b]>)", "<descendant[b]>"]) == 0
        assert "exact" in capsys.readouterr().out

    def test_exact_refutation_prints_document(self, capsys):
        assert main(["equivalent", "<child[b]>", "<descendant[b]>"]) == 1
        out = capsys.readouterr().out
        assert "NOT equivalent" in out and "<" in out

    def test_corpus_fallback_for_non_downward(self, capsys):
        assert main(["equivalent", "<parent/child>", "<parent[<child>]>"]) == 0
        assert "corpus" in capsys.readouterr().out

    def test_path_comparison(self, capsys):
        assert main(["equivalent", "child/self", "child"]) == 0

    def test_sort_mismatch(self, capsys):
        assert main(["equivalent", "a", "child/parent"]) == 2


class TestSatisfiable:
    def test_sat_with_witness(self, capsys):
        assert main(["satisfiable", "<child[a]> and <child[b]>"]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_unsat(self, capsys):
        assert main(["satisfiable", "leaf and <child>"]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_alphabet_option(self, capsys):
        assert main(["satisfiable", "c", "--alphabet", "abc"]) == 0

    def test_non_downward_uses_corpus(self, capsys):
        assert main(["satisfiable", "root and a"]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out


class TestSimplifyAndClassify:
    def test_simplify(self, capsys):
        assert main(["simplify", "self/child[true]/child*"]) == 0
        assert capsys.readouterr().out.strip() == "descendant"

    def test_classify(self, capsys):
        assert main(["classify", "W(<descendant[b]>)"]) == 0
        out = capsys.readouterr().out
        assert "Regular XPath(W)" in out
        assert "downward:    True" in out

    def test_classify_conditional(self, capsys):
        assert main(["classify", "(child[a])+"]) == 0
        assert "conditional: True" in capsys.readouterr().out

    def test_parse_error(self, capsys):
        assert main(["simplify", "child//"]) == 2
        assert "error" in capsys.readouterr().err
