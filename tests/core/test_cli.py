"""CLI tests (driving ``repro.cli.main`` directly, capturing output)."""

import pytest

from repro.cli import main

DOC = "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"


@pytest.fixture()
def doc_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOC)
    return str(path)


class TestEvalAndSelect:
    def test_eval(self, doc_file, capsys):
        assert main(["eval", "<child[i]>", doc_file]) == 0
        out = capsys.readouterr().out
        assert "2 node(s)" in out
        assert "<title>" in out and "<location>" in out

    def test_select(self, doc_file, capsys):
        assert main(["select", "descendant[i]", doc_file]) == 0
        out = capsys.readouterr().out
        assert "2 node(s)" in out

    def test_eval_from_stdin(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO(DOC))
        assert main(["eval", "b"]) == 0
        assert "1 node(s)" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["eval", "a", "/nonexistent/file.xml"]) == 3
        assert "error" in capsys.readouterr().err


class TestTranslate:
    def test_roundtrip_shown(self, capsys):
        assert main(["translate", "<child[a]>"]) == 0
        out = capsys.readouterr().out
        assert "FO(MTC):" in out and "child(x," in out
        assert "back:" in out

    def test_w_query_outside_fragment(self, capsys):
        assert main(["translate", "W(<parent>)"]) == 0
        out = capsys.readouterr().out
        assert "FO(MTC):" in out


class TestEquivalent:
    def test_exact_equivalence(self, capsys):
        assert main(["equivalent", "W(<descendant[b]>)", "<descendant[b]>"]) == 0
        assert "exact" in capsys.readouterr().out

    def test_exact_refutation_prints_document(self, capsys):
        assert main(["equivalent", "<child[b]>", "<descendant[b]>"]) == 1
        out = capsys.readouterr().out
        assert "NOT equivalent" in out and "<" in out

    def test_corpus_fallback_for_non_downward(self, capsys):
        assert main(["equivalent", "<parent/child>", "<parent[<child>]>"]) == 0
        assert "corpus" in capsys.readouterr().out

    def test_path_comparison(self, capsys):
        assert main(["equivalent", "child/self", "child"]) == 0

    def test_sort_mismatch(self, capsys):
        assert main(["equivalent", "a", "child/parent"]) == 2


class TestSatisfiable:
    def test_sat_with_witness(self, capsys):
        assert main(["satisfiable", "<child[a]> and <child[b]>"]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out

    def test_unsat(self, capsys):
        assert main(["satisfiable", "leaf and <child>"]) == 1
        assert "UNSATISFIABLE" in capsys.readouterr().out

    def test_alphabet_option(self, capsys):
        assert main(["satisfiable", "c", "--alphabet", "abc"]) == 0

    def test_non_downward_uses_corpus(self, capsys):
        assert main(["satisfiable", "root and a"]) == 0
        assert "SATISFIABLE" in capsys.readouterr().out


class TestSimplifyAndClassify:
    def test_simplify(self, capsys):
        assert main(["simplify", "self/child[true]/child*"]) == 0
        assert capsys.readouterr().out.strip() == "descendant"

    def test_classify(self, capsys):
        assert main(["classify", "W(<descendant[b]>)"]) == 0
        out = capsys.readouterr().out
        assert "Regular XPath(W)" in out
        assert "downward:    True" in out

    def test_classify_conditional(self, capsys):
        assert main(["classify", "(child[a])+"]) == 0
        assert "conditional: True" in capsys.readouterr().out

    def test_parse_error(self, capsys):
        assert main(["simplify", "child//"]) == 2
        assert "error" in capsys.readouterr().err


class TestErrorPathsAndGovernance:
    """The documented exit-code contract: one code per failure class, one
    single-line ``error:`` diagnostic on stderr."""

    def _stderr_is_single_diagnostic(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1
        return err

    def test_bad_expression_exits_2(self, doc_file, capsys):
        assert main(["eval", "child//", doc_file]) == 2
        self._stderr_is_single_diagnostic(capsys)

    def test_missing_tree_file_exits_3(self, capsys):
        assert main(["eval", "a", "/nonexistent/file.xml"]) == 3
        self._stderr_is_single_diagnostic(capsys)

    def test_timeout_trip_exits_4(self, doc_file, capsys):
        assert main(["check", "exists x. a(x)", doc_file, "--timeout", "0"]) == 4
        err = self._stderr_is_single_diagnostic(capsys)
        assert "deadline" in err

    def test_step_budget_trip_exits_5(self, doc_file, capsys):
        code = main(
            ["select", "(child[speaker] | child)*", doc_file, "--max-steps", "0"]
        )
        assert code == 5
        err = self._stderr_is_single_diagnostic(capsys)
        assert "budget" in err

    def test_node_cap_trip_exits_5(self, doc_file, capsys):
        assert main(["eval", "true", doc_file, "--max-nodes", "1"]) == 5
        self._stderr_is_single_diagnostic(capsys)

    def test_depth_limited_expression_exits_6(self, doc_file, capsys):
        deep = "(" * 10_000 + "child" + ")" * 10_000
        assert main(["select", deep, doc_file]) == 6
        err = self._stderr_is_single_diagnostic(capsys)
        assert "depth" in err

    def test_oversized_document_exits_7(self, tmp_path, capsys):
        path = tmp_path / "deep.xml"
        path.write_text("<a>" * 500 + "</a>" * 500)
        assert main(["eval", "a", str(path)]) == 7
        err = self._stderr_is_single_diagnostic(capsys)
        assert "depth limit" in err

    def test_injected_fault_exits_8(self, doc_file, capsys):
        code = main(["eval", "a", doc_file, "--inject-fault", "xpath.bitset"])
        assert code == 8
        err = self._stderr_is_single_diagnostic(capsys)
        assert "injected fault" in err

    def test_injected_fault_does_not_leak_between_runs(self, doc_file):
        assert main(["eval", "a", doc_file, "--inject-fault", "xpath.bitset"]) == 8
        assert main(["eval", "a", doc_file]) == 0  # disarmed on exit

    def test_fallback_rescues_injected_fault(self, doc_file, capsys, recwarn):
        code = main(
            ["eval", "<child[i]>", doc_file, "--inject-fault", "xpath.bitset",
             "--fallback"]
        )
        assert code == 0
        assert "2 node(s)" in capsys.readouterr().out
        assert any("falling back" in str(w.message) for w in recwarn.list)

    def test_check_fallback_rescues_injected_fault(self, doc_file, capsys, recwarn):
        code = main(
            ["check", "exists x. i(x)", doc_file, "--inject-fault", "logic.bitset",
             "--fallback"]
        )
        assert code == 0
        assert "HOLDS" in capsys.readouterr().out

    def test_governed_run_that_fits_succeeds(self, doc_file, capsys):
        code = main(
            ["eval", "<child[i]>", doc_file,
             "--timeout", "30", "--max-steps", "100000", "--max-nodes", "1000"]
        )
        assert code == 0
        assert "2 node(s)" in capsys.readouterr().out

    def test_budget_flags_on_equivalent(self, capsys):
        code = main(["equivalent", "child", "child/self", "--max-steps", "0"])
        assert code == 5
        self._stderr_is_single_diagnostic(capsys)
