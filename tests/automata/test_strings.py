"""NFA/DFA toolkit tests."""

import pytest

from repro.automata.strings import Dfa, Nfa


class TestNfaBuilders:
    def test_literal(self):
        nfa = Nfa.literal(("a", "b"))
        assert nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a",))
        assert not nfa.accepts(("a", "b", "a"))

    def test_empty_word(self):
        nfa = Nfa.empty_word()
        assert nfa.accepts(())
        assert not nfa.accepts(("a",))

    def test_nothing(self):
        nfa = Nfa.nothing()
        assert not nfa.accepts(())
        assert not nfa.accepts(("a",))

    def test_any_of(self):
        nfa = Nfa.any_of("abc")
        assert nfa.accepts(("b",))
        assert not nfa.accepts(("d",))
        assert not nfa.accepts(())

    def test_all_words(self):
        nfa = Nfa.all_words("ab")
        for word in [(), ("a",), ("b", "a", "b")]:
            assert nfa.accepts(word)
        assert not nfa.accepts(("c",))


class TestRegularOperations:
    def test_union(self):
        nfa = Nfa.literal(("a",)).union(Nfa.literal(("b", "b")))
        assert nfa.accepts(("a",))
        assert nfa.accepts(("b", "b"))
        assert not nfa.accepts(("b",))

    def test_concat(self):
        nfa = Nfa.literal(("a",)).concat(Nfa.literal(("b",)))
        assert nfa.accepts(("a", "b"))
        assert not nfa.accepts(("a",))

    def test_star(self):
        nfa = Nfa.literal(("a", "b")).star()
        assert nfa.accepts(())
        assert nfa.accepts(("a", "b"))
        assert nfa.accepts(("a", "b", "a", "b"))
        assert not nfa.accepts(("a",))

    def test_plus(self):
        nfa = Nfa.literal(("a",)).plus()
        assert not nfa.accepts(())
        assert nfa.accepts(("a", "a", "a"))

    def test_optional(self):
        nfa = Nfa.literal(("a",)).optional()
        assert nfa.accepts(())
        assert nfa.accepts(("a",))

    def test_repeat(self):
        nfa = Nfa.literal(("a",)).repeat(3)
        assert nfa.accepts(("a", "a", "a"))
        assert not nfa.accepts(("a", "a"))

    def test_composite_expression(self):
        # (ab)*a — ends in 'a', alternating.
        nfa = Nfa.literal(("a", "b")).star().concat(Nfa.literal(("a",)))
        assert nfa.accepts(("a",))
        assert nfa.accepts(("a", "b", "a"))
        assert not nfa.accepts(("a", "b"))


class TestChoiceSets:
    def test_accepts_some_choice(self):
        nfa = Nfa.literal((0, 1))
        assert nfa.accepts_some_choice([{0, 2}, {1}])
        assert not nfa.accepts_some_choice([{2}, {1}])
        assert not nfa.accepts_some_choice([{0}])

    def test_empty_choice_kills(self):
        nfa = Nfa.literal((0,))
        assert not nfa.accepts_some_choice([set()])


class TestDeterminization:
    def test_determinize_preserves_language(self):
        nfa = Nfa.literal(("a", "b")).star().concat(Nfa.literal(("a",)))
        dfa = nfa.determinize("ab")
        for word in [(), ("a",), ("b",), ("a", "b"), ("a", "b", "a"), ("a", "a")]:
            assert dfa.accepts(word) == nfa.accepts(word)

    def test_complement(self):
        dfa = Nfa.literal(("a",)).determinize("ab").complement()
        assert dfa.accepts(())
        assert not dfa.accepts(("a",))
        assert dfa.accepts(("b",))

    def test_product_intersection(self):
        starts_a = Nfa.literal(("a",)).concat(Nfa.all_words("ab")).determinize("ab")
        ends_b = Nfa.all_words("ab").concat(Nfa.literal(("b",))).determinize("ab")
        both = starts_a.product(ends_b)
        assert both.accepts(("a", "b"))
        assert not both.accepts(("a",))
        assert not both.accepts(("b", "b"))

    def test_product_union_mode(self):
        one = Nfa.literal(("a",)).determinize("ab")
        two = Nfa.literal(("b",)).determinize("ab")
        either = one.product(two, accept_both=False)
        assert either.accepts(("a",)) and either.accepts(("b",))
        assert not either.accepts(("a", "b"))

    def test_emptiness_and_witness(self):
        dfa = Nfa.literal(("a", "b", "a")).determinize("ab")
        assert dfa.find_word() == ("a", "b", "a")
        empty = dfa.product(dfa.complement())
        assert empty.is_empty()

    def test_equivalence(self):
        one = Nfa.literal(("a",)).star().determinize("ab")
        two = Nfa.empty_word().union(Nfa.literal(("a",)).plus()).determinize("ab")
        assert one.equivalent(two)
        three = Nfa.literal(("a",)).plus().determinize("ab")
        assert not one.equivalent(three)

    def test_product_alphabet_mismatch(self):
        one = Nfa.literal(("a",)).determinize("ab")
        two = Nfa.literal(("a",)).determinize("abc")
        with pytest.raises(ValueError):
            one.product(two)
