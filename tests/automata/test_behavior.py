"""Behavior-algorithm tests — the T4 cross-validation (behavior ≡ config
graph) plus structural properties of behavior tables."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    BehaviorAnalysis,
    Move,
    TwaBuilder,
    behavior_accepts,
    random_twa,
    subtree_behavior,
)
from repro.automata.behavior import ACCEPT
from repro.trees import Tree, all_trees, chain, random_tree


class TestAgreementWithConfigGraph:
    """T4's computational core: the two membership algorithms agree."""

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        states=st.integers(1, 4),
        size=st.integers(1, 12),
    )
    def test_on_random_automata_and_trees(self, seed, states, size):
        rng = random.Random(seed)
        automaton = random_twa(num_states=states, rng=rng)
        tree = random_tree(size, rng=rng)
        assert automaton.accepts(tree) == behavior_accepts(automaton, tree)

    def test_exhaustive_small_trees(self, small_trees):
        rng = random.Random(42)
        for __ in range(8):
            automaton = random_twa(num_states=3, rng=rng)
            for tree in small_trees:
                assert automaton.accepts(tree) == behavior_accepts(automaton, tree)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(2, 10))
    def test_scoped_agreement(self, seed, size):
        rng = random.Random(seed)
        automaton = random_twa(num_states=3, rng=rng)
        tree = random_tree(size, rng=rng)
        for scope in tree.node_ids:
            assert automaton.accepts(tree, scope=scope) == behavior_accepts(
                automaton, tree, scope=scope
            )


class TestBehaviorTables:
    def test_leaf_behavior_of_trivial_walker(self):
        # A walker that immediately moves up in state 0.
        b = TwaBuilder(("a",), 1)
        b.add(0, move=Move.UP, target=0)
        walker = b.build(initial=0, accepting=set())
        analysis = BehaviorAnalysis(walker, Tree.build(("a", ["a"])))
        leaf_table = analysis.behaviors[1]
        assert ("up", 0) in leaf_table[0]

    def test_accept_outcome_recorded(self):
        b = TwaBuilder(("a",), 2)
        b.add(0, move=Move.STAY, target=1)
        walker = b.build(initial=0, accepting={1})
        analysis = BehaviorAnalysis(walker, Tree.leaf("a"))
        assert ACCEPT in analysis.behaviors[0][0]

    def test_sideways_exit_through_subtree_boundary(self):
        # Walker: at a leaf, move RIGHT — a subtree consisting of a leaf has
        # a "right" exit in its behavior.
        b = TwaBuilder(("a",), 1)
        b.add(0, is_leaf=True, move=Move.RIGHT, target=0)
        walker = b.build(initial=0, accepting=set())
        t = Tree.build(("a", ["a", "a"]))
        sig = subtree_behavior(walker, t, 1, is_first=True, is_last=False)
        table = dict(sig)
        assert ("right", 0) in table[0]

    def test_flags_change_behavior(self):
        # A walker moving RIGHT: behaves differently when the subtree root
        # is last vs not last.
        b = TwaBuilder(("a",), 1)
        b.add(0, is_last=False, move=Move.RIGHT, target=0)
        walker = b.build(initial=0, accepting=set())
        t = Tree.leaf("a")
        not_last = dict(subtree_behavior(walker, t, 0, is_first=True, is_last=False))
        last = dict(subtree_behavior(walker, t, 0, is_first=True, is_last=True))
        assert ("right", 0) in not_last[0]
        assert not last[0]

    def test_behavior_determined_by_shape_not_position(self):
        # Two identical subtrees in like contexts get identical signatures.
        t = Tree.build(("a", [("a", ["a"]), "a", ("a", ["a"])]))
        rng = random.Random(0)
        for __ in range(5):
            walker = random_twa(alphabet=("a",), num_states=3, rng=rng)
            sig1 = subtree_behavior(walker, t, 1, is_first=True, is_last=False)
            # subtree at 4 has same shape as at 1; compare in equal flags.
            sig2 = subtree_behavior(walker, t, 4, is_first=True, is_last=False)
            assert sig1 == sig2


class TestDeepTreesLinearity:
    def test_long_chain_decided(self):
        rng = random.Random(1)
        walker = random_twa(num_states=3, rng=rng)
        tree = chain(400, labels=("a", "b"))
        # Must terminate quickly and agree with config-graph search.
        assert behavior_accepts(walker, tree) == walker.accepts(tree)
