"""DTD schemas: content-model parsing, validation, hedge compilation."""

import pytest

from repro.automata import Dtd, DtdSyntaxError, parse_content_model
from repro.trees import Tree, parse_xml


@pytest.fixture(scope="module")
def biblio():
    return Dtd(
        root="bib",
        content={
            "bib": "(conf | journal)*",
            "conf": "paper+",
            "journal": "paper*",
            "paper": "title, author+, award?",
            "title": "EMPTY",
            "author": "EMPTY",
            "award": "EMPTY",
        },
    )


class TestContentModels:
    SYMBOLS = {"a": 0, "b": 1, "c": 2}

    def test_sequence(self):
        nfa = parse_content_model("a, b", self.SYMBOLS)
        assert nfa.accepts((0, 1))
        assert not nfa.accepts((1, 0))
        assert not nfa.accepts((0,))

    def test_alternation_and_closure(self):
        nfa = parse_content_model("(a | b)*", self.SYMBOLS)
        assert nfa.accepts(())
        assert nfa.accepts((0, 1, 0))
        assert not nfa.accepts((2,))

    def test_plus_and_optional(self):
        nfa = parse_content_model("a+, c?", self.SYMBOLS)
        assert nfa.accepts((0,))
        assert nfa.accepts((0, 0, 2))
        assert not nfa.accepts((2,))

    def test_empty(self):
        nfa = parse_content_model("EMPTY", self.SYMBOLS)
        assert nfa.accepts(())
        assert not nfa.accepts((0,))

    def test_any(self):
        nfa = parse_content_model("ANY", self.SYMBOLS)
        assert nfa.accepts((0, 1, 2, 2))

    def test_nested_groups(self):
        nfa = parse_content_model("(a, (b | c))+", self.SYMBOLS)
        assert nfa.accepts((0, 1, 0, 2))
        assert not nfa.accepts((0, 0))

    @pytest.mark.parametrize("text", ["a,, b", "(a", "a |", "*", "a b", "d"])
    def test_malformed_rejected(self, text):
        with pytest.raises(DtdSyntaxError):
            parse_content_model(text, self.SYMBOLS)


class TestValidation:
    def test_conforming_document(self, biblio):
        doc = parse_xml(
            "<bib><conf><paper><title/><author/><award/></paper></conf></bib>"
        )
        assert biblio.validate(doc) is None
        assert biblio.conforms(doc)

    def test_wrong_root(self, biblio):
        assert "root" in biblio.validate(Tree.leaf("paper"))

    def test_undeclared_element(self, biblio):
        doc = parse_xml("<bib><mystery/></bib>")
        assert "undeclared" in biblio.validate(doc)

    def test_content_model_violation_reported(self, biblio):
        doc = parse_xml("<bib><conf/></bib>")  # conf needs paper+
        message = biblio.validate(doc)
        assert "conf" in message and "paper+" in message

    def test_order_matters(self, biblio):
        doc = parse_xml("<bib><conf><paper><author/><title/></paper></conf></bib>")
        assert biblio.validate(doc) is not None

    def test_undeclared_root_rejected_at_construction(self):
        with pytest.raises(DtdSyntaxError):
            Dtd(root="ghost", content={"a": "EMPTY"})


class TestHedgeCompilation:
    def test_agrees_with_validate(self, biblio, small_trees):
        automaton = biblio.to_hedge_automaton()
        samples = [
            parse_xml("<bib/>"),
            parse_xml("<bib><journal/></bib>"),
            parse_xml("<bib><conf><paper><title/><author/></paper></conf></bib>"),
            parse_xml("<bib><conf/></bib>"),
            parse_xml("<paper><title/><author/></paper>"),
            parse_xml("<bib><conf><paper><author/><title/></paper></conf></bib>"),
        ]
        for tree in samples:
            assert automaton.accepts(tree) == biblio.conforms(tree)

    def test_hedge_toolbox_applies(self, biblio):
        # Schema emptiness: the DTD admits at least one document.
        automaton = biblio.to_hedge_automaton()
        witness = automaton.find_tree()
        assert witness is not None
        assert biblio.conforms(witness)
