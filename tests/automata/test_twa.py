"""Tree walking automaton tests: moves, runs, determinism, curated walkers."""

import pytest

from repro.automata import Move, TWA, TwaBuilder, observation_at
from repro.automata.twa import apply_move
from repro.trees import Tree, chain, star


@pytest.fixture(scope="module")
def dfs_b_leaf():
    """The classic DFS walker: accepts iff some leaf is labelled b."""
    b = TwaBuilder(("a", "b"), 3)
    b.add(0, is_leaf=False, move=Move.DOWN_FIRST, target=0)
    b.add(0, label="b", is_leaf=True, move=Move.STAY, target=2)
    b.add(0, label="a", is_leaf=True, move=Move.STAY, target=1)
    b.add(1, is_last=False, move=Move.RIGHT, target=0)
    b.add(1, is_last=True, is_root=False, move=Move.UP, target=1)
    return b.build(initial=0, accepting={2})


class TestObservations:
    def test_root_observation(self, mixed_tree):
        obs = observation_at(mixed_tree, 0)
        assert obs.is_root and obs.is_first and obs.is_last and not obs.is_leaf

    def test_middle_child_observation(self, mixed_tree):
        obs = observation_at(mixed_tree, 2)
        assert not obs.is_root and not obs.is_first and not obs.is_last
        assert obs.label == "c"

    def test_scoped_observation(self, mixed_tree):
        obs = observation_at(mixed_tree, 2, scope=2)
        assert obs.is_root and obs.is_first and obs.is_last

    def test_leaf_flag(self, mixed_tree):
        assert observation_at(mixed_tree, 3).is_leaf
        assert not observation_at(mixed_tree, 6).is_leaf


class TestMoves:
    def test_all_moves_on_middle_node(self, mixed_tree):
        assert apply_move(mixed_tree, 2, Move.STAY) == 2
        assert apply_move(mixed_tree, 2, Move.UP) == 0
        assert apply_move(mixed_tree, 2, Move.DOWN_FIRST) == 3
        assert apply_move(mixed_tree, 2, Move.DOWN_LAST) == 5
        assert apply_move(mixed_tree, 2, Move.LEFT) == 1
        assert apply_move(mixed_tree, 2, Move.RIGHT) == 6

    def test_falling_off(self, mixed_tree):
        assert apply_move(mixed_tree, 0, Move.UP) is None
        assert apply_move(mixed_tree, 0, Move.LEFT) is None
        assert apply_move(mixed_tree, 3, Move.DOWN_FIRST) is None
        assert apply_move(mixed_tree, 1, Move.LEFT) is None

    def test_scope_blocks_exits(self, mixed_tree):
        assert apply_move(mixed_tree, 2, Move.UP, scope=2) is None
        assert apply_move(mixed_tree, 2, Move.RIGHT, scope=2) is None
        assert apply_move(mixed_tree, 3, Move.RIGHT, scope=2) == 4


class TestAcceptance:
    def test_dfs_walker(self, dfs_b_leaf, small_trees):
        for t in small_trees:
            expected = any(
                t.labels[v] == "b" and t.first_child[v] < 0 for v in t.node_ids
            )
            assert dfs_b_leaf.accepts(t) == expected

    def test_dfs_walker_is_deterministic(self, dfs_b_leaf):
        assert dfs_b_leaf.is_deterministic

    def test_initial_accepting_accepts_everything(self):
        everything = TWA(1, 0, frozenset({0}), {})
        assert everything.accepts(Tree.leaf("a"))

    def test_no_transitions_rejects(self):
        nothing = TWA(2, 0, frozenset({1}), {})
        assert not nothing.accepts(Tree.leaf("a"))

    def test_scoped_acceptance(self, dfs_b_leaf):
        t = Tree.build(("a", [("a", ["b"]), "a"]))
        assert dfs_b_leaf.accepts(t)
        assert dfs_b_leaf.accepts(t, scope=1)
        assert not dfs_b_leaf.accepts(t, scope=3)  # subtree "a" has a-leaf only

    def test_reachable_configs(self, dfs_b_leaf):
        t = chain(3)
        configs = dfs_b_leaf.reachable_configs(t)
        assert (0, 0) in configs
        assert all(0 <= node < t.size for _, node in configs)


class TestNondeterminism:
    def test_guessing_walker(self, small_trees):
        # Nondeterministic: guess a path to some b node (not nec. a leaf).
        b = TwaBuilder(("a", "b"), 2)
        b.add(0, label="b", move=Move.STAY, target=1)
        b.add(0, move=Move.DOWN_FIRST, target=0)
        b.add(0, move=Move.RIGHT, target=0)
        walker = b.build(initial=0, accepting={1})
        assert not walker.is_deterministic
        for t in small_trees:
            assert walker.accepts(t) == ("b" in t.labels)

    def test_cycling_run_terminates(self):
        # A walker that can loop forever must still be decided (config graph
        # is finite).
        b = TwaBuilder(("a",), 2)
        b.add(0, move=Move.DOWN_FIRST, target=0)
        b.add(0, move=Move.UP, target=0)
        looper = b.build(initial=0, accepting={1})
        assert not looper.accepts(chain(50))


class TestBuilder:
    def test_wildcard_expansion_counts(self):
        builder = TwaBuilder(("a", "b"), 1)
        # per label: root obs (leaf x 1 first/last combo) = 2; non-root:
        # leaf/first/last free = 8 → 10 per label.
        assert len(builder.observations(label="a")) == 10
        assert len(builder.observations()) == 20

    def test_root_flag_constraints(self):
        builder = TwaBuilder(("a",), 1)
        roots = builder.observations(is_root=True)
        assert all(o.is_first and o.is_last for o in roots)
        assert len(roots) == 2  # leaf or not

    def test_add_merges_choices(self):
        builder = TwaBuilder(("a",), 2)
        builder.add(0, move=Move.STAY, target=0)
        builder.add(0, move=Move.STAY, target=1)
        twa = builder.build(initial=0, accepting={1})
        obs = builder.observations()[0]
        assert len(twa.options(0, obs)) == 2
