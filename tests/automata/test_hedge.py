"""Hedge automaton tests: membership, boolean closure, decision problems."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import random_hedge_automaton

from repro.automata.examples import (
    all_trees_automaton,
    bounded_height,
    chains_only,
    exists_label,
    label_count_mod,
    leaf_count_mod,
    root_label,
)
from repro.trees import Tree, all_trees, chain, star


class TestExampleLanguages:
    def test_exists_label(self, small_trees):
        A = exists_label(("a", "b"), "b")
        for t in small_trees:
            assert A.accepts(t) == ("b" in t.labels)

    def test_root_label(self, small_trees):
        A = root_label(("a", "b"), "a")
        for t in small_trees:
            assert A.accepts(t) == (t.labels[0] == "a")

    def test_all_trees(self, small_trees):
        A = all_trees_automaton(("a", "b"))
        assert all(A.accepts(t) for t in small_trees)

    @pytest.mark.parametrize("modulus,residue", [(2, 0), (2, 1), (3, 2)])
    def test_label_count_mod(self, small_trees, modulus, residue):
        A = label_count_mod(("a", "b"), "a", modulus, residue)
        for t in small_trees:
            expected = t.labels.count("a") % modulus == residue
            assert A.accepts(t) == expected

    @pytest.mark.parametrize("modulus,residue", [(2, 0), (3, 1)])
    def test_leaf_count_mod(self, small_trees, modulus, residue):
        A = leaf_count_mod(("a", "b"), modulus, residue)
        for t in small_trees:
            leaves = sum(1 for v in t.node_ids if t.first_child[v] < 0)
            assert A.accepts(t) == (leaves % modulus == residue)

    @pytest.mark.parametrize("height", [0, 1, 2])
    def test_bounded_height(self, small_trees, height):
        A = bounded_height(("a", "b"), height)
        for t in small_trees:
            assert A.accepts(t) == (t.height <= height)

    def test_chains_only(self, small_trees):
        A = chains_only(("a", "b"))
        for t in small_trees:
            is_chain = all(len(t.children_ids(v)) <= 1 for v in t.node_ids)
            assert A.accepts(t) == is_chain


class TestBooleanClosure:
    def test_union(self, small_trees):
        A = exists_label(("a", "b"), "b").union(root_label(("a", "b"), "b"))
        for t in small_trees:
            assert A.accepts(t) == (("b" in t.labels) or t.labels[0] == "b")

    def test_intersection(self, small_trees):
        A = exists_label(("a", "b"), "b").intersection(
            label_count_mod(("a", "b"), "a", 2, 0)
        )
        for t in small_trees:
            expected = ("b" in t.labels) and (t.labels.count("a") % 2 == 0)
            assert A.accepts(t) == expected

    def test_complement(self, small_trees):
        A = exists_label(("a", "b"), "b")
        C = A.complement()
        for t in small_trees:
            assert C.accepts(t) != A.accepts(t)

    def test_double_complement(self, small_trees):
        A = label_count_mod(("a", "b"), "b", 2, 1)
        CC = A.complement().complement()
        for t in small_trees:
            assert CC.accepts(t) == A.accepts(t)

    def test_determinization_preserves_language(self, small_trees):
        A = exists_label(("a", "b"), "b")
        D = A.determinize()
        for t in small_trees:
            assert D.accepts(t) == A.accepts(t)

    def test_deterministic_state_is_unique(self):
        A = exists_label(("a", "b"), "b").determinize()
        t = Tree.build(("a", ["b", "a"]))
        assert isinstance(A.state_of(t), int)

    def test_unknown_label_rejected_deterministically(self):
        A = exists_label(("a", "b"), "b").determinize()
        with pytest.raises(ValueError):
            A.state_of(Tree.leaf("z"))


class TestDecisionProblems:
    def test_emptiness_of_contradiction(self):
        A = exists_label(("a", "b"), "b")
        assert A.intersection(A.complement()).is_empty()

    def test_witness_extraction(self):
        A = exists_label(("a", "b"), "b").intersection(root_label(("a", "b"), "a"))
        witness = A.find_tree()
        assert witness is not None
        assert A.accepts(witness)
        assert witness.labels[0] == "a" and "b" in witness.labels

    def test_witness_is_small(self):
        A = label_count_mod(("a",), "a", 3, 0)
        witness = A.find_tree()
        assert witness is not None and witness.size == 3

    def test_containment(self):
        big = exists_label(("a", "b"), "b")
        small = big.intersection(root_label(("a", "b"), "a"))
        assert big.contains(small)
        assert not small.contains(big)

    def test_equivalence_of_different_presentations(self):
        # #b ≡ 1 (mod 2) == complement of #b ≡ 0 (mod 2).
        odd = label_count_mod(("a", "b"), "b", 2, 1)
        not_even = label_count_mod(("a", "b"), "b", 2, 0).complement()
        assert odd.equivalent(not_even)

    def test_non_equivalence(self):
        assert not exists_label(("a", "b"), "b").equivalent(
            root_label(("a", "b"), "b")
        )

    def test_empty_language_automaton(self):
        A = exists_label(("a",), "b")  # b never occurs over {a}
        assert A.is_empty()

    def test_de_morgan_at_language_level(self):
        X = exists_label(("a", "b"), "b")
        Y = label_count_mod(("a", "b"), "a", 2, 0)
        lhs = X.intersection(Y).complement()
        rhs = X.complement().union(Y.complement())
        assert lhs.equivalent(rhs)


class TestRandomizedBooleanAlgebra:
    """The hedge toolbox must satisfy the boolean-algebra laws on *random*
    automata, with membership as the semantic oracle."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_complement_flips_membership(self, seed, small_trees):
        rng = random.Random(seed)
        automaton = random_hedge_automaton(rng=rng, num_states=rng.randint(1, 3))
        complemented = automaton.complement()
        for tree in small_trees[:40]:
            assert complemented.accepts(tree) != automaton.accepts(tree)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_union_and_intersection_pointwise(self, seed, small_trees):
        rng = random.Random(seed)
        left = random_hedge_automaton(rng=rng, num_states=2)
        right = random_hedge_automaton(rng=rng, num_states=2)
        union = left.union(right)
        intersection = left.intersection(right)
        for tree in small_trees[:30]:
            in_left, in_right = left.accepts(tree), right.accepts(tree)
            assert union.accepts(tree) == (in_left or in_right)
            assert intersection.accepts(tree) == (in_left and in_right)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_determinization_preserves_random_languages(self, seed, small_trees):
        rng = random.Random(seed)
        automaton = random_hedge_automaton(rng=rng, num_states=rng.randint(1, 3))
        deterministic = automaton.determinize()
        for tree in small_trees[:30]:
            assert deterministic.accepts(tree) == automaton.accepts(tree)

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_emptiness_witness_or_exhaustive_absence(self, seed):
        rng = random.Random(seed)
        automaton = random_hedge_automaton(
            rng=rng, num_states=rng.randint(1, 3), rule_probability=0.5
        )
        witness = automaton.find_tree()
        if witness is None:
            assert not any(automaton.accepts(t) for t in all_trees(4))
        else:
            assert automaton.accepts(witness)
