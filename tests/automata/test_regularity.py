"""The effective regularity theorem (T4): TWA → bottom-up acceptor.

Three layers of validation: (1) the acceptor is a *third* membership
algorithm that must agree with configuration-graph search and with the
behavior algorithm; (2) exact emptiness must agree with exhaustive
enumeration for tiny automata, and every witness must really be accepted;
(3) exact equivalence must prove/refute hand-built language coincidences.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    Move,
    TwaBuilder,
    TwaTreeAcceptor,
    behavior_accepts,
    random_twa,
    twa_find_separating_tree,
    twa_find_tree,
    twa_is_empty,
    twa_language_equivalent,
)
from repro.trees import Tree, all_trees, chain, random_tree


def dfs_b_leaf_walker():
    b = TwaBuilder(("a", "b"), 3)
    b.add(0, is_leaf=False, move=Move.DOWN_FIRST, target=0)
    b.add(0, label="b", is_leaf=True, move=Move.STAY, target=2)
    b.add(0, label="a", is_leaf=True, move=Move.STAY, target=1)
    b.add(1, is_last=False, move=Move.RIGHT, target=0)
    b.add(1, is_last=True, is_root=False, move=Move.UP, target=1)
    return b.build(initial=0, accepting={2})


def guessing_b_leaf_walker():
    g = TwaBuilder(("a", "b"), 2)
    g.add(0, label="b", is_leaf=True, move=Move.STAY, target=1)
    g.add(0, move=Move.DOWN_FIRST, target=0)
    g.add(0, move=Move.RIGHT, target=0)
    return g.build(initial=0, accepting={1})


class TestThirdMembershipAlgorithm:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9), states=st.integers(1, 4), size=st.integers(1, 10))
    def test_agrees_with_config_graph(self, seed, states, size):
        rng = random.Random(seed)
        automaton = random_twa(num_states=states, rng=rng)
        acceptor = TwaTreeAcceptor(automaton, ("a", "b"))
        tree = random_tree(size, rng=rng)
        assert acceptor.accepts(tree) == automaton.accepts(tree)

    def test_three_way_agreement_exhaustive(self, small_trees):
        rng = random.Random(13)
        for __ in range(6):
            automaton = random_twa(num_states=3, rng=rng)
            acceptor = TwaTreeAcceptor(automaton, ("a", "b"))
            for tree in small_trees:
                expected = automaton.accepts(tree)
                assert acceptor.accepts(tree) == expected
                assert behavior_accepts(automaton, tree) == expected

    def test_deep_chain(self):
        automaton = dfs_b_leaf_walker()
        acceptor = TwaTreeAcceptor(automaton, ("a", "b"))
        assert not acceptor.accepts(chain(200, labels=("a",)))
        assert acceptor.accepts(chain(200, labels=("a",) * 199 + ("b",)))


class TestExactEmptiness:
    def test_witness_is_accepted(self):
        automaton = dfs_b_leaf_walker()
        witness = twa_find_tree(automaton, ("a", "b"))
        assert witness is not None
        assert automaton.accepts(witness)

    def test_empty_over_restricted_alphabet(self):
        # The DFS walker needs a b-leaf; over {a} its language is empty.
        automaton = dfs_b_leaf_walker()
        assert twa_is_empty(automaton, ("a",))
        assert not twa_is_empty(automaton, ("a", "b"))

    def test_no_transitions_empty(self):
        from repro.automata import TWA

        automaton = TWA(2, 0, frozenset({1}), {})
        assert twa_is_empty(automaton, ("a",))

    def test_initial_accepting_universal(self):
        from repro.automata import TWA

        automaton = TWA(1, 0, frozenset({0}), {})
        witness = twa_find_tree(automaton, ("a",))
        assert witness is not None

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_agrees_with_exhaustive_enumeration(self, seed):
        rng = random.Random(seed)
        automaton = random_twa(num_states=rng.randint(1, 2), rng=rng, density=0.4)
        witness = twa_find_tree(automaton, ("a", "b"))
        if witness is None:
            assert not any(automaton.accepts(t) for t in all_trees(4))
        else:
            assert automaton.accepts(witness)


class TestExactEquivalence:
    def test_determinism_gap_closed(self):
        """The 3-state deterministic DFS walker and the 2-state
        nondeterministic guesser recognize the same language — proved
        exactly, not corpus-checked."""
        assert twa_language_equivalent(
            dfs_b_leaf_walker(), guessing_b_leaf_walker(), ("a", "b")
        )

    def test_different_languages_separated(self):
        g2 = TwaBuilder(("a", "b"), 2)
        g2.add(0, label="b", move=Move.STAY, target=1)  # b anywhere, not only leaves
        g2.add(0, move=Move.DOWN_FIRST, target=0)
        g2.add(0, move=Move.RIGHT, target=0)
        any_b = g2.build(initial=0, accepting={1})
        witness = twa_find_separating_tree(dfs_b_leaf_walker(), any_b, ("a", "b"))
        assert witness is not None
        assert dfs_b_leaf_walker().accepts(witness) != any_b.accepts(witness)

    def test_self_equivalence(self):
        automaton = guessing_b_leaf_walker()
        assert twa_language_equivalent(automaton, automaton, ("a", "b"))

    def test_matches_nested_twa_compilation(self, small_trees):
        """The T3-compiled query automaton and the hand-written guesser
        agree on corpora; here the languages of two hand-written TWAs are
        compared exactly instead."""
        down_last = TwaBuilder(("a", "b"), 2)
        down_last.add(0, label="b", is_leaf=True, move=Move.STAY, target=1)
        down_last.add(0, move=Move.DOWN_LAST, target=0)
        down_last.add(0, move=Move.LEFT, target=0)
        mirrored = down_last.build(initial=0, accepting={1})
        # Scanning children right-to-left finds the same b-leaves.
        assert twa_language_equivalent(
            mirrored, guessing_b_leaf_walker(), ("a", "b")
        )


class TestStateExploration:
    def test_reachable_states_witnessed(self):
        automaton = guessing_b_leaf_walker()
        acceptor = TwaTreeAcceptor(automaton, ("a", "b"))
        reachable = acceptor.reachable_states()
        assert reachable
        for state, witness in reachable.items():
            assert acceptor.state_of(witness) == state

    def test_max_states_guard(self):
        automaton = random_twa(num_states=4, rng=random.Random(1), density=0.9)
        acceptor = TwaTreeAcceptor(automaton, ("a", "b"))
        with pytest.raises(RuntimeError):
            acceptor.reachable_states(max_states=1)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            TwaTreeAcceptor(guessing_b_leaf_walker(), ())
