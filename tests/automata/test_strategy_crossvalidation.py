"""Fuzzing the two TWA run strategies against each other.

The bit-parallel frontier sweep (``strategy="bitset"``) and the
config-at-a-time BFS walk (``strategy="deque"``) implement the same
configuration-graph reachability; agreement on random machines × random
trees × random scopes — for plain and nested TWAs — is the correctness
anchor for the sweep.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import RUN_STRATEGIES, random_nested_twa, random_twa
from repro.trees import random_tree


class TestStrategyDispatch:
    def test_known_strategies(self):
        assert set(RUN_STRATEGIES) == {"bitset", "deque"}

    def test_unknown_strategy_rejected(self):
        twa = random_twa(rng=random.Random(0))
        tree = random_tree(4, rng=random.Random(0))
        with pytest.raises(ValueError, match="unknown run strategy"):
            twa.accepts(tree, strategy="nope")
        with pytest.raises(ValueError, match="unknown run strategy"):
            twa.reachable_configs(tree, strategy="nope")


class TestTwaStrategiesAgree:
    @settings(max_examples=150, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        size=st.integers(1, 20),
        num_states=st.integers(1, 5),
    )
    def test_accepts(self, seed, size, num_states):
        rng = random.Random(seed)
        twa = random_twa(num_states=num_states, rng=rng)
        tree = random_tree(size, rng=rng)
        scope = rng.randrange(tree.size)
        assert twa.accepts(tree, scope=scope, strategy="bitset") == twa.accepts(
            tree, scope=scope, strategy="deque"
        )

    @settings(max_examples=120, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        size=st.integers(1, 16),
        num_states=st.integers(1, 4),
    )
    def test_reachable_configs(self, seed, size, num_states):
        rng = random.Random(seed)
        twa = random_twa(num_states=num_states, rng=rng)
        tree = random_tree(size, rng=rng)
        scope = rng.randrange(tree.size)
        assert twa.reachable_configs(
            tree, scope=scope, strategy="bitset"
        ) == twa.reachable_configs(tree, scope=scope, strategy="deque")


class TestNestedStrategiesAgree:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        size=st.integers(1, 10),
        depth=st.integers(0, 2),
    )
    def test_accepts(self, seed, size, depth):
        rng = random.Random(seed)
        nested = random_nested_twa(depth=depth, rng=rng)
        tree = random_tree(size, rng=rng)
        scope = rng.randrange(tree.size)
        assert nested.accepts(
            tree, scope=scope, strategy="bitset"
        ) == nested.accepts(tree, scope=scope, strategy="deque")

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(1, 8))
    def test_subtree_masks_match_bits(self, seed, size):
        rng = random.Random(seed)
        nested = random_nested_twa(depth=1, rng=rng)
        tree = random_tree(size, rng=rng)
        bits = nested.subtree_bits(tree)
        masks = nested.subtree_masks(tree)
        for i in range(len(nested.subautomata)):
            expected = 0
            for v in tree.node_ids:
                if bits[v][i]:
                    expected |= 1 << v
            assert masks[i] == expected
