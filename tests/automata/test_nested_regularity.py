"""Exact language-level decisions for *nested* TWA — T4 for the paper's model.

The crowning integration: queries compiled by T3 into nested TWA can be
compared **exactly at the automata level**, closing the circle
XPath → nested TWA → bottom-up acceptor.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    NestedTWA,
    NestedTwaTreeAcceptor,
    nested_twa_find_separating_tree,
    nested_twa_find_tree,
    nested_twa_is_empty,
    nested_twa_language_equivalent,
    random_nested_twa,
    random_twa,
)
from repro.translations import compile_node_expr
from repro.trees import all_trees, random_tree
from repro.xpath import Evaluator, parse_node


class TestMembershipAgreement:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(1, 9))
    def test_depth_one_agrees_with_direct_semantics(self, seed, size):
        rng = random.Random(seed)
        nested = random_nested_twa(depth=1, num_subs=1, rng=rng, density=0.5)
        acceptor = NestedTwaTreeAcceptor(nested, ("a", "b"))
        tree = random_tree(size, rng=rng)
        assert acceptor.accepts(tree) == nested.accepts(tree)

    def test_depth_zero_reduces_to_plain(self, small_trees):
        rng = random.Random(4)
        nested = NestedTWA.from_twa(random_twa(num_states=3, rng=rng))
        acceptor = NestedTwaTreeAcceptor(nested, ("a", "b"))
        for tree in small_trees[:60]:
            assert acceptor.accepts(tree) == nested.accepts(tree)

    def test_compiled_query_agrees(self, small_trees):
        expr = parse_node("not <child[not <child[a]>]>")
        nested = compile_node_expr(expr, ("a", "b"))
        acceptor = NestedTwaTreeAcceptor(nested, ("a", "b"))
        for tree in small_trees[:60]:
            assert acceptor.accepts(tree) == (0 in Evaluator(tree).nodes(expr))


class TestExactDecisions:
    def test_w_transparency_at_automata_level(self):
        left = compile_node_expr(parse_node("W(<descendant[b]>)"), ("a", "b"))
        right = compile_node_expr(parse_node("<descendant[b]>"), ("a", "b"))
        assert nested_twa_language_equivalent(left, right, ("a", "b"))

    def test_unsatisfiable_compiles_to_empty(self):
        nested = compile_node_expr(parse_node("b and not b"), ("a", "b"))
        assert nested_twa_is_empty(nested, ("a", "b"))

    def test_satisfiable_with_witness(self):
        expr = parse_node("<child[a]> and <child[b]>")
        nested = compile_node_expr(expr, ("a", "b"))
        witness = nested_twa_find_tree(nested, ("a", "b"))
        assert witness is not None
        assert 0 in Evaluator(witness).nodes(expr)

    def test_separating_tree_really_separates(self):
        left = compile_node_expr(parse_node("<descendant[b]>"), ("a", "b"))
        right = compile_node_expr(parse_node("<child[b]>"), ("a", "b"))
        witness = nested_twa_find_separating_tree(left, right, ("a", "b"))
        assert witness is not None
        assert left.accepts(witness) != right.accepts(witness)

    def test_equivalence_agrees_with_exact_downward_procedure(self):
        """Two independent exact engines (state exploration on nested TWA vs
        the truth-vector automaton of decision.exact) must give the same
        verdicts."""
        from repro.decision import exact_equivalent

        pairs = [
            ("<(child[a])*[b]>", "b or <child[a and <(child[a])*[b]>]>"),
            ("<descendant[b]>", "<child[b]>"),
            ("not <child>", "leaf"),
        ]
        for left_text, right_text in pairs:
            left_expr = parse_node(left_text)
            right_expr = parse_node(right_text)
            automata_verdict = nested_twa_language_equivalent(
                compile_node_expr(left_expr, ("a", "b")),
                compile_node_expr(right_expr, ("a", "b")),
                ("a", "b"),
            )
            direct_verdict = exact_equivalent(left_expr, right_expr) is None
            assert automata_verdict == direct_verdict


class TestExploration:
    def test_reachable_states_witnessed(self):
        nested = compile_node_expr(parse_node("<child[b]>"), ("a", "b"))
        acceptor = NestedTwaTreeAcceptor(nested, ("a", "b"))
        for state, witness in acceptor.reachable_states().items():
            assert acceptor.state_of(witness) == state

    def test_empty_alphabet_rejected(self):
        nested = compile_node_expr(parse_node("a"), ("a",))
        with pytest.raises(ValueError):
            NestedTwaTreeAcceptor(nested, ())


class TestDeepNesting:
    def test_depth_four_exact_equivalence(self):
        """Exact language equivalence through four nesting levels: the
        universally-quantified query compiled two syntactically different
        ways."""
        left = compile_node_expr(
            parse_node("not <child[not <child[a]>]>"), ("a", "b")
        )
        right = compile_node_expr(
            parse_node("not <child[not <child[a]>]> and true"), ("a", "b")
        )
        assert left.depth >= 4
        assert nested_twa_language_equivalent(left, right, ("a", "b"))
