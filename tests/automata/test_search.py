"""Swap-lemma and separation-harness tests (T5's executable machinery)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    behavior_signature,
    distinct_behavior_count,
    random_twa,
    swap_preserves_acceptance,
    swap_subtrees,
)
from repro.automata.examples import leaf_count_mod
from repro.trees import Tree, chain, random_tree, star


class TestSwapSubtrees:
    def test_basic_swap(self):
        t = Tree.build(("r", [("x", ["y"]), "z"]))
        swapped = swap_subtrees(t, 1, 3)
        assert swapped == Tree.build(("r", ["z", ("x", ["y"])]))

    def test_swap_is_involution(self):
        t = Tree.build(("r", ["a", ("b", ["c"]), "d"]))
        once = swap_subtrees(t, 1, 4)
        # after the swap the subtrees sit at different ids; swap back by
        # locating them again: leaf d is now node 1, subtree b at node ...
        twice = swap_subtrees(once, 1, 4)
        assert twice == t

    def test_overlapping_rejected(self):
        t = Tree.build(("r", [("x", ["y"])]))
        with pytest.raises(ValueError):
            swap_subtrees(t, 1, 2)
        with pytest.raises(ValueError):
            swap_subtrees(t, 1, 1)

    def test_swap_preserves_size(self):
        t = random_tree(12, rng=random.Random(0))
        ids = [v for v in t.node_ids if v != 0]
        a, b = ids[0], ids[-1]
        if not t.is_in_subtree(b, a):
            assert swap_subtrees(t, a, b).size == t.size


class TestSwapLemma:
    """The finite-summarization property behind T4/T5: equal behavior
    tables ⇒ interchangeable subtrees."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(4, 14))
    def test_random_instances(self, seed, size):
        rng = random.Random(seed)
        automaton = random_twa(num_states=rng.randint(1, 3), rng=rng)
        tree = random_tree(size, rng=rng)
        for a in tree.node_ids:
            for b in range(a + 1, tree.size):
                verdict = swap_preserves_acceptance(automaton, tree, a, b)
                assert verdict is not False  # None (N/A) or True

    def test_applicable_instance_exists(self):
        # A star of identical leaves: all leaf positions in the middle share
        # context and behavior, so the lemma applies non-vacuously.
        automaton = random_twa(alphabet=("a", "b"), num_states=2, rng=random.Random(7))
        tree = star(5, root_label="a", leaf_label="b")
        verdict = swap_preserves_acceptance(automaton, tree, 2, 3)
        assert verdict is True


class TestBehaviorCounting:
    def test_identical_shapes_one_behavior(self):
        automaton = random_twa(alphabet=("a",), num_states=3, rng=random.Random(1))
        trees = [chain(3, labels=("a",))] * 4
        assert distinct_behavior_count(automaton, trees) == 1

    def test_count_bounded_by_table_space(self):
        # With 1 state the behavior table has at most 2^(#outcomes) shapes;
        # outcomes ⊆ {accept, up, left, right} → ≤ 16 signatures.
        automaton = random_twa(alphabet=("a",), num_states=1, rng=random.Random(2))
        trees = [chain(n, labels=("a",)) for n in range(1, 12)]
        assert distinct_behavior_count(automaton, trees) <= 16

    def test_behavior_count_saturates_on_chains(self):
        """The separation-in-miniature: a FIXED automaton realizes only
        finitely many behaviors on the chain family, so its behavior count
        saturates — while the languages leaf_count_mod(m) (m growing)
        require unboundedly many distinguishable classes (their hedge
        automata have m states).  This is the quantitative gap T5's proof
        exploits."""
        automaton = random_twa(alphabet=("a",), num_states=2, rng=random.Random(3))
        counts = [
            distinct_behavior_count(
                automaton, [chain(n, labels=("a",)) for n in range(1, upper)]
            )
            for upper in (4, 8, 16, 24)
        ]
        assert counts[-1] == counts[-2]  # saturated
        # ...whereas the regular family keeps needing more states:
        assert leaf_count_mod(("a",), 5, 0).num_states > leaf_count_mod(("a",), 3, 0).num_states

    def test_signature_in_context(self):
        automaton = random_twa(alphabet=("a", "b"), num_states=2, rng=random.Random(4))
        tree = Tree.build(("a", ["b", "b"]))
        sig1 = behavior_signature(automaton, tree, 1)
        sig2 = behavior_signature(automaton, tree, 2)
        # same shape but different flag contexts (first vs last) — both are
        # legal signatures (dicts over all states).
        assert len(dict(sig1)) == automaton.num_states
        assert len(dict(sig2)) == automaton.num_states
