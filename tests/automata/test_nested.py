"""Nested TWA tests: guards, depth, agreement with plain TWA semantics."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata import (
    GuardedTransition,
    Move,
    NestedTWA,
    TwaBuilder,
    random_nested_twa,
    random_twa,
)
from repro.automata.twa import Observation
from repro.trees import Tree, all_trees, random_tree


def guard_automaton(alphabet, subautomata, guards):
    """A 2-state automaton accepting iff some guard holds at the root."""
    options = frozenset(
        GuardedTransition(frozenset(guard), Move.STAY, 1) for guard in guards
    )
    transitions = {}
    for obs in TwaBuilder(alphabet, 1).observations():
        transitions[(0, obs)] = options
    return NestedTWA(2, 0, frozenset({1}), transitions, tuple(subautomata))


def b_leaf_walker():
    b = TwaBuilder(("a", "b"), 3)
    b.add(0, is_leaf=False, move=Move.DOWN_FIRST, target=0)
    b.add(0, label="b", is_leaf=True, move=Move.STAY, target=2)
    b.add(0, label="a", is_leaf=True, move=Move.STAY, target=1)
    b.add(1, is_last=False, move=Move.RIGHT, target=0)
    b.add(1, is_last=True, is_root=False, move=Move.UP, target=1)
    return NestedTWA.from_twa(b.build(initial=0, accepting={2}))


class TestDepthZero:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(1, 10))
    def test_from_twa_agrees(self, seed, size):
        rng = random.Random(seed)
        plain = random_twa(num_states=3, rng=rng)
        lifted = NestedTWA.from_twa(plain)
        tree = random_tree(size, rng=rng)
        assert plain.accepts(tree) == lifted.accepts(tree)

    def test_depth_property(self):
        plain = NestedTWA.from_twa(random_twa(rng=random.Random(0)))
        assert plain.depth == 0
        nested = random_nested_twa(depth=2, rng=random.Random(0))
        assert nested.depth == 2


class TestGuards:
    def test_positive_guard_is_sub_acceptance(self, small_trees):
        sub = b_leaf_walker()
        top = guard_automaton(("a", "b"), [sub], [{(0, True)}])
        for t in small_trees:
            assert top.accepts(t) == sub.accepts(t)

    def test_negative_guard_is_complement(self, small_trees):
        sub = b_leaf_walker()
        top = guard_automaton(("a", "b"), [sub], [{(0, False)}])
        for t in small_trees:
            assert top.accepts(t) == (not sub.accepts(t))

    def test_conjunction_guard(self, small_trees):
        sub = b_leaf_walker()
        # both True and False of the same sub-automaton: never enabled
        top = guard_automaton(("a", "b"), [sub], [{(0, True), (0, False)}])
        for t in small_trees:
            assert not top.accepts(t)

    def test_disjunctive_guards(self, small_trees):
        sub = b_leaf_walker()
        top = guard_automaton(("a", "b"), [sub], [{(0, True)}, {(0, False)}])
        for t in small_trees:
            assert top.accepts(t)


class TestSubtreeTests:
    def test_guard_sees_subtree_not_whole_tree(self):
        # Automaton: move down to the first child, then require the
        # sub-automaton ("has a b-leaf") on the *child's* subtree.
        sub = b_leaf_walker()
        transitions = {}
        for obs in TwaBuilder(("a", "b"), 1).observations(is_leaf=False):
            transitions[(0, obs)] = frozenset(
                {GuardedTransition(frozenset(), Move.DOWN_FIRST, 1)}
            )
        for obs in TwaBuilder(("a", "b"), 1).observations():
            existing = transitions.get((1, obs), frozenset())
            transitions[(1, obs)] = existing | frozenset(
                {GuardedTransition(frozenset({(0, True)}), Move.STAY, 2)}
            )
        top = NestedTWA(3, 0, frozenset({2}), transitions, (sub,))
        # first child's subtree has a b-leaf; elsewhere b's don't count.
        assert top.accepts(Tree.build(("a", [("a", ["b"]), "a"])))
        assert not top.accepts(Tree.build(("a", ["a", ("a", ["b"])])))

    def test_subtree_bits_indexing(self, mixed_tree):
        sub = b_leaf_walker()
        top = guard_automaton(("a", "b", "c"), [sub], [{(0, True)}])
        bits = top.subtree_bits(mixed_tree)
        for v in mixed_tree.node_ids:
            assert bits[v][0] == sub.accepts(mixed_tree, scope=v)


class TestRandomNested:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(1, 8))
    def test_random_nested_terminates_and_is_scoped_consistently(self, seed, size):
        rng = random.Random(seed)
        nested = random_nested_twa(depth=1, rng=rng)
        tree = random_tree(size, rng=rng)
        for scope in tree.node_ids:
            # scoped acceptance == acceptance on the materialized subtree
            assert nested.accepts(tree, scope=scope) == nested.accepts(
                tree.subtree(scope)
            )

    def test_depth_two_runs(self):
        rng = random.Random(3)
        nested = random_nested_twa(depth=2, num_subs=1, rng=rng)
        tree = random_tree(8, rng=rng)
        assert nested.accepts(tree) in (True, False)
