"""Property tests for the tracer and histogram invariants (satellite 2).

Four invariants the observability layer guarantees:

* executing an arbitrary nesting program under a tracer reproduces exactly
  that nesting in the recorded span trees;
* every span a program opens is closed exactly once (and re-closing
  raises);
* with no tracer installed, ``obs.span`` allocates nothing — it returns
  the one shared no-op singleton for every call;
* histogram ``percentile(q)`` always *bounds the true quantile from
  above* while never exceeding the observed maximum.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs.metrics import MetricsRegistry

# -- span-nesting programs --------------------------------------------------
#
# A "program" is a forest: each node is (name, children).  Executing it
# opens a span per node, recursing into children, and the recorded trace
# must have exactly the program's shape.

_names = st.sampled_from(
    ["xpath.nodes", "logic.table", "twa.accepts", "sweep", "stage"]
)


def _forests(depth: int):
    if depth == 0:
        return st.lists(st.tuples(_names, st.just(())), max_size=3)
    return st.lists(
        st.tuples(_names, st.deferred(lambda: _forests(depth - 1))),
        max_size=3,
    )


def _execute(forest, collected):
    for name, children in forest:
        span = obs.span(name)
        collected.append(span)
        with span:
            _execute(children, collected)


def _shape(forest):
    return tuple((name, _shape(children)) for name, children in forest)


@given(forest=_forests(3))
@settings(deadline=None, max_examples=60)
def test_traced_programs_reproduce_their_nesting(forest):
    with obs.tracing() as tracer:
        _execute(forest, [])
    assert tracer.structure() == _shape(forest)


@given(forest=_forests(3))
@settings(deadline=None, max_examples=60)
def test_every_span_closes_exactly_once(forest):
    collected = []
    with obs.tracing():
        _execute(forest, collected)
    assert all(span.closed for span in collected)
    for span in collected:
        try:
            span.close()
        except RuntimeError:
            continue
        raise AssertionError(f"span {span.name!r} closed a second time")


@given(names=st.lists(_names, min_size=1, max_size=20))
@settings(deadline=None, max_examples=60)
def test_disabled_tracer_allocates_no_spans(names):
    assert obs.current_tracer() is None
    spans = {id(obs.span(name, attr="value")) for name in names}
    assert spans == {id(obs.NOOP_SPAN)}


# -- histogram percentile bounds --------------------------------------------


@given(
    values=st.lists(
        st.floats(
            min_value=1e-7,
            max_value=100.0,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=200,
    ),
    q=st.floats(min_value=0.0, max_value=1.0),
)
@settings(deadline=None, max_examples=120)
def test_histogram_percentile_bounds_the_true_quantile(values, q):
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    for value in values:
        hist.observe(value)
    estimate = hist.percentile(q)
    ordered = sorted(values)
    # The true q-quantile: smallest observation with >= q fraction at or
    # below it (matching the histogram's cumulative-count definition).
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    true_quantile = ordered[rank]
    assert estimate >= true_quantile or math.isclose(
        estimate, true_quantile, rel_tol=1e-9
    )
    assert estimate <= max(ordered)


@given(
    values=st.lists(
        st.floats(min_value=1e-7, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(deadline=None, max_examples=60)
def test_histogram_count_and_sum_match_observations(values):
    registry = MetricsRegistry()
    hist = registry.histogram("h")
    for value in values:
        hist.observe(value)
    assert hist.count == len(values)
    assert math.isclose(hist.sum, sum(values), rel_tol=1e-9)
