"""Unit tests for the profiling hooks."""

from repro import obs
from repro.obs.metrics import MetricsRegistry


def test_disabled_profile_is_the_noop_singleton():
    assert not obs.profiling_enabled()
    assert obs.profile("stage") is obs.NOOP_SPAN


def test_enabled_profile_records_wall_and_cpu_histograms():
    registry = MetricsRegistry()
    obs.enable_profiling()
    try:
        with obs.profile("corpus.build", registry):
            sum(range(1000))
    finally:
        obs.disable_profiling()
    wall = registry.histogram("profile_wall_seconds", stage="corpus.build")
    cpu = registry.histogram("profile_cpu_seconds", stage="corpus.build")
    assert wall.count == 1
    assert cpu.count == 1
    # Clock granularity differs, so only sign is portable here.
    assert wall.sum >= 0.0
    assert cpu.sum >= 0.0


def test_tracing_implies_profiling_and_emits_a_span():
    registry = MetricsRegistry()
    with obs.tracing() as tracer:
        assert obs.profiling_enabled()
        with obs.profile("hot.loop", registry):
            pass
    (root,) = tracer.roots()
    assert root.name == "profile.hot.loop"
    assert registry.histogram("profile_wall_seconds", stage="hot.loop").count == 1


def test_profile_defaults_to_the_global_registry():
    obs.enable_profiling()
    try:
        with obs.profile("default.registry"):
            pass
    finally:
        obs.disable_profiling()
    hist = obs.REGISTRY.histogram("profile_wall_seconds", stage="default.registry")
    assert hist.count == 1
