"""Unit tests for the metrics registry: instruments, export, isolation."""

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_and_rejects_negatives(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 8

    def test_histogram_summary_statistics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds")
        for value in (0.001, 0.002, 0.004, 0.2):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.207)
        summary = hist.snapshot()
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.2)

    def test_histogram_percentile_empty_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("empty").percentile(0.9) == 0.0

    def test_histogram_percentile_clamps_to_observed_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("clamped")
        hist.observe(0.0013)  # falls in the (0.001, 0.0025] bucket
        # The bucket edge is 0.0025 but nothing larger than 0.0013 was seen.
        assert hist.percentile(1.0) == pytest.approx(0.0013)

    def test_histogram_rejects_bad_buckets_and_quantiles(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="in \\[0, 1\\]"):
            registry.histogram("ok").percentile(1.5)


class TestRegistry:
    def test_get_or_create_shares_one_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", site="x")
        b = registry.counter("hits_total", site="x")
        c = registry.counter("hits_total", site="y")
        assert a is b
        assert a is not c

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_total_sums_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", service="a").inc(2)
        registry.counter("requests_total", service="b").inc(3)
        registry.histogram("requests_total_unrelated").observe(1.0)
        assert registry.total("requests_total") == 5

    def test_to_json_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", op="eval").inc()
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(0.01)
        payload = json.loads(json.dumps(registry.to_json()))
        assert payload["version"] == "repro-metrics/1"
        assert payload["counters"] == {"c_total{op=eval}": 1}
        assert payload["gauges"] == {"g": 2.5}
        assert payload["histograms"]["h"]["count"] == 1

    def test_to_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("c_total", op="eval").inc(3)
        registry.gauge("queue_depth").set(4)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = registry.to_prometheus()
        assert '# TYPE c_total counter' in text
        assert 'c_total{op="eval"} 3' in text
        assert "queue_depth 4" in text
        assert 'lat_bucket{le="0.1"} 0' in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_snapshot_restore_preserves_identity_and_drops_new(self):
        registry = MetricsRegistry()
        kept = registry.counter("kept_total")
        kept.inc(2)
        snapshot = registry.snapshot()
        kept.inc(10)
        late = registry.counter("late_total")
        late.inc()
        registry.restore(snapshot)
        # Same object, value rolled back; the late instrument is gone.
        assert registry.counter("kept_total") is kept
        assert kept.value == 2
        assert registry.total("late_total") == 0

    def test_restore_recreates_deleted_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        snapshot = registry.snapshot()
        registry.reset()
        registry.restore(snapshot)
        assert registry.counter("c_total").value == 3
        assert registry.histogram("h", buckets=(1.0, 2.0)).count == 1

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended_total")
        hist = registry.histogram("contended_seconds")

        def spin():
            for _ in range(1000):
                counter.inc()
                hist.observe(0.001)

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000
        assert hist.count == 8000


class TestModuleHelpers:
    def test_module_helpers_hit_the_global_registry(self):
        obs.counter("module_helper_total").inc()
        assert obs.REGISTRY.total("module_helper_total") == 1

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(50.0)
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
