"""Cross-process metrics algebra: diff, additive merge, percentile merge.

The sharded service's stats reconciliation is only trustworthy if these
hold:

* ``diff_state(base, current)`` isolates what one process recorded since
  its baseline (the ``fork`` double-count defence);
* ``merge_states`` is additive on counters and raw histogram reservoirs;
* the merged percentile equals the percentile of the *combined*
  population — and specifically is NOT the average of the per-part
  percentiles, which is the classic aggregation bug this layer exists to
  prevent.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import (
    Histogram,
    MetricsRegistry,
    diff_state,
    merge_states,
    merged_histogram,
    registry_from_state,
)


def build_registry(observations, *, service="svc"):
    registry = MetricsRegistry()
    registry.counter("requests_total", service=service).inc(len(observations))
    histogram = registry.histogram("latency_seconds", service=service)
    for value in observations:
        histogram.observe(value)
    return registry


class TestDiffState:
    def test_counter_delta(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc(7)
        base = registry.snapshot()
        counter.inc(5)
        delta = diff_state(base, registry.snapshot())
        restored = registry_from_state(delta)
        assert restored.counter("hits").value == 5

    def test_histogram_delta_subtracts_reservoir(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        histogram.observe(0.01)
        histogram.observe(0.02)
        base = registry.snapshot()
        histogram.observe(0.04)
        delta = diff_state(base, registry.snapshot())
        restored = registry_from_state(delta)
        assert restored.histogram("lat").count == 1

    def test_new_instrument_passes_through(self):
        registry = MetricsRegistry()
        registry.counter("old").inc(3)
        base = registry.snapshot()
        registry.counter("new").inc(2)
        delta = diff_state(base, registry.snapshot())
        restored = registry_from_state(delta)
        assert restored.counter("old").value == 0
        assert restored.counter("new").value == 2

    def test_gauge_keeps_level(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        base = registry.snapshot()
        gauge.set(4)
        delta = diff_state(base, registry.snapshot())
        assert registry_from_state(delta).gauge("depth").value == 4


class TestMergeStates:
    def test_counters_add(self):
        parts = []
        for value in (3, 5, 11):
            registry = MetricsRegistry()
            registry.counter("hits").inc(value)
            parts.append(registry.snapshot())
        merged = registry_from_state(merge_states(*parts))
        assert merged.counter("hits").value == 19

    def test_kind_mismatch_rejected(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ValueError, match="counter"):
            merge_states(a.snapshot(), b.snapshot())

    def test_histogram_reservoirs_add(self):
        a = build_registry([0.001, 0.002])
        b = build_registry([0.5, 0.9])
        merged = registry_from_state(merge_states(a.snapshot(), b.snapshot()))
        histogram = merged_histogram(merged, "latency_seconds")
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(0.001 + 0.002 + 0.5 + 0.9)


class TestPercentileMerge:
    def test_merged_percentile_is_population_percentile(self):
        # Shard A: 9 fast requests.  Shard B: 1 slow request.  The combined
        # p50 is fast; the average of per-shard p50s would be badly wrong.
        fast = [0.001] * 9
        slow = [2.0]
        a = build_registry(fast, service="shard0")
        b = build_registry(slow, service="shard1")
        merged = registry_from_state(merge_states(a.snapshot(), b.snapshot()))
        combined = merged_histogram(merged, "latency_seconds")

        reference = Histogram("latency_seconds", ())
        for value in fast + slow:
            reference.observe(value)

        assert combined.percentile(0.50) == reference.percentile(0.50)
        assert combined.percentile(0.90) == reference.percentile(0.90)

        broken_average = (
            merged_histogram(a, "latency_seconds").percentile(0.50)
            + merged_histogram(b, "latency_seconds").percentile(0.50)
        ) / 2
        assert combined.percentile(0.50) != pytest.approx(broken_average)

    @settings(max_examples=30, deadline=None)
    @given(
        parts=st.lists(
            st.lists(
                st.floats(min_value=1e-6, max_value=50.0,
                          allow_nan=False, allow_infinity=False),
                min_size=1,
                max_size=30,
            ),
            min_size=1,
            max_size=4,
        ),
        quantile=st.sampled_from([0.5, 0.9, 0.99]),
    )
    def test_merge_equals_population_for_random_splits(self, parts, quantile):
        snapshots = [
            build_registry(observations, service=f"shard{i}").snapshot()
            for i, observations in enumerate(parts)
        ]
        merged = registry_from_state(merge_states(*snapshots))
        combined = merged_histogram(merged, "latency_seconds")

        reference = Histogram("latency_seconds", ())
        for observations in parts:
            for value in observations:
                reference.observe(value)

        assert combined.count == reference.count
        assert combined.percentile(quantile) == reference.percentile(quantile)

    def test_merged_counter_reconciles(self):
        snapshots = [
            build_registry([0.01] * n, service=f"shard{i}").snapshot()
            for i, n in enumerate((4, 7, 9))
        ]
        merged = registry_from_state(merge_states(*snapshots))
        total = sum(
            instrument.value
            for instrument in merged.instruments()
            if instrument.name == "requests_total"
        )
        assert total == 20
