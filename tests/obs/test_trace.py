"""Unit tests for the tracing layer: spans, tracers, the disabled path."""

import json
import threading

import pytest

from repro import obs
from repro.runtime import ExecutionBudget


class TestDisabledPath:
    def test_span_without_tracer_is_the_noop_singleton(self):
        assert obs.current_tracer() is None
        assert obs.span("anything") is obs.NOOP_SPAN
        assert obs.span("other", backend="bitset") is obs.NOOP_SPAN

    def test_noop_span_supports_the_full_span_protocol(self):
        with obs.span("stage") as sp:
            assert sp.set(rounds=3) is sp  # chainable, silently dropped

    def test_tracing_enabled_reflects_installation(self):
        assert not obs.tracing_enabled()
        with obs.tracing():
            assert obs.tracing_enabled()
        assert not obs.tracing_enabled()


class TestSpanLifecycle:
    def test_nesting_is_recorded_parent_to_child(self):
        with obs.tracing() as tracer:
            with obs.span("outer"):
                with obs.span("inner.a"):
                    pass
                with obs.span("inner.b"):
                    pass
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert [child.name for child in root.children] == ["inner.a", "inner.b"]
        assert tracer.structure() == (("outer", (("inner.a", ()), ("inner.b", ()))),)

    def test_sibling_roots_collect_in_order(self):
        with obs.tracing() as tracer:
            with obs.span("first"):
                pass
            with obs.span("second"):
                pass
        assert [root.name for root in tracer.roots()] == ["first", "second"]

    def test_double_entry_raises(self):
        with obs.tracing() as tracer:
            span = tracer.span("once")
            with span:
                with pytest.raises(RuntimeError, match="entered twice"):
                    span.__enter__()

    def test_double_close_raises(self):
        with obs.tracing() as tracer:
            span = tracer.span("once")
            with span:
                pass
            with pytest.raises(RuntimeError, match="not open"):
                span.close()

    def test_close_before_enter_raises(self):
        with obs.tracing() as tracer:
            with pytest.raises(RuntimeError, match="not open"):
                tracer.span("unopened").close()

    def test_exception_annotates_and_still_closes(self):
        with obs.tracing() as tracer:
            with pytest.raises(ValueError):
                with obs.span("failing"):
                    raise ValueError("boom")
        (root,) = tracer.roots()
        assert root.closed
        assert root.attrs["error"] == "ValueError"

    def test_timings_are_monotone(self):
        with obs.tracing() as tracer:
            with obs.span("timed"):
                sum(range(1000))
        (root,) = tracer.roots()
        assert root.wall >= 0.0
        assert root.cpu >= 0.0

    def test_budget_steps_are_the_delta_while_open(self):
        budget = ExecutionBudget(max_steps=1000)
        budget.tick(7)  # drawn before the span: must not count
        with obs.tracing() as tracer:
            with obs.span("work", budget=budget):
                budget.tick(5)
        (root,) = tracer.roots()
        assert root.budget_steps == 5


class TestTracerExtras:
    def test_record_attaches_a_closed_span(self):
        with obs.tracing() as tracer:
            with obs.span("parent"):
                tracer.record("queue.wait", wall=0.25)
        (root,) = tracer.roots()
        (child,) = root.children
        assert child.name == "queue.wait"
        assert child.closed
        assert child.wall == pytest.approx(0.25)

    def test_record_without_open_span_becomes_a_root(self):
        with obs.tracing() as tracer:
            tracer.record("detached", wall=0.1)
        (root,) = tracer.roots()
        assert root.name == "detached"

    def test_threads_trace_into_separate_stacks(self):
        tracer = obs.Tracer()

        def worker():
            with tracer.span("worker.root"):
                pass

        with obs.tracing(tracer):
            with tracer.span("main.root"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        names = sorted(root.name for root in tracer.roots())
        # The worker's span is a root of its own, not a child of main.root.
        assert names == ["main.root", "worker.root"]

    def test_to_json_is_json_serializable_and_versioned(self):
        with obs.tracing() as tracer:
            with obs.span("outer", backend="sets"):
                with obs.span("inner"):
                    pass
        payload = json.loads(json.dumps(tracer.to_json()))
        assert payload["version"] == "repro-trace/1"
        (root,) = payload["spans"]
        assert root["name"] == "outer"
        assert root["attrs"] == {"backend": "sets"}
        assert [c["name"] for c in root["children"]] == ["inner"]

    def test_structure_ignore_drops_prefixed_subtrees(self):
        with obs.tracing() as tracer:
            with obs.span("keep"):
                with obs.span("private.detail"):
                    with obs.span("keep.nested"):
                        pass
        assert tracer.structure(ignore=("private.",)) == (("keep", ()),)

    def test_close_out_of_order_raises(self):
        with obs.tracing() as tracer:
            parent = tracer.span("parent")
            parent.__enter__()
            child = tracer.span("child")
            child.__enter__()
            with pytest.raises(RuntimeError, match="out of order"):
                parent.close()
            child.close()

    def test_walk_yields_preorder(self):
        with obs.tracing() as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
                with obs.span("d"):
                    pass
        (root,) = tracer.roots()
        assert [span.name for span in root.walk()] == ["a", "b", "c", "d"]

    def test_open_depth_tracks_the_calling_thread(self):
        with obs.tracing() as tracer:
            assert tracer.open_depth() == 0
            with obs.span("outer"):
                with obs.span("inner"):
                    assert tracer.open_depth() == 2
            assert tracer.open_depth() == 0

    def test_reload_from_env_installs_only_on_a_nonempty_spec(self):
        try:
            assert obs.reload_from_env("") is None
            assert not obs.tracing_enabled()
            tracer = obs.reload_from_env("stderr")
            assert tracer is obs.current_tracer()
        finally:
            obs.uninstall()

    def test_nested_tracing_restores_the_outer_tracer(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                with obs.span("in.inner"):
                    pass
            with obs.span("in.outer"):
                pass
        assert [r.name for r in inner.roots()] == ["in.inner"]
        assert [r.name for r in outer.roots()] == ["in.outer"]
