"""Fuzzing the two model-checker backends against each other.

The row-wise ``table`` backend and the columnar ``bitset`` backend
(:mod:`repro.logic.engine`) share the bottom-up evaluation *scheme* but no
data structures: tables are frozensets of tuples on one side and big-int
masks on the other, and TC is a tuple BFS versus a semi-naive mask sweep.
Agreement on random formulas × random trees — including nested TC and the
T1 translation images of Regular XPath(W) queries — is the correctness
anchor for the bitset engine.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import (
    CHECKER_BACKENDS,
    ModelChecker,
    ast as fo,
    formula_node_set,
    formula_pairs,
    holds,
    satisfying_table,
)
from repro.logic.random_formulas import FormulaSampler, random_formula
from repro.translations import xpath_to_mtc
from repro.trees import random_tree
from repro.xpath import parse_node, parse_path


class TestDispatch:
    def test_backend_selection(self):
        tree = random_tree(5, rng=random.Random(0))
        assert ModelChecker(tree).backend == "table"
        assert ModelChecker(tree, backend="table").backend == "table"
        assert ModelChecker(tree, backend="bitset").backend == "bitset"
        assert set(CHECKER_BACKENDS) == {"table", "bitset"}

    def test_unknown_backend_rejected(self):
        tree = random_tree(3, rng=random.Random(0))
        with pytest.raises(ValueError, match="unknown checker backend"):
            ModelChecker(tree, backend="nope")

    def test_structural_memoization(self):
        # Structurally equal subformulas share one cache entry even when the
        # AST objects are distinct.
        tree = random_tree(6, rng=random.Random(1))
        for backend in CHECKER_BACKENDS:
            checker = ModelChecker(tree, backend=backend)
            first = checker.table(fo.LabelAtom("a", "x"))
            second = checker.table(fo.LabelAtom("a", "x"))
            assert first is second


class TestBackendsAgree:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 8), size=st.integers(1, 8))
    def test_satisfying_tables(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula(["x", "y"], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        assert satisfying_table(tree, formula) == satisfying_table(
            tree, formula, backend="bitset"
        )

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 6), size=st.integers(1, 6))
    def test_sentences(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula([], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        assert holds(tree, formula) == holds(tree, formula, backend="bitset")

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 7), size=st.integers(1, 7))
    def test_node_sets(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula(["x"], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        assert formula_node_set(tree, formula, "x") == formula_node_set(
            tree, formula, "x", backend="bitset"
        )

    @settings(max_examples=80, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 6), size=st.integers(1, 6))
    def test_pairs(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula(["x", "y"], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        assert formula_pairs(tree, formula, "x", "y") == formula_pairs(
            tree, formula, "x", "y", backend="bitset"
        )

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), size=st.integers(1, 7))
    def test_nested_tc(self, seed, size):
        # Force a TC whose body itself contains a TC (the sampler only
        # sometimes nests them).
        rng = random.Random(seed)
        sampler = FormulaSampler(rng=rng)
        inner = sampler.formula(["u", "v"], budget=3)
        body = fo.And(fo.TC("u", "v", inner, "x", "y"), sampler.formula(["x"], budget=2))
        formula = fo.TC("x", "y", body, "x", "y")
        tree = random_tree(size, rng=rng)
        assert formula_pairs(tree, formula, "x", "y") == formula_pairs(
            tree, formula, "x", "y", backend="bitset"
        )


class TestTranslationImagesAgree:
    """Backend agreement on the T1 images — formulas with the shapes the
    XPath→FO(MTC) translation actually produces (heavy on TC)."""

    NODE_QUERIES = [
        "<(child/right)*[b]>",
        "<(child[a] | right)+>",
        "<descendant[a and <right>]>",
        "not W(<child[W(root)]>)",
        "<ancestor[W(<child[b]>)]>",
    ]
    PATH_QUERIES = [
        "(child[a]/right)*",
        "child+ | right+",
        "descendant[W(<child>)]",
        "preceding_sibling/ancestor_or_self",
    ]

    @pytest.mark.parametrize("text", NODE_QUERIES)
    def test_node_queries(self, text):
        rng = random.Random(hash(text) & 0xFFFF)
        formula = xpath_to_mtc(parse_node(text))
        for __ in range(5):
            tree = random_tree(rng.randint(3, 18), alphabet=("a", "b"), rng=rng)
            assert formula_node_set(tree, formula, "x") == formula_node_set(
                tree, formula, "x", backend="bitset"
            )

    @pytest.mark.parametrize("text", PATH_QUERIES)
    def test_path_queries(self, text):
        rng = random.Random(hash(text) & 0xFFFF)
        formula = xpath_to_mtc(parse_path(text))
        for __ in range(5):
            tree = random_tree(rng.randint(3, 15), alphabet=("a", "b"), rng=rng)
            assert formula_pairs(tree, formula, "x", "y") == formula_pairs(
                tree, formula, "x", "y", backend="bitset"
            )
