"""Small-scale MSO checker tests (set quantifiers on tiny trees)."""

import pytest

from repro.logic import ExistsSet, ForallSet, In, ast as fo, mso_holds, mso_node_set, parse_formula
from repro.trees import Tree, chain


def even_depth_mso(x: str = "x") -> fo.Formula:
    """MSO: x lies at even depth.

    ∃X: root ∈ X, X closed under grandchild steps downward... rendered as:
    ∃X (x ∈ X ∧ ∀u∀v∀w: (u∈X ∧ child(u,v) ∧ child(v,w)) → w∈X is the wrong
    direction) — we use the standard trick: X contains the root, is closed
    downward by two steps, and x ∈ X with membership *forced minimal* by the
    upward implication instead:
    ∀X [ (root∈X ∧ closure) → x∈X ].
    """
    closure = fo.forall_many(
        ["u", "v", "w"],
        fo.implies(
            fo.big_and([In("u", "X"), fo.Rel("child", "u", "v"), fo.Rel("child", "v", "w")]),
            In("w", "X"),
        ),
    )
    root_in = fo.Exists("r", fo.And(fo.root_formula("r"), In("r", "X")))
    return ForallSet("X", fo.implies(fo.And(root_in, closure), In(x, "X")))


class TestMembershipAtoms:
    def test_in_atom(self):
        t = chain(2)
        assert mso_holds(t, In("x", "X"), {"x": 0}, {"X": frozenset({0})})
        assert not mso_holds(t, In("x", "X"), {"x": 1}, {"X": frozenset({0})})

    def test_exists_set(self):
        t = chain(3)
        # some set containing exactly the a-nodes... trivially: some set
        # containing node 1 but not node 0.
        f = ExistsSet("X", fo.And(In("x", "X"), fo.Not(In("y", "X"))))
        assert mso_holds(t, f, {"x": 1, "y": 0})

    def test_forall_set(self):
        t = chain(2)
        # every set containing x contains x.
        f = ForallSet("X", fo.implies(In("x", "X"), In("x", "X")))
        assert mso_holds(t, f, {"x": 0})


class TestFirstOrderPartAgrees:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("a(x)", {0, 3, 5, 7}),
            ("exists y. child(x,y) & b(y)", {0, 2}),
            ("tc[u,v](child(u,v))(x,y)", None),  # handled below
        ],
    )
    def test_against_relational_checker(self, mixed_tree, text, expected):
        from repro.logic import formula_node_set

        f = parse_formula(text)
        if expected is None:
            pytest.skip("binary formula")
        assert mso_node_set(mixed_tree, f, "x") == formula_node_set(mixed_tree, f, "x")

    def test_tc_inside_mso(self, mixed_tree):
        f = parse_formula("exists y. tc[u,v](child(u,v))(x,y) & leaf(y)")
        from repro.logic import formula_node_set

        assert mso_node_set(mixed_tree, f, "x") == formula_node_set(mixed_tree, f, "x")


class TestEvenDepthInMso:
    """MSO expresses depth parity (which FO cannot — see EF games)."""

    @pytest.mark.parametrize("length", [1, 2, 3, 4, 5])
    def test_on_chains(self, length):
        t = chain(length)
        got = mso_node_set(t, even_depth_mso(), "x")
        assert got == {n for n in range(length) if n % 2 == 0}

    def test_on_branching_tree(self):
        t = Tree.build(("a", ["b", ("c", ["d"])]))
        got = mso_node_set(t, even_depth_mso(), "x")
        assert got == {0, 3}
