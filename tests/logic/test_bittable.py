"""Unit tests for the columnar :class:`BitsetTable`.

Every relational operation is checked against the row-wise
:class:`repro.logic.tables.Table` doing the same thing — the two
representations must stay interconvertible at every step.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.logic import BitsetTable, Table

N = 6  # universe size for the random-relation tests
FULL = (1 << N) - 1
UNIVERSE = range(N)


def random_bitset_table(rng, columns):
    """A random BitsetTable over ``columns`` with values in range(N)."""
    if not columns:
        return BitsetTable.boolean(rng.random() < 0.5)
    data = {}
    for key in _all_keys(len(columns) - 1):
        if rng.random() < 0.4:
            mask = rng.randrange(1, 1 << N)
            data[key] = mask
    return BitsetTable(columns, data)


def _all_keys(arity):
    if arity == 0:
        return [()]
    return [
        tuple(v)
        for v in __import__("itertools").product(UNIVERSE, repeat=arity)
    ]


COLUMN_SETS = [(), ("x",), ("x", "y"), ("y",), ("x", "y", "z"), ("y", "z")]


class TestRoundTrip:
    def test_boolean(self):
        assert BitsetTable.boolean(True).to_table() == Table.boolean(True)
        assert BitsetTable.boolean(False).to_table() == Table.boolean(False)

    def test_unary(self):
        bt = BitsetTable.unary("x", 0b10110)
        assert bt.to_table() == Table.unary("x", [1, 2, 4])
        assert len(bt) == 3

    def test_from_source_masks(self):
        masks = {0: 0b110, 2: 0b001}
        pairs = {(0, 1), (0, 2), (2, 0)}
        assert BitsetTable.from_source_masks("x", "y", masks).to_table() == Table.binary(
            "x", "y", pairs
        )
        assert BitsetTable.from_source_masks("y", "x", masks).to_table() == Table.binary(
            "y", "x", pairs
        )
        diag = {0: 0b001, 1: 0b010, 2: 0b001}
        assert BitsetTable.from_source_masks("x", "x", diag).to_table() == Table.binary(
            "x", "x", {(0, 0), (1, 1), (2, 0)}
        )


class TestAlgebraMatchesTable:
    @settings(max_examples=150, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        ci=st.integers(0, len(COLUMN_SETS) - 1),
        cj=st.integers(0, len(COLUMN_SETS) - 1),
    )
    def test_join(self, seed, ci, cj):
        rng = random.Random(seed)
        a = random_bitset_table(rng, COLUMN_SETS[ci])
        b = random_bitset_table(rng, COLUMN_SETS[cj])
        assert a.join(b).to_table() == a.to_table().join(b.to_table())

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10**9), ci=st.integers(0, len(COLUMN_SETS) - 1))
    def test_pad(self, seed, ci):
        rng = random.Random(seed)
        bt = random_bitset_table(rng, COLUMN_SETS[ci])
        target = ("x", "y", "z")
        assert bt.pad(target, N, FULL).to_table() == bt.to_table().pad(
            target, UNIVERSE
        )

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        ci=st.integers(0, len(COLUMN_SETS) - 1),
        cj=st.integers(0, len(COLUMN_SETS) - 1),
    )
    def test_union(self, seed, ci, cj):
        rng = random.Random(seed)
        a = random_bitset_table(rng, COLUMN_SETS[ci])
        b = random_bitset_table(rng, COLUMN_SETS[cj])
        assert a.union(b, N, FULL).to_table() == a.to_table().union(
            b.to_table(), UNIVERSE
        )

    @settings(max_examples=100, deadline=None)
    @given(seed=st.integers(0, 10**9), ci=st.integers(0, len(COLUMN_SETS) - 1))
    def test_complement(self, seed, ci):
        rng = random.Random(seed)
        bt = random_bitset_table(rng, COLUMN_SETS[ci])
        assert bt.complement(N, FULL).to_table() == bt.to_table().complement(
            UNIVERSE
        )

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        ci=st.integers(1, len(COLUMN_SETS) - 1),
        var=st.sampled_from(["x", "y", "z"]),
    )
    def test_project_away(self, seed, ci, var):
        rng = random.Random(seed)
        bt = random_bitset_table(rng, COLUMN_SETS[ci])
        assert bt.project_away(var).to_table() == bt.to_table().project_away(var)

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 10**9),
        ci=st.integers(1, len(COLUMN_SETS) - 1),
        var=st.sampled_from(["x", "y", "z"]),
        value=st.integers(0, N - 1),
    )
    def test_select_eq(self, seed, ci, var, value):
        rng = random.Random(seed)
        bt = random_bitset_table(rng, COLUMN_SETS[ci])
        assert bt.select_eq(var, value).to_table() == bt.to_table().select_eq(
            var, value
        )

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9))
    def test_column_extraction(self, seed):
        rng = random.Random(seed)
        bt = random_bitset_table(rng, ("x", "y"))
        table = bt.to_table()
        for var in ("x", "y"):
            assert bt.column_values(var) == table.column_values(var)
            assert bt.column_mask(var) == sum(
                1 << v for v in table.column_values(var)
            )
        assert bt.pairs("x", "y") == table.pairs("x", "y")
        assert bt.pairs("y", "x") == table.pairs("y", "x")
