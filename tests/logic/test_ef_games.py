"""EF-game tests — including the parity inexpressibility experiment (T5)."""

import pytest

from repro.logic.ef_games import distinguishing_rank, duplicator_wins
from repro.trees import Tree, chain, star


class TestBasicGames:
    def test_isomorphic_trees_never_distinguished(self):
        t1 = Tree.build(("a", ["b", "c"]))
        t2 = Tree.build(("a", ["b", "c"]))
        assert duplicator_wins(t1, t2, 3)

    def test_different_root_labels_rank_one(self):
        assert distinguishing_rank(Tree.leaf("a"), Tree.leaf("b"), 2) == 1

    def test_different_sizes_distinguished(self):
        t1 = chain(2)
        t2 = chain(3)
        assert distinguishing_rank(t1, t2, 3) is not None

    def test_zero_rounds_always_duplicator(self):
        assert duplicator_wins(Tree.leaf("a"), Tree.leaf("b"), 0)

    def test_label_multiset_needs_one_round(self):
        t1 = Tree.build(("a", ["b"]))
        t2 = Tree.build(("a", ["a"]))
        assert distinguishing_rank(t1, t2, 2) == 1


class TestSignatureSensitivity:
    def test_descendant_helps_spoiler(self):
        # chains a-b-a vs a-a-b: with only `child`, spoiler needs 2 rounds;
        # descendant doesn't hurt.
        t1 = chain(3, labels=("a", "b", "a"))
        t2 = chain(3, labels=("a", "a", "b"))
        rank_child = distinguishing_rank(t1, t2, 3, signature=("child",))
        rank_full = distinguishing_rank(t1, t2, 3)
        assert rank_child is not None and rank_full is not None
        assert rank_full <= rank_child

    def test_sibling_order_invisible_without_horizontal_relations(self):
        t1 = Tree.build(("r", ["a", "b"]))
        t2 = Tree.build(("r", ["b", "a"]))
        assert duplicator_wins(t1, t2, 3, signature=("child", "descendant"))
        assert not duplicator_wins(t1, t2, 2, signature=("child", "right"))


class TestParityExperiment:
    """Chains of length 2^r vs 2^r + 1 are r-round equivalent over
    {child}: quantifier rank r cannot express 'even length'.  This is the
    EF half of the T5-style inexpressibility evidence: Core XPath translates
    into FO, so no Core XPath expression defines depth parity either —
    while FO(MTC)/Regular XPath does (see test_modelcheck / examples)."""

    @pytest.mark.parametrize("rounds", [1, 2])
    def test_duplicator_survives_long_chains(self, rounds):
        n = 2 ** rounds
        assert duplicator_wins(chain(n + 2), chain(n + 3), rounds, signature=("child",))

    def test_spoiler_wins_short_chains(self):
        assert not duplicator_wins(chain(2), chain(3), 2, signature=("child",))

    def test_rank_grows_with_length(self):
        # Distinguishing rank of n vs n+1 chains is monotone-ish in n.
        r1 = distinguishing_rank(chain(2), chain(3), 4, signature=("child",))
        r2 = distinguishing_rank(chain(5), chain(6), 4, signature=("child",))
        assert r1 is not None and r2 is not None and r1 <= r2


class TestStarGames:
    def test_fanout_counting_bounded_by_rank(self):
        # stars with 3 vs 4 leaves need 3+ rounds over {child};
        # 1 round never suffices.
        t1 = star(3)
        t2 = star(4)
        assert duplicator_wins(t1, t2, 1, signature=("child",))
        assert not duplicator_wins(t1, t2, 4, signature=("child",))
