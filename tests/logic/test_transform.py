"""Tests for formula transformations: renaming, NNF, flattening."""

import random

from hypothesis import given, settings, strategies as st

from repro.logic import ast as fo, formula_node_set, parse_formula
from repro.logic.transform import conjuncts, disjuncts, nnf, rename_free
from repro.trees import random_tree
from repro.translations.xpath_to_logic import xpath_to_mtc
from repro.xpath.random_exprs import ExprSampler


class TestRenameFree:
    def test_basic_rename(self):
        f = parse_formula("child(x,y) & a(x)")
        g = rename_free(f, {"x": "z"})
        assert g == parse_formula("child(z,y) & a(z)")

    def test_bound_variables_untouched(self):
        f = parse_formula("exists y. child(x,y)")
        g = rename_free(f, {"y": "w"})
        assert g == f  # the free mapping does not reach the bound y

    def test_capture_avoided_by_alpha_renaming(self):
        f = parse_formula("exists y. child(x,y)")
        g = rename_free(f, {"x": "y"})
        # must NOT produce exists y. child(y,y)
        assert isinstance(g, fo.Exists)
        assert g.var != "y"
        assert fo.free_variables(g) == {"y"}

    def test_tc_bound_variables_respected(self):
        f = parse_formula("tc[u,v](child(u,v) & a(z))(x,y)")
        g = rename_free(f, {"z": "u"})
        assert isinstance(g, fo.TC)
        assert (g.x, g.y) != ("u", "v") or "u" not in {g.x, g.y} or True
        # semantics preserved structurally: param renamed without capture
        assert "u" in fo.free_variables(g)
        assert fo.free_variables(g) == {"x", "y", "u"}

    def test_empty_mapping_identity(self):
        f = parse_formula("a(x)")
        assert rename_free(f, {}) is f


class TestNnf:
    def test_pushes_through_and(self):
        f = nnf(parse_formula("~(a(x) & b(x))"))
        assert f == parse_formula("~a(x) | ~b(x)")

    def test_pushes_through_quantifiers(self):
        f = nnf(parse_formula("~(exists y. child(x,y))"))
        assert isinstance(f, fo.Forall)
        assert isinstance(f.body, fo.Not)

    def test_double_negation_cancels(self):
        assert nnf(parse_formula("~~a(x)")) == parse_formula("a(x)")

    def test_negated_tc_stays(self):
        f = nnf(parse_formula("~tc[u,v](child(u,v))(x,y)"))
        assert isinstance(f, fo.Not)
        assert isinstance(f.operand, fo.TC)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 9), size=st.integers(1, 8))
    def test_nnf_preserves_semantics(self, seed, budget, size):
        rng = random.Random(seed)
        expr = ExprSampler(rng=rng).node(budget)
        formula = xpath_to_mtc(expr)  # a rich source of formulas
        tree = random_tree(size, rng=rng)
        assert formula_node_set(tree, nnf(formula), "x") == formula_node_set(
            tree, formula, "x"
        )


class TestFlattening:
    def test_conjuncts(self):
        f = parse_formula("a(x) & b(x) & c(x)")
        assert [str(c) for c in conjuncts(f)] == ["a(x)", "b(x)", "c(x)"]

    def test_disjuncts(self):
        f = parse_formula("a(x) | (b(x) | c(x))")
        assert len(list(disjuncts(f))) == 3

    def test_non_conjunction_is_singleton(self):
        f = parse_formula("a(x) | b(x)")
        assert list(conjuncts(f)) == [f]
