"""Unit tests for the relational-table engine behind the model checker."""

import pytest

from repro.logic.tables import Table

U = range(3)


class TestConstruction:
    def test_boolean(self):
        assert Table.boolean(True).truth
        assert not Table.boolean(False).truth

    def test_unary(self):
        t = Table.unary("x", [0, 2])
        assert t.columns == ("x",)
        assert t.rows == {(0,), (2,)}

    def test_binary_sorts_columns(self):
        t = Table.binary("y", "x", [(1, 2)])
        assert t.columns == ("x", "y")
        assert t.rows == {(2, 1)}

    def test_binary_same_variable_takes_diagonal(self):
        t = Table.binary("x", "x", [(0, 0), (1, 2)])
        assert t.columns == ("x",)
        assert t.rows == {(0,)}

    def test_unsorted_columns_rejected(self):
        with pytest.raises(ValueError):
            Table(("y", "x"), frozenset())


class TestJoin:
    def test_join_on_shared_column(self):
        left = Table.binary("x", "y", [(0, 1), (1, 2)])
        right = Table.unary("y", [1])
        assert left.join(right).rows == {(0, 1)}

    def test_join_disjoint_is_product(self):
        left = Table.unary("x", [0, 1])
        right = Table.unary("y", [2])
        joined = left.join(right)
        assert joined.columns == ("x", "y")
        assert joined.rows == {(0, 2), (1, 2)}

    def test_join_with_boolean(self):
        t = Table.unary("x", [0])
        assert t.join(Table.boolean(True)).rows == {(0,)}
        assert t.join(Table.boolean(False)).rows == frozenset()

    def test_join_three_columns(self):
        xy = Table.binary("x", "y", [(0, 1)])
        yz = Table.binary("y", "z", [(1, 2), (0, 2)])
        joined = xy.join(yz)
        assert joined.columns == ("x", "y", "z")
        assert joined.rows == {(0, 1, 2)}


class TestUnionComplementProject:
    def test_union_pads_columns(self):
        left = Table.unary("x", [0])
        right = Table.unary("y", [1])
        got = left.union(right, U)
        assert got.columns == ("x", "y")
        assert (0, 0) in got.rows and (2, 1) in got.rows
        assert (2, 2) not in got.rows

    def test_complement(self):
        t = Table.unary("x", [0])
        assert t.complement(U).rows == {(1,), (2,)}
        assert t.complement(U).complement(U) == t

    def test_complement_boolean(self):
        assert not Table.boolean(True).complement(U).truth

    def test_project_away(self):
        t = Table.binary("x", "y", [(0, 1), (0, 2), (1, 2)])
        assert t.project_away("y") == Table.unary("x", [0, 1])
        assert t.project_away("z") is t

    def test_select_eq(self):
        t = Table.binary("x", "y", [(0, 1), (1, 2)])
        assert t.select_eq("x", 0) == Table.unary("y", [1])

    def test_pad_requires_superset(self):
        t = Table.unary("x", [0])
        with pytest.raises(ValueError):
            t.pad(("y",), U)

    def test_pairs_extraction(self):
        t = Table.binary("x", "y", [(0, 1)])
        assert t.pairs("x", "y") == {(0, 1)}
        assert t.pairs("y", "x") == {(1, 0)}
