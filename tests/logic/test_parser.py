"""Formula parser + pretty-printer round-trip tests."""

import pytest

from repro.logic import FormulaSyntaxError, ast as fo, parse_formula, unparse_formula


class TestParsing:
    def test_atoms(self):
        assert parse_formula("a(x)") == fo.LabelAtom("a", "x")
        assert parse_formula("child(x,y)") == fo.Rel("child", "x", "y")
        assert parse_formula("x=y") == fo.Eq("x", "y")
        assert parse_formula("x!=y") == fo.Not(fo.Eq("x", "y"))
        assert parse_formula("true") == fo.TRUE
        assert parse_formula("false") == fo.FALSE

    def test_precedence(self):
        f = parse_formula("a(x) | b(x) & c(x)")
        assert isinstance(f, fo.Or)
        assert isinstance(f.right, fo.And)

    def test_implication_right_associative(self):
        f = parse_formula("a(x) -> b(x) -> c(x)")
        # a -> (b -> c), desugared to ¬a ∨ (¬b ∨ c)
        assert f == fo.implies(
            fo.LabelAtom("a", "x"),
            fo.implies(fo.LabelAtom("b", "x"), fo.LabelAtom("c", "x")),
        )

    def test_quantifier_scopes_right(self):
        f = parse_formula("exists y. child(x,y) & a(y)")
        assert isinstance(f, fo.Exists)
        assert isinstance(f.body, fo.And)

    def test_multi_variable_quantifier(self):
        f = parse_formula("exists y z. child(x,y) & child(y,z)")
        assert isinstance(f, fo.Exists) and isinstance(f.body, fo.Exists)

    def test_tc_and_rtc(self):
        f = parse_formula("tc[u,v](child(u,v))(x,y)")
        assert f == fo.TC("u", "v", fo.Rel("child", "u", "v"), "x", "y")
        g = parse_formula("rtc[u,v](child(u,v))(x,y)")
        assert g == fo.Or(fo.Eq("x", "y"), fo.TC("u", "v", fo.Rel("child", "u", "v"), "x", "y"))

    def test_root_leaf_sugar(self):
        assert parse_formula("root(x)") == fo.root_formula("x")
        assert parse_formula("leaf(x)") == fo.leaf_formula("x")

    @pytest.mark.parametrize(
        "text",
        ["", "a(x", "child(x)", "exists . a(x)", "tc[u](a(u))(x,y)", "a(x) &", "exists child. true"],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(FormulaSyntaxError):
            parse_formula(text)


class TestRoundTrip:
    SAMPLES = [
        "exists y. child(x,y) & a(y)",
        "all x. (root(x) -> a(x))",
        "tc[u,v](right(u,v))(x,y) | x=y",
        "~(a(x) & ~b(x))",
        "exists y z. child(x,y) & child(y,z) & leaf(z)",
        "x!=y & descendant(x,y)",
        "tc[u,v](exists w. child(u,w) & child(w,v))(x,y)",
    ]

    @pytest.mark.parametrize("text", SAMPLES)
    def test_parse_unparse_fixpoint(self, text):
        f = parse_formula(text)
        assert parse_formula(unparse_formula(f)) == f


class TestAstHelpers:
    def test_free_variables(self):
        f = parse_formula("exists y. child(x,y) & a(y)")
        assert fo.free_variables(f) == {"x"}
        g = parse_formula("tc[u,v](child(u,v) & a(z))(x,y)")
        assert fo.free_variables(g) == {"x", "y", "z"}

    def test_tc_requires_distinct_bound_vars(self):
        with pytest.raises(ValueError):
            fo.TC("u", "u", fo.TRUE, "x", "y")

    def test_rel_name_validated(self):
        with pytest.raises(ValueError):
            fo.Rel("sibling", "x", "y")

    def test_big_and_or(self):
        assert fo.big_and([]) == fo.TRUE
        assert fo.big_or([]) == fo.FALSE
        parts = [fo.LabelAtom("a", "x"), fo.LabelAtom("b", "x")]
        assert fo.big_and(parts) == fo.And(*parts)

    def test_fresh_variable(self):
        used = {"v0", "v1"}
        assert fo.fresh_variable(used) == "v2"
        assert "v2" in used

    def test_formula_size(self):
        assert parse_formula("a(x)").size == 1
        assert parse_formula("a(x) & b(x)").size == 3
