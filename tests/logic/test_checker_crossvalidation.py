"""Fuzzing the two FO(MTC) checkers against each other.

The relational (table-based) model checker and the naive recursive checker
in the MSO module share no code paths; agreement on random formulas × trees
is the logic-side correctness anchor.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic import ast as fo, formula_node_set, holds, mso_holds, mso_node_set
from repro.logic.random_formulas import FormulaSampler, random_formula
from repro.trees import random_tree


class TestSamplerBasics:
    def test_free_variables_respected(self):
        rng = random.Random(0)
        for __ in range(30):
            formula = random_formula(["x"], budget=rng.randint(1, 8), rng=rng)
            assert fo.free_variables(formula) <= {"x"}

    def test_sentence_generation(self):
        formula = random_formula([], budget=5, rng=random.Random(1))
        assert fo.free_variables(formula) == frozenset()

    def test_tc_can_be_disabled(self):
        rng = random.Random(2)
        sampler = FormulaSampler(rng=rng, allow_tc=False)
        for __ in range(25):
            formula = sampler.formula(["x"], budget=8)
            assert not any(isinstance(f, fo.TC) for f in formula.walk())


class TestCheckersAgree:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 7), size=st.integers(1, 6))
    def test_unary_formulas(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula(["x"], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        relational = formula_node_set(tree, formula, "x")
        naive = mso_node_set(tree, formula, "x")
        assert relational == naive

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 6), size=st.integers(1, 5))
    def test_sentences(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula([], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        assert holds(tree, formula) == mso_holds(tree, formula)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 10**9), budget=st.integers(1, 6), size=st.integers(1, 5))
    def test_binary_formulas(self, seed, budget, size):
        rng = random.Random(seed)
        formula = random_formula(["x", "y"], budget=budget, rng=rng)
        tree = random_tree(size, rng=rng)
        from repro.logic import formula_pairs

        relational = formula_pairs(tree, formula, "x", "y")
        naive = {
            (n, m)
            for n in tree.node_ids
            for m in tree.node_ids
            if mso_holds(tree, formula, {"x": n, "y": m})
        }
        assert relational == naive
