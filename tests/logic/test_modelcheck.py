"""FO(MTC) model-checker tests (relational evaluation + TC semantics)."""

import pytest

from repro.logic import (
    ModelChecker,
    ast as fo,
    formula_node_set,
    formula_pairs,
    holds,
    parse_formula,
)
from repro.trees import Tree, chain


class TestAtoms:
    def test_label_atom(self, mixed_tree):
        assert formula_node_set(mixed_tree, parse_formula("a(x)"), "x") == {0, 3, 5, 7}

    def test_child_relation(self, mixed_tree):
        pairs = formula_pairs(mixed_tree, parse_formula("child(x,y)"), "x", "y")
        assert (0, 2) in pairs and (2, 3) in pairs and (0, 3) not in pairs

    def test_right_relation(self, mixed_tree):
        pairs = formula_pairs(mixed_tree, parse_formula("right(x,y)"), "x", "y")
        assert (1, 2) in pairs and (2, 6) in pairs and (1, 6) not in pairs

    def test_descendant_is_strict(self, mixed_tree):
        pairs = formula_pairs(mixed_tree, parse_formula("descendant(x,y)"), "x", "y")
        assert (0, 0) not in pairs and (0, 7) in pairs

    def test_equality(self, mixed_tree):
        pairs = formula_pairs(mixed_tree, parse_formula("x=y"), "x", "y")
        assert pairs == {(n, n) for n in mixed_tree.node_ids}

    def test_root_leaf_sugar(self, mixed_tree):
        assert formula_node_set(mixed_tree, parse_formula("root(x)"), "x") == {0}
        assert formula_node_set(mixed_tree, parse_formula("leaf(x)"), "x") == {1, 3, 4, 5, 7}


class TestConnectivesAndQuantifiers:
    def test_negation_complements(self, mixed_tree):
        got = formula_node_set(mixed_tree, parse_formula("~a(x)"), "x")
        assert got == {1, 2, 4, 6}

    def test_exists_projection(self, mixed_tree):
        got = formula_node_set(
            mixed_tree, parse_formula("exists y. child(x,y) & b(y)"), "x"
        )
        assert got == {0, 2}

    def test_forall(self, mixed_tree):
        # all children are leaves
        got = formula_node_set(
            mixed_tree, parse_formula("all y. (child(x,y) -> leaf(y))"), "x"
        )
        # 2 has leaf children only; 6 has leaf child; leaves vacuously.
        assert got == {1, 2, 3, 4, 5, 6, 7}

    def test_implication_and_iff(self, mixed_tree):
        f = parse_formula("a(x) <-> ~b(x)")
        got = formula_node_set(mixed_tree, f, "x")
        # a-labelled: true↔true; b-labelled: false↔false; c (node 2): false↔true fails.
        assert got == set(mixed_tree.node_ids) - {2}

    def test_sentences(self, mixed_tree):
        assert holds(mixed_tree, parse_formula("exists x. c(x)"))
        assert not holds(mixed_tree, parse_formula("all x. a(x)"))

    def test_holds_with_env(self, mixed_tree):
        f = parse_formula("child(x,y)")
        assert holds(mixed_tree, f, {"x": 0, "y": 2})
        assert not holds(mixed_tree, f, {"x": 0, "y": 3})

    def test_missing_env_raises(self, mixed_tree):
        with pytest.raises(ValueError):
            holds(mixed_tree, parse_formula("a(x)"))


class TestTransitiveClosure:
    def test_tc_child_is_descendant(self, mixed_tree):
        tc = formula_pairs(mixed_tree, parse_formula("tc[u,v](child(u,v))(x,y)"), "x", "y")
        desc = formula_pairs(mixed_tree, parse_formula("descendant(x,y)"), "x", "y")
        assert tc == desc

    def test_rtc_adds_diagonal(self, mixed_tree):
        rtc = formula_pairs(mixed_tree, parse_formula("rtc[u,v](child(u,v))(x,y)"), "x", "y")
        desc = formula_pairs(mixed_tree, parse_formula("descendant(x,y)"), "x", "y")
        assert rtc == desc | {(n, n) for n in mixed_tree.node_ids}

    def test_tc_is_strict_not_reflexive(self, mixed_tree):
        tc = formula_pairs(mixed_tree, parse_formula("tc[u,v](child(u,v))(x,y)"), "x", "y")
        assert all(a != b for a, b in tc)

    def test_tc_with_test_body(self, mixed_tree):
        f = parse_formula("tc[u,v](child(u,v) & a(v))(x,y)")
        assert formula_pairs(mixed_tree, f, "x", "y") == {(2, 3), (2, 5), (6, 7)}

    def test_tc_with_parameter(self, mixed_tree):
        # steps restricted to nodes with the same label as parameter z's node
        f = parse_formula(
            "exists z. root(z) & tc[u,v](child(u,v) & a(v))(x,y)"
        )
        got = formula_pairs(mixed_tree, f, "x", "y")
        assert got == {(2, 3), (2, 5), (6, 7)}

    def test_tc_cycle_via_sibling_shuffle(self):
        # TC of (right | left) relates any two distinct siblings, and each
        # sibling to itself when a cycle exists (>= 2 siblings).
        t = Tree.build(("r", ["a", "b", "c"]))
        f = parse_formula("tc[u,v](right(u,v) | right(v,u))(x,y)")
        pairs = formula_pairs(t, f, "x", "y")
        assert {(1, 1), (1, 2), (2, 1), (3, 3), (1, 3)} <= pairs
        assert (0, 0) not in pairs

    def test_tc_body_ignoring_bound_vars_is_total(self):
        t = chain(3)
        # body true(u,v): complete graph → TC total.
        f = parse_formula("tc[u,v](true)(x,y)")
        assert formula_pairs(t, f, "x", "y") == {(a, b) for a in range(3) for b in range(3)}

    def test_tc_equal_endpoints_variable(self):
        t = Tree.build(("r", ["a", "b"]))
        f = parse_formula("tc[u,v](right(u,v) | right(v,u))(x,x)")
        got = formula_node_set(t, f, "x")
        assert got == {1, 2}


class TestEvenLengthChains:
    """The flagship FO(MTC)-beyond-FO example: parity of depth."""

    EVEN_DEPTH = (
        "exists r. root(r) & rtc[u,v](exists w. child(u,w) & child(w,v))(r,x)"
    )

    @pytest.mark.parametrize("length", range(1, 8))
    def test_even_depth_on_chains(self, length):
        t = chain(length)
        got = formula_node_set(t, parse_formula(self.EVEN_DEPTH), "x")
        assert got == {n for n in range(length) if n % 2 == 0}


class TestChecker:
    def test_table_caching(self, mixed_tree):
        checker = ModelChecker(mixed_tree)
        f = parse_formula("exists y. child(x,y)")
        assert checker.table(f) is checker.table(f)

    def test_pairs_pads_missing_variable(self, mixed_tree):
        # a(x) as a "binary" query is a cylinder.
        pairs = ModelChecker(mixed_tree).pairs(parse_formula("a(x)"), "x", "y")
        assert pairs == {(n, m) for n in {0, 3, 5, 7} for m in mixed_tree.node_ids}

    def test_node_set_wrong_variable_raises(self, mixed_tree):
        with pytest.raises(ValueError):
            formula_node_set(mixed_tree, parse_formula("a(x)"), "y")
