"""Integration tests: the paper's commuting diagram, executed end to end.

For one query, *five* independent implementations must agree on who
satisfies it: the optimized XPath evaluator, the denotational reference
semantics, the FO(MTC) model checker (via T1), the round-tripped Regular
XPath expression (via T2), and — for downward queries — the compiled nested
TWA (via T3), with the naive MSO checker as a sixth witness on tiny trees.
"""

import random

import pytest

from repro import Query, parse_xml
from repro.automata.examples import exists_label
from repro.logic import formula_node_set, mso_node_set
from repro.translations import (
    UnsupportedForTwa,
    UnsupportedFormula,
    compile_node_expr,
    mtc_to_node_expr,
    xpath_to_mtc,
)
from repro.trees import all_trees, random_tree
from repro.xpath import Evaluator, node_set, parse_node
from repro.xpath.fragments import Dialect, is_downward
from repro.xpath.random_exprs import ExprSampler

DIAGRAM_SUITE = [
    "<child[b]>",
    "<descendant[a]> and not b",
    "<(child[a])+[leaf]>",
    "not <child[not <child>]>",
    "W(<descendant[b]>)",
]


class TestCommutingDiagram:
    @pytest.mark.parametrize("text", DIAGRAM_SUITE)
    def test_five_way_agreement(self, text, small_trees):
        expr = parse_node(text)
        formula = xpath_to_mtc(expr)
        try:
            back = mtc_to_node_expr(formula, "x")
        except UnsupportedFormula:
            back = None
        try:
            automaton = compile_node_expr(expr, ("a", "b")) if is_downward(expr) else None
        except UnsupportedForTwa:
            automaton = None

        for tree in small_trees[:80]:
            expected = set(Evaluator(tree).nodes(expr))
            assert node_set(tree, expr) == expected  # reference semantics
            assert formula_node_set(tree, formula, "x") == expected  # T1
            if back is not None:
                assert set(Evaluator(tree).nodes(back)) == expected  # T2
            if automaton is not None:  # T3
                got = {v for v in tree.node_ids if automaton.accepts(tree, scope=v)}
                assert got == expected

    @pytest.mark.parametrize("text", DIAGRAM_SUITE[:3])
    def test_mso_agrees_on_tiny_trees(self, text):
        expr = parse_node(text)
        formula = xpath_to_mtc(expr)
        for tree in all_trees(3):
            expected = set(Evaluator(tree).nodes(expr))
            assert mso_node_set(tree, formula, "x") == expected

    def test_randomized_diagram(self):
        rng = random.Random(99)
        sampler = ExprSampler(rng=rng, dialect=Dialect.REGULAR)
        for __ in range(25):
            expr = sampler.node(rng.randint(1, 8))
            formula = xpath_to_mtc(expr)
            back = mtc_to_node_expr(formula, "x")
            tree = random_tree(rng.randint(1, 10), rng=rng)
            expected = set(Evaluator(tree).nodes(expr))
            assert formula_node_set(tree, formula, "x") == expected
            assert set(Evaluator(tree).nodes(back)) == expected


class TestXPathVsHedgeGroundTruth:
    """The query 'some b exists' rendered three ways: XPath, nested TWA,
    hedge automaton — all must define the same tree language."""

    def test_three_machines_one_language(self, small_trees):
        query = parse_node("<descendant_or_self[b]>")
        walking = compile_node_expr(query, ("a", "b"))
        bottom_up = exists_label(("a", "b"), "b")
        for tree in small_trees:
            xpath_answer = 0 in Evaluator(tree).nodes(query)
            assert walking.accepts(tree) == xpath_answer
            assert bottom_up.accepts(tree) == xpath_answer


class TestEndToEndDocument:
    def test_xml_to_every_formalism(self):
        doc = parse_xml(
            "<library><shelf><book/><book/></shelf><shelf><journal/></shelf></library>"
        )
        q = Query.node("<child[book]>")
        shelves_with_books = q.evaluate(doc)
        assert shelves_with_books == {1}
        formula = q.to_fo_mtc()
        assert formula_node_set(doc, formula, "x") == {1}
        automaton = q.to_nested_twa(doc.alphabet)
        assert {v for v in doc.node_ids if automaton.accepts(doc, scope=v)} == {1}


class TestSchemaCrossEngines:
    """Schema satisfiability answered by two independent engines: the joint
    truth-vector exploration and hedge-automaton intersection emptiness."""

    def test_two_engines_agree(self):
        from repro.automata import Dtd
        from repro.automata.examples import exists_label
        from repro.decision import exact_satisfiable_under
        from repro.xpath import parse_node

        schema = Dtd(
            root="bib",
            content={
                "bib": "(conf | journal)*",
                "conf": "paper+",
                "journal": "paper*",
                "paper": "title, author+, award?",
                "title": "EMPTY",
                "author": "EMPTY",
                "award": "EMPTY",
            },
        )
        hedge_schema = schema.to_hedge_automaton()
        for label in ("award", "journal", "title"):
            # Engine 1: joint exploration of query × schema.
            witness1 = exact_satisfiable_under(parse_node(label), schema)
            # Engine 2: L(schema) ∩ L("some `label` node") ≠ ∅?
            query_lang = exists_label(schema.elements, label)
            witness2 = hedge_schema.intersection(query_lang).find_tree()
            assert (witness1 is None) == (witness2 is None)
            if witness2 is not None:
                assert schema.conforms(witness2)
                assert label in witness2.labels
