"""Shared fixtures: corpora, samplers, and canonical example trees.

Timeout policy: CI runs the suite under pytest-timeout (``--timeout=120``,
configured in ``.github/workflows/ci.yml`` only — the plugin is not a local
requirement) as a watchdog against runaway tests.  Hypothesis-side
per-example deadlines stay **disabled** (``deadline=None`` below): property
tests here routinely build corpora and automata whose first-example cost is
dominated by session-scoped cache warming, and Hypothesis deadlines turn
that warm-up jitter into flaky ``DeadlineExceeded`` failures.  The ``repro``
profile registered below makes that the suite-wide default (individual
tests repeat ``deadline=None`` in their ``@settings`` for locality).
Wall-clock governance of the *engines themselves* is exercised explicitly
by the ``tests/runtime`` suite via ExecutionBudget instead.
"""

import random

import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile("repro", deadline=None)
hypothesis_settings.load_profile("repro")

from repro import obs
from repro.decision.corpora import standard_corpus
from repro.runtime import faults
from repro.runtime import guarded as _guarded  # noqa: F401 -- see below
from repro.trees import Tree, all_trees, chain, parse_xml
from repro.xpath.random_exprs import ExprSampler

# ``repro.runtime.guarded`` registers its fallback counter at import time and
# keeps a module-level reference to it.  Importing it *before* the metrics
# snapshot below guarantees that instrument is part of every snapshot, so the
# in-place restore preserves its identity instead of dropping it from the
# registry (which would silently disconnect the module's counter from
# ``REGISTRY.total``).


@pytest.fixture(autouse=True)
def _metrics_registry_isolation():
    """Snapshot/restore the process metrics registry around every test.

    :data:`repro.obs.REGISTRY` is process-global mutable state, exactly like
    the fault registry: a test that runs a service (or trips a guarded
    fallback) would otherwise leak counter increments into every later
    test's reconciliation assertions.  The restore is in place — instruments
    captured by module-level holders keep their object identity.
    """
    snapshot = obs.REGISTRY.snapshot()
    yield
    obs.REGISTRY.restore(snapshot)


@pytest.fixture(autouse=True)
def _tracer_isolation():
    """Restore the process-wide tracer installation around every test.

    Tests should prefer the scoped ``with obs.tracing(...)`` form, but a
    test that calls :func:`repro.obs.install` (or crashes inside a tracing
    block) must not leave every later test silently tracing.
    """
    before = obs.current_tracer()
    yield
    if obs.current_tracer() is not before:
        obs.install(before) if before is not None else obs.uninstall()


@pytest.fixture(autouse=True)
def _fault_registry_isolation():
    """Snapshot/restore the global fault registry around every test.

    ``repro.runtime.faults`` parses ``REPRO_FAULTS`` at import time and its
    armed sites are process-global mutable state, so a test that arms a
    site (or consumes an environment-armed counted site) would otherwise
    leak into every later test.  Restoring the entry snapshot keeps tests
    isolated from each other while letting deliberately environment-armed
    runs (the CI chaos job) keep their arming across the session.
    """
    snapshot = faults.armed_sites()
    yield
    faults.disarm()
    for site, times in snapshot.items():
        faults.arm(site, times)


@pytest.fixture(autouse=True)
def _store_handle_isolation():
    """Close any store mmap handles a test leaves open.

    :mod:`repro.trees.store` tracks every live :class:`StoreHandle` in a
    process-wide weak set so the suite can guarantee no test leaks an open
    memory map of a (tmp-dir) store file into later tests.  The sweep
    closes *all* live handles, so store-loaded trees must not be shared
    across tests — store tests build per-test stores in tmp directories,
    which is exactly what this fixture enforces.
    """
    yield
    from repro.trees import store as _store

    _store.close_open_handles()


@pytest.fixture(scope="session")
def corpus():
    """The standard test corpus (exhaustive to size 4 over {a, b})."""
    return standard_corpus()

@pytest.fixture(scope="session")
def small_trees():
    """Every tree with at most 4 nodes over {a, b} (102 trees)."""
    return list(all_trees(4))


@pytest.fixture(scope="session")
def exhaustive5():
    """Every tree with at most 5 nodes over {a, b} (550 trees)."""
    return list(all_trees(5))


@pytest.fixture()
def rng():
    return random.Random(2008)


@pytest.fixture()
def sampler(rng):
    return ExprSampler(alphabet=("a", "b"), rng=rng)


@pytest.fixture(scope="session")
def talk_tree():
    """The running example document of the talk literature."""
    return parse_xml(
        "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"
    )


@pytest.fixture(scope="session")
def mixed_tree():
    """A hand-built tree exercising every axis direction.

    Shape: a(b, c(a, b, a), b(a))  — ids 0..7 in document order.
    """
    return Tree.build(("a", ["b", ("c", ["a", "b", "a"]), ("b", ["a"])]))


@pytest.fixture(scope="session")
def deep_chain():
    return chain(12, labels=("a", "b"))
