"""Shared fixtures: corpora, samplers, and canonical example trees.

Timeout policy: CI runs the suite under pytest-timeout (``--timeout=120``,
configured in ``.github/workflows/ci.yml`` only — the plugin is not a local
requirement) as a watchdog against runaway tests.  Hypothesis-side
per-example deadlines stay **disabled** (``deadline=None`` below): property
tests here routinely build corpora and automata whose first-example cost is
dominated by session-scoped cache warming, and Hypothesis deadlines turn
that warm-up jitter into flaky ``DeadlineExceeded`` failures.  The ``repro``
profile registered below makes that the suite-wide default (individual
tests repeat ``deadline=None`` in their ``@settings`` for locality).
Wall-clock governance of the *engines themselves* is exercised explicitly
by the ``tests/runtime`` suite via ExecutionBudget instead.
"""

import random

import pytest
from hypothesis import settings as hypothesis_settings

hypothesis_settings.register_profile("repro", deadline=None)
hypothesis_settings.load_profile("repro")

from repro.decision.corpora import standard_corpus
from repro.runtime import faults
from repro.trees import Tree, all_trees, chain, parse_xml
from repro.xpath.random_exprs import ExprSampler


@pytest.fixture(autouse=True)
def _fault_registry_isolation():
    """Snapshot/restore the global fault registry around every test.

    ``repro.runtime.faults`` parses ``REPRO_FAULTS`` at import time and its
    armed sites are process-global mutable state, so a test that arms a
    site (or consumes an environment-armed counted site) would otherwise
    leak into every later test.  Restoring the entry snapshot keeps tests
    isolated from each other while letting deliberately environment-armed
    runs (the CI chaos job) keep their arming across the session.
    """
    snapshot = faults.armed_sites()
    yield
    faults.disarm()
    for site, times in snapshot.items():
        faults.arm(site, times)


@pytest.fixture(scope="session")
def corpus():
    """The standard test corpus (exhaustive to size 4 over {a, b})."""
    return standard_corpus()

@pytest.fixture(scope="session")
def small_trees():
    """Every tree with at most 4 nodes over {a, b} (102 trees)."""
    return list(all_trees(4))


@pytest.fixture(scope="session")
def exhaustive5():
    """Every tree with at most 5 nodes over {a, b} (550 trees)."""
    return list(all_trees(5))


@pytest.fixture()
def rng():
    return random.Random(2008)


@pytest.fixture()
def sampler(rng):
    return ExprSampler(alphabet=("a", "b"), rng=rng)


@pytest.fixture(scope="session")
def talk_tree():
    """The running example document of the talk literature."""
    return parse_xml(
        "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"
    )


@pytest.fixture(scope="session")
def mixed_tree():
    """A hand-built tree exercising every axis direction.

    Shape: a(b, c(a, b, a), b(a))  — ids 0..7 in document order.
    """
    return Tree.build(("a", ["b", ("c", ["a", "b", "a"]), ("b", ["a"])]))


@pytest.fixture(scope="session")
def deep_chain():
    return chain(12, labels=("a", "b"))
