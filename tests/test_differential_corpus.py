"""The differential test corpus (satellite 1 of the observability PR).

A fixed corpus of queries, formulas, and automata runs on pinned trees,
executed through every interchangeable backend pair:

* Regular XPath evaluation — ``sets`` vs ``bitset`` evaluators;
* FO(MTC) model checking — ``table`` vs ``bitset`` checkers;
* TWA runs — ``deque`` vs ``bitset`` strategies.

Each run executes under a **fresh tracer**, and the assertion is twofold:
identical *results* and identical *span structure* (the nested tuple of
span names).  The span taxonomy is part of the backend contract — stage
names describe what the engine is doing, not how — so two backends
answering the same question must produce the same span tree, with the
backend recorded only as a span attribute.  A refactor that splits,
renames, or reorders public stages in one backend but not its twin fails
here even when the results still agree.
"""

import random

import pytest

from repro import obs
from repro.automata import random_nested_twa, random_twa
from repro.logic import ModelChecker, parse_formula
from repro.logic.ast import free_variables
from repro.trees import Tree, chain, parse_xml, random_tree
from repro.xpath import Evaluator, parse_node, parse_path

# -- pinned trees -----------------------------------------------------------

TREES = {
    "talk": parse_xml(
        "<talk><speaker/><title><i/></title><location><i/><b/></location></talk>"
    ),
    "mixed": Tree.build(("a", ["b", ("c", ["a", "b", "a"]), ("b", ["a"])])),
    "chain": chain(9, labels=("a", "b")),
    "random21": random_tree(21, rng=random.Random(2008)),
    "random40": random_tree(40, rng=random.Random(40)),
}

# -- the corpus -------------------------------------------------------------

NODE_QUERIES = [
    "?a",
    "?b",
    "<child[a]>",
    "<child/child[a]>",
    "<descendant[a and <right[b]>]>",
    "not <child>",
    "?a and <parent[b]>",
    "<child*[b]>",
    "<following[a]> or ?b",
    "not (<child[a]> and <child[b]>)",
]

PATH_QUERIES = [
    "child",
    "child/child",
    "descendant",
    "child*",
    "child+",
    "right*",
    "parent/child",
    "child[a]/descendant",
    "(child[a] | child[b]/right)*",
    "child & descendant",
    "following",
    ". | child",
]

FORMULAS = [
    "exists x. a(x)",
    "all z. (a(z) -> (exists w. child(z, w)) | leaf(z))",
    "exists x. exists y. tc[u,v](child(u,v) | right(u,v))(x, y) & last(y) & leaf(y)",
    "a(x)",
    "~a(x) & (exists y. child(y, x))",
    "exists y. tc[u,v](child(u,v) | right(u,v))(x, y)",
    "a(x) <-> (exists y. child(x, y))",
    "leaf(x)",
    "child(x, y)",
    "tc[u,v](child(u,v))(x, y)",
    "tc[u,v](child(u,v) & a(u))(x, y) | right(x, y)",
    "exists z. child(x, z) & child(z, y)",
]

TWA_SEEDS = [3, 11, 2008]
NESTED_TWA_SEEDS = [7, 19]


def _traced(thunk, ignore=()):
    """Run ``thunk`` under a fresh tracer; return (result, span structure)."""
    with obs.tracing() as tracer:
        result = thunk()
    return result, tracer.structure(ignore=ignore)


def _assert_backends_agree(name, runs, ignore=()):
    """``runs``: backend -> zero-arg thunk; compare results and spans."""
    outcomes = {backend: _traced(thunk, ignore) for backend, thunk in runs.items()}
    (ref_backend, (ref_result, ref_spans)), *rest = list(outcomes.items())
    for backend, (result, spans) in rest:
        assert result == ref_result, (
            f"{name}: {backend} result diverges from {ref_backend}"
        )
        assert spans == ref_spans, (
            f"{name}: {backend} span structure diverges from {ref_backend}:\n"
            f"  {ref_backend}: {ref_spans}\n  {backend}: {spans}"
        )


# -- XPath evaluation: sets vs bitset ---------------------------------------


@pytest.mark.parametrize("tree_name", sorted(TREES))
@pytest.mark.parametrize("query", NODE_QUERIES)
def test_node_queries_agree(tree_name, query):
    tree = TREES[tree_name]
    expr = parse_node(query)
    _assert_backends_agree(
        f"nodes {query!r} on {tree_name}",
        {
            backend: lambda backend=backend: Evaluator(
                tree, backend=backend
            ).nodes(expr)
            for backend in ("sets", "bitset")
        },
    )


@pytest.mark.parametrize("tree_name", sorted(TREES))
@pytest.mark.parametrize("query", PATH_QUERIES)
def test_path_images_agree(tree_name, query):
    tree = TREES[tree_name]
    expr = parse_path(query)
    sources = {0, tree.size // 2}
    _assert_backends_agree(
        f"image {query!r} on {tree_name}",
        {
            backend: lambda backend=backend: Evaluator(
                tree, backend=backend
            ).image(expr, sources)
            for backend in ("sets", "bitset")
        },
    )


@pytest.mark.parametrize("tree_name", ["talk", "mixed", "random21"])
@pytest.mark.parametrize("query", PATH_QUERIES)
def test_path_pairs_agree(tree_name, query):
    tree = TREES[tree_name]
    expr = parse_path(query)
    _assert_backends_agree(
        f"pairs {query!r} on {tree_name}",
        {
            backend: lambda backend=backend: Evaluator(
                tree, backend=backend
            ).pairs(expr)
            for backend in ("sets", "bitset")
        },
    )


# -- FO(MTC) model checking: table vs bitset --------------------------------


@pytest.mark.parametrize("tree_name", sorted(TREES))
@pytest.mark.parametrize("formula_text", FORMULAS)
def test_formulas_agree(tree_name, formula_text):
    tree = TREES[tree_name]
    formula = parse_formula(formula_text)
    free = tuple(sorted(free_variables(formula)))

    def run(backend):
        checker = ModelChecker(tree, backend=backend)
        if len(free) == 0:
            return checker.holds(formula)
        if len(free) == 1:
            return checker.node_set(formula, free[0])
        return checker.pairs(formula, free[0], free[1])

    _assert_backends_agree(
        f"check {formula_text!r} on {tree_name}",
        {backend: lambda backend=backend: run(backend) for backend in ("table", "bitset")},
    )


# -- TWA runs: deque vs bitset ----------------------------------------------


def _plain_twa_cases():
    return [
        (f"twa{seed}", random_twa(num_states=4, rng=random.Random(seed)))
        for seed in TWA_SEEDS
    ]


def _nested_twa_cases():
    return [
        (f"nested{seed}", random_nested_twa(rng=random.Random(seed)))
        for seed in NESTED_TWA_SEEDS
    ]


@pytest.mark.parametrize("tree_name", ["talk", "mixed", "chain", "random21"])
@pytest.mark.parametrize("twa_name,automaton", _plain_twa_cases())
def test_twa_accepts_agree(tree_name, twa_name, automaton):
    tree = TREES[tree_name]
    scope = tree.size // 2
    _assert_backends_agree(
        f"accepts {twa_name} on {tree_name}",
        {
            strategy: lambda strategy=strategy: automaton.accepts(
                tree, scope=scope, strategy=strategy
            )
            for strategy in ("deque", "bitset")
        },
    )


@pytest.mark.parametrize("tree_name", ["talk", "mixed", "chain", "random21"])
@pytest.mark.parametrize("twa_name,automaton", _nested_twa_cases())
def test_nested_twa_accepts_agree(tree_name, twa_name, automaton):
    """Nested TWAs: results must agree; sub-run *scheduling* is private.

    The bitset strategy precomputes sub-automaton accept masks eagerly
    (one run per in-scope node) while the deque walk evaluates guards
    lazily, so the two legitimately differ in how many frontier sweeps
    their sub-runs perform — sweep spans are ignored here, result parity
    is not.
    """
    tree = TREES[tree_name]
    scope = tree.size // 2
    _assert_backends_agree(
        f"accepts {twa_name} on {tree_name}",
        {
            strategy: lambda strategy=strategy: automaton.accepts(
                tree, scope=scope, strategy=strategy
            )
            for strategy in ("deque", "bitset")
        },
        ignore=("twa.frontier.sweep",),
    )


@pytest.mark.parametrize("tree_name", ["talk", "mixed", "random21"])
@pytest.mark.parametrize("twa_name,automaton", _plain_twa_cases())
def test_twa_reachable_configs_agree(tree_name, twa_name, automaton):
    tree = TREES[tree_name]
    scope = tree.size // 2
    _assert_backends_agree(
        f"configs {twa_name} on {tree_name}",
        {
            strategy: lambda strategy=strategy: automaton.reachable_configs(
                tree, scope=scope, strategy=strategy
            )
            for strategy in ("deque", "bitset")
        },
    )


def test_corpus_is_large_enough():
    """The corpus stays a real corpus: ~40 distinct fixed inputs."""
    assert (
        len(NODE_QUERIES)
        + len(PATH_QUERIES)
        + len(FORMULAS)
        + len(TWA_SEEDS)
        + len(NESTED_TWA_SEEDS)
        >= 39
    )
