"""The exported hypothesis strategies must produce valid objects and be
usable exactly as advertised in their docstring."""

from hypothesis import given, settings

from repro.logic import ast as fo
from repro.testing import formulas, node_expressions, path_expressions, trees
from repro.trees import Tree
from repro.xpath import ast as xp, node_set, evaluate_nodes
from repro.xpath.fragments import Dialect, is_downward, uses_within


class TestStrategies:
    @settings(max_examples=25, deadline=None)
    @given(tree=trees(max_size=8))
    def test_trees_are_valid(self, tree):
        assert isinstance(tree, Tree)
        assert 1 <= tree.size <= 8
        assert tree.alphabet <= {"a", "b"}

    @settings(max_examples=25, deadline=None)
    @given(expr=node_expressions(max_budget=8))
    def test_node_expressions_are_valid(self, expr):
        assert isinstance(expr, xp.NodeExpr)

    @settings(max_examples=25, deadline=None)
    @given(expr=path_expressions(max_budget=8, dialect=Dialect.CORE))
    def test_dialect_respected(self, expr):
        assert not uses_within(expr)

    @settings(max_examples=25, deadline=None)
    @given(expr=node_expressions(downward_only=True))
    def test_downward_respected(self, expr):
        assert is_downward(expr)

    @settings(max_examples=25, deadline=None)
    @given(formula=formulas(free=("x",), allow_tc=False))
    def test_formulas_are_valid(self, formula):
        assert fo.free_variables(formula) <= {"x"}
        assert not any(isinstance(f, fo.TC) for f in formula.walk())

    @settings(max_examples=20, deadline=None)
    @given(tree=trees(max_size=8), expr=node_expressions(max_budget=6))
    def test_advertised_usage_pattern(self, tree, expr):
        # The docstring example: evaluate an expression on a tree.
        assert set(evaluate_nodes(tree, expr)) == node_set(tree, expr)
