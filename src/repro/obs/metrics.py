"""The process-wide metrics registry: counters, gauges, histograms.

One :data:`REGISTRY` per process (tests snapshot/restore it around every
test, mirroring the fault-registry isolation).  Instruments are created
get-or-create by ``(name, labels)`` — two call sites asking for the same
series share one instrument object — and every mutation takes the
instrument's own lock, so service workers recording from many threads
never lose increments (the chaos soak reconciles totals against request
counts exactly).

Instruments:

* :class:`Counter` — monotonically increasing (``inc``);
* :class:`Gauge` — a settable level (``set`` / ``inc`` / ``dec``);
* :class:`Histogram` — fixed-bucket distribution with count/sum/min/max
  and percentile *upper bounds*: ``percentile(q)`` returns the smallest
  bucket edge (clamped to the observed maximum) at or below which at
  least a ``q`` fraction of observations fall, so the estimate always
  bounds the true quantile from above — the property suite asserts this.

Exports: :meth:`MetricsRegistry.to_json` (what ``repro batch --metrics``
prints) and :meth:`MetricsRegistry.to_prometheus` (the conventional text
exposition format: ``name{label="v"} value`` lines with TYPE comments).
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "diff_state",
    "gauge",
    "histogram",
    "merge_states",
    "merged_histogram",
    "registry_from_state",
]

#: Default histogram bucket upper edges: 1-2.5-5 per decade, 1µs .. 50s —
#: wide enough for both per-request latencies and whole-batch runtimes.
DEFAULT_BUCKETS = tuple(
    round(10.0**exponent * mantissa, 12)
    for exponent in range(-6, 2)
    for mantissa in (1.0, 2.5, 5.0)
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared naming/locking plumbing for the three instrument kinds."""

    kind = ""

    def __init__(self, name: str, labels: _LabelKey):
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()

    @property
    def series(self) -> str:
        """The flat series name, e.g. ``requests_total{op=eval}``."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def _prom_series(self) -> str:
        base = re.sub(r"[^a-zA-Z0-9_:]", "_", self.name)
        if not self.labels:
            return base
        inner = ",".join(f'{k}="{v}"' for k, v in self.labels)
        return f"{base}{{{inner}}}"


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey = ()):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def state(self):
        return self.value

    def load(self, state) -> None:
        with self._lock:
            self._value = state


class Gauge(_Instrument):
    """A settable level (queue depth, breaker state, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey = ()):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def state(self):
        return self.value

    def load(self, state) -> None:
        with self._lock:
            self._value = state


class Histogram(_Instrument):
    """A fixed-bucket distribution (see module docstring for percentiles)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: _LabelKey = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, labels)
        if not buckets or any(
            b >= c for b, c in zip(buckets, buckets[1:])
        ):
            raise ValueError(f"bucket edges must strictly increase: {buckets!r}")
        self.buckets = tuple(float(b) for b in buckets)
        # counts[i] observes values <= buckets[i]; counts[-1] is overflow.
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """An upper bound on the ``q``-quantile (0.0 with no observations)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            target = q * total
            cumulative = 0
            for index, bucket_count in enumerate(self._counts):
                cumulative += bucket_count
                if cumulative >= target and bucket_count:
                    if index < len(self.buckets):
                        # The true quantile lies at or below this edge; the
                        # observed max tightens edges past the data.
                        return min(self.buckets[index], self._max)
                    return self._max
            return self._max

    def state(self):
        with self._lock:
            return (
                list(self._counts),
                self._count,
                self._sum,
                self._min,
                self._max,
            )

    def load(self, state) -> None:
        counts, count, total, minimum, maximum = state
        with self._lock:
            self._counts = list(counts)
            self._count = count
            self._sum = total
            self._min = minimum
            self._max = maximum

    def snapshot(self) -> dict:
        """A JSON-safe summary of the distribution."""
        with self._lock:
            count, total = self._count, self._sum
            minimum = self._min if count else 0.0
            maximum = self._max if count else 0.0
        return {
            "count": count,
            "sum": round(total, 9),
            "min": round(minimum, 9),
            "max": round(maximum, 9),
            "p50": round(self.percentile(0.50), 9),
            "p90": round(self.percentile(0.90), 9),
            "p99": round(self.percentile(0.99), 9),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instrument store with JSON/Prometheus export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, _LabelKey], _Instrument] = {}

    # -- creation ----------------------------------------------------------

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, key[1], **kwargs)
                self._instruments[key] = instrument
            elif not isinstance(instrument, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {instrument.kind}"
                )
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- reading -----------------------------------------------------------

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across every label set (reconciliation)."""
        return sum(
            instrument.value
            for instrument in self.instruments()
            if instrument.name == name and not isinstance(instrument, Histogram)
        )

    def to_json(self) -> dict:
        """All series as one JSON-safe object (``repro batch --metrics``)."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for instrument in sorted(self.instruments(), key=lambda i: i.series):
            if isinstance(instrument, Counter):
                counters[instrument.series] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.series] = instrument.value
            else:
                histograms[instrument.series] = instrument.snapshot()
        return {
            "version": "repro-metrics/1",
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def to_prometheus(self) -> str:
        """The text exposition format (``# TYPE`` comments + series lines)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for instrument in sorted(self.instruments(), key=lambda i: i.series):
            base = re.sub(r"[^a-zA-Z0-9_:]", "_", instrument.name)
            if base not in seen_types:
                seen_types.add(base)
                lines.append(f"# TYPE {base} {instrument.kind}")
            if isinstance(instrument, Histogram):
                label_prefix = instrument._prom_series()
                head, _, tail = label_prefix.partition("{")
                inner = tail[:-1] if tail else ""
                cumulative = 0
                with instrument._lock:
                    counts = list(instrument._counts)
                    count, total = instrument._count, instrument._sum
                for edge, bucket_count in zip(instrument.buckets, counts):
                    cumulative += bucket_count
                    labels = f'{inner},le="{edge}"' if inner else f'le="{edge}"'
                    lines.append(f"{head}_bucket{{{labels}}} {cumulative}")
                labels = f'{inner},le="+Inf"' if inner else 'le="+Inf"'
                lines.append(f"{head}_bucket{{{labels}}} {count}")
                suffix = f"{{{inner}}}" if inner else ""
                lines.append(f"{head}_sum{suffix} {total}")
                lines.append(f"{head}_count{suffix} {count}")
            else:
                lines.append(f"{instrument._prom_series()} {instrument.value}")
        return "\n".join(lines) + ("\n" if lines else "")

    # -- test isolation ----------------------------------------------------

    def snapshot(self) -> dict:
        """An opaque full-state snapshot (pair with :meth:`restore`)."""
        with self._lock:
            instruments = dict(self._instruments)
        return {
            key: (instrument.kind, instrument.state(), getattr(instrument, "buckets", None))
            for key, instrument in instruments.items()
        }

    def restore(self, state: dict) -> None:
        """Restore a snapshot **in place**.

        Instruments present in the snapshot keep their object identity
        (long-lived holders like the guarded-execution stats keep working);
        instruments created since are dropped from the registry.
        """
        with self._lock:
            for key in list(self._instruments):
                if key not in state:
                    del self._instruments[key]
            for key, (kind, value, buckets) in state.items():
                instrument = self._instruments.get(key)
                if instrument is None:
                    cls = _KINDS[kind]
                    kwargs = {"buckets": buckets} if kind == "histogram" else {}
                    instrument = cls(key[0], key[1], **kwargs)
                    self._instruments[key] = instrument
                instrument.load(value)

    def reset(self) -> None:
        """Drop every instrument (a fresh registry)."""
        with self._lock:
            self._instruments.clear()


# -- cross-process snapshot algebra -----------------------------------------
#
# The sharded query service runs one registry per shard *process* and folds
# them back into the parent on drain.  The primitives it needs are plain
# functions over the picklable state dicts ``MetricsRegistry.snapshot()``
# produces: a *diff* (what a shard recorded since its baseline — under the
# ``fork`` start method a child inherits the parent's counts, which must not
# be double-reported) and an additive *merge* (raw bucket counts and sums,
# never derived percentiles — merging percentiles skews them).


def diff_state(base: dict, current: dict) -> dict:
    """The per-instrument delta from ``base`` to ``current`` snapshots.

    Counters and histogram counts/sums subtract element-wise; gauges are
    levels, so the current value is kept as-is.  Histogram min/max cannot
    be un-merged, so the current extremes are kept (over-inclusive when a
    forked child inherited observations — summary bounds, not identities).
    Instruments absent from ``base`` pass through whole.
    """
    delta: dict = {}
    for key, (kind, state, buckets) in current.items():
        before = base.get(key)
        if before is None or before[0] != kind:
            delta[key] = (kind, state, buckets)
            continue
        if kind == "counter":
            delta[key] = (kind, state - before[1], buckets)
        elif kind == "gauge":
            delta[key] = (kind, state, buckets)
        else:
            counts, count, total, minimum, maximum = state
            b_counts, b_count, b_total, _, _ = before[1]
            delta[key] = (
                kind,
                (
                    [c - b for c, b in zip(counts, b_counts)],
                    count - b_count,
                    total - b_total,
                    minimum,
                    maximum,
                ),
                buckets,
            )
    return delta


def merge_states(*states: dict) -> dict:
    """Fold snapshot states additively into one (raw reservoirs, see above)."""
    merged: dict = {}
    for state in states:
        for key, (kind, value, buckets) in state.items():
            existing = merged.get(key)
            if existing is None:
                if kind == "histogram":
                    counts, count, total, minimum, maximum = value
                    value = (list(counts), count, total, minimum, maximum)
                merged[key] = (kind, value, buckets)
                continue
            if existing[0] != kind:
                raise ValueError(
                    f"metric {key[0]!r} is a {existing[0]} in one state "
                    f"and a {kind} in another"
                )
            if kind in ("counter", "gauge"):
                merged[key] = (kind, existing[1] + value, buckets)
            else:
                if buckets != existing[2]:
                    raise ValueError(
                        f"histogram {key[0]!r} has mismatched bucket edges"
                    )
                counts, count, total, minimum, maximum = existing[1]
                o_counts, o_count, o_total, o_min, o_max = value
                merged[key] = (
                    kind,
                    (
                        [c + o for c, o in zip(counts, o_counts)],
                        count + o_count,
                        total + o_total,
                        min(minimum, o_min),
                        max(maximum, o_max),
                    ),
                    buckets,
                )
    return merged


def registry_from_state(state: dict) -> MetricsRegistry:
    """A standalone registry materializing a (possibly merged) state dict."""
    registry = MetricsRegistry()
    registry.restore(state)
    return registry


def merged_histogram(registry: MetricsRegistry, name: str) -> Histogram:
    """One histogram summing every label set of ``name`` in ``registry``.

    This is how cross-shard latency percentiles are computed: the raw
    bucket counts of each shard's labelled ``service_latency_seconds``
    series are added, and the percentile is read off the combined
    distribution — never averaged across the per-shard percentiles.
    """
    parts = [
        instrument
        for instrument in registry.instruments()
        if instrument.name == name and isinstance(instrument, Histogram)
    ]
    buckets = parts[0].buckets if parts else DEFAULT_BUCKETS
    combined = Histogram(name, (), buckets=buckets)
    states = []
    for part in parts:
        if part.buckets != buckets:
            raise ValueError(f"histogram {name!r} has mismatched bucket edges")
        states.append(part.state())
    if states:
        counts = [sum(col) for col in zip(*(s[0] for s in states))]
        combined.load(
            (
                counts,
                sum(s[1] for s in states),
                sum(s[2] for s in states),
                min(s[3] for s in states),
                max(s[4] for s in states),
            )
        )
    return combined


#: The process-wide registry every layer records into by default.
REGISTRY = MetricsRegistry()


def counter(name: str, **labels) -> Counter:
    return REGISTRY.counter(name, **labels)


def gauge(name: str, **labels) -> Gauge:
    return REGISTRY.gauge(name, **labels)


def histogram(name: str, buckets: tuple[float, ...] = DEFAULT_BUCKETS, **labels) -> Histogram:
    return REGISTRY.histogram(name, buckets=buckets, **labels)
