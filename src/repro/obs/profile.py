"""Profiling hooks: wall/CPU timing of arbitrary blocks, off by default.

``obs.profile("stage")`` brackets any block::

    with obs.profile("corpus.build"):
        corpus = standard_corpus()

While profiling is **disabled** (the default) the call returns the shared
no-op context manager — same near-zero cost as a disabled tracing span.
While enabled, each exit records the block's wall and thread-CPU seconds
into the process registry histograms ``profile_wall_seconds{stage=...}``
and ``profile_cpu_seconds{stage=...}`` and, when a tracer is installed,
also emits a ``profile.<stage>`` span.

Enablement, in precedence order:

* a tracer being installed (tracing implies profiling — ``--trace`` and
  ``REPRO_TRACE`` light both up);
* :func:`enable_profiling` / :func:`disable_profiling` (scoped use:
  ``enable_profiling()`` in a benchmark harness, restore in ``finally``);
* the ``REPRO_PROFILE`` environment variable (any non-empty value),
  parsed at import.
"""

from __future__ import annotations

import os
import time

from . import metrics, trace

__all__ = [
    "PROFILE_ENV_VAR",
    "disable_profiling",
    "enable_profiling",
    "profile",
    "profiling_enabled",
]

PROFILE_ENV_VAR = "REPRO_PROFILE"

_enabled = bool(os.environ.get(PROFILE_ENV_VAR, ""))


def enable_profiling() -> None:
    """Record histograms (and spans, when tracing) for profiled blocks."""
    global _enabled
    _enabled = True


def disable_profiling() -> None:
    global _enabled
    _enabled = False


def profiling_enabled() -> bool:
    """True when :func:`profile` blocks record (explicitly or via tracing)."""
    return _enabled or trace.tracing_enabled()


class _ProfileBlock:
    """One enabled profiled block (allocated only while profiling)."""

    __slots__ = ("stage", "registry", "_span", "_wall0", "_cpu0")

    def __init__(self, stage: str, registry: metrics.MetricsRegistry):
        self.stage = stage
        self.registry = registry
        self._span = None

    def __enter__(self) -> "_ProfileBlock":
        tracer = trace.current_tracer()
        if tracer is not None:
            self._span = tracer.span(f"profile.{self.stage}")
            self._span.__enter__()
        self._cpu0 = time.thread_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.thread_time() - self._cpu0
        if self._span is not None:
            self._span.__exit__(exc_type, exc, tb)
        self.registry.histogram("profile_wall_seconds", stage=self.stage).observe(wall)
        self.registry.histogram("profile_cpu_seconds", stage=self.stage).observe(cpu)
        return False


def profile(stage: str, registry: metrics.MetricsRegistry | None = None):
    """Bracket a block with wall/CPU profiling (no-op while disabled)."""
    if not (_enabled or trace._active is not None):
        return trace.NOOP_SPAN
    return _ProfileBlock(stage, registry if registry is not None else metrics.REGISTRY)
