"""Nested tracing spans with a near-zero disabled fast path.

A :class:`Span` is one named, timed stage of work: wall-clock duration,
thread-CPU duration, free-form attributes, the number of
:class:`~repro.runtime.budget.ExecutionBudget` steps drawn while it was
open, and child spans.  A :class:`Tracer` collects span trees — one stack
of open spans *per thread* (service workers trace concurrently into the
same tracer), finished roots in one shared list.

Instrumentation sites call the module-level :func:`span`::

    with obs.span("xpath.image", budget=self.budget, backend="bitset") as sp:
        ...
        sp.set(rounds=rounds)

With no tracer installed (the default), :func:`span` returns the shared
:data:`NOOP_SPAN` singleton: the disabled cost is one global load, one
``is None`` test and the ``with`` protocol on a pre-built object — no
allocation, which is what lets the engines keep their instrumentation
compiled in permanently (the ``compare_backends.py`` gate holds the *en-
abled* overhead of the public-entry spans under a few percent, bounding
the disabled overhead from above).

Enabling is explicit and scoped (``with obs.tracing() as tracer: ...``),
process-wide (:func:`install` / :func:`uninstall`), or environmental:
``REPRO_TRACE=FILE`` installs a tracer at import and dumps the span-tree
JSON to ``FILE`` at interpreter exit (``REPRO_TRACE=1`` or ``stderr``
dumps to stderr).  The CLI ``--trace`` flag wraps the same machinery
around one command.

Span-tree *structure* — the nested tuple of names, ignoring timings and
attributes — is part of the engine contract: interchangeable backends
(sets vs bitset evaluation, table vs bitset checking, deque vs bitset TWA
runs) emit the same stage names at the same nesting, which the
differential-corpus suite asserts.  See DESIGN.md for the span taxonomy.
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = [
    "NOOP_SPAN",
    "TRACE_ENV_VAR",
    "Span",
    "Tracer",
    "current_tracer",
    "install",
    "reload_from_env",
    "span",
    "structure",
    "tracing",
    "tracing_enabled",
    "uninstall",
]

TRACE_ENV_VAR = "REPRO_TRACE"


class Span:
    """One named, timed stage of work (see module docstring).

    Spans are context managers; entering starts the clocks and pushes the
    span on its tracer's per-thread stack, exiting pops and freezes it.  A
    span closes exactly once — double entry or double exit raises, which
    the property suite relies on.
    """

    __slots__ = (
        "name",
        "attrs",
        "children",
        "start",
        "end",
        "cpu_start",
        "cpu_end",
        "budget_steps",
        "_tracer",
        "_budget",
        "_state",  # 0 = created, 1 = open, 2 = closed
    )

    def __init__(self, tracer: "Tracer", name: str, budget=None, attrs=None):
        self.name = name
        self.attrs = {} if attrs is None else attrs
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self.cpu_start = 0.0
        self.cpu_end = 0.0
        self.budget_steps = 0
        self._tracer = tracer
        self._budget = budget
        self._state = 0

    # -- attributes --------------------------------------------------------

    def set(self, **attrs) -> "Span":
        """Attach attributes (chainable; the no-op span accepts and drops)."""
        self.attrs.update(attrs)
        return self

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "Span":
        if self._state != 0:
            raise RuntimeError(f"span {self.name!r} entered twice")
        self._state = 1
        tracer = self._tracer
        stack = tracer._stack()
        if stack:
            stack[-1].children.append(self)
        stack.append(self)
        if self._budget is not None:
            self.budget_steps = self._budget.steps
        self.cpu_start = tracer.cpu_clock()
        self.start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(error=exc)
        return False

    def close(self, error: BaseException | None = None) -> None:
        """Freeze the span (normally via the ``with`` protocol)."""
        if self._state != 1:
            raise RuntimeError(
                f"span {self.name!r} closed while not open (state {self._state})"
            )
        tracer = self._tracer
        self.end = tracer.clock()
        self.cpu_end = tracer.cpu_clock()
        if self._budget is not None:
            self.budget_steps = self._budget.steps - self.budget_steps
        if error is not None:
            self.attrs.setdefault("error", type(error).__name__)
        self._state = 2
        stack = tracer._stack()
        if not stack or stack[-1] is not self:
            raise RuntimeError(f"span {self.name!r} closed out of order")
        stack.pop()
        if not stack:
            tracer._add_root(self)

    # -- inspection --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._state == 2

    @property
    def wall(self) -> float:
        """Wall-clock seconds the span was open."""
        return self.end - self.start

    @property
    def cpu(self) -> float:
        """Thread-CPU seconds the span was open."""
        return self.cpu_end - self.cpu_start

    def to_json(self) -> dict:
        """A JSON-safe nested rendering (what ``--trace`` emits)."""
        payload = {
            "name": self.name,
            "wall_s": round(self.wall, 9),
            "cpu_s": round(self.cpu, 9),
        }
        if self.budget_steps:
            payload["budget_steps"] = self.budget_steps
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_json() for child in self.children]
        return payload

    def structure(self, ignore: tuple[str, ...] = ()) -> tuple:
        """The nested name tuple ``(name, (child structures...))``.

        ``ignore`` drops spans whose name starts with any given prefix
        (their children are dropped too) — used to compare backend pairs on
        the shared stage taxonomy while allowing backend-private detail.
        """
        kids = tuple(
            child.structure(ignore)
            for child in self.children
            if not child.name.startswith(ignore)
        )
        return (self.name, kids)

    def walk(self):
        """Yield this span and every descendant, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = {0: "created", 1: "open", 2: "closed"}[self._state]
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class _NoopSpan:
    """The shared disabled-path span: enters, exits, drops attributes."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> "_NoopSpan":
        return self


#: The singleton returned by :func:`span` when no tracer is installed.
NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects span trees from any number of threads (see module docstring)."""

    def __init__(self, clock=time.perf_counter, cpu_clock=time.thread_time):
        self.clock = clock
        self.cpu_clock = cpu_clock
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    # -- span production ---------------------------------------------------

    def span(self, name: str, budget=None, **attrs) -> Span:
        """A new (not yet entered) span; use as a context manager."""
        return Span(self, name, budget, attrs or None)

    def record(self, name: str, *, wall: float, budget_steps: int = 0, **attrs) -> Span:
        """Append an already-finished span of known duration.

        For stages whose start and end happen on different threads (the
        service's queue wait: admission stamps the clock, a worker observes
        the dequeue) a context manager cannot bracket the work; ``record``
        attaches a closed span of duration ``wall`` under the calling
        thread's currently open span (or as a root).
        """
        now = self.clock()
        span_ = Span(self, name, None, attrs or None)
        span_.start = now - wall
        span_.end = now
        span_.budget_steps = budget_steps
        span_._state = 2
        stack = self._stack()
        if stack:
            stack[-1].children.append(span_)
        else:
            self._add_root(span_)
        return span_

    # -- internals ---------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _add_root(self, span_: Span) -> None:
        with self._lock:
            self._roots.append(span_)

    # -- inspection --------------------------------------------------------

    def roots(self) -> list[Span]:
        """Snapshot of the finished root spans (across all threads)."""
        with self._lock:
            return list(self._roots)

    def open_depth(self) -> int:
        """How many spans the *calling thread* currently has open."""
        return len(self._stack())

    def to_json(self) -> dict:
        """The whole trace as one JSON-safe object."""
        return {
            "version": "repro-trace/1",
            "spans": [root.to_json() for root in self.roots()],
        }

    def structure(self, ignore: tuple[str, ...] = ()) -> tuple:
        """Structures of every root (the differential-corpus currency)."""
        return structure(self.roots(), ignore)


def structure(spans, ignore: tuple[str, ...] = ()) -> tuple:
    """Structure of an iterable of spans (module-level convenience)."""
    return tuple(
        span_.structure(ignore)
        for span_ in spans
        if not span_.name.startswith(ignore)
    )


# ---------------------------------------------------------------------------
# The process-wide active tracer
# ---------------------------------------------------------------------------

#: The installed tracer, or None (the disabled fast path).
_active: Tracer | None = None


def span(name: str, budget=None, **attrs):
    """The instrumentation entry point engines call (see module docstring)."""
    tracer = _active
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, budget=budget, **attrs)


def current_tracer() -> Tracer | None:
    """The installed tracer, or None when tracing is disabled."""
    return _active


def tracing_enabled() -> bool:
    return _active is not None


def install(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (a fresh one by default) process-wide."""
    global _active
    if tracer is None:
        tracer = Tracer()
    _active = tracer
    return tracer


def uninstall() -> None:
    """Disable tracing (the installed tracer keeps its collected spans)."""
    global _active
    _active = None


class tracing:
    """Scoped tracing: ``with obs.tracing() as tracer: ...``.

    Installs the given (or a fresh) tracer on entry and restores the
    previously active tracer on exit — nestable, and safe around code that
    is already being traced.
    """

    def __init__(self, tracer: Tracer | None = None):
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        global _active
        self._previous = _active
        _active = self.tracer
        return self.tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _active = self._previous
        return False


def _dump_at_exit(destination: str) -> None:  # pragma: no cover - atexit path
    tracer = _active
    if tracer is None:
        return
    text = json.dumps(tracer.to_json(), indent=2)
    if destination in ("1", "true", "stderr"):
        import sys

        print(text, file=sys.stderr)
    else:
        with open(destination, "w") as handle:
            handle.write(text + "\n")


def reload_from_env(value: str | None = None) -> Tracer | None:
    """(Re)install a tracer from ``REPRO_TRACE`` (or an explicit value).

    An empty/unset variable is a no-op (call :func:`uninstall` to disable);
    any other value installs a fresh tracer and, when called at import
    time, registers an at-exit JSON dump to the named file (``1`` /
    ``true`` / ``stderr`` dump to stderr).
    """
    spec = os.environ.get(TRACE_ENV_VAR, "") if value is None else value
    if not spec:
        return None
    return install(Tracer())


_env_spec = os.environ.get(TRACE_ENV_VAR, "")
if _env_spec:  # pragma: no cover - exercised via subprocess tests
    reload_from_env(_env_spec)
    import atexit

    atexit.register(_dump_at_exit, _env_spec)
