"""repro.obs — the zero-dependency observability layer.

Three cross-cutting capabilities, usable from every execution layer (the
XPath evaluators, the FO(MTC) checkers, the TWA runners, the runtime
governance machinery, and the query service) without any of them importing
each other:

* **tracing** (:mod:`repro.obs.trace`) — a :class:`Tracer` producing nested
  :class:`Span` trees (name, attributes, wall time, CPU time, budget steps
  drawn).  Engines call :func:`span` at well-defined stage boundaries; with
  no tracer installed the call returns a shared no-op context manager and
  costs a few attribute loads — nothing is allocated.  The ``REPRO_TRACE``
  environment variable (or the CLI ``--trace``) installs a process tracer.
* **metrics** (:mod:`repro.obs.metrics`) — a process-wide
  :class:`MetricsRegistry` of counters, gauges and fixed-bucket histograms,
  exported as JSON (``registry.to_json()``) and as a Prometheus-style text
  dump (``registry.to_prometheus()``).  The service and runtime stats are
  views over instruments in this registry.
* **profiling** (:mod:`repro.obs.profile`) — :func:`profile` context
  manager recording wall/CPU histograms (and a span, when tracing) around
  any block; a no-op unless tracing or profiling is enabled.

Everything here is stdlib-only and imports nothing from the rest of
``repro`` — the observability layer sits below every other package.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    counter,
    diff_state,
    gauge,
    histogram,
    merge_states,
    merged_histogram,
    registry_from_state,
)
from .profile import (
    PROFILE_ENV_VAR,
    disable_profiling,
    enable_profiling,
    profile,
    profiling_enabled,
)
from .trace import (
    NOOP_SPAN,
    TRACE_ENV_VAR,
    Span,
    Tracer,
    current_tracer,
    install,
    reload_from_env,
    span,
    tracing,
    tracing_enabled,
    uninstall,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PROFILE_ENV_VAR",
    "REGISTRY",
    "Span",
    "TRACE_ENV_VAR",
    "Tracer",
    "counter",
    "current_tracer",
    "diff_state",
    "disable_profiling",
    "enable_profiling",
    "gauge",
    "histogram",
    "install",
    "merge_states",
    "merged_histogram",
    "registry_from_state",
    "profile",
    "profiling_enabled",
    "reload_from_env",
    "span",
    "tracing",
    "tracing_enabled",
    "uninstall",
]
