"""Recursive-descent parser for the compact XPath notation.

Grammar (EBNF)::

    path      := seq ( '|' seq )*
    seq       := postfix ( '/' postfix )*
    postfix   := atom ( '*' | '+' | '[' node ']' )*
    atom      := AXIS | '.' | '(' path ')' | '?' test_atom | '0'
    test_atom := NAME | STRING | '(' node ')'

    node      := conj ( 'or' conj )*
    conj      := unary ( 'and' unary )*
    unary     := 'not' unary | primary
    primary   := 'true' | 'false' | 'root' | 'leaf' | 'first' | 'last'
               | ('W' | 'within') '(' node ')'
               | '<' path '>'
               | '(' node ')'
               | AXIS-led path        (sugar for '<' path '>')
               | NAME | STRING        (label test)

Notes:

* Axis names double as path starters in node context, so ``child[b]`` inside
  a filter means ``<child[b]>``.  A *label* that collides with a keyword or
  axis name must be quoted: ``"child"`` is the label test.
* ``p+`` desugars to ``p/p*`` and ``p[φ]`` to ``p/?φ``; the pretty-printer
  re-sugars them (see :mod:`repro.xpath.unparse`).
* The token ``0`` (atom) denotes the empty relation ∅, used by the algebraic
  axioms.

Examples::

    parse_path("child*[title]/descendant")
    parse_node("not <child> and W(<descendant[?b]> or root)")
"""

from __future__ import annotations

from ..runtime.errors import DepthLimitError
from ..trees.axes import Axis
from . import ast
from .lexer import KEYWORDS, Token, XPathSyntaxError, tokenize

__all__ = ["DEFAULT_MAX_DEPTH", "parse_path", "parse_node", "XPathSyntaxError"]

#: Default bound on recursive grammar productions.  Each level of expression
#: nesting costs a handful of interpreter stack frames, so this trips a
#: structured :class:`DepthLimitError` (with the offending position) long
#: before CPython's own recursion limit turns the parse into a bare
#: ``RecursionError``.
DEFAULT_MAX_DEPTH = 200

_AXIS_BY_WORD = {
    "self": Axis.SELF,
    "child": Axis.CHILD,
    "parent": Axis.PARENT,
    "left": Axis.LEFT,
    "right": Axis.RIGHT,
    "descendant": Axis.DESCENDANT,
    "ancestor": Axis.ANCESTOR,
    "following_sibling": Axis.FOLLOWING_SIBLING,
    "following-sibling": Axis.FOLLOWING_SIBLING,
    "preceding_sibling": Axis.PRECEDING_SIBLING,
    "preceding-sibling": Axis.PRECEDING_SIBLING,
    "descendant_or_self": Axis.DESCENDANT_OR_SELF,
    "descendant-or-self": Axis.DESCENDANT_OR_SELF,
    "ancestor_or_self": Axis.ANCESTOR_OR_SELF,
    "ancestor-or-self": Axis.ANCESTOR_OR_SELF,
    "following": Axis.FOLLOWING,
    "preceding": Axis.PRECEDING,
}

_NODE_CONSTANTS = {
    "true": ast.TRUE,
    "false": ast.FALSE,
    "root": ast.IS_ROOT,
    "leaf": ast.IS_LEAF,
    "first": ast.IS_FIRST,
    "last": ast.IS_LAST,
}


class _Parser:
    def __init__(self, text: str, max_depth: int = DEFAULT_MAX_DEPTH):
        self.tokens = list(tokenize(text))
        self.index = 0
        self.max_depth = max_depth
        self._depth = 0

    def _enter(self) -> None:
        self._depth += 1
        if self._depth > self.max_depth:
            raise DepthLimitError(
                "expression nesting exceeds the parser depth limit",
                self.current.position,
                self.max_depth,
            )

    # -- cursor helpers ----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    def accept_word(self, word: str) -> bool:
        if self.current.kind == "name" and self.current.value == word:
            self.advance()
            return True
        return False

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise XPathSyntaxError(
                f"expected {kind!r}, found {self.current.value or 'end of input'!r}",
                self.current.position,
            )
        return self.advance()

    def fail(self, message: str) -> XPathSyntaxError:
        return XPathSyntaxError(message, self.current.position)

    def at_end(self) -> bool:
        return self.current.kind == "end"

    # -- path grammar --------------------------------------------------------

    def parse_path(self) -> ast.PathExpr:
        self._enter()
        try:
            expr = self.parse_isect()
            while self.accept("|"):
                expr = ast.Union(expr, self.parse_isect())
            return expr
        finally:
            self._depth -= 1

    def parse_isect(self) -> ast.PathExpr:
        expr = self.parse_seq()
        while self.accept("&"):
            expr = ast.Intersect(expr, self.parse_seq())
        return expr

    def parse_seq(self) -> ast.PathExpr:
        expr = self.parse_postfix()
        while self.accept("/"):
            expr = ast.Seq(expr, self.parse_postfix())
        return expr

    def parse_postfix(self) -> ast.PathExpr:
        expr = self.parse_path_atom()
        while True:
            if self.accept("*"):
                expr = ast.Star(expr)
            elif self.accept("+"):
                expr = ast.plus(expr)
            elif self.accept("["):
                test = self.parse_node()
                self.expect("]")
                expr = ast.Seq(expr, ast.Check(test))
            else:
                return expr

    def parse_path_atom(self) -> ast.PathExpr:
        token = self.current
        if token.kind == "~":
            self._enter()
            try:
                self.advance()
                return ast.Complement(self.parse_path_atom())
            finally:
                self._depth -= 1
        if token.kind == ".":
            self.advance()
            return ast.SELF
        if token.kind == "(":
            self._enter()
            try:
                self.advance()
                expr = self.parse_path()
                self.expect(")")
                return expr
            finally:
                self._depth -= 1
        if token.kind == "?":
            self.advance()
            return ast.Check(self.parse_test_atom())
        if token.kind == "name":
            if token.value in _AXIS_BY_WORD:
                self.advance()
                return ast.Step(_AXIS_BY_WORD[token.value])
            if token.value == "0":
                self.advance()
                return ast.EmptyPath()
        raise self.fail(
            f"expected a path expression, found {token.value or 'end of input'!r}"
        )

    def parse_test_atom(self) -> ast.NodeExpr:
        if self.accept("("):
            test = self.parse_node()
            self.expect(")")
            return test
        token = self.current
        if token.kind == "string":
            self.advance()
            return ast.Label(token.value)
        if token.kind == "name" and token.value in _NODE_CONSTANTS:
            self.advance()
            return _NODE_CONSTANTS[token.value]
        if token.kind == "name" and token.value not in _AXIS_BY_WORD:
            self.advance()
            return ast.Label(token.value)
        raise self.fail("expected a label or parenthesized node expression after '?'")

    # -- node grammar ----------------------------------------------------------

    def parse_node(self) -> ast.NodeExpr:
        self._enter()
        try:
            expr = self.parse_conj()
            while self.accept_word("or"):
                expr = ast.Or(expr, self.parse_conj())
            return expr
        finally:
            self._depth -= 1

    def parse_conj(self) -> ast.NodeExpr:
        expr = self.parse_unary()
        while self.accept_word("and"):
            expr = ast.And(expr, self.parse_unary())
        return expr

    def parse_unary(self) -> ast.NodeExpr:
        if self.accept_word("not"):
            self._enter()
            try:
                return ast.Not(self.parse_unary())
            finally:
                self._depth -= 1
        return self.parse_primary()

    def parse_primary(self) -> ast.NodeExpr:
        token = self.current
        if token.kind == "<":
            self._enter()
            try:
                self.advance()
                path = self.parse_path()
                self.expect(">")
                return ast.Exists(path)
            finally:
                self._depth -= 1
        if token.kind == "(":
            self._enter()
            try:
                self.advance()
                expr = self.parse_node()
                self.expect(")")
                return expr
            finally:
                self._depth -= 1
        if token.kind in (".", "?"):
            # A path led by '.' or a test: sugar for <path>.
            return ast.Exists(self.parse_path())
        if token.kind == "string":
            self.advance()
            return ast.Label(token.value)
        if token.kind == "name":
            word = token.value
            if word in ("W", "within"):
                self.advance()
                self.expect("(")
                inner = self.parse_node()
                self.expect(")")
                return ast.Within(inner)
            if word in _NODE_CONSTANTS:
                self.advance()
                return _NODE_CONSTANTS[word]
            if word in _AXIS_BY_WORD:
                return ast.Exists(self.parse_path())
            if word not in KEYWORDS:
                self.advance()
                return ast.Label(word)
        raise self.fail(
            f"expected a node expression, found {token.value or 'end of input'!r}"
        )


def parse_path(text: str, max_depth: int = DEFAULT_MAX_DEPTH) -> ast.PathExpr:
    """Parse a path expression, e.g. ``"child*[b]/descendant | parent"``.

    Nesting beyond ``max_depth`` recursive productions raises
    :class:`~repro.runtime.errors.DepthLimitError` (a ``ValueError``) with
    the offending position, never a bare ``RecursionError``.
    """
    parser = _Parser(text, max_depth)
    expr = parser.parse_path()
    if not parser.at_end():
        raise parser.fail(f"unexpected trailing input {parser.current.value!r}")
    return expr


def parse_node(text: str, max_depth: int = DEFAULT_MAX_DEPTH) -> ast.NodeExpr:
    """Parse a node expression, e.g. ``"a and not <child[b]>"``."""
    parser = _Parser(text, max_depth)
    expr = parser.parse_node()
    if not parser.at_end():
        raise parser.fail(f"unexpected trailing input {parser.current.value!r}")
    return expr
