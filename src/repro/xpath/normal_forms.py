"""Normal forms from the axiomatization literature.

The completeness proofs for Core XPath axiomatizations (the ten
Cate–Litak–Marx line this paper builds on) work with two normal forms, both
of which are implemented — and property-tested for semantic preservation —
here:

* **Simple node expressions** (:func:`to_modal_form`): every node
  expression of Core XPath is equivalent to one built from labels, booleans
  and single-step diamonds ``⟨s[β]⟩`` only — the "isomorphic variants of
  modal formulas" that let completeness be inherited from modal logic.  The
  rewriting uses exactly the node axioms: NdAx2 (``⟨A|B⟩ = ⟨A⟩∨⟨B⟩``),
  NdAx3 (``⟨A/B⟩ = ⟨A[⟨B⟩]⟩``) and NdAx4 (``⟨?φ⟩ = φ``).

* **Sums of sum-free paths** (:func:`distribute_unions`): every path
  expression is a union of paths containing no top-level ``|`` (unions
  surviving only under stars and inside tests), via the distribution laws
  ISAx6.
"""

from __future__ import annotations

from ..trees.axes import CLOSURE_BASE, Axis
from . import ast

__all__ = [
    "to_modal_form",
    "is_simple_node",
    "distribute_unions",
    "NotCoreXPath",
]

_CLOSED_OF = {base: closed for closed, base in CLOSURE_BASE.items()}


class NotCoreXPath(ValueError):
    """Raised when a general (Regular XPath) star blocks the modal form."""


def to_modal_form(expr: ast.NodeExpr) -> ast.NodeExpr:
    """Rewrite a Core XPath node expression into simple (modal) form.

    The result uses only labels, ⊤, booleans, and diamonds of the shape
    ``⟨s[β]⟩`` with ``s`` a single axis step and ``β`` again simple.
    Raises :class:`NotCoreXPath` on general stars or the ``W`` operator.
    """
    if isinstance(expr, (ast.Label, ast.TrueNode)):
        return expr
    if isinstance(expr, ast.Not):
        return ast.Not(to_modal_form(expr.operand))
    if isinstance(expr, ast.And):
        return ast.And(to_modal_form(expr.left), to_modal_form(expr.right))
    if isinstance(expr, ast.Or):
        return ast.Or(to_modal_form(expr.left), to_modal_form(expr.right))
    if isinstance(expr, ast.Exists):
        return _modal_path(expr.path, ast.TRUE)
    if isinstance(expr, ast.Within):
        raise NotCoreXPath("the W operator has no Core XPath modal form")
    raise TypeError(f"unknown node expression {expr!r}")


def _diamond(axis: Axis, continuation: ast.NodeExpr) -> ast.NodeExpr:
    if isinstance(continuation, ast.TrueNode):
        return ast.Exists(ast.Step(axis))
    return ast.Exists(ast.filter_(ast.Step(axis), continuation))


def _modal_path(path: ast.PathExpr, continuation: ast.NodeExpr) -> ast.NodeExpr:
    """``⟨path[continuation]⟩`` as a simple node expression."""
    if isinstance(path, ast.Step):
        if path.axis is Axis.SELF:
            return continuation
        return _diamond(path.axis, continuation)
    if isinstance(path, ast.Seq):
        return _modal_path(path.left, _modal_path(path.right, continuation))
    if isinstance(path, ast.Union):
        return ast.Or(
            _modal_path(path.left, continuation),
            _modal_path(path.right, continuation),
        )
    if isinstance(path, ast.Check):
        return ast.And(to_modal_form(path.test), continuation)
    if isinstance(path, ast.EmptyPath):
        return ast.FALSE
    if isinstance(path, ast.Star):
        inner = path.path
        if isinstance(inner, ast.Step) and inner.axis in _CLOSED_OF:
            # s* = self | s⁺: ⟨s*[β]⟩ = β ∨ ⟨s⁺[β]⟩ with s⁺ a single
            # (transitive) axis step.
            return ast.Or(continuation, _diamond(_CLOSED_OF[inner.axis], continuation))
        if isinstance(inner, ast.Step) and inner.axis in CLOSURE_BASE:
            # (s⁺)* = self | s⁺ likewise.
            return ast.Or(continuation, _diamond(inner.axis, continuation))
        raise NotCoreXPath(
            f"general star over {inner} has no single-step modal form"
        )
    if isinstance(path, (ast.Intersect, ast.Complement)):
        raise NotCoreXPath(
            "the XPath 2.0 path operators have no Core XPath modal form"
        )
    raise TypeError(f"unknown path expression {path!r}")


def is_simple_node(expr: ast.NodeExpr) -> bool:
    """Is the expression in simple (modal) form?

    Grammar: ``β ::= p | ⊤ | ¬β | β∧β | β∨β | ⟨s⟩ | ⟨s[β]⟩`` for a single
    axis step ``s``.
    """
    if isinstance(expr, (ast.Label, ast.TrueNode)):
        return True
    if isinstance(expr, ast.Not):
        return is_simple_node(expr.operand)
    if isinstance(expr, (ast.And, ast.Or)):
        return is_simple_node(expr.left) and is_simple_node(expr.right)
    if isinstance(expr, ast.Exists):
        path = expr.path
        if isinstance(path, ast.Step):
            return True
        if (
            isinstance(path, ast.Seq)
            and isinstance(path.left, ast.Step)
            and isinstance(path.right, ast.Check)
        ):
            return is_simple_node(path.right.test)
        return False
    return False


def distribute_unions(path: ast.PathExpr) -> list[ast.PathExpr]:
    """The sum-of-sum-free normal form: members whose union equals ``path``.

    Unions are distributed out of compositions (ISAx6); unions *inside*
    stars and tests are left alone (they cannot be distributed soundly).
    """
    if isinstance(path, ast.Union):
        return distribute_unions(path.left) + distribute_unions(path.right)
    if isinstance(path, ast.Seq):
        return [
            ast.Seq(left, right)
            for left in distribute_unions(path.left)
            for right in distribute_unions(path.right)
        ]
    if isinstance(path, ast.EmptyPath):
        return []
    return [path]
