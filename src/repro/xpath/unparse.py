"""Pretty-printer: AST back to the compact notation.

Inverse of :mod:`repro.xpath.parser` up to desugaring: ``unparse`` re-sugars
``p / p*`` into ``p+`` and ``p / ?φ`` into ``p[φ]``, so
``parse(unparse(e))`` is semantically — and for parser output structurally —
the identity (tested by the round-trip property tests).
"""

from __future__ import annotations

from ..trees.axes import Axis
from . import ast

__all__ = ["unparse"]

_AXIS_WORD = {
    Axis.SELF: "self",
    Axis.CHILD: "child",
    Axis.PARENT: "parent",
    Axis.LEFT: "left",
    Axis.RIGHT: "right",
    Axis.DESCENDANT: "descendant",
    Axis.ANCESTOR: "ancestor",
    Axis.FOLLOWING_SIBLING: "following_sibling",
    Axis.PRECEDING_SIBLING: "preceding_sibling",
    Axis.DESCENDANT_OR_SELF: "descendant_or_self",
    Axis.ANCESTOR_OR_SELF: "ancestor_or_self",
    Axis.FOLLOWING: "following",
    Axis.PRECEDING: "preceding",
}

_KEYWORDISH = frozenset(_AXIS_WORD.values()) | frozenset(
    {"and", "or", "not", "true", "false", "root", "leaf", "first", "last", "W", "within", "0"}
)

# Precedence levels used to decide parenthesization.
_PATH_UNION, _PATH_ISECT, _PATH_SEQ, _PATH_POSTFIX = 0, 1, 2, 3
_NODE_OR, _NODE_AND, _NODE_UNARY = 0, 1, 2


def unparse(expr: "ast.PathExpr | ast.NodeExpr") -> str:
    """Render an expression in the compact concrete syntax."""
    if isinstance(expr, ast.PathExpr):
        return _path(expr, _PATH_UNION)
    if isinstance(expr, ast.NodeExpr):
        return _node(expr, _NODE_OR)
    raise TypeError(f"not an XPath expression: {expr!r}")


def _label_text(name: str) -> str:
    if name in _KEYWORDISH or not name or not all(
        c.isalnum() or c in "_-#@=" for c in name
    ) or name[0] in "-=":
        return f'"{name}"'
    return name


def _wrap(text: str, needed: bool) -> str:
    return f"({text})" if needed else text


def _path(expr: ast.PathExpr, level: int) -> str:
    if isinstance(expr, ast.Step):
        return _AXIS_WORD[expr.axis]
    if isinstance(expr, ast.EmptyPath):
        return "0"
    if isinstance(expr, ast.Check):
        return "?" + _check_body(expr.test)
    if isinstance(expr, ast.Star):
        return _wrap(_path(expr.path, _PATH_POSTFIX + 1) + "*", level > _PATH_POSTFIX)
    if isinstance(expr, ast.Union):
        text = f"{_path(expr.left, _PATH_UNION)} | {_path(expr.right, _PATH_ISECT)}"
        return _wrap(text, level > _PATH_UNION)
    if isinstance(expr, ast.Intersect):
        text = f"{_path(expr.left, _PATH_ISECT)} & {_path(expr.right, _PATH_SEQ)}"
        return _wrap(text, level > _PATH_ISECT)
    if isinstance(expr, ast.Complement):
        return "~" + _path(expr.path, _PATH_POSTFIX + 1)
    if isinstance(expr, ast.Seq):
        # Re-sugar p / p* as p+ and p / ?φ as p[φ].
        if isinstance(expr.right, ast.Star) and expr.right.path == expr.left:
            return _wrap(
                _path(expr.left, _PATH_POSTFIX + 1) + "+", level > _PATH_POSTFIX
            )
        if isinstance(expr.right, ast.Check):
            base = _path(expr.left, _PATH_POSTFIX)
            return _wrap(
                f"{base}[{_node(expr.right.test, _NODE_OR)}]", level > _PATH_POSTFIX
            )
        text = f"{_path(expr.left, _PATH_SEQ)}/{_path(expr.right, _PATH_POSTFIX)}"
        return _wrap(text, level > _PATH_SEQ)
    raise TypeError(f"unknown path expression: {expr!r}")


def _check_body(test: ast.NodeExpr) -> str:
    if isinstance(test, ast.Label):
        return _label_text(test.name)
    return f"({_node(test, _NODE_OR)})"


def _node(expr: ast.NodeExpr, level: int) -> str:
    if expr == ast.FALSE:
        return "false"
    if expr == ast.IS_ROOT:
        return "root"
    if expr == ast.IS_LEAF:
        return "leaf"
    if expr == ast.IS_FIRST:
        return "first"
    if expr == ast.IS_LAST:
        return "last"
    if isinstance(expr, ast.TrueNode):
        return "true"
    if isinstance(expr, ast.Label):
        return _label_text(expr.name)
    if isinstance(expr, ast.Exists):
        return f"<{_path(expr.path, _PATH_UNION)}>"
    if isinstance(expr, ast.Within):
        return f"W({_node(expr.test, _NODE_OR)})"
    if isinstance(expr, ast.Not):
        return "not " + _node(expr.operand, _NODE_UNARY)
    if isinstance(expr, ast.And):
        text = f"{_node(expr.left, _NODE_AND)} and {_node(expr.right, _NODE_UNARY)}"
        return _wrap(text, level > _NODE_AND)
    if isinstance(expr, ast.Or):
        text = f"{_node(expr.left, _NODE_OR)} or {_node(expr.right, _NODE_AND)}"
        return _wrap(text, level > _NODE_OR)
    raise TypeError(f"unknown node expression: {expr!r}")
