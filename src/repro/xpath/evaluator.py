"""The optimized query evaluation engines.

Core XPath was isolated by Gottlob, Koch and Pichler precisely because it
admits evaluation in time O(|Q| · |T|); this module realizes that style of
algorithm for the full Regular XPath(W) dialect, in two interchangeable
backends behind one front door::

    Evaluator(tree)                    # backend="sets" (the default)
    Evaluator(tree, backend="bitset")  # compiled plans over big-int bitmasks

Both backends share the same algorithmic skeleton:

* node expressions are evaluated bottom-up into node sets, one set per
  subexpression (memoized per evaluation scope, keyed *structurally* on the
  expression so syntactically equal subqueries share work);
* path expressions are never materialized as relations — only their *images*
  and *pre-images* of node sets are computed, with Kleene star as a BFS
  fixpoint (each star costs O(|edges|) per saturation rather than a
  quadratic closure);
* pre-images use the syntactic converse of the path (every axis has an
  inverse), so ``⟨p⟩`` costs one backward saturation from the universe;
* the ``W`` operator is evaluated by *scoped* navigation (clipping steps at
  the subtree boundary) instead of materializing subtrees.

The ``sets`` backend (:class:`SetEvaluator`, below) walks the AST with
``set[int]`` node sets and per-node axis generators.  The ``bitset`` backend
(:class:`repro.xpath.engine.BitsetEvaluator`) compiles the AST once into a
plan of closures over big-int bitmasks and evaluates whole axes as
shift-and-mask kernels; see :mod:`repro.xpath.engine` and DESIGN.md.  Both
are cross-validated against the denotational reference semantics
(:mod:`repro.xpath.reference`) — and against each other — by the
property-test suite.

Both backends evaluate the *canonical form* of each query
(:mod:`repro.xpath.optimizer`): public entry points canonicalize before
evaluating (the bitset backend equivalently through canonical plan-cache
aliasing), so syntactic variants of one query share memo entries and
compiled plans — and the two backends emit identical span structures for
any input, which the differential corpus asserts.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .. import obs
from ..runtime.budget import ExecutionBudget
from ..trees.axes import axis_steps, interval_axis_pairs, inverse_axis
from ..trees.tree import Tree
from . import ast
from .optimizer import canonicalize_node, canonicalize_path

__all__ = [
    "Evaluator",
    "SetEvaluator",
    "evaluate_nodes",
    "evaluate_path",
    "evaluate_pairs",
    "select",
    "converse",
]

#: The available evaluation backends (constructor ``backend=`` values).
BACKENDS = ("sets", "bitset")


def converse(expr: ast.PathExpr) -> ast.PathExpr:
    """The syntactic converse: ``[[converse(p)]] = [[p]]⁻¹``.

    Possible because every axis has an inverse axis; this is what makes
    pre-image computation (and hence ``⟨p⟩``) cheap.
    """
    if isinstance(expr, ast.Step):
        return ast.Step(inverse_axis(expr.axis))
    if isinstance(expr, ast.Seq):
        return ast.Seq(converse(expr.right), converse(expr.left))
    if isinstance(expr, ast.Union):
        return ast.Union(converse(expr.left), converse(expr.right))
    if isinstance(expr, ast.Star):
        return ast.Star(converse(expr.path))
    if isinstance(expr, (ast.Check, ast.EmptyPath)):
        return expr
    if isinstance(expr, ast.Intersect):
        return ast.Intersect(converse(expr.left), converse(expr.right))
    if isinstance(expr, ast.Complement):
        return ast.Complement(converse(expr.path))
    raise TypeError(f"unknown path expression: {expr!r}")


def _backend_class(name: str) -> type:
    if name == "sets":
        return SetEvaluator
    if name == "bitset":
        from .engine import BitsetEvaluator

        return BitsetEvaluator
    raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")


class Evaluator:
    """Evaluates Regular XPath(W) expressions on one tree.

    ``Evaluator(tree, backend=...)`` dispatches to the chosen backend
    implementation (a subclass); both share this public API.  An evaluator
    owns per-tree memo tables (node sets per ``(expression, scope)``), so
    reuse the same instance when issuing many queries against the same
    document.
    """

    #: Name of the backend an instance implements (set by subclasses).
    backend = ""

    def __new__(
        cls,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        if cls is Evaluator:
            return super().__new__(_backend_class(backend or "sets"))
        return super().__new__(cls)

    def __init__(
        self,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        if backend is not None and backend != self.backend:
            raise ValueError(
                f"{type(self).__name__} implements backend {self.backend!r}, "
                f"not {backend!r}"
            )
        self.tree = tree
        #: Optional resource envelope; hot loops checkpoint against it.
        self.budget = budget

    # -- public API (shared by both backends) ------------------------------

    def nodes(self, expr: ast.NodeExpr, scope: int | None = None) -> frozenset[int]:
        """The set of nodes satisfying ``expr`` (within ``scope`` if given)."""
        raise NotImplementedError

    def image(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None = None
    ) -> set[int]:
        """All nodes reachable from ``sources`` via ``expr``."""
        raise NotImplementedError

    def preimage(
        self, expr: ast.PathExpr, targets: Iterable[int], scope: int | None = None
    ) -> set[int]:
        """All nodes from which ``expr`` reaches into ``targets``."""
        return self.image(converse(expr), targets, scope)

    def pairs(self, expr: ast.PathExpr, scope: int | None = None) -> set[tuple[int, int]]:
        """The full relation denoted by ``expr``.

        Bare transitive axes (``descendant``, ``ancestor``, ``following``,
        ``preceding`` and the ``or_self`` closures) take an output-linear
        interval fast path; everything else falls back to one image
        computation per source node.
        """
        expr = canonicalize_path(expr)
        with obs.span("xpath.pairs", budget=self.budget, backend=self.backend):
            if isinstance(expr, ast.Step):
                fast = interval_axis_pairs(self.tree, expr.axis, scope)
                if fast is not None:
                    return fast
            return self._pairs_by_source(expr, scope)

    def holds_at(self, expr: ast.NodeExpr, node_id: int) -> bool:
        """Does ``expr`` hold at ``node_id`` (whole-tree scope)?"""
        with obs.span("xpath.holds_at", budget=self.budget, backend=self.backend):
            return node_id in self.nodes(expr)

    # -- shared internals ---------------------------------------------------

    def _universe(self, scope: int | None) -> range:
        return self.tree.node_ids if scope is None else self.tree.subtree_ids(scope)

    def _image_internal(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None
    ) -> set[int]:
        """Image computation without the public-entry span (subclass hook)."""
        return self.image(expr, sources, scope)

    def _pairs_by_source(
        self, expr: ast.PathExpr, scope: int | None
    ) -> set[tuple[int, int]]:
        budget = self.budget
        result: set[tuple[int, int]] = set()
        for n in self._universe(scope):
            if budget is not None:
                budget.tick()
            for m in self._image_internal(expr, (n,), scope):
                result.add((n, m))
        if budget is not None:
            budget.check_size(len(result), "pair relation")
        return result


class SetEvaluator(Evaluator):
    """The ``sets`` backend: AST-walking evaluation over ``set[int]``.

    Straightforward and allocation-heavy; kept both as the readable
    specification of the evaluation strategy and as a cross-check for the
    compiled bitset backend.
    """

    backend = "sets"

    def __init__(
        self,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        super().__init__(tree, backend, budget)
        # Memoized node sets, keyed structurally: AST nodes are frozen
        # dataclasses, so syntactically equal subexpressions (even distinct
        # objects) share one entry per scope.
        self._node_cache: dict[tuple[ast.NodeExpr, int | None], frozenset[int]] = {}

    # -- public API -------------------------------------------------------

    def nodes(self, expr: ast.NodeExpr, scope: int | None = None) -> frozenset[int]:
        expr = canonicalize_node(expr)
        with obs.span("xpath.nodes", budget=self.budget, backend=self.backend):
            return self._nodes(expr, scope)

    def image(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None = None
    ) -> set[int]:
        expr = canonicalize_path(expr)
        with obs.span("xpath.image", budget=self.budget, backend=self.backend):
            result = self._image(expr, set(sources), scope)
            if self.budget is not None:
                self.budget.check_size(len(result))
            return result

    # -- internals -------------------------------------------------------

    def _nodes(self, expr: ast.NodeExpr, scope: int | None) -> frozenset[int]:
        # The memoized recursion target: public ``nodes`` adds the span,
        # recursive evaluation re-enters here (no nested public spans, so
        # both backends emit the same span structure).
        key = (expr, scope)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        budget = self.budget
        if budget is not None:
            budget.tick()
        result = frozenset(self._node(expr, scope))
        if budget is not None:
            budget.check_size(len(result))
        self._node_cache[key] = result
        return result

    def _image_internal(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None
    ) -> set[int]:
        return self._image(expr, set(sources), scope)

    def _node(self, expr: ast.NodeExpr, scope: int | None) -> set[int]:
        tree = self.tree
        if isinstance(expr, ast.Label):
            return {n for n in self._universe(scope) if tree.labels[n] == expr.name}
        if isinstance(expr, ast.TrueNode):
            return set(self._universe(scope))
        if isinstance(expr, ast.Not):
            return set(self._universe(scope)) - self._nodes(expr.operand, scope)
        if isinstance(expr, ast.And):
            return set(self._nodes(expr.left, scope) & self._nodes(expr.right, scope))
        if isinstance(expr, ast.Or):
            return set(self._nodes(expr.left, scope) | self._nodes(expr.right, scope))
        if isinstance(expr, ast.Exists):
            universe = set(self._universe(scope))
            # The converse of a canonical path need not be canonical;
            # re-canonicalize so the walked structure matches the plan the
            # bitset backend compiles for the same ⟨p⟩ (span parity).
            return self._image(canonicalize_path(converse(expr.path)), universe, scope)
        if isinstance(expr, ast.Within):
            # n ⊨ W φ iff n ⊨ φ under scope n.  Each node gets its own scope.
            budget = self.budget
            result = set()
            for n in self._universe(scope):
                if budget is not None:
                    budget.tick()
                if n in self._nodes(expr.test, n):
                    result.add(n)
            return result
        raise TypeError(f"unknown node expression: {expr!r}")

    def _image(
        self, expr: ast.PathExpr, sources: set[int], scope: int | None
    ) -> set[int]:
        tree = self.tree
        if not sources:
            return set()
        if isinstance(expr, ast.Step):
            result: set[int] = set()
            for n in sources:
                result.update(axis_steps(tree, n, expr.axis, scope))
            return result
        if isinstance(expr, ast.Seq):
            return self._image(expr.right, self._image(expr.left, sources, scope), scope)
        if isinstance(expr, ast.Union):
            return self._image(expr.left, sources, scope) | self._image(
                expr.right, sources, scope
            )
        if isinstance(expr, ast.Star):
            return self._saturate(expr.path, sources, scope)
        if isinstance(expr, ast.Check):
            return sources & self._nodes(expr.test, scope)
        if isinstance(expr, ast.EmptyPath):
            return set()
        if isinstance(expr, ast.Intersect):
            # Relation intersection is per-source: image(p∩q, S) is NOT
            # image(p,S) ∩ image(q,S) when |S| > 1.
            budget = self.budget
            result = set()
            for n in sources:
                if budget is not None:
                    budget.tick()
                result |= self._image(expr.left, {n}, scope) & self._image(
                    expr.right, {n}, scope
                )
            return result
        if isinstance(expr, ast.Complement):
            budget = self.budget
            universe = set(self._universe(scope))
            result = set()
            for n in sources:
                if budget is not None:
                    budget.tick()
                result |= universe - self._image(expr.path, {n}, scope)
            return result
        raise TypeError(f"unknown path expression: {expr!r}")

    def _saturate(
        self, expr: ast.PathExpr, sources: set[int], scope: int | None
    ) -> set[int]:
        """BFS fixpoint for ``expr*``: the forward closure of ``sources``."""
        budget = self.budget
        with obs.span("xpath.star.sweep", budget=budget, backend=self.backend) as sweep:
            reached = set(sources)
            frontier = deque([sources])
            rounds = 0
            while frontier:
                if budget is not None:
                    budget.tick()
                rounds += 1
                batch = frontier.popleft()
                fresh = self._image(expr, batch, scope) - reached
                if fresh:
                    reached |= fresh
                    frontier.append(fresh)
            sweep.set(rounds=rounds, reached=len(reached))
        return reached


# ---------------------------------------------------------------------------
# Convenience one-shot functions
# ---------------------------------------------------------------------------


def evaluate_nodes(
    tree: Tree,
    expr: ast.NodeExpr,
    backend: str = "sets",
    budget: ExecutionBudget | None = None,
) -> frozenset[int]:
    """One-shot node-set evaluation on ``tree``."""
    return Evaluator(tree, backend=backend, budget=budget).nodes(expr)


def evaluate_path(
    tree: Tree,
    expr: ast.PathExpr,
    sources: Iterable[int],
    backend: str = "sets",
    budget: ExecutionBudget | None = None,
) -> set[int]:
    """One-shot image computation: nodes reachable from ``sources``."""
    return Evaluator(tree, backend=backend, budget=budget).image(expr, sources)


def evaluate_pairs(
    tree: Tree,
    expr: ast.PathExpr,
    backend: str = "sets",
    budget: ExecutionBudget | None = None,
) -> set[tuple[int, int]]:
    """One-shot full-relation evaluation (prefer images when possible)."""
    return Evaluator(tree, backend=backend, budget=budget).pairs(expr)


def select(
    tree: Tree,
    expr: ast.PathExpr,
    backend: str = "sets",
    budget: ExecutionBudget | None = None,
) -> set[int]:
    """XPath-style selection: nodes reachable from the *root* via ``expr``."""
    return Evaluator(tree, backend=backend, budget=budget).image(expr, {0})
