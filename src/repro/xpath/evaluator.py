"""The optimized query evaluation engine.

Core XPath was isolated by Gottlob, Koch and Pichler precisely because it
admits evaluation in time O(|Q| · |T|); this engine realizes that style of
algorithm for the full Regular XPath(W) dialect:

* node expressions are evaluated bottom-up into node sets, one set per
  subexpression (memoized per evaluation scope);
* path expressions are never materialized as relations — only their *images*
  and *pre-images* of node sets are computed, with Kleene star as a BFS
  fixpoint (each star costs O(|edges|) per saturation rather than a
  quadratic closure);
* pre-images use the syntactic converse of the path (every axis has an
  inverse), so ``⟨p⟩`` costs one backward saturation from the universe;
* the ``W`` operator is evaluated by *scoped* navigation (clipping steps at
  the subtree boundary) instead of materializing subtrees.

The engine is cross-validated against the denotational reference semantics
(:mod:`repro.xpath.reference`) by the property-test suite.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..trees.axes import axis_steps, inverse_axis
from ..trees.tree import Tree
from . import ast

__all__ = [
    "Evaluator",
    "evaluate_nodes",
    "evaluate_path",
    "evaluate_pairs",
    "select",
    "converse",
]


def converse(expr: ast.PathExpr) -> ast.PathExpr:
    """The syntactic converse: ``[[converse(p)]] = [[p]]⁻¹``.

    Possible because every axis has an inverse axis; this is what makes
    pre-image computation (and hence ``⟨p⟩``) cheap.
    """
    if isinstance(expr, ast.Step):
        return ast.Step(inverse_axis(expr.axis))
    if isinstance(expr, ast.Seq):
        return ast.Seq(converse(expr.right), converse(expr.left))
    if isinstance(expr, ast.Union):
        return ast.Union(converse(expr.left), converse(expr.right))
    if isinstance(expr, ast.Star):
        return ast.Star(converse(expr.path))
    if isinstance(expr, (ast.Check, ast.EmptyPath)):
        return expr
    if isinstance(expr, ast.Intersect):
        return ast.Intersect(converse(expr.left), converse(expr.right))
    if isinstance(expr, ast.Complement):
        return ast.Complement(converse(expr.path))
    raise TypeError(f"unknown path expression: {expr!r}")


class Evaluator:
    """Evaluates Regular XPath(W) expressions on one tree.

    An evaluator owns per-tree memo tables (node sets per ``(expression,
    scope)``), so reuse the same instance when issuing many queries against
    the same document.
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        self._node_cache: dict[tuple[int, int | None], frozenset[int]] = {}
        # Keep every memoized expression alive so ids stay unambiguous.
        self._pinned: dict[int, ast.NodeExpr] = {}

    # -- public API -------------------------------------------------------

    def nodes(self, expr: ast.NodeExpr, scope: int | None = None) -> frozenset[int]:
        """The set of nodes satisfying ``expr`` (within ``scope`` if given)."""
        key = (id(expr), scope)
        cached = self._node_cache.get(key)
        if cached is not None:
            return cached
        result = frozenset(self._node(expr, scope))
        self._node_cache[key] = result
        self._pinned[id(expr)] = expr
        return result

    def image(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None = None
    ) -> set[int]:
        """All nodes reachable from ``sources`` via ``expr``."""
        return self._image(expr, set(sources), scope)

    def preimage(
        self, expr: ast.PathExpr, targets: Iterable[int], scope: int | None = None
    ) -> set[int]:
        """All nodes from which ``expr`` reaches into ``targets``."""
        return self._image(converse(expr), set(targets), scope)

    def pairs(self, expr: ast.PathExpr, scope: int | None = None) -> set[tuple[int, int]]:
        """The full relation, via one image computation per source node."""
        universe = self._universe(scope)
        result: set[tuple[int, int]] = set()
        for n in universe:
            for m in self._image(expr, {n}, scope):
                result.add((n, m))
        return result

    def holds_at(self, expr: ast.NodeExpr, node_id: int) -> bool:
        """Does ``expr`` hold at ``node_id`` (whole-tree scope)?"""
        return node_id in self.nodes(expr)

    # -- internals -------------------------------------------------------

    def _universe(self, scope: int | None) -> range:
        return self.tree.node_ids if scope is None else self.tree.subtree_ids(scope)

    def _node(self, expr: ast.NodeExpr, scope: int | None) -> set[int]:
        tree = self.tree
        if isinstance(expr, ast.Label):
            return {n for n in self._universe(scope) if tree.labels[n] == expr.name}
        if isinstance(expr, ast.TrueNode):
            return set(self._universe(scope))
        if isinstance(expr, ast.Not):
            return set(self._universe(scope)) - self.nodes(expr.operand, scope)
        if isinstance(expr, ast.And):
            return set(self.nodes(expr.left, scope) & self.nodes(expr.right, scope))
        if isinstance(expr, ast.Or):
            return set(self.nodes(expr.left, scope) | self.nodes(expr.right, scope))
        if isinstance(expr, ast.Exists):
            universe = set(self._universe(scope))
            return self._image(converse(expr.path), universe, scope)
        if isinstance(expr, ast.Within):
            # n ⊨ W φ iff n ⊨ φ under scope n.  Each node gets its own scope.
            return {n for n in self._universe(scope) if n in self.nodes(expr.test, n)}
        raise TypeError(f"unknown node expression: {expr!r}")

    def _image(
        self, expr: ast.PathExpr, sources: set[int], scope: int | None
    ) -> set[int]:
        tree = self.tree
        if not sources:
            return set()
        if isinstance(expr, ast.Step):
            result: set[int] = set()
            for n in sources:
                result.update(axis_steps(tree, n, expr.axis, scope))
            return result
        if isinstance(expr, ast.Seq):
            return self._image(expr.right, self._image(expr.left, sources, scope), scope)
        if isinstance(expr, ast.Union):
            return self._image(expr.left, sources, scope) | self._image(
                expr.right, sources, scope
            )
        if isinstance(expr, ast.Star):
            return self._saturate(expr.path, sources, scope)
        if isinstance(expr, ast.Check):
            return sources & self.nodes(expr.test, scope)
        if isinstance(expr, ast.EmptyPath):
            return set()
        if isinstance(expr, ast.Intersect):
            # Relation intersection is per-source: image(p∩q, S) is NOT
            # image(p,S) ∩ image(q,S) when |S| > 1.
            result = set()
            for n in sources:
                result |= self._image(expr.left, {n}, scope) & self._image(
                    expr.right, {n}, scope
                )
            return result
        if isinstance(expr, ast.Complement):
            universe = set(self._universe(scope))
            result = set()
            for n in sources:
                result |= universe - self._image(expr.path, {n}, scope)
            return result
        raise TypeError(f"unknown path expression: {expr!r}")

    def _saturate(
        self, expr: ast.PathExpr, sources: set[int], scope: int | None
    ) -> set[int]:
        """BFS fixpoint for ``expr*``: the forward closure of ``sources``."""
        reached = set(sources)
        frontier = deque([sources])
        while frontier:
            batch = frontier.popleft()
            fresh = self._image(expr, batch, scope) - reached
            if fresh:
                reached |= fresh
                frontier.append(fresh)
        return reached


# ---------------------------------------------------------------------------
# Convenience one-shot functions
# ---------------------------------------------------------------------------


def evaluate_nodes(tree: Tree, expr: ast.NodeExpr) -> frozenset[int]:
    """One-shot node-set evaluation on ``tree``."""
    return Evaluator(tree).nodes(expr)


def evaluate_path(
    tree: Tree, expr: ast.PathExpr, sources: Iterable[int]
) -> set[int]:
    """One-shot image computation: nodes reachable from ``sources``."""
    return Evaluator(tree).image(expr, sources)


def evaluate_pairs(tree: Tree, expr: ast.PathExpr) -> set[tuple[int, int]]:
    """One-shot full-relation evaluation (prefer images when possible)."""
    return Evaluator(tree).pairs(expr)


def select(tree: Tree, expr: ast.PathExpr) -> set[int]:
    """XPath-style selection: nodes reachable from the *root* via ``expr``."""
    return Evaluator(tree).image(expr, {0})
