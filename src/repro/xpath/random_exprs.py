"""Random expression generators for property-based testing.

Generators are parameterized by dialect so each experiment can sample from
exactly the language it claims to cover (Core XPath for the FO translation,
Regular XPath(W) for the FO(MTC) translation, the downward fragment for the
nested-TWA compiler).  Sizes are controlled by a node budget rather than
depth, which keeps the size distribution flat.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..trees.axes import Axis
from . import ast
from .fragments import Dialect

__all__ = ["ExprSampler", "random_path", "random_node"]

_CORE_AXES = (
    Axis.SELF,
    Axis.CHILD,
    Axis.PARENT,
    Axis.LEFT,
    Axis.RIGHT,
    Axis.DESCENDANT,
    Axis.ANCESTOR,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
)

_DOWNWARD_AXES = (Axis.SELF, Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF)


class ExprSampler:
    """Samples random path/node expressions of a given dialect.

    >>> sampler = ExprSampler(alphabet=("a", "b"), rng=random.Random(0))
    >>> expr = sampler.path(budget=8)
    """

    def __init__(
        self,
        alphabet: Sequence[str] = ("a", "b"),
        rng: random.Random | None = None,
        dialect: Dialect = Dialect.REGULAR_W,
        downward_only: bool = False,
        path_booleans: bool = False,
    ):
        self.alphabet = tuple(alphabet)
        self.rng = rng or random.Random()
        self.dialect = dialect
        self.axes = _DOWNWARD_AXES if downward_only else _CORE_AXES
        self.downward_only = downward_only
        self.path_booleans = path_booleans and not downward_only

    # -- public sampling -----------------------------------------------------

    def path(self, budget: int = 10) -> ast.PathExpr:
        """A random path expression using about ``budget`` AST nodes."""
        return self._path(max(1, budget))

    def node(self, budget: int = 10) -> ast.NodeExpr:
        """A random node expression using about ``budget`` AST nodes."""
        return self._node(max(1, budget))

    # -- internals -------------------------------------------------------------

    def _split(self, budget: int) -> tuple[int, int]:
        left = self.rng.randint(1, max(1, budget - 1))
        return left, max(1, budget - left)

    def _path(self, budget: int) -> ast.PathExpr:
        rng = self.rng
        if budget <= 1:
            return ast.Step(rng.choice(self.axes))
        choices = ["seq", "seq", "union", "filter", "step"]
        if self.dialect is not Dialect.CORE:
            choices.append("star")
        if self.path_booleans:
            choices.extend(["intersect", "complement"])
        kind = rng.choice(choices)
        if kind == "step":
            return ast.Step(rng.choice(self.axes))
        if kind == "seq":
            lb, rb = self._split(budget - 1)
            return ast.Seq(self._path(lb), self._path(rb))
        if kind == "union":
            lb, rb = self._split(budget - 1)
            return ast.Union(self._path(lb), self._path(rb))
        if kind == "filter":
            lb, rb = self._split(budget - 2)
            return ast.Seq(self._path(lb), ast.Check(self._node(rb)))
        if kind == "intersect":
            lb, rb = self._split(budget - 1)
            return ast.Intersect(self._path(lb), self._path(rb))
        if kind == "complement":
            return ast.Complement(self._path(budget - 1))
        # star
        return ast.Star(self._path(budget - 1))

    def _node(self, budget: int) -> ast.NodeExpr:
        rng = self.rng
        if budget <= 1:
            return rng.choice(
                [ast.Label(rng.choice(self.alphabet)), ast.TRUE]
            )
        choices = ["label", "not", "and", "or", "exists", "exists"]
        if self.dialect is Dialect.REGULAR_W:
            choices.append("within")
        kind = rng.choice(choices)
        if kind == "label":
            return ast.Label(rng.choice(self.alphabet))
        if kind == "not":
            return ast.Not(self._node(budget - 1))
        if kind == "and":
            lb, rb = self._split(budget - 1)
            return ast.And(self._node(lb), self._node(rb))
        if kind == "or":
            lb, rb = self._split(budget - 1)
            return ast.Or(self._node(lb), self._node(rb))
        if kind == "exists":
            return ast.Exists(self._path(budget - 1))
        # within
        return ast.Within(self._node(budget - 1))


def random_path(
    budget: int = 10,
    alphabet: Sequence[str] = ("a", "b"),
    rng: random.Random | None = None,
    dialect: Dialect = Dialect.REGULAR_W,
) -> ast.PathExpr:
    """One-shot random path expression."""
    return ExprSampler(alphabet, rng, dialect).path(budget)


def random_node(
    budget: int = 10,
    alphabet: Sequence[str] = ("a", "b"),
    rng: random.Random | None = None,
    dialect: Dialect = Dialect.REGULAR_W,
) -> ast.NodeExpr:
    """One-shot random node expression."""
    return ExprSampler(alphabet, rng, dialect).node(budget)
