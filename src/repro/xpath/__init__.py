"""Core XPath / Regular XPath / Regular XPath(W): syntax and evaluation.

Quick tour::

    from repro.trees import parse_xml
    from repro.xpath import parse_path, select

    tree = parse_xml("<talk><speaker/><title><i/></title></talk>")
    select(tree, parse_path("descendant[i]"))   # node ids of <i> parents...

Public surface: the AST (:mod:`repro.xpath.ast`), the parser
(:func:`parse_path` / :func:`parse_node`), the pretty-printer
(:func:`unparse`), the two evaluators, the simplifier, fragment
classification, and random samplers for property testing.
"""

from . import ast
from .engine import BitsetEvaluator
from .evaluator import (
    BACKENDS,
    Evaluator,
    SetEvaluator,
    converse,
    evaluate_nodes,
    evaluate_pairs,
    evaluate_path,
    select,
)
from .fragments import (
    Dialect,
    axes_used,
    dialect,
    expression_size,
    filter_depth,
    is_conditional_xpath,
    is_core_xpath,
    is_downward,
    is_regular_xpath,
    star_height,
    uses_path_booleans,
    uses_within,
)
from .lexer import XPathSyntaxError
from .normal_forms import (
    NotCoreXPath,
    distribute_unions,
    is_simple_node,
    to_modal_form,
)
from .optimizer import (
    CostModel,
    QueryOptimizer,
    SemanticKeyer,
    canonical_key,
    canonicalize,
    canonicalize_node,
    canonicalize_path,
)
from .parser import parse_node, parse_path
from .random_exprs import ExprSampler, random_node, random_path
from .reference import node_set, path_pairs
from .rewrite import simplify, simplify_node
from .unparse import unparse

__all__ = [
    "BACKENDS",
    "BitsetEvaluator",
    "Dialect",
    "Evaluator",
    "SetEvaluator",
    "ExprSampler",
    "XPathSyntaxError",
    "ast",
    "axes_used",
    "converse",
    "dialect",
    "evaluate_nodes",
    "evaluate_pairs",
    "evaluate_path",
    "expression_size",
    "filter_depth",
    "is_conditional_xpath",
    "is_core_xpath",
    "is_downward",
    "is_regular_xpath",
    "NotCoreXPath",
    "CostModel",
    "QueryOptimizer",
    "SemanticKeyer",
    "canonical_key",
    "canonicalize",
    "canonicalize_node",
    "canonicalize_path",
    "distribute_unions",
    "is_simple_node",
    "node_set",
    "parse_node",
    "parse_path",
    "path_pairs",
    "random_node",
    "random_path",
    "select",
    "simplify",
    "simplify_node",
    "star_height",
    "to_modal_form",
    "unparse",
    "uses_path_booleans",
    "uses_within",
]
