"""Tokenizer for the compact XPath notation used throughout the literature.

The surface syntax follows the talk/paper notation rather than W3C XPath:
axes are written ``child``, ``parent``, ``left``, ``right`` (or as the arrows
``↓ ↑ ← →``), closure as ``*`` / ``+``, composition as ``/``, union as ``|``,
path intersection as ``&`` and complementation as ``~`` (the XPath 2.0
operators), filters as ``[φ]``, existential path tests as ``<p>``, and the
within operator as ``W(φ)``.  See :mod:`repro.xpath.parser` for the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..runtime.errors import ReproSyntaxError

__all__ = ["Token", "XPathSyntaxError", "tokenize", "KEYWORDS"]

#: Reserved words of the node-expression grammar.
KEYWORDS = frozenset(
    {
        "and",
        "or",
        "not",
        "true",
        "false",
        "root",
        "leaf",
        "first",
        "last",
        "W",
        "within",
    }
)

#: Words and arrows that begin a path expression.
AXIS_WORDS = frozenset(
    {
        "self",
        "child",
        "parent",
        "left",
        "right",
        "descendant",
        "ancestor",
        "following_sibling",
        "preceding_sibling",
        "following-sibling",
        "preceding-sibling",
        "descendant_or_self",
        "descendant-or-self",
        "ancestor_or_self",
        "ancestor-or-self",
        "following",
        "preceding",
    }
)

_ARROWS = {"↓": "child", "↑": "parent", "→": "right", "←": "left"}
_PUNCT = "/|*+[]()<>?.&~"


class XPathSyntaxError(ReproSyntaxError):
    """Raised on malformed query text."""


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``"name"`` (identifier), ``"string"`` (quoted label),
    a punctuation character, or ``"end"``.
    """

    kind: str
    value: str
    position: int


def tokenize(text: str) -> Iterator[Token]:
    """Yield the tokens of ``text``, ending with a single ``end`` token."""
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch in _ARROWS:
            yield Token("name", _ARROWS[ch], i)
            i += 1
        elif ch in _PUNCT:
            yield Token(ch, ch, i)
            i += 1
        elif ch in ("'", '"'):
            end = text.find(ch, i + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated quoted label", i)
            yield Token("string", text[i + 1 : end], i)
            i = end + 1
        elif ch.isalnum() or ch == "_" or ch == "#" or ch == "@":
            start = i
            i += 1
            while i < n and (text[i].isalnum() or text[i] in "_-#@="):
                i += 1
            yield Token("name", text[start:i], start)
        else:
            raise XPathSyntaxError(f"unexpected character {ch!r}", i)
    yield Token("end", "", n)
