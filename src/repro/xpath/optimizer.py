"""The cost-based adaptive query optimizer (canonical forms + backend choice).

The paper's central theme is that syntactically different formalisms denote
the *same* queries; this module exploits that operationally, in three layers:

* **Canonicalization** (:func:`canonicalize` / :func:`canonical_key`) —
  every query is driven through the sound rewrite system
  (:mod:`repro.xpath.rewrite`) interleaved with a deterministic *ordering*
  normalization of the commutative/associative operators (``|``, ``&`` on
  paths; ``and``/``or`` on node expressions), to a fixpoint.  Two
  syntactically different but equivalent-by-rewriting queries therefore
  share one canonical form — and hence one compiled plan and one result
  cache entry.  Every rule is semantics-preserving; the property suite
  re-verifies ``eval(q) == eval(canon(q))`` on random expression/tree
  pairs across both backends, and idempotence ``canon(canon(q)) == canon(q)``.

* **Semantic key collapsing** (:class:`SemanticKeyer`) — canonicalization
  is syntactic, so rewriting-inequivalent but semantically equal queries
  (the Fletcher/Hellings containment line) still get distinct keys.  For
  *downward* queries below a size bound, the keyer probes recent
  representatives with the exact decision procedure
  (:func:`repro.decision.exact_equivalent`) under a strict
  :class:`~repro.runtime.budget.ExecutionBudget`, over the alphabet of
  labels the two queries mention plus one fresh "other" label (unmentioned
  labels are indistinguishable from the fresh one, so equivalence over
  that alphabet transfers to every document).  A successful probe collapses
  the new query onto the representative's key; a budget trip or
  ineligibility just keeps the canonical key — collapsing is an
  optimization, never a soundness requirement.

* **Cost-based backend choice** (:class:`CostModel`) — instead of the
  static "bitset unless the breaker is open" rule, the model estimates
  per-query work on a given tree from :class:`~repro.trees.index.TreeIndex`
  statistics (node count, per-label mask popcount selectivity, axis
  fan-out class, star height) and blends the static estimate with the
  *observed* per-backend seconds-per-unit (an EWMA fed by the service
  after each fast-path run), picking ``sets`` vs ``bitset`` per
  (query, tree).  Choices are counted in
  ``optimizer_backend_choice_total{backend=...}``.

:class:`QueryOptimizer` is the facade the service layer uses: it owns one
keyer and one cost model and exposes ``prepare_node`` / ``prepare_path``
(canonical AST + semantic cache key) and ``choose`` / ``observe``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from functools import lru_cache

from .. import obs
from ..runtime.budget import ExecutionBudget
from ..runtime.errors import ReproError
from ..trees.axes import Axis
from ..trees.index import tree_index
from . import ast
from .fragments import is_downward, star_height
from .rewrite import simplify
from .unparse import unparse

__all__ = [
    "CostModel",
    "QueryOptimizer",
    "SemanticKeyer",
    "canonical_key",
    "canonicalize",
    "canonicalize_node",
    "canonicalize_path",
    "labels_used",
]

#: Fixpoint guard for the simplify/order interleaving; in practice the
#: composition stabilizes after two rounds (order is idempotent, simplify is
#: a fixpoint already), the cap only bounds pathological inputs.
_MAX_ROUNDS = 32


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------


def _sort_key(expr: "ast.PathExpr | ast.NodeExpr") -> tuple[int, str]:
    return (expr.size, unparse(expr))


def _flatten(expr, cls):
    if isinstance(expr, cls):
        yield from _flatten(expr.left, cls)
        yield from _flatten(expr.right, cls)
    else:
        yield expr


def _rebuild(members, cls):
    result = members[0]
    for member in members[1:]:
        result = cls(result, member)
    return result


def _ordered_chain(expr, cls, recurse):
    """Flatten an associative/commutative chain, order members, rebuild."""
    members = sorted(
        {recurse(member) for member in _flatten(expr, cls)}, key=_sort_key
    )
    return _rebuild(members, cls)


def _order_path(expr: ast.PathExpr) -> ast.PathExpr:
    if isinstance(expr, (ast.Step, ast.EmptyPath)):
        return expr
    if isinstance(expr, ast.Union):
        return _ordered_chain(expr, ast.Union, _order_path)
    if isinstance(expr, ast.Intersect):
        return _ordered_chain(expr, ast.Intersect, _order_path)
    if isinstance(expr, ast.Seq):
        return ast.Seq(_order_path(expr.left), _order_path(expr.right))
    if isinstance(expr, ast.Star):
        return ast.Star(_order_path(expr.path))
    if isinstance(expr, ast.Check):
        return ast.Check(_order_node(expr.test))
    if isinstance(expr, ast.Complement):
        return ast.Complement(_order_path(expr.path))
    raise TypeError(f"unknown path expression: {expr!r}")


def _order_node(expr: ast.NodeExpr) -> ast.NodeExpr:
    if isinstance(expr, (ast.Label, ast.TrueNode)):
        return expr
    if isinstance(expr, ast.And):
        return _ordered_chain(expr, ast.And, _order_node)
    if isinstance(expr, ast.Or):
        return _ordered_chain(expr, ast.Or, _order_node)
    if isinstance(expr, ast.Not):
        return ast.Not(_order_node(expr.operand))
    if isinstance(expr, ast.Exists):
        return ast.Exists(_order_path(expr.path))
    if isinstance(expr, ast.Within):
        return ast.Within(_order_node(expr.test))
    raise TypeError(f"unknown node expression: {expr!r}")


def _order(expr):
    if isinstance(expr, ast.PathExpr):
        return _order_path(expr)
    return _order_node(expr)


@lru_cache(maxsize=4096)
def canonicalize(
    expr: "ast.PathExpr | ast.NodeExpr",
) -> "ast.PathExpr | ast.NodeExpr":
    """The deterministic canonical form: simplify ∘ order, to a fixpoint.

    Idempotent and semantics-preserving (both property-tested); equivalent-
    by-rewriting variants map to the same AST.  Both evaluator backends
    canonicalize at their public entry points (the bitset backend through
    plan-cache aliasing), so this sits on the hot path; ASTs are frozen
    dataclasses, hence hashable, and the memo amortizes repeated queries.
    """
    for _ in range(_MAX_ROUNDS):
        ordered = _order(simplify(expr))
        if ordered == expr:
            return ordered
        expr = ordered
    return expr  # pragma: no cover - the cap is a pathological-input guard


def canonicalize_path(expr: ast.PathExpr) -> ast.PathExpr:
    """Type-narrowed :func:`canonicalize` for path expressions."""
    result = canonicalize(expr)
    assert isinstance(result, ast.PathExpr)
    return result


def canonicalize_node(expr: ast.NodeExpr) -> ast.NodeExpr:
    """Type-narrowed :func:`canonicalize` for node expressions."""
    result = canonicalize(expr)
    assert isinstance(result, ast.NodeExpr)
    return result


def canonical_key(expr: "ast.PathExpr | ast.NodeExpr") -> str:
    """A deterministic text key: sort prefix + unparse of the canonical form."""
    canon = canonicalize(expr)
    prefix = "N" if isinstance(canon, ast.NodeExpr) else "P"
    return f"{prefix}:{unparse(canon)}"


def labels_used(expr: "ast.PathExpr | ast.NodeExpr") -> frozenset[str]:
    """Every label name the expression tests."""
    return frozenset(
        sub.name for sub in expr.walk() if isinstance(sub, ast.Label)
    )


# ---------------------------------------------------------------------------
# Semantic key collapsing (bounded decision-procedure probes)
# ---------------------------------------------------------------------------


class SemanticKeyer:
    """Collapses equivalent-but-not-rewriting-equal queries onto one key.

    Keeps a bounded LRU of *representative* canonical forms per sort
    (node / path).  A new downward query below ``max_size`` is probed
    against up to ``max_probes`` recent representatives with the exact
    decision procedure under a per-probe :class:`ExecutionBudget`; on a
    successful equivalence the new query adopts the representative's key.
    Everything about the probe is best-effort: budget trips, oversize or
    non-downward queries simply keep their canonical key.
    """

    def __init__(
        self,
        *,
        max_representatives: int = 64,
        max_size: int = 16,
        max_probes: int = 4,
        probe_timeout: float = 0.05,
        probe_steps: int = 20_000,
    ) -> None:
        self.max_representatives = max_representatives
        self.max_size = max_size
        self.max_probes = max_probes
        self.probe_timeout = probe_timeout
        self.probe_steps = probe_steps
        self._lock = threading.Lock()
        #: canonical key -> (canonical expr, final key) per sort.
        self._reps: dict[str, OrderedDict] = {"N": OrderedDict(), "P": OrderedDict()}
        self._collapsed = obs.counter("optimizer_semantic_collapse_total")
        self._probes = obs.counter("optimizer_equivalence_probe_total")

    def key_for(self, canon: "ast.PathExpr | ast.NodeExpr") -> str:
        """The semantic cache key for an already-canonical expression."""
        node_sort = isinstance(canon, ast.NodeExpr)
        sort = "N" if node_sort else "P"
        key = f"{sort}:{unparse(canon)}"
        with self._lock:
            reps = self._reps[sort]
            hit = reps.get(key)
            if hit is not None:
                reps.move_to_end(key)
                return hit[1]
            candidates = [item for item in reversed(reps.values())][: self.max_probes]
        if canon.size > self.max_size or not is_downward(canon):
            return key
        final = key
        for rep_expr, rep_key in candidates:
            if self._probe(canon, rep_expr, node_sort):
                self._collapsed.inc()
                final = rep_key
                break
        with self._lock:
            reps = self._reps[sort]
            if key not in reps:
                reps[key] = (canon, final)
                while len(reps) > self.max_representatives:
                    reps.popitem(last=False)
        return final

    def _probe(self, left, right, node_sort: bool) -> bool:
        """One bounded exact-equivalence probe; False on any trip or mismatch."""
        from ..decision import exact_equivalent, exact_path_equivalent

        if not is_downward(right):  # pragma: no cover - reps are downward
            return False
        # Unmentioned labels are indistinguishable: equivalence over the
        # mentioned labels plus one fresh symbol transfers to all documents.
        alphabet = tuple(sorted(labels_used(left) | labels_used(right))) + ("\x00other",)
        budget = ExecutionBudget(
            timeout=self.probe_timeout, max_steps=self.probe_steps
        )
        self._probes.inc()
        exact = exact_equivalent if node_sort else exact_path_equivalent
        try:
            with obs.span("optimizer.equivalence_probe", budget=budget):
                return exact(left, right, alphabet, budget) is None
        except ReproError:
            return False  # budget trip: keep the syntactic key


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------

#: Relative per-node fan-out weight of each axis for the row-wise backend
#: (how many nodes one step can touch, in units of "cheap one-step" = 1).
_HEAVY_AXES = frozenset(
    {
        Axis.DESCENDANT,
        Axis.ANCESTOR,
        Axis.DESCENDANT_OR_SELF,
        Axis.ANCESTOR_OR_SELF,
        Axis.FOLLOWING,
        Axis.PRECEDING,
        Axis.FOLLOWING_SIBLING,
        Axis.PRECEDING_SIBLING,
    }
)

#: Bits per big-int word: the bitset backend's axis kernels touch whole
#: masks, so its per-step cost scales with n / word size, not with the
#: intermediate node-set cardinality.
_WORD = 64.0


class CostModel:
    """Static per-(query, tree) work estimates, calibrated by observation.

    ``estimate`` produces abstract work units for each backend from tree
    and query features; ``choose`` converts units to predicted seconds
    using each backend's observed seconds-per-unit EWMA (seeded with
    priors measured on this code base) and picks the cheaper backend.
    ``observe`` feeds a finished run back in.
    """

    #: Prior seconds-per-unit (measured magnitudes; the EWMA refines them).
    _PRIOR_RATE = {"sets": 2e-6, "bitset": 2e-6}
    _EWMA_ALPHA = 0.2

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._rate = dict(self._PRIOR_RATE)
        self._seen = {"sets": 0, "bitset": 0}
        # Per-instance counts (for snapshots) alongside the process-wide
        # obs counters (for the metrics export).
        self._counts = {"sets": 0, "bitset": 0}
        self._choices = {
            backend: obs.counter("optimizer_backend_choice_total", backend=backend)
            for backend in ("sets", "bitset")
        }

    # -- features ----------------------------------------------------------

    @staticmethod
    def features(expr: "ast.PathExpr | ast.NodeExpr", index) -> dict:
        """Query/tree features driving the estimate (also exposed for tests)."""
        n = max(1, index.n)
        steps = 0
        heavy = 0
        stars = star_height(expr)
        exists_count = 0
        labels = []
        for sub in expr.walk():
            if isinstance(sub, ast.Step):
                steps += 1
                if sub.axis in _HEAVY_AXES:
                    heavy += 1
            elif isinstance(sub, ast.Exists):
                exists_count += 1
            elif isinstance(sub, ast.Label):
                labels.append(sub.name)
        selectivity = 1.0
        for name in labels:
            mask = index.label_masks.get(name, 0)
            selectivity = min(selectivity, mask.bit_count() / n)
        return {
            "n": n,
            "size": expr.size,
            "steps": steps,
            "heavy_steps": heavy,
            "star_height": stars,
            "exists": exists_count,
            "selectivity": selectivity,
        }

    @classmethod
    def estimate(cls, expr, index) -> dict:
        """Abstract work units per backend for ``expr`` on ``index``'s tree."""
        f = cls.features(expr, index)
        n = f["n"]
        # Sets backend: per-step cost follows the *intermediate cardinality*
        # (selective label tests shrink it) times the axis fan-out; stars
        # saturate level by level (≈ depth rounds over the frontier).
        touched = max(1.0, n * f["selectivity"])
        light = f["steps"] - f["heavy_steps"]
        sets_units = (
            f["size"]
            + light * touched
            + f["heavy_steps"] * touched * 4.0
            + f["star_height"] * touched * 8.0
            + f["exists"] * touched
        )
        # Bitset backend: whole-mask kernels cost n / word per step whatever
        # the cardinality, plus a small per-query compile/dispatch overhead.
        words = n / _WORD
        bitset_units = (
            f["size"] * 2.0
            + (f["steps"] + f["exists"]) * max(1.0, words)
            + f["star_height"] * max(1.0, words) * 4.0
            + 16.0  # plan dispatch overhead floor
        )
        return {"sets": sets_units, "bitset": bitset_units, "features": f}

    # -- adaptive choice ---------------------------------------------------

    def choose(self, expr, tree) -> str:
        """The cheaper backend for ``expr`` on ``tree`` (records the choice)."""
        with obs.span("optimizer.cost"):
            units = self.estimate(expr, tree_index(tree))
        with self._lock:
            rates = dict(self._rate)
        predicted = {
            backend: units[backend] * rates[backend]
            for backend in ("sets", "bitset")
        }
        backend = min(predicted, key=predicted.get)
        with self._lock:
            self._counts[backend] += 1
        self._choices[backend].inc()
        return backend

    def observe(self, backend: str, expr, tree, seconds: float) -> None:
        """Fold one observed fast-path run into the backend's rate EWMA."""
        if backend not in self._rate or seconds < 0:
            return
        units = self.estimate(expr, tree_index(tree))[backend]
        if units <= 0:
            return
        rate = seconds / units
        with self._lock:
            self._seen[backend] += 1
            alpha = (
                1.0 if self._seen[backend] == 1 else self._EWMA_ALPHA
            )
            self._rate[backend] += alpha * (rate - self._rate[backend])

    def rates(self) -> dict:
        """The current seconds-per-unit calibration (for stats/tests)."""
        with self._lock:
            return dict(self._rate)

    def choices(self) -> dict:
        """How often each backend was chosen by this instance."""
        with self._lock:
            return dict(self._counts)


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


class QueryOptimizer:
    """Canonicalization + semantic keys + adaptive backend choice, one handle.

    The service layer holds one instance per :class:`QueryService` (per
    shard in the sharded tier — tree-affine routing keeps keys shard-local)
    and calls:

    * :meth:`prepare_node` / :meth:`prepare_path` at request-prepare time —
      returns ``(canonical_expr, semantic_key)``;
    * :meth:`choose` at execution time, when the breaker routes fast;
    * :meth:`observe` after a successful fast run, to calibrate the model.
    """

    def __init__(
        self,
        *,
        semantic_probes: bool = True,
        keyer: SemanticKeyer | None = None,
        cost_model: CostModel | None = None,
    ) -> None:
        self.keyer = keyer if keyer is not None else (
            SemanticKeyer() if semantic_probes else None
        )
        self.cost = cost_model if cost_model is not None else CostModel()
        self._canon = obs.counter("optimizer_canonicalize_total")

    def _prepare(self, expr):
        with obs.span("optimizer.canonicalize"):
            canon = canonicalize(expr)
        self._canon.inc()
        if self.keyer is not None:
            key = self.keyer.key_for(canon)
        else:
            prefix = "N" if isinstance(canon, ast.NodeExpr) else "P"
            key = f"{prefix}:{unparse(canon)}"
        return canon, key

    def prepare(
        self, expr: "ast.PathExpr | ast.NodeExpr"
    ) -> "tuple[ast.PathExpr | ast.NodeExpr, str]":
        """Sort-agnostic prepare: ``(canonical expr, semantic cache key)``."""
        return self._prepare(expr)

    def prepare_node(self, expr: ast.NodeExpr) -> tuple[ast.NodeExpr, str]:
        canon, key = self._prepare(expr)
        assert isinstance(canon, ast.NodeExpr)
        return canon, key

    def prepare_path(self, expr: ast.PathExpr) -> tuple[ast.PathExpr, str]:
        canon, key = self._prepare(expr)
        assert isinstance(canon, ast.PathExpr)
        return canon, key

    def choose(self, expr, tree) -> str:
        return self.cost.choose(expr, tree)

    def observe(self, backend: str, expr, tree, seconds: float) -> None:
        self.cost.observe(backend, expr, tree, seconds)
