"""Dialect and fragment classification.

The paper's results are stated per dialect (Core XPath ⊂ Regular XPath ⊂
Regular XPath(W)) and the surrounding literature works with *axis-restricted*
fragments CoreXPath(A) for a set of axes A.  This module classifies an AST:

* :func:`dialect` — the smallest dialect of the ladder containing it;
* :func:`axes_used` — which primitive axes it navigates (derived axes are
  charged to their primitive base, e.g. ``descendant`` to ``child``);
* :func:`is_downward` — the fragment compiled to nested TWA (experiment T3);
* assorted size/complexity metrics used by the benchmarks.
"""

from __future__ import annotations

from enum import Enum

from ..trees.axes import CLOSURE_BASE, Axis
from . import ast

__all__ = [
    "Dialect",
    "dialect",
    "axes_used",
    "is_core_xpath",
    "is_regular_xpath",
    "uses_within",
    "is_downward",
    "star_height",
    "expression_size",
    "filter_depth",
]


class Dialect(Enum):
    """The dialect ladder studied by the paper, plus the XPath 2.0 core
    (path intersection/complementation) the literature contrasts it with."""

    CORE = "Core XPath"
    REGULAR = "Regular XPath"
    CORE2 = "Core XPath 2.0"
    REGULAR_W = "Regular XPath(W)"

    def __le__(self, other: "Dialect") -> bool:
        if self is other or self is Dialect.CORE or other is Dialect.REGULAR_W:
            return True
        return False  # REGULAR and CORE2 are incomparable


_PRIMITIVE_OF = {
    Axis.SELF: None,
    Axis.CHILD: Axis.CHILD,
    Axis.PARENT: Axis.PARENT,
    Axis.RIGHT: Axis.RIGHT,
    Axis.LEFT: Axis.LEFT,
    Axis.DESCENDANT: Axis.CHILD,
    Axis.DESCENDANT_OR_SELF: Axis.CHILD,
    Axis.ANCESTOR: Axis.PARENT,
    Axis.ANCESTOR_OR_SELF: Axis.PARENT,
    Axis.FOLLOWING_SIBLING: Axis.RIGHT,
    Axis.PRECEDING_SIBLING: Axis.LEFT,
    # `following`/`preceding` combine vertical and horizontal navigation.
    Axis.FOLLOWING: None,
    Axis.PRECEDING: None,
}


def axes_used(expr: "ast.PathExpr | ast.NodeExpr") -> frozenset[Axis]:
    """The primitive axes the expression navigates.

    ``following``/``preceding`` count as all four primitive axes (they are
    definable as ``ancestor_or_self/right/following_sibling*/
    descendant_or_self`` and its mirror).
    """
    found: set[Axis] = set()
    for sub in expr.walk():
        if isinstance(sub, ast.Step):
            if sub.axis in (Axis.FOLLOWING, Axis.PRECEDING):
                found.update((Axis.CHILD, Axis.PARENT, Axis.RIGHT, Axis.LEFT))
            else:
                primitive = _PRIMITIVE_OF[sub.axis]
                if primitive is not None:
                    found.add(primitive)
    return frozenset(found)


def uses_within(expr: "ast.PathExpr | ast.NodeExpr") -> bool:
    """Does the expression use the ``W`` operator?"""
    return any(isinstance(sub, ast.Within) for sub in expr.walk())


def uses_path_booleans(expr: "ast.PathExpr | ast.NodeExpr") -> bool:
    """Does the expression use the XPath 2.0 path operators ``&`` / ``~``?"""
    return any(
        isinstance(sub, (ast.Intersect, ast.Complement)) for sub in expr.walk()
    )


def _star_is_core(star: ast.Star) -> bool:
    """Core XPath only closes single primitive axis steps (``s+``/``s*``)."""
    return isinstance(star.path, ast.Step) and star.path.axis in CLOSURE_BASE.values()


def is_core_xpath(expr: "ast.PathExpr | ast.NodeExpr") -> bool:
    """Is the expression in Core XPath (no general star, no W, no 2.0 ops)?"""
    for sub in expr.walk():
        if isinstance(sub, (ast.Within, ast.Intersect, ast.Complement)):
            return False
        if isinstance(sub, ast.Star) and not _star_is_core(sub):
            return False
    return True


def is_regular_xpath(expr: "ast.PathExpr | ast.NodeExpr") -> bool:
    """Is the expression in Regular XPath (W-free)?"""
    return not uses_within(expr)


def dialect(expr: "ast.PathExpr | ast.NodeExpr") -> Dialect:
    """The smallest dialect of the ladder containing ``expr``.

    Expressions mixing 2.0 path booleans with general stars or ``W`` land
    in REGULAR_W (the top, which subsumes them all on trees by T2)."""
    if is_core_xpath(expr):
        return Dialect.CORE
    if uses_within(expr):
        return Dialect.REGULAR_W
    booleans = uses_path_booleans(expr)
    general_star = any(
        isinstance(sub, ast.Star) and not _star_is_core(sub) for sub in expr.walk()
    )
    if booleans and general_star:
        return Dialect.REGULAR_W
    if booleans:
        return Dialect.CORE2
    return Dialect.REGULAR


_DOWNWARD_AXES = (
    Axis.SELF,
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF,
)


def is_downward(expr: "ast.PathExpr | ast.NodeExpr") -> bool:
    """Is the expression in the *downward* fragment?

    Downward expressions navigate only ``self``/``child``/``descendant`` (and
    stars thereof) and may use ``W`` freely; their truth at a node depends
    only on the subtree below it.  This is the fragment our nested-TWA
    compiler and exact decision procedures accept (experiments T3/E1), which
    excludes the 2.0 path booleans.
    """
    for sub in expr.walk():
        if isinstance(sub, ast.Step) and sub.axis not in _DOWNWARD_AXES:
            return False
        if isinstance(sub, (ast.Intersect, ast.Complement)):
            return False
    return True


def star_height(expr: "ast.PathExpr | ast.NodeExpr") -> int:
    """Maximum nesting depth of ``*`` (derived transitive axes count as 1)."""
    best = 0
    for child in expr.children():
        best = max(best, star_height(child))
    if isinstance(expr, ast.Star):
        return best + 1
    if isinstance(expr, ast.Step) and expr.axis in _PRIMITIVE_OF and _PRIMITIVE_OF[
        expr.axis
    ] is not None and expr.axis not in (
        Axis.CHILD,
        Axis.PARENT,
        Axis.RIGHT,
        Axis.LEFT,
    ):
        return max(best, 1)
    if isinstance(expr, ast.Step) and expr.axis in (Axis.FOLLOWING, Axis.PRECEDING):
        return max(best, 1)
    return best


def expression_size(expr: "ast.PathExpr | ast.NodeExpr") -> int:
    """AST node count (same as ``expr.size``; exported for symmetry)."""
    return expr.size


def filter_depth(expr: "ast.PathExpr | ast.NodeExpr") -> int:
    """Maximum nesting depth of filters/tests (``Check``/``Exists``/``W``)."""
    best = 0
    for child in expr.children():
        best = max(best, filter_depth(child))
    if isinstance(expr, (ast.Check, ast.Exists, ast.Within)):
        return best + 1
    return best


def is_conditional_xpath(expr: "ast.PathExpr | ast.NodeExpr") -> bool:
    """Is the expression in Conditional XPath (Marx)?

    Conditional XPath extends Core XPath with *conditional steps*: closures
    of ``?α / s / ?β`` for a primitive axis ``s``.  It is exactly
    first-order complete on ordered trees, which is why our Core-XPath → FO
    translation accepts it (see
    :func:`repro.translations.xpath_to_logic.conditional_step`).
    """
    from ..translations.xpath_to_logic import conditional_step

    for sub in expr.walk():
        if isinstance(sub, (ast.Within, ast.Intersect, ast.Complement)):
            return False
        if isinstance(sub, ast.Star) and not _star_is_core(sub):
            if conditional_step(sub.path) is None:
                return False
    return True
