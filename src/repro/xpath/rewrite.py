"""Semantics-preserving simplification (the query-optimizer substrate).

The motivation — straight from the literature this paper belongs to — is that
equivalent queries can differ by orders of magnitude in evaluation cost, so
optimizers rewrite queries using *valid equivalences*.  This module applies a
curated set of such equivalences bottom-up until a fixpoint:

* semiring laws: associativity/commutativity/idempotence of ``|``, unit and
  annihilator laws for ``self`` and ``∅``, distribution-free flattening;
* test algebra: ``?⊤`` elimination, ``?φ/?ψ = ?(φ∧ψ)``, double negation,
  De Morgan simplifications, constant folding;
* star laws: ``(p*)* = p*``, ``self* = self``, ``∅* = self``,
  ``(self|p)* = p*``;
* derived-axis recognition: ``child/child* → descendant`` and friends.

Every rule is sound on all trees; the property-test suite re-verifies each
rewrite against the reference semantics on random expression/tree pairs
(experiment A1's running mate).
"""

from __future__ import annotations

from ..trees.axes import CLOSURE_BASE, Axis
from . import ast

__all__ = ["simplify", "simplify_node", "seq_factors", "union_members"]

_CLOSED_AXIS = {base: closed for closed, base in CLOSURE_BASE.items()}
_OR_SELF = {
    Axis.DESCENDANT: Axis.DESCENDANT_OR_SELF,
    Axis.ANCESTOR: Axis.ANCESTOR_OR_SELF,
}


def union_members(expr: ast.PathExpr):
    """Flatten nested unions into a list of members."""
    if isinstance(expr, ast.Union):
        yield from union_members(expr.left)
        yield from union_members(expr.right)
    else:
        yield expr


def seq_factors(expr: ast.PathExpr):
    """Flatten nested compositions into a list of factors."""
    if isinstance(expr, ast.Seq):
        yield from seq_factors(expr.left)
        yield from seq_factors(expr.right)
    else:
        yield expr


def _is_empty(expr: ast.PathExpr) -> bool:
    return isinstance(expr, ast.EmptyPath)


def _is_self(expr: ast.PathExpr) -> bool:
    return isinstance(expr, ast.Step) and expr.axis is Axis.SELF


def _rebuild_seq(factors: list[ast.PathExpr]) -> ast.PathExpr:
    if not factors:
        return ast.SELF
    result = factors[0]
    for factor in factors[1:]:
        result = ast.Seq(result, factor)
    return result


def _rebuild_union(members: list[ast.PathExpr]) -> ast.PathExpr:
    if not members:
        return ast.EmptyPath()
    result = members[0]
    for member in members[1:]:
        result = ast.Union(result, member)
    return result


def simplify(expr: "ast.PathExpr | ast.NodeExpr") -> "ast.PathExpr | ast.NodeExpr":
    """Simplify to a rewrite fixpoint (sound on all trees)."""
    while True:
        simplified = _simplify_once(expr)
        if simplified == expr:
            return simplified
        expr = simplified


def simplify_node(expr: ast.NodeExpr) -> ast.NodeExpr:
    """Type-narrowed :func:`simplify` for node expressions."""
    result = simplify(expr)
    assert isinstance(result, ast.NodeExpr)
    return result


def _simplify_once(expr: "ast.PathExpr | ast.NodeExpr") -> "ast.PathExpr | ast.NodeExpr":
    if isinstance(expr, ast.PathExpr):
        return _simplify_path(expr)
    return _simplify_node(expr)


# -- path rules --------------------------------------------------------------


def _simplify_path(expr: ast.PathExpr) -> ast.PathExpr:
    if isinstance(expr, (ast.Step, ast.EmptyPath)):
        return expr
    if isinstance(expr, ast.Check):
        test = _simplify_node(expr.test)
        if isinstance(test, ast.TrueNode):
            return ast.SELF  # ?⊤ = self
        if test == ast.FALSE:
            return ast.EmptyPath()
        return ast.Check(test)
    if isinstance(expr, ast.Seq):
        return _simplify_seq(expr)
    if isinstance(expr, ast.Union):
        return _simplify_union(expr)
    if isinstance(expr, ast.Star):
        return _simplify_star(expr)
    if isinstance(expr, ast.Intersect):
        left = _simplify_path(expr.left)
        right = _simplify_path(expr.right)
        if left == right:
            return left  # A & A = A
        if _is_empty(left) or _is_empty(right):
            return ast.EmptyPath()  # A & ∅ = ∅
        if isinstance(left, ast.Complement) and left.path == right:
            return ast.EmptyPath()  # ~A & A = ∅
        if isinstance(right, ast.Complement) and right.path == left:
            return ast.EmptyPath()
        return ast.Intersect(left, right)
    if isinstance(expr, ast.Complement):
        inner = _simplify_path(expr.path)
        if isinstance(inner, ast.Complement):
            return inner.path  # ~~A = A
        return ast.Complement(inner)
    raise TypeError(f"unknown path expression: {expr!r}")


def _simplify_seq(expr: ast.Seq) -> ast.PathExpr:
    factors = [_simplify_path(f) for f in seq_factors(expr)]
    if any(_is_empty(f) for f in factors):
        return ast.EmptyPath()  # A/∅ = ∅/A = ∅
    out: list[ast.PathExpr] = []
    for factor in factors:
        if _is_self(factor):
            continue  # self is the composition unit
        if out:
            merged = _merge_adjacent(out[-1], factor)
            if merged is not None:
                out[-1] = merged
                continue
        out.append(factor)
    # Merging may enable further merges (e.g. ?φ/?ψ/?χ); one extra pass.
    changed = True
    while changed and len(out) >= 2:
        changed = False
        for i in range(len(out) - 1):
            merged = _merge_adjacent(out[i], out[i + 1])
            if merged is not None:
                out[i : i + 2] = [merged]
                changed = True
                break
    return _rebuild_seq(out)


def _merge_adjacent(
    left: ast.PathExpr, right: ast.PathExpr
) -> ast.PathExpr | None:
    """Try to merge two adjacent composition factors."""
    # ?φ / ?ψ = ?(φ ∧ ψ)
    if isinstance(left, ast.Check) and isinstance(right, ast.Check):
        return _simplify_path(ast.Check(ast.And(left.test, right.test)))
    # p* / p* = p*  and  p / p* stays (that's p+, kept for display)
    if isinstance(left, ast.Star) and left == right:
        return left
    # child / child*  →  descendant ; child* / child → descendant
    base_axis = _step_axis(left)
    if base_axis in _CLOSED_AXIS and _is_star_of_axis(right, base_axis):
        return ast.Step(_CLOSED_AXIS[base_axis])
    base_axis = _step_axis(right)
    if base_axis in _CLOSED_AXIS and _is_star_of_axis(left, base_axis):
        return ast.Step(_CLOSED_AXIS[base_axis])
    # child / descendant_or_self → descendant (either order); likewise up.
    for one, other in ((left, right), (right, left)):
        base_axis = _step_axis(one)
        if base_axis in _CLOSED_AXIS:
            closed = _CLOSED_AXIS[base_axis]
            if closed in _OR_SELF and _step_axis(other) is _OR_SELF[closed]:
                return ast.Step(closed)
    # descendant_or_self / descendant_or_self is idempotent.
    axis = _step_axis(left)
    if axis is not None and axis is _step_axis(right) and axis in (
        Axis.DESCENDANT_OR_SELF,
        Axis.ANCESTOR_OR_SELF,
    ):
        return left
    return None


def _step_axis(expr: ast.PathExpr) -> Axis | None:
    return expr.axis if isinstance(expr, ast.Step) else None


def _is_star_of_axis(expr: ast.PathExpr, axis: Axis) -> bool:
    return (
        isinstance(expr, ast.Star)
        and isinstance(expr.path, ast.Step)
        and expr.path.axis is axis
    )


def _simplify_union(expr: ast.Union) -> ast.PathExpr:
    members: list[ast.PathExpr] = []
    seen: set[ast.PathExpr] = set()
    for member in union_members(expr):
        member = _simplify_path(member)
        if _is_empty(member) or member in seen:
            continue  # A|∅ = A ; A|A = A
        seen.add(member)
        members.append(member)
    # self | descendant = descendant_or_self (and the ancestor mirror).
    axes = {m.axis for m in members if isinstance(m, ast.Step)}
    if Axis.SELF in axes:
        for plain, or_self in _OR_SELF.items():
            if plain in axes:
                members = [
                    m
                    for m in members
                    if not (isinstance(m, ast.Step) and m.axis in (plain, Axis.SELF))
                ]
                members.append(ast.Step(or_self))
                break
    return _rebuild_union(members)


def _simplify_star(expr: ast.Star) -> ast.PathExpr:
    inner = _simplify_path(expr.path)
    if isinstance(inner, ast.Star):
        return inner  # (p*)* = p*
    if _is_self(inner) or _is_empty(inner) or isinstance(inner, ast.Check):
        return ast.SELF  # self* = ∅* = (?φ)* = self
    if isinstance(inner, ast.Union):
        # (self | p)* = p* ; (?φ | p)* = p* is NOT valid in general, only
        # test-shaped members that are subsets of identity can be dropped.
        members = [
            m
            for m in union_members(inner)
            if not (_is_self(m) or isinstance(m, ast.Check))
        ]
        if len(members) < len(list(union_members(inner))):
            return _simplify_path(ast.Star(_rebuild_union(members)))
    if isinstance(inner, ast.Step):
        if inner.axis in _CLOSED_AXIS:
            # child* = descendant_or_self; right* = self | following_sibling.
            closed = _CLOSED_AXIS[inner.axis]
            if closed in _OR_SELF:
                return ast.Step(_OR_SELF[closed])
            return ast.Union(ast.SELF, ast.Step(closed))
        if inner.axis in CLOSURE_BASE:
            # descendant* = descendant_or_self, etc.
            if inner.axis in _OR_SELF:
                return ast.Step(_OR_SELF[inner.axis])
            return ast.Union(ast.SELF, inner)
        if inner.axis in (Axis.DESCENDANT_OR_SELF, Axis.ANCESTOR_OR_SELF):
            return inner  # already reflexive-transitive
    return ast.Star(inner)


# -- node rules ----------------------------------------------------------------


def _simplify_node(expr: ast.NodeExpr) -> ast.NodeExpr:
    if isinstance(expr, (ast.Label, ast.TrueNode)):
        return expr
    if isinstance(expr, ast.Not):
        inner = _simplify_node(expr.operand)
        if isinstance(inner, ast.Not):
            return inner.operand  # ¬¬φ = φ
        return ast.Not(inner)
    if isinstance(expr, ast.And):
        left = _simplify_node(expr.left)
        right = _simplify_node(expr.right)
        if isinstance(left, ast.TrueNode):
            return right
        if isinstance(right, ast.TrueNode):
            return left
        if left == ast.FALSE or right == ast.FALSE:
            return ast.FALSE
        if left == right:
            return left
        if left == ast.Not(right) or right == ast.Not(left):
            return ast.FALSE
        return ast.And(left, right)
    if isinstance(expr, ast.Or):
        left = _simplify_node(expr.left)
        right = _simplify_node(expr.right)
        if left == ast.FALSE:
            return right
        if right == ast.FALSE:
            return left
        if isinstance(left, ast.TrueNode) or isinstance(right, ast.TrueNode):
            return ast.TRUE
        if left == right:
            return left
        if left == ast.Not(right) or right == ast.Not(left):
            return ast.TRUE
        return ast.Or(left, right)
    if isinstance(expr, ast.Exists):
        path = _simplify_path(expr.path)
        if isinstance(path, ast.EmptyPath):
            return ast.FALSE  # ⟨∅⟩ = ⊥
        if _is_self(path):
            return ast.TRUE  # ⟨self⟩ = ⊤
        if isinstance(path, ast.Check):
            return _simplify_node(path.test)  # ⟨?φ⟩ = φ
        if isinstance(path, ast.Union):
            # ⟨A|B⟩ = ⟨A⟩ ∨ ⟨B⟩ — flattening helps further simplification.
            members = list(union_members(path))
            result: ast.NodeExpr = ast.Exists(members[0])
            for member in members[1:]:
                result = ast.Or(result, ast.Exists(member))
            return _simplify_node(result)
        if isinstance(path, ast.Seq):
            # ⟨A/?φ⟩ where the trailing tests can be folded: ⟨A[φ]⟩ is fine
            # as-is, but ⟨(?φ)/A⟩ = φ ∧ ⟨A⟩.
            factors = list(seq_factors(path))
            if isinstance(factors[0], ast.Check):
                rest = _rebuild_seq(factors[1:])
                return _simplify_node(
                    ast.And(factors[0].test, ast.Exists(rest))
                )
        if isinstance(path, ast.Star):
            return ast.TRUE  # ⟨p*⟩ = ⊤ (reflexive)
        return ast.Exists(path)
    if isinstance(expr, ast.Within):
        inner = _simplify_node(expr.test)
        if isinstance(inner, ast.TrueNode):
            return ast.TRUE
        if inner == ast.FALSE:
            return ast.FALSE
        if isinstance(inner, ast.Label):
            return inner  # labels are local: W a = a
        if isinstance(inner, ast.Within):
            return inner  # W W φ = W φ
        if fragments_is_downward_cached(inner):
            return inner  # downward tests don't look outside the subtree
        return ast.Within(inner)
    raise TypeError(f"unknown node expression: {expr!r}")


def fragments_is_downward_cached(expr: ast.NodeExpr) -> bool:
    """``W φ = φ`` whenever φ is downward (sees only the subtree)."""
    from .fragments import is_downward

    return is_downward(expr)
