"""The bitset evaluation backend: compiled plans + vectorized axis kernels.

This package is the performance engine behind
``Evaluator(tree, backend="bitset")``:

* :mod:`repro.xpath.engine.bitset` — node sets as Python big-int bitmasks
  over preorder ids;
* :mod:`repro.trees.index` — per-tree precomputed indexes (interval
  tables, per-label masks, shift groups) and whole-set axis kernels,
  shared with the logic engine and the automata (re-exported here via the
  :mod:`repro.xpath.engine.kernels` shim);
* :mod:`repro.xpath.engine.plan` — one-time compilation of a parsed AST
  into a plan of closures, with structural memoization shared across
  queries on the same tree.

See DESIGN.md ("The bitset backend") for the representation and the
preorder-interval tricks, and ``benchmarks/compare_backends.py`` for the
measured speedups over the ``sets`` backend.
"""

from .bitset import (
    bit,
    from_ids,
    iter_bits,
    iter_bits_reversed,
    popcount,
    to_frozenset,
    to_ids,
    to_set,
)
from .kernels import Scope, TreeIndex, tree_index
from .plan import BitsetEvaluator, compile_node_plan, compile_path_plan

__all__ = [
    "BitsetEvaluator",
    "Scope",
    "TreeIndex",
    "bit",
    "compile_node_plan",
    "compile_path_plan",
    "from_ids",
    "iter_bits",
    "iter_bits_reversed",
    "popcount",
    "to_frozenset",
    "to_ids",
    "to_set",
    "tree_index",
]
