"""Node sets as Python big-int bitmasks over preorder ids.

The bitset backend represents every node set as one arbitrary-precision
integer: bit ``i`` is set iff node ``i`` (preorder / document-order rank)
is in the set.  Because CPython big ints are contiguous arrays of 30-bit
digits, the boolean algebra on node sets (``&``, ``|``, ``^``, ``~`` against
a universe mask) runs at memcpy-like speed — the per-element interpreter
overhead of ``set[int]`` disappears.

Two structural facts about preorder ids make whole *axes* cheap in this
representation (see :mod:`repro.xpath.engine.kernels`):

* the subtree of ``v`` is the contiguous id interval
  ``[v, v + subtree_size(v))``, so ``descendant``, ``following``,
  ``preceding`` and ``W``-scope clipping are interval masks;
* single-step axes have *shift structure*: a next sibling lives exactly
  ``subtree_size(v)`` positions to the left of ``v``'s bit, a child exactly
  ``child - parent`` positions — so one-step images are unions of
  ``(mask & group) << delta`` over the distinct deltas of the tree.

This module holds only the representation-level helpers; the tree-aware
kernels live in :mod:`repro.xpath.engine.kernels` and plan compilation in
:mod:`repro.xpath.engine.plan`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

__all__ = [
    "bit",
    "from_ids",
    "to_ids",
    "to_set",
    "to_frozenset",
    "iter_bits",
    "iter_bits_reversed",
    "popcount",
    "lowest_bit",
    "highest_bit",
]

_WORD = 0xFFFFFFFFFFFFFFFF  # chunk masks into 64-bit words when iterating


def bit(node_id: int) -> int:
    """The singleton mask {node_id}."""
    return 1 << node_id


def from_ids(ids: Iterable[int]) -> int:
    """Build a mask from an iterable of node ids."""
    mask = 0
    for i in ids:
        mask |= 1 << i
    return mask


def iter_bits(mask: int) -> Iterator[int]:
    """Yield set bit positions in increasing order.

    Chunks the big int into 64-bit words first: extracting the lowest set
    bit of a *small* int is O(1), whereas doing it directly on an n-bit int
    costs O(n/64) per step.
    """
    base = 0
    while mask:
        word = mask & _WORD
        while word:
            low = word & -word
            yield base + low.bit_length() - 1
            word ^= low
        mask >>= 64
        base += 64


def iter_bits_reversed(mask: int) -> Iterator[int]:
    """Yield set bit positions in decreasing order."""
    while mask:
        top = mask.bit_length() - 1
        yield top
        mask ^= 1 << top


def to_ids(mask: int) -> list[int]:
    """The sorted list of node ids in the mask."""
    return list(iter_bits(mask))


def to_set(mask: int) -> set[int]:
    """The mask as a mutable ``set`` (the sets backend's currency)."""
    return set(iter_bits(mask))


def to_frozenset(mask: int) -> frozenset[int]:
    """The mask as a ``frozenset`` (the public ``nodes()`` result type)."""
    return frozenset(iter_bits(mask))


def popcount(mask: int) -> int:
    """Number of nodes in the set."""
    return mask.bit_count()


def lowest_bit(mask: int) -> int:
    """Position of the lowest set bit (mask must be non-zero)."""
    return (mask & -mask).bit_length() - 1


def highest_bit(mask: int) -> int:
    """Position of the highest set bit (mask must be non-zero)."""
    return mask.bit_length() - 1
