"""Compatibility shim — the per-tree bitset index moved to
:mod:`repro.trees.index` so that the XPath plans, the bitset FO(MTC) model
checker (:mod:`repro.logic.engine`) and the bit-parallel automaton runs
(:mod:`repro.automata.twa`) all share one cached index per tree.
"""

from __future__ import annotations

from ...trees.index import Scope, TreeIndex, tree_index

__all__ = ["Scope", "TreeIndex", "tree_index"]
