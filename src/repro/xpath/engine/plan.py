"""Query-plan compilation for the bitset backend.

A parsed Regular XPath(W) AST is compiled *once per tree* into a plan: a
tree of closures mirroring the expression structure.

* a compiled **path** has signature ``plan(ev, mask, scope) -> mask`` — the
  image of the source mask under the path's relation, clipped to the scope;
* a compiled **node expression** has signature ``plan(ev, scope) -> mask``
  — the set of nodes satisfying it within the scope.

Plans are cached on the per-tree :class:`~repro.xpath.engine.kernels.TreeIndex`
keyed *structurally* on the expression (AST nodes are frozen dataclasses),
so repeated subexpressions — inside one query or across queries on the same
tree — compile to the *same* closure, and every evaluator on the tree
shares the compiled plans.  Node-set *results* are memoized per evaluator
(per ``(expression, scope-root)``), mirroring the sets backend.

Kleene star runs as batched frontier sweeps: each round applies the body
plan to the whole frontier mask at once and prunes it against the reached
mask, so a saturation costs one kernel sweep per BFS level instead of one
set operation per node.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ... import obs
from ...runtime import faults
from ...runtime.budget import ExecutionBudget
from ...trees.index import Scope, TreeIndex, tree_index
from ...trees.tree import Tree
from .. import ast
from ..evaluator import Evaluator, converse
from ..optimizer import canonicalize_node, canonicalize_path
from .bitset import from_ids, iter_bits, to_frozenset, to_set

__all__ = ["BitsetEvaluator", "compile_path_plan", "compile_node_plan"]

PathPlan = Callable[["BitsetEvaluator", int, Scope], int]
NodePlan = Callable[["BitsetEvaluator", Scope], int]

#: ``axis* = (closure ∪ self)``: the reflexive-transitive closure of each
#: axis is again an axis (reflexivity is restored by the caller's ``| S``).
_STAR_CLOSURES = {
    ast.Axis.SELF: ast.Axis.SELF,
    ast.Axis.CHILD: ast.Axis.DESCENDANT,
    ast.Axis.PARENT: ast.Axis.ANCESTOR,
    ast.Axis.RIGHT: ast.Axis.FOLLOWING_SIBLING,
    ast.Axis.LEFT: ast.Axis.PRECEDING_SIBLING,
    ast.Axis.DESCENDANT: ast.Axis.DESCENDANT,
    ast.Axis.ANCESTOR: ast.Axis.ANCESTOR,
    ast.Axis.DESCENDANT_OR_SELF: ast.Axis.DESCENDANT,
    ast.Axis.ANCESTOR_OR_SELF: ast.Axis.ANCESTOR,
    ast.Axis.FOLLOWING_SIBLING: ast.Axis.FOLLOWING_SIBLING,
    ast.Axis.PRECEDING_SIBLING: ast.Axis.PRECEDING_SIBLING,
    ast.Axis.FOLLOWING: ast.Axis.FOLLOWING,
    ast.Axis.PRECEDING: ast.Axis.PRECEDING,
}


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


#: Structural compilations actually performed (plan-cache misses that built
#: a new closure tree, canonical aliases excluded) — the regression tests
#: assert equivalent query variants stop duplicating compilation work.
_COMPILES = obs.counter("xpath_plan_compile_total")


def compile_path_plan(index: TreeIndex, expr: ast.PathExpr) -> PathPlan:
    """The compiled plan for ``expr`` on ``index``'s tree (cached).

    Plans are keyed on the *canonical form* (see
    :mod:`repro.xpath.optimizer`): a syntactic variant of an already-compiled
    query stores an alias to the canonical plan instead of compiling a
    duplicate, so equivalent-by-rewriting variants share one closure tree.
    """
    plan = index.path_plans.get(expr)
    if plan is None:
        canon = canonicalize_path(expr)
        if canon != expr:
            plan = compile_path_plan(index, canon)
        else:
            _COMPILES.inc()
            plan = _compile_path(index, expr)
        index.path_plans[expr] = plan
    return plan


def compile_node_plan(index: TreeIndex, expr: ast.NodeExpr) -> NodePlan:
    """The compiled plan for node expression ``expr`` (canonically cached)."""
    plan = index.node_plans.get(expr)
    if plan is None:
        canon = canonicalize_node(expr)
        if canon != expr:
            plan = compile_node_plan(index, canon)
        else:
            _COMPILES.inc()
            plan = _compile_node(index, expr)
        index.node_plans[expr] = plan
    return plan


def _compile_path(index: TreeIndex, expr: ast.PathExpr) -> PathPlan:
    if isinstance(expr, ast.Step):
        kernel = index.kernel(expr.axis)

        def run_step(ev, S: int, sc: Scope) -> int:
            return kernel(S, sc) if S else 0

        return run_step

    if isinstance(expr, ast.Seq):
        left = compile_path_plan(index, expr.left)
        right = compile_path_plan(index, expr.right)

        def run_seq(ev, S: int, sc: Scope) -> int:
            mid = left(ev, S, sc)
            return right(ev, mid, sc) if mid else 0

        return run_seq

    if isinstance(expr, ast.Union):
        left = compile_path_plan(index, expr.left)
        right = compile_path_plan(index, expr.right)
        return lambda ev, S, sc: left(ev, S, sc) | right(ev, S, sc)

    if isinstance(expr, ast.Star):
        # Strength reduction: the star of a bare axis is itself an axis
        # kernel (child* = descendant-or-self, right* = self ∪ following
        # siblings, ...) — no fixpoint iteration needed.
        if isinstance(expr.path, ast.Step):
            closed = _STAR_CLOSURES.get(expr.path.axis)
            if closed is not None:
                kernel = index.kernel(closed)

                def run_star_axis(ev, S: int, sc: Scope) -> int:
                    if not S:
                        return 0
                    # Same stage name as the general sweep so both star
                    # regimes (and the sets backend) share one taxonomy.
                    with obs.span(
                        "xpath.star.sweep", budget=ev.budget,
                        backend="bitset", mode="axis",
                    ):
                        return kernel(S, sc) | S

                return run_star_axis
        body = compile_path_plan(index, expr.path)

        def run_star(ev, S: int, sc: Scope) -> int:
            # Batched frontier sweep: whole-mask image per BFS level.
            faults.check("xpath.bitset.star")
            if not S:
                return 0
            budget = ev.budget
            with obs.span(
                "xpath.star.sweep", budget=budget, backend="bitset", mode="sweep"
            ) as sweep:
                reached = S
                frontier = S
                rounds = 0
                while frontier:
                    if budget is not None:
                        budget.tick()
                    rounds += 1
                    frontier = body(ev, frontier, sc) & ~reached
                    reached |= frontier
                sweep.set(rounds=rounds, reached=reached.bit_count())
            return reached

        return run_star

    if isinstance(expr, ast.Check):
        test = expr.test
        compile_node_plan(index, test)  # pre-compile; results memoized per ev

        def run_check(ev, S: int, sc: Scope) -> int:
            return S & ev._node_mask(test, sc) if S else 0

        return run_check

    if isinstance(expr, ast.EmptyPath):
        return lambda ev, S, sc: 0

    if isinstance(expr, ast.Intersect):
        left = compile_path_plan(index, expr.left)
        right = compile_path_plan(index, expr.right)

        def run_intersect(ev, S: int, sc: Scope) -> int:
            # Relation intersection is per-source: image(p∩q, S) is NOT
            # image(p,S) ∩ image(q,S) when |S| > 1.
            budget = ev.budget
            acc = 0
            for v in iter_bits(S):
                if budget is not None:
                    budget.tick()
                b = 1 << v
                l = left(ev, b, sc)
                if l:
                    acc |= l & right(ev, b, sc)
            return acc

        return run_intersect

    if isinstance(expr, ast.Complement):
        body = compile_path_plan(index, expr.path)

        def run_complement(ev, S: int, sc: Scope) -> int:
            budget = ev.budget
            acc = 0
            full = sc.mask
            for v in iter_bits(S):
                if budget is not None:
                    budget.tick()
                acc |= full & ~body(ev, 1 << v, sc)
                if acc == full:
                    break
            return acc

        return run_complement

    raise TypeError(f"unknown path expression: {expr!r}")


def _compile_node(index: TreeIndex, expr: ast.NodeExpr) -> NodePlan:
    if isinstance(expr, ast.Label):
        mask = index.label_masks.get(expr.name, 0)
        return lambda ev, sc: mask & sc.mask

    if isinstance(expr, ast.TrueNode):
        return lambda ev, sc: sc.mask

    if isinstance(expr, ast.Not):
        operand = expr.operand
        compile_node_plan(index, operand)
        return lambda ev, sc: sc.mask & ~ev._node_mask(operand, sc)

    if isinstance(expr, ast.And):
        left, right = expr.left, expr.right
        compile_node_plan(index, left)
        compile_node_plan(index, right)
        return lambda ev, sc: ev._node_mask(left, sc) & ev._node_mask(right, sc)

    if isinstance(expr, ast.Or):
        left, right = expr.left, expr.right
        compile_node_plan(index, left)
        compile_node_plan(index, right)
        return lambda ev, sc: ev._node_mask(left, sc) | ev._node_mask(right, sc)

    if isinstance(expr, ast.Exists):
        # ⟨p⟩ is the domain of p: one backward sweep from the universe.
        backward = compile_path_plan(index, converse(expr.path))
        return lambda ev, sc: backward(ev, sc.mask, sc)

    if isinstance(expr, ast.Within):
        test = expr.test
        compile_node_plan(index, test)

        def run_within(ev, sc: Scope) -> int:
            # n ⊨ W φ iff n ⊨ φ under scope n; per-node scoped evaluation,
            # with each (φ, scope-root) result memoized on the evaluator.
            budget = ev.budget
            acc = 0
            scope_of = ev.index.scope
            for v in iter_bits(sc.mask):
                if budget is not None:
                    budget.tick()
                if (1 << v) & ev._node_mask(test, scope_of(v)):
                    acc |= 1 << v
            return acc

        return run_within

    raise TypeError(f"unknown node expression: {expr!r}")


# ---------------------------------------------------------------------------
# The evaluator
# ---------------------------------------------------------------------------


class BitsetEvaluator(Evaluator):
    """The ``bitset`` backend: compiled plans over big-int bitmasks.

    Same public API and semantics as the ``sets`` backend (construct via
    ``Evaluator(tree, backend="bitset")``); see the package docstring for
    the representation and DESIGN.md for the preorder-interval tricks.
    """

    backend = "bitset"

    def __init__(
        self,
        tree: Tree,
        backend: str | None = None,
        budget: ExecutionBudget | None = None,
    ):
        super().__init__(tree, backend, budget)
        self.index = tree_index(tree)
        # Node-set results per (expression, scope root), as masks.
        self._node_masks: dict[tuple[ast.NodeExpr, int], int] = {}

    # -- public API -------------------------------------------------------

    def nodes(self, expr: ast.NodeExpr, scope: int | None = None) -> frozenset[int]:
        faults.check("xpath.bitset")
        with obs.span("xpath.nodes", budget=self.budget, backend=self.backend):
            mask = self._node_mask(expr, self.index.scope(scope))
            if self.budget is not None:
                self.budget.check_size(mask.bit_count())
            return to_frozenset(mask)

    def node_mask(self, expr: ast.NodeExpr, scope: int | None = None) -> int:
        """The satisfying set as a raw bitmask (bitset-backend extra)."""
        faults.check("xpath.bitset")
        with obs.span("xpath.nodes", budget=self.budget, backend=self.backend):
            return self._node_mask(expr, self.index.scope(scope))

    def image(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None = None
    ) -> set[int]:
        faults.check("xpath.bitset")
        with obs.span("xpath.image", budget=self.budget, backend=self.backend):
            sc = self.index.scope(scope)
            plan = compile_path_plan(self.index, expr)
            mask = plan(self, from_ids(sources) & sc.mask, sc)
            if self.budget is not None:
                self.budget.check_size(mask.bit_count())
            return to_set(mask)

    def image_mask(self, expr: ast.PathExpr, sources: int, scope: int | None = None) -> int:
        """Mask-in, mask-out image (bitset-backend extra)."""
        faults.check("xpath.bitset")
        with obs.span("xpath.image", budget=self.budget, backend=self.backend):
            sc = self.index.scope(scope)
            return compile_path_plan(self.index, expr)(self, sources & sc.mask, sc)

    def pairs(self, expr: ast.PathExpr, scope: int | None = None) -> set[tuple[int, int]]:
        faults.check("xpath.bitset")
        expr = canonicalize_path(expr)
        with obs.span("xpath.pairs", budget=self.budget, backend=self.backend):
            if isinstance(expr, ast.Step):
                from ...trees.axes import interval_axis_pairs

                fast = interval_axis_pairs(self.tree, expr.axis, scope)
                if fast is not None:
                    return fast
            # One compiled-plan sweep per source: the plan is compiled (and
            # its node sets memoized) once, shared by all |universe| sweeps.
            budget = self.budget
            sc = self.index.scope(scope)
            plan = compile_path_plan(self.index, expr)
            result: set[tuple[int, int]] = set()
            for v in iter_bits(sc.mask):
                if budget is not None:
                    budget.tick()
                img = plan(self, 1 << v, sc)
                if img:
                    result.update((v, m) for m in iter_bits(img))
            if budget is not None:
                budget.check_size(len(result), "pair relation")
            return result

    def _image_internal(
        self, expr: ast.PathExpr, sources: Iterable[int], scope: int | None
    ) -> set[int]:
        sc = self.index.scope(scope)
        plan = compile_path_plan(self.index, expr)
        return to_set(plan(self, from_ids(sources) & sc.mask, sc))

    # -- internals -------------------------------------------------------

    def _node_mask(self, expr: ast.NodeExpr, sc: Scope) -> int:
        key = (expr, sc.root)
        mask = self._node_masks.get(key)
        if mask is None:
            mask = compile_node_plan(self.index, expr)(self, sc)
            self._node_masks[key] = mask
        return mask
