"""Reference (denotational) semantics — the specification transcribed.

This module computes the semantics of path and node expressions *exactly* as
written in the paper's definitions: path expressions denote sets of pairs,
``[[A/B]]`` is relational composition, ``[[p*]]`` is the reflexive-transitive
closure of ``[[p]]``, ``[[⟨A⟩]]`` is the domain of ``[[A]]``, and ``[[W φ]]``
is evaluated in a *materialized copy* of the subtree.

It is deliberately naive (relations as Python sets of pairs, O(n²) space and
worse time) and deliberately independent from the optimized engine in
:mod:`repro.xpath.evaluator`: the property tests assert the two agree on
random expressions × trees, which is the project's core correctness anchor
(see DESIGN.md, "Two evaluators, one spec").
"""

from __future__ import annotations

from ..trees.axes import axis_pairs
from ..trees.tree import Tree
from . import ast

__all__ = ["path_pairs", "node_set", "compose", "transitive_reflexive_closure"]

Relation = set[tuple[int, int]]


def compose(left: Relation, right: Relation) -> Relation:
    """Relational composition ``left ; right``."""
    by_source: dict[int, set[int]] = {}
    for a, b in right:
        by_source.setdefault(a, set()).add(b)
    return {(a, c) for a, b in left for c in by_source.get(b, ())}


def transitive_reflexive_closure(relation: Relation, universe: range) -> Relation:
    """The reflexive-transitive closure over ``universe`` (naive fixpoint)."""
    closure: Relation = {(n, n) for n in universe}
    closure |= relation
    while True:
        extended = compose(closure, relation) | closure
        if extended == closure:
            return closure
        closure = extended


def path_pairs(tree: Tree, expr: ast.PathExpr) -> Relation:
    """The relation ``[[expr]]`` on the whole tree."""
    return _path(tree, expr)


def node_set(tree: Tree, expr: ast.NodeExpr) -> set[int]:
    """The node set ``[[expr]]`` on the whole tree."""
    return _node(tree, expr)


def _path(tree: Tree, expr: ast.PathExpr) -> Relation:
    if isinstance(expr, ast.Step):
        return axis_pairs(tree, expr.axis)
    if isinstance(expr, ast.Seq):
        return compose(_path(tree, expr.left), _path(tree, expr.right))
    if isinstance(expr, ast.Union):
        return _path(tree, expr.left) | _path(tree, expr.right)
    if isinstance(expr, ast.Star):
        return transitive_reflexive_closure(_path(tree, expr.path), tree.node_ids)
    if isinstance(expr, ast.Check):
        return {(n, n) for n in _node(tree, expr.test)}
    if isinstance(expr, ast.EmptyPath):
        return set()
    if isinstance(expr, ast.Intersect):
        return _path(tree, expr.left) & _path(tree, expr.right)
    if isinstance(expr, ast.Complement):
        universe = set(tree.node_ids)
        everything = {(n, m) for n in universe for m in universe}
        return everything - _path(tree, expr.path)
    raise TypeError(f"unknown path expression: {expr!r}")


def _node(tree: Tree, expr: ast.NodeExpr) -> set[int]:
    if isinstance(expr, ast.Label):
        return {n for n in tree.node_ids if tree.labels[n] == expr.name}
    if isinstance(expr, ast.TrueNode):
        return set(tree.node_ids)
    if isinstance(expr, ast.Not):
        return set(tree.node_ids) - _node(tree, expr.operand)
    if isinstance(expr, ast.And):
        return _node(tree, expr.left) & _node(tree, expr.right)
    if isinstance(expr, ast.Or):
        return _node(tree, expr.left) | _node(tree, expr.right)
    if isinstance(expr, ast.Exists):
        return {n for n, __ in _path(tree, expr.path)}
    if isinstance(expr, ast.Within):
        # The specification reading of W: evaluate in a standalone copy of
        # the subtree.  Node n satisfies W φ iff the *root* of subtree(n)
        # satisfies φ there.
        result: set[int] = set()
        for n in tree.node_ids:
            if 0 in _node(tree.subtree(n), expr.test):
                result.add(n)
        return result
    raise TypeError(f"unknown node expression: {expr!r}")
