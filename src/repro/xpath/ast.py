"""Abstract syntax of Core XPath, Regular XPath, and Regular XPath(W).

The dialect ladder reproduced from the paper (plus the XPath 2.0 path
booleans — intersection and complementation — that the surrounding
literature contrasts the 1.0 core with):

* **Core XPath** (Gottlob–Koch–Pichler): steps over the four primitive axes
  and their transitive closures, composition ``/``, union ``|``, filters
  ``[φ]``; node expressions are label tests, booleans, and ``⟨p⟩``.
* **Regular XPath**: additionally the Kleene star ``p*`` over *arbitrary*
  path expressions.
* **Regular XPath(W)**: additionally the *within* operator ``W φ`` — ``φ``
  evaluated at the current node *in the subtree rooted at that node*.

Two sorts of expressions, as in the paper:

* :class:`PathExpr` — denotes a binary relation over tree nodes;
* :class:`NodeExpr` — denotes a set of tree nodes.

ASTs are immutable (frozen dataclasses); they support a lightweight builder
algebra so queries can be written in Python directly::

    from repro.xpath import ast as x
    q = x.child[x.label("title")] / x.step(Axis.DESCENDANT)

Filters desugar to ``Seq(p, Check(φ))``; ``p+`` desugars to ``p / p*``.
The pretty-printer in :mod:`repro.xpath.unparse` re-sugars both.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..trees.axes import Axis

__all__ = [
    "PathExpr",
    "NodeExpr",
    "Step",
    "Seq",
    "Union",
    "Star",
    "Check",
    "EmptyPath",
    "Intersect",
    "Complement",
    "Label",
    "TrueNode",
    "Not",
    "And",
    "Or",
    "Exists",
    "Within",
    "Expr",
    "step",
    "label",
    "exists",
    "within",
    "plus",
    "filter_",
    "SELF",
    "CHILD",
    "PARENT",
    "LEFT",
    "RIGHT",
    "DESCENDANT",
    "ANCESTOR",
    "FOLLOWING_SIBLING",
    "PRECEDING_SIBLING",
    "TRUE",
    "FALSE",
    "IS_ROOT",
    "IS_LEAF",
    "IS_FIRST",
    "IS_LAST",
]


class _ExprBase:
    """Shared plumbing: cached structural size and subexpression walking."""

    __match_args__: tuple[str, ...] = ()

    def children(self) -> tuple["Expr", ...]:
        """Immediate subexpressions (paths and node expressions alike)."""
        raise NotImplementedError

    @property
    def size(self) -> int:
        """Number of AST nodes (a standard query-size measure)."""
        total = 1
        for child in self.children():
            total += child.size
        return total

    def walk(self):
        """Yield this expression and all subexpressions, preorder."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:
        from .unparse import unparse

        return unparse(self)


class PathExpr(_ExprBase):
    """A path expression: denotes a binary relation over nodes."""

    def __truediv__(self, other: "PathExpr") -> "PathExpr":
        return Seq(self, _require_path(other, "/"))

    def __or__(self, other: "PathExpr") -> "PathExpr":
        return Union(self, _require_path(other, "|"))

    def __and__(self, other: "PathExpr") -> "PathExpr":
        return Intersect(self, _require_path(other, "&"))

    def __invert__(self) -> "PathExpr":
        return Complement(self)

    def __getitem__(self, test: "NodeExpr | PathExpr") -> "PathExpr":
        return filter_(self, test)

    def star(self) -> "PathExpr":
        """Reflexive-transitive closure ``p*`` (Regular XPath)."""
        return Star(self)

    def plus(self) -> "PathExpr":
        """Transitive closure ``p+``, i.e. ``p / p*``."""
        return plus(self)

    def exists(self) -> "NodeExpr":
        """The node expression ``⟨p⟩``: some p-successor exists."""
        return Exists(self)


class NodeExpr(_ExprBase):
    """A node expression: denotes a set of nodes."""

    def __and__(self, other: "NodeExpr | PathExpr") -> "NodeExpr":
        return And(self, _coerce_node(other))

    def __or__(self, other: "NodeExpr | PathExpr") -> "NodeExpr":
        return Or(self, _coerce_node(other))

    def __invert__(self) -> "NodeExpr":
        return Not(self)


Expr = "PathExpr | NodeExpr"


def _require_path(value: object, op: str) -> PathExpr:
    if not isinstance(value, PathExpr):
        raise TypeError(f"operand of {op!r} must be a path expression, got {value!r}")
    return value


def _coerce_node(value: "NodeExpr | PathExpr") -> NodeExpr:
    """Allow paths where node expressions are expected, as ``⟨p⟩``."""
    if isinstance(value, PathExpr):
        return Exists(value)
    if not isinstance(value, NodeExpr):
        raise TypeError(f"expected a node expression, got {value!r}")
    return value


# ---------------------------------------------------------------------------
# Path expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Step(PathExpr):
    """One axis step; primitive axes are single edges, derived axes are
    built-in closures (``descendant`` = ``child+`` etc.)."""

    axis: Axis

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Seq(PathExpr):
    """Composition ``left / right``."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Union(PathExpr):
    """Union ``left | right``."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Star(PathExpr):
    """Reflexive-transitive closure ``path*`` (the Regular XPath operator)."""

    path: PathExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.path,)


@dataclass(frozen=True)
class Check(PathExpr):
    """The test relation ``?φ`` = {(n, n) | n ⊨ φ} (a filter step)."""

    test: NodeExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.test,)


@dataclass(frozen=True)
class EmptyPath(PathExpr):
    """The empty relation ∅ (the semiring zero)."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Intersect(PathExpr):
    """Path intersection ``left & right`` (Core XPath 2.0)."""

    left: PathExpr
    right: PathExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Complement(PathExpr):
    """Path complementation ``~path`` (Core XPath 2.0): all pairs not
    related by ``path``."""

    path: PathExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.path,)


# ---------------------------------------------------------------------------
# Node expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Label(NodeExpr):
    """Label test: nodes labelled ``name``."""

    name: str

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class TrueNode(NodeExpr):
    """The constant ⊤ (all nodes)."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Not(NodeExpr):
    operand: NodeExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.operand,)


@dataclass(frozen=True)
class And(NodeExpr):
    left: NodeExpr
    right: NodeExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Or(NodeExpr):
    left: NodeExpr
    right: NodeExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Exists(NodeExpr):
    """``⟨p⟩``: the domain of the relation denoted by ``p``."""

    path: PathExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.path,)


@dataclass(frozen=True)
class Within(NodeExpr):
    """The paper's ``W`` operator: ``test`` evaluated at the current node in
    the subtree rooted at that node (subtree relativisation)."""

    test: NodeExpr

    def children(self) -> tuple["Expr", ...]:
        return (self.test,)


# ---------------------------------------------------------------------------
# Builders and standard constants
# ---------------------------------------------------------------------------


def step(axis: Axis) -> Step:
    """An axis step."""
    return Step(axis)


def label(name: str) -> Label:
    """A label test node expression."""
    return Label(name)


def exists(path: PathExpr) -> Exists:
    """``⟨path⟩``."""
    return Exists(path)


def within(test: "NodeExpr | PathExpr") -> Within:
    """``W test`` (paths are coerced to ``⟨path⟩`` first)."""
    return Within(_coerce_node(test))


def plus(path: PathExpr) -> PathExpr:
    """Strict transitive closure ``path+`` = ``path / path*``."""
    return Seq(path, Star(path))


def filter_(path: PathExpr, test: "NodeExpr | PathExpr") -> PathExpr:
    """The filter ``path[test]`` = ``path / ?test``."""
    return Seq(path, Check(_coerce_node(test)))


SELF = Step(Axis.SELF)
CHILD = Step(Axis.CHILD)
PARENT = Step(Axis.PARENT)
LEFT = Step(Axis.LEFT)
RIGHT = Step(Axis.RIGHT)
DESCENDANT = Step(Axis.DESCENDANT)
ANCESTOR = Step(Axis.ANCESTOR)
FOLLOWING_SIBLING = Step(Axis.FOLLOWING_SIBLING)
PRECEDING_SIBLING = Step(Axis.PRECEDING_SIBLING)

TRUE = TrueNode()
FALSE = Not(TRUE)
IS_ROOT = Not(Exists(PARENT))
IS_LEAF = Not(Exists(CHILD))
IS_FIRST = Not(Exists(LEFT))
IS_LAST = Not(Exists(RIGHT))
