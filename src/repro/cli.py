"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``eval QUERY [FILE.xml]`` — evaluate a node query against an XML document
  (stdin if no file) and list the matching nodes;
* ``select PATH [FILE.xml]`` — select nodes reachable from the root via a
  path expression;
* ``translate QUERY`` — print the FO(MTC) rendering (T1) and, when the
  query is W-free and in the compositional fragment, the round-tripped
  Regular XPath (T2);
* ``equivalent Q1 Q2`` — compare two queries: exactly when both are
  downward, corpus-based otherwise;
* ``satisfiable QUERY`` — exact satisfiability for downward queries with a
  witness document, corpus-based search otherwise;
* ``check FORMULA [FILE.xml]`` — model-check an FO(MTC) formula against an
  XML document: truth for sentences, satisfying nodes/pairs for formulas
  with one/two free variables (``--backend table|bitset``);
* ``simplify QUERY`` — apply the sound rewrite system;
* ``classify QUERY`` — dialect, axes, fragment memberships;
* ``batch [FILE.jsonl]`` — run many requests through the concurrent query
  service: one JSON request object per input line (stdin if no file), one
  JSON result object per output line, in input order.  Documents come from
  repeatable ``--tree NAME=FILE.xml`` registrations or inline ``"xml"``
  request fields; ``--workers`` / ``--queue-limit`` / ``--retries`` /
  ``--breaker-threshold`` / ``--breaker-cooldown`` shape the pool, and
  ``--stats`` prints the aggregate counters to stderr as JSON.  Registered
  trees are *live*: a ``{"op": "mutate", "tree": NAME, "edit": {...}}``
  request applies a subtree insert/delete/relabel and publishes a new
  epoch — later reads in the batch see the edited document (an optional
  ``"min_epoch"`` field on reads asserts freshness).  ``--wal DIR`` makes
  those mutations *durable*: every registration and edit is appended to a
  write-ahead log before it is published, and a previous run's state is
  replayed from DIR before ``--tree`` registrations apply.  With
  ``--shards``, ``--max-restarts N`` arms the self-healing supervisor:
  crashed shard processes are respawned (at most N times per shard per
  rolling window) with full state resync, and their in-flight requests are
  re-dispatched instead of failing.  ``--store DIR`` attaches the
  disk-backed index store: registered trees are packed to compact RSTR
  files, cold trees mmap back in on first touch, and ``--resident-budget
  BYTES`` bounds the resident set with LRU eviction so a corpus much
  larger than memory stays serveable;
* ``store pack DIR --tree NAME=FILE.xml ...`` — pack XML documents into a
  store directory offline (the files ``batch --store`` serves from);
* ``store verify DIR [NAME]`` — check every section checksum of one or all
  stored trees and rebuild their indexes; corrupt files exit with code 3;
* ``recover DIR`` — validate and replay a write-ahead log directory
  offline: truncates a torn tail, folds the latest snapshot plus the log
  suffix into a registry, verifies every replayed tree against its
  recorded digest, and prints the per-tree epoch/size summary.

Observability (``eval`` / ``select`` / ``check`` / ``batch``):

* ``--trace [FILE]`` — run under a tracer and emit the span tree as JSON
  (``repro-trace/1``) to FILE, or to stderr when no FILE is given;
* ``--metrics [FILE]`` (``batch`` only) — after the batch drains, dump the
  process metrics registry as JSON (``repro-metrics/1``) to FILE or stderr.

Queries sort themselves: input parseable as a node expression is treated as
one, otherwise as a path expression.

Resource governance (``eval`` / ``select`` / ``check``, budgets also on
``equivalent`` / ``satisfiable``):

* ``--timeout SECONDS`` — wall-clock deadline for the evaluation;
* ``--max-steps N`` — cooperative step/fuel cap;
* ``--max-nodes N`` — result-cardinality cap;
* ``--fallback`` — retry a failed bitset run on the row-wise oracle backend;
* ``--inject-fault SITE`` — arm a named fault site (testing the above).

Exit codes: 0 success; 1 semantic "no" (NOT equivalent / UNSATISFIABLE /
FAILS); 2 syntax or usage error; 3 I/O error; 4 deadline exceeded; 5 budget
exhausted; 6 parser depth limit; 7 XML input limit; 8 engine fault;
9 service overload (queue full / closed); 10 shard permanently unavailable
(restart budget exhausted).  ``batch`` exits 0 when every
request succeeded, otherwise with the contract code of the first (in input
order) non-ok result — per-request failures are also reported structurally
on each output line, so one bad request never hides the others' results.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import obs
from .decision import (
    NotDownward,
    check_node_equivalence,
    check_path_equivalence,
    exact_equivalent,
    exact_path_equivalent,
    exact_satisfiable,
    find_satisfying_node,
    standard_corpus,
)
from .logic.modelcheck import CHECKER_BACKENDS
from .runtime import ExecutionBudget, ReproError, exit_code_for, faults
from .trees import Tree, parse_xml, to_xml
from .xpath import (
    BACKENDS,
    Evaluator,
    XPathSyntaxError,
    ast as xp,
    axes_used,
    dialect,
    is_conditional_xpath,
    is_core_xpath,
    is_downward,
    parse_node,
    parse_path,
    simplify,
    unparse,
)

__all__ = ["main"]


def _parse_any(text: str) -> "xp.NodeExpr | xp.PathExpr":
    try:
        return parse_path(text)
    except XPathSyntaxError:
        return parse_node(text)


def _load_tree(path: str | None) -> Tree:
    if path is None or path == "-":
        return parse_xml(sys.stdin.read())
    with open(path) as handle:
        return parse_xml(handle.read())


def _budget_from(args: argparse.Namespace) -> ExecutionBudget | None:
    timeout = getattr(args, "timeout", None)
    max_steps = getattr(args, "max_steps", None)
    max_nodes = getattr(args, "max_nodes", None)
    if timeout is None and max_steps is None and max_nodes is None:
        return None
    return ExecutionBudget(timeout=timeout, max_steps=max_steps, max_nodes=max_nodes)


def _describe_nodes(tree: Tree, nodes) -> str:
    lines = []
    for node_id in sorted(nodes):
        lines.append(f"  node {node_id}: <{tree.labels[node_id]}> at depth {tree.depths[node_id]}")
    return "\n".join(lines) if lines else "  (none)"


def _make_evaluator(tree: Tree, args: argparse.Namespace):
    budget = _budget_from(args)
    if getattr(args, "fallback", False):
        from .runtime import GuardedEvaluator

        return GuardedEvaluator(tree, budget, retry_on_budget=False)
    return Evaluator(tree, backend=args.backend, budget=budget)


def cmd_eval(args: argparse.Namespace) -> int:
    expr = parse_node(args.query)
    tree = _load_tree(args.file)
    nodes = _make_evaluator(tree, args).nodes(expr)
    print(f"{len(nodes)} node(s) satisfy {unparse(expr)}:")
    print(_describe_nodes(tree, nodes))
    return 0


def cmd_select(args: argparse.Namespace) -> int:
    expr = parse_path(args.query)
    tree = _load_tree(args.file)
    nodes = _make_evaluator(tree, args).image(expr, {0})
    print(f"{len(nodes)} node(s) reachable from the root via {unparse(expr)}:")
    print(_describe_nodes(tree, nodes))
    return 0


def cmd_translate(args: argparse.Namespace) -> int:
    from .logic import unparse_formula
    from .translations import (
        UnsupportedFormula,
        mtc_to_node_expr,
        mtc_to_path_expr,
        xpath_to_mtc,
    )

    expr = _parse_any(args.query)
    formula = xpath_to_mtc(expr)
    print(f"query:    {unparse(expr)}")
    print(f"FO(MTC):  {unparse_formula(formula)}")
    try:
        if isinstance(expr, xp.NodeExpr):
            back = mtc_to_node_expr(formula, "x")
        else:
            back = mtc_to_path_expr(formula, "x", "y")
        print(f"back:     {unparse(simplify(back))}")
    except UnsupportedFormula as exc:
        print(f"back:     (outside the compositional fragment: {exc})")
    return 0


def cmd_equivalent(args: argparse.Namespace) -> int:
    left = _parse_any(args.left)
    right = _parse_any(args.right)
    if isinstance(left, xp.NodeExpr) != isinstance(right, xp.NodeExpr):
        print("error: cannot compare a node query with a path query", file=sys.stderr)
        return 2
    alphabet = tuple(args.alphabet)
    budget = _budget_from(args)
    if is_downward(left) and is_downward(right):
        if isinstance(left, xp.NodeExpr):
            witness = exact_equivalent(left, right, alphabet, budget)
        else:
            witness = exact_path_equivalent(left, right, alphabet, budget)
        if witness is None:
            print(f"EQUIVALENT (exact, over alphabet {set(alphabet)})")
            return 0
        print("NOT equivalent; distinguishing document:")
        print(to_xml(witness, indent="  "))
        return 1
    corpus = standard_corpus(alphabet=alphabet)
    if isinstance(left, xp.NodeExpr):
        report = check_node_equivalence(left, right, corpus, budget)
    else:
        report = check_path_equivalence(left, right, corpus, budget)
    if report.equivalent_on_corpus:
        print(
            f"equivalent on the corpus ({report.trees_checked} trees, "
            f"exhaustive to size {report.exhaustive_to}) — not a proof"
        )
        return 0
    print(f"NOT equivalent: {report.counterexample}")
    return 1


def cmd_satisfiable(args: argparse.Namespace) -> int:
    expr = parse_node(args.query)
    alphabet = tuple(args.alphabet)
    budget = _budget_from(args)
    if is_downward(expr):
        witness = exact_satisfiable(expr, alphabet, budget)
        if witness is None:
            print(f"UNSATISFIABLE (exact, over alphabet {set(alphabet)})")
            return 1
        print("SATISFIABLE; witness document:")
        print(to_xml(witness, indent="  "))
        return 0
    found = find_satisfying_node(expr, standard_corpus(alphabet=alphabet), budget)
    if found is None:
        print("no satisfying node found on the corpus — not a proof of unsatisfiability")
        return 1
    print(f"SATISFIABLE: {found}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .logic import ModelChecker, parse_formula, unparse_formula
    from .logic.ast import free_variables

    formula = parse_formula(args.formula)
    tree = _load_tree(args.file)
    budget = _budget_from(args)
    if getattr(args, "fallback", False):
        from .runtime import GuardedModelChecker

        checker = GuardedModelChecker(tree, budget, retry_on_budget=False)
    else:
        checker = ModelChecker(tree, backend=args.backend, budget=budget)
    free = tuple(sorted(free_variables(formula)))
    if len(free) == 0:
        verdict = checker.holds(formula)
        print(f"{'HOLDS' if verdict else 'FAILS'}: {unparse_formula(formula)}")
        return 0 if verdict else 1
    if len(free) == 1:
        nodes = checker.node_set(formula, free[0])
        print(
            f"{len(nodes)} node(s) satisfy {unparse_formula(formula)} "
            f"(free variable {free[0]}):"
        )
        print(_describe_nodes(tree, nodes))
        return 0
    if len(free) == 2:
        pairs = checker.pairs(formula, free[0], free[1])
        print(
            f"{len(pairs)} pair(s) ({free[0]}, {free[1]}) satisfy "
            f"{unparse_formula(formula)}:"
        )
        for a, b in sorted(pairs):
            print(f"  ({a}, {b})")
        return 0
    print(
        f"error: expected at most 2 free variables, got {free}", file=sys.stderr
    )
    return 2


def cmd_batch(args: argparse.Namespace) -> int:
    from .service import QueryRequest, QueryService, RetryPolicy, TreeRegistry
    from .service.api import error_payload

    registry = TreeRegistry()
    wal = None
    if args.wal is not None:
        from .trees.wal import WriteAheadLog, recover

        # Opening first truncates a torn tail left by a crash mid-append;
        # recovery then folds snapshot + intact suffix into the registry so
        # a restarted batch resumes exactly where the last one stopped.
        wal = WriteAheadLog.open(args.wal)
        registry = recover(args.wal, registry=registry)
        registry.attach_wal(wal)
    if args.store is not None:
        from .trees.store import TreeStore

        # Attach before --tree registrations so new documents write through
        # to disk immediately and the resident budget applies from the start.
        registry.attach_store(
            TreeStore(args.store), resident_budget=args.resident_budget
        )
    elif args.resident_budget is not None:
        print("error: --resident-budget requires --store DIR", file=sys.stderr)
        return 2
    for spec in args.tree or ():
        name, eq, path = spec.partition("=")
        if not eq or not name or not path:
            print(f"error: --tree expects NAME=FILE.xml, got {spec!r}", file=sys.stderr)
            return 2
        with open(path) as handle:
            registry.register(name, parse_xml(handle.read()))

    if args.requests is None or args.requests == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.requests) as handle:
            lines = handle.read().splitlines()

    if args.shards:
        from .service import ShardedQueryService

        service = ShardedQueryService(
            registry,
            shards=args.shards,
            start_method=args.start_method,
            workers_per_shard=args.workers,
            queue_limit=args.queue_limit,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_timeout=args.timeout,
            default_max_steps=args.max_steps,
            default_max_nodes=args.max_nodes,
            optimize=args.optimize,
            result_cache=args.optimize and not args.no_result_cache,
            max_restarts=args.max_restarts,
        )
    else:
        service = QueryService(
            registry,
            workers=args.workers,
            queue_limit=args.queue_limit,
            retry=RetryPolicy(max_attempts=args.retries + 1),
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            default_timeout=args.timeout,
            default_max_steps=args.max_steps,
            default_max_nodes=args.max_nodes,
            optimize=args.optimize,
            result_cache=args.optimize and not args.no_result_cache,
        )
    entries = []  # per input line: ("done", json-dict) | ("pending", handle)
    try:
        for number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            payload = None
            try:
                payload = json.loads(line)
                request = QueryRequest.from_json(payload)
            except ValueError as exc:
                request_id = None
                if isinstance(payload, dict):
                    request_id = payload.get("id")
                entries.append(
                    (
                        "done",
                        {
                            "id": request_id or f"line-{number}",
                            "op": "?",
                            "status": "error",
                            "error": error_payload(exc),
                        },
                    )
                )
                continue
            entries.append(("pending", service.submit(request)))
        exit_code = 0
        for kind, entry in entries:
            payload = entry if kind == "done" else entry.result().to_json()
            print(json.dumps(payload))
            if exit_code == 0:
                code = (
                    payload.get("error", {}).get("exit_code", 2)
                    if payload["status"] != "ok"
                    else 0
                )
                exit_code = code
    finally:
        service.shutdown(drain=True)
        if wal is not None:
            wal.close()
    if args.stats:
        print(json.dumps(service.stats_snapshot()), file=sys.stderr)
    if args.metrics is not None:
        if args.shards:
            # Parent registry + every shard's delta: the merged registry is
            # what reconciles (one result series increment per request).
            _emit_json(service.metrics_snapshot(), args.metrics)
        else:
            _emit_json(obs.REGISTRY.to_json(), args.metrics)
    return exit_code


def cmd_store_pack(args: argparse.Namespace) -> int:
    from .trees.store import TreeStore

    store = TreeStore(args.directory)
    if not args.tree:
        print("error: store pack needs at least one --tree NAME=FILE.xml", file=sys.stderr)
        return 2
    total = 0
    for spec in args.tree:
        name, eq, path = spec.partition("=")
        if not eq or not name or not path:
            print(f"error: --tree expects NAME=FILE.xml, got {spec!r}", file=sys.stderr)
            return 2
        with open(path) as handle:
            tree = parse_xml(handle.read())
        nbytes = store.pack(name, tree, epoch=args.epoch)
        total += nbytes
        print(f"  {name}: {tree.size} node(s), {nbytes} bytes (epoch {args.epoch})")
    print(f"packed {len(args.tree)} tree(s), {total} bytes -> {args.directory}")
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    from .trees.store import TreeStore

    store = TreeStore(args.directory)
    names = [args.name] if args.name else store.names()
    if not names:
        print(f"no stored trees in {args.directory}")
        return 0
    for name in names:
        # A corrupt file raises StoreCorruptError -> exit code 3 via main().
        report = store.verify(name)
        print(
            f"  {report['name']}: OK — {report['n']} node(s), "
            f"epoch {report['epoch']}, {report['bytes']} bytes, "
            f"{report['sections']} section(s)"
        )
    print(f"verified {len(names)} tree(s) in {args.directory}")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from .trees.wal import WriteAheadLog, recover

    # Open/close first so a torn tail is truncated exactly as a restarted
    # writer would; recover() itself only *tolerates* one at the tail.
    WriteAheadLog.open(args.directory).close()
    registry = recover(args.directory)
    names = registry.names()
    print(f"recovered {len(names)} tree(s) from {args.directory}:")
    for name in names:
        tree, epoch = registry.snapshot(name)
        print(f"  {name}: epoch {epoch}, {tree.size} node(s)")
    return 0


def cmd_simplify(args: argparse.Namespace) -> int:
    expr = _parse_any(args.query)
    simplified = simplify(expr)
    print(unparse(simplified))
    if simplified.size < expr.size:
        print(f"(size {expr.size} -> {simplified.size})", file=sys.stderr)
    return 0


def cmd_classify(args: argparse.Namespace) -> int:
    expr = _parse_any(args.query)
    sort = "node" if isinstance(expr, xp.NodeExpr) else "path"
    print(f"sort:        {sort} expression")
    print(f"dialect:     {dialect(expr).value}")
    print(f"axes:        {sorted(axis.value for axis in axes_used(expr)) or '(none)'}")
    print(f"size:        {expr.size}")
    print(f"core:        {is_core_xpath(expr)}")
    print(f"conditional: {is_conditional_xpath(expr)}")
    print(f"downward:    {is_downward(expr)}")
    return 0


def _emit_json(payload: dict, dest: str) -> None:
    """Write ``payload`` as JSON to ``dest`` ("-" means stderr)."""
    text = json.dumps(payload, indent=2)
    if dest == "-":
        print(text, file=sys.stderr)
    else:
        with open(dest, "w") as handle:
            handle.write(text + "\n")


def _add_trace_argument(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace",
        nargs="?",
        const="-",
        metavar="FILE",
        help="emit the execution span tree as JSON to FILE "
        "(stderr when no FILE is given)",
    )


def _add_budget_arguments(p: argparse.ArgumentParser, engine: bool = True) -> None:
    p.add_argument(
        "--timeout",
        type=float,
        metavar="SECONDS",
        help="wall-clock deadline; exceeding it exits with code 4",
    )
    p.add_argument(
        "--max-steps",
        type=int,
        metavar="N",
        help="cooperative step/fuel cap; exceeding it exits with code 5",
    )
    p.add_argument(
        "--max-nodes",
        type=int,
        metavar="N",
        help="result-cardinality cap; exceeding it exits with code 5",
    )
    if engine:
        p.add_argument(
            "--fallback",
            action="store_true",
            help="retry a failed or budget-tripped bitset run on the "
            "row-wise oracle backend",
        )
        p.add_argument(
            "--inject-fault",
            action="append",
            metavar="SITE",
            help="arm a named fault-injection site (repeatable; for testing). "
            "Sites: xpath.bitset, xpath.bitset.star, logic.bitset, "
            "logic.bitset.tc, automata.bitset, service.worker, trees.mutate, "
            "service.reshare, wal.append, service.shard_kill, store.load",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Navigational XPath, FO(MTC) and tree walking automata "
        "(PODS 2008 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("eval", help="evaluate a node query on an XML document")
    p.add_argument("query")
    p.add_argument("file", nargs="?", help="XML file (default: stdin)")
    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default="bitset",
        help="evaluation engine (default: the compiled bitset backend)",
    )
    _add_budget_arguments(p)
    _add_trace_argument(p)
    p.set_defaults(func=cmd_eval)

    p = sub.add_parser("select", help="select nodes from the root via a path")
    p.add_argument("query")
    p.add_argument("file", nargs="?")
    p.add_argument(
        "--backend",
        choices=BACKENDS,
        default="bitset",
        help="evaluation engine (default: the compiled bitset backend)",
    )
    _add_budget_arguments(p)
    _add_trace_argument(p)
    p.set_defaults(func=cmd_select)

    p = sub.add_parser("translate", help="FO(MTC) rendering and round trip")
    p.add_argument("query")
    p.set_defaults(func=cmd_translate)

    p = sub.add_parser("equivalent", help="compare two queries")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--alphabet", default="ab", help="labels, e.g. 'abc'")
    _add_budget_arguments(p, engine=False)
    p.set_defaults(func=cmd_equivalent)

    p = sub.add_parser("satisfiable", help="satisfiability of a node query")
    p.add_argument("query")
    p.add_argument("--alphabet", default="ab")
    _add_budget_arguments(p, engine=False)
    p.set_defaults(func=cmd_satisfiable)

    p = sub.add_parser("check", help="model-check an FO(MTC) formula")
    p.add_argument("formula")
    p.add_argument("file", nargs="?", help="XML file (default: stdin)")
    p.add_argument(
        "--backend",
        choices=CHECKER_BACKENDS,
        default="bitset",
        help="model-checking engine (default: the columnar bitset backend)",
    )
    _add_budget_arguments(p)
    _add_trace_argument(p)
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "batch", help="serve a JSONL request batch through the query service"
    )
    p.add_argument(
        "requests", nargs="?", help="JSONL request file (default: stdin)"
    )
    p.add_argument(
        "--tree",
        action="append",
        metavar="NAME=FILE",
        help="register an XML document under NAME (repeatable)",
    )
    p.add_argument(
        "--workers", type=int, default=4, metavar="N", help="worker threads (default 4)"
    )
    p.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="run N shard processes over shared-memory tree indexes instead "
        "of in-process threads (0, the default, keeps the thread pool); "
        "--workers then means worker threads per shard",
    )
    p.add_argument(
        "--start-method",
        choices=("fork", "spawn", "forkserver"),
        default=None,
        help="multiprocessing start method for --shards (default: platform)",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        metavar="N",
        help="with --shards, supervise the shard processes: respawn a "
        "crashed shard up to N times per rolling window (with state resync "
        "and in-flight re-dispatch) before degrading its requests to "
        "structured unavailability (exit code 10)",
    )
    p.add_argument(
        "--wal",
        metavar="DIR",
        help="durable mutation write-ahead log: replay DIR's snapshot+log "
        "before --tree registrations, then append every registration and "
        "edit to it before publication (see 'repro recover')",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help="disk-backed index store: pack registered trees to compact "
        "RSTR files in DIR and mmap cold trees back on demand "
        "(see 'repro store pack/verify')",
    )
    p.add_argument(
        "--resident-budget",
        type=int,
        default=None,
        metavar="BYTES",
        help="with --store, bound resident index bytes: least-recently-used "
        "unpinned trees are evicted to disk when the budget is exceeded",
    )
    p.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="bounded request-queue capacity (default 64)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="max retries per request for transient engine faults (default 2)",
    )
    p.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        metavar="N",
        help="consecutive fast-path failures that open a circuit breaker",
    )
    p.add_argument(
        "--breaker-cooldown",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="open time before a half-open recovery probe (default 0.25)",
    )
    p.add_argument(
        "--optimize",
        action="store_true",
        help="enable the adaptive query optimizer: canonical/semantic cache "
        "keys, cost-based sets-vs-bitset choice, and (unless "
        "--no-result-cache) the cross-request result cache",
    )
    p.add_argument(
        "--no-result-cache",
        action="store_true",
        help="with --optimize, keep the optimizer but disable the "
        "cross-request result cache",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print aggregate service counters to stderr as JSON "
        "(includes result-cache and optimizer sections when --optimize)",
    )
    p.add_argument(
        "--metrics",
        nargs="?",
        const="-",
        metavar="FILE",
        help="after the batch drains, dump the process metrics registry "
        "as JSON to FILE (stderr when no FILE is given)",
    )
    _add_budget_arguments(p)
    _add_trace_argument(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "recover", help="replay and summarize a mutation write-ahead log"
    )
    p.add_argument("directory", help="WAL directory (as passed to batch --wal)")
    p.set_defaults(func=cmd_recover)

    p = sub.add_parser(
        "store", help="manage a disk-backed index store directory"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    sp = store_sub.add_parser(
        "pack", help="pack XML documents into RSTR store files"
    )
    sp.add_argument("directory", help="store directory (as passed to batch --store)")
    sp.add_argument(
        "--tree",
        action="append",
        metavar="NAME=FILE",
        help="pack an XML document under NAME (repeatable)",
    )
    sp.add_argument(
        "--epoch",
        type=int,
        default=0,
        metavar="N",
        help="epoch stamp recorded in each packed header (default 0)",
    )
    sp.set_defaults(func=cmd_store_pack)
    sp = store_sub.add_parser(
        "verify", help="checksum-verify stored trees and rebuild their indexes"
    )
    sp.add_argument("directory", help="store directory")
    sp.add_argument("name", nargs="?", help="verify one tree (default: all)")
    sp.set_defaults(func=cmd_store_verify)

    p = sub.add_parser("simplify", help="apply the sound rewrite system")
    p.add_argument("query")
    p.set_defaults(func=cmd_simplify)

    p = sub.add_parser("classify", help="dialect and fragment membership")
    p.add_argument("query")
    p.set_defaults(func=cmd_classify)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    armed = list(getattr(args, "inject_fault", None) or ())
    for site in armed:
        faults.arm(site)
    trace_dest = getattr(args, "trace", None)
    tracer = obs.Tracer() if trace_dest is not None else None
    try:
        if tracer is not None:
            with obs.tracing(tracer):
                return args.func(args)
        return args.func(args)
    except (ReproError, NotDownward, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    finally:
        if tracer is not None:
            _emit_json(tracer.to_json(), trace_dest)
        for site in armed:
            faults.disarm(site)
