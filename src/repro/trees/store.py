"""Disk-backed columnar document store in the XPath-accelerator style.

The shared-memory segment format (:mod:`repro.trees.share`) already proved
the representation: a tree plus its :class:`~repro.trees.index.TreeIndex`
flattened into self-describing columnar sections — pre/post-order interval
arrays, label-partitioned masks, and the lazy quadratic ``MaskSlab``
families.  This module gives that representation a durable home so the
servable corpus is no longer capped at RAM: a :class:`TreeStore` is a
directory of one **RSTR v1** file per named tree, written atomically and
read back through ``mmap`` so a cold tree's index views the file pages
directly without materializing node objects or copying the payload.

File layout (all integers little-endian)::

    header    magic "RSTR" | version u16 | reserved u16 | n u32
              | section_count u32 | epoch u64 | total_size u64
              | table_crc32 u32
    table     section_count × (tag u32, offset u64, length u64, crc32 u32)
    payload   the sections, at their table offsets

The sections (tags, encodings, and the ``W``-byte mask width) are exactly
RTIX v1's — produced by :func:`repro.trees.share.build_sections` and read
back by :func:`repro.trees.share.tree_from_sections` — so the store is a
re-framing, not a second serializer.  The framing differs deliberately:

* the header carries the registry **epoch** the tree was packed at, so the
  eviction logic can tell whether the stored generation is current without
  reading the payload;
* integrity is **per section** (each table entry carries its payload's
  CRC-32, and the header CRC covers the header + table), so corruption is
  localized in error messages and every check runs *before* any mask is
  reconstructed.

:meth:`TreeStore.load` verifies the magic, version, declared size (a
truncated tail fails here), table checksum, and every section's bounds and
CRC eagerly, raising :class:`~repro.runtime.errors.StoreCorruptError` on
any mismatch — a flipped bit on disk must fail loudly, never surface as a
wrong query answer.  Only after the file fully validates are the sections
handed to the shared reader; the quadratic ``CHILDREN``/``PREFIX``
families stay lazy ``MaskSlab`` views over the mapping, so pages are
touched once for the CRC sweep and then only for the masks a workload
actually uses.

Writes are crash-safe: :meth:`TreeStore.pack` writes to a temporary file
in the same directory, fsyncs it, and renames it into place with
``os.replace``, so a reader never observes a half-written store file.

Lifecycle: a loaded tree keeps its mapping open through a
:class:`StoreHandle` (``tree._store_handle``).  Dropping the tree drops
the handle and the mapping with it; :func:`release_tree` closes it
eagerly, and :func:`close_open_handles` sweeps every live handle (the
test-suite isolation hook).
"""

from __future__ import annotations

import mmap
import os
import struct
import time
import weakref
import zlib
from pathlib import Path

from .. import obs
from ..runtime import faults
from ..runtime.errors import StoreCorruptError, TreeShareError
from .index import TreeIndex, tree_index
from .share import _REQUIRED_TAGS, build_sections, tree_from_sections
from .tree import Tree

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "StoreHandle",
    "TreeStore",
    "close_open_handles",
    "index_nbytes",
    "open_handles",
    "release_tree",
]

MAGIC = b"RSTR"
FORMAT_VERSION = 1

# magic, version, reserved, n, sections, epoch, size, table crc
_HEADER = struct.Struct("<4sHHIIQQI")
_ENTRY = struct.Struct("<IQQI")  # tag, offset, length, crc

_SUFFIX = ".rstr"

#: Every live mapping, for the test-suite sweep in ``close_open_handles``.
_OPEN_HANDLES: "weakref.WeakSet[StoreHandle]" = weakref.WeakSet()

#: Characters that map to themselves in store file names; anything else is
#: percent-encoded so arbitrary registry names can't escape the directory.
_SAFE_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _encode_name(name: str) -> str:
    if not name:
        raise ValueError("tree name must be non-empty")
    return "".join(
        c if c in _SAFE_CHARS and c != "%" else "".join(
            f"%{b:02X}" for b in c.encode("utf-8")
        )
        for c in name
    )


def _decode_name(encoded: str) -> str:
    out = bytearray()
    i = 0
    while i < len(encoded):
        if encoded[i] == "%":
            out.append(int(encoded[i + 1 : i + 3], 16))
            i += 3
        else:
            out.append(ord(encoded[i]))
            i += 1
    return out.decode("utf-8")


def index_nbytes(index: TreeIndex) -> int:
    """The exact RSTR v1 file size for ``index``, in O(labels) time.

    Pure arithmetic over the section encodings — no serialization and, in
    particular, **no materialization** of the lazy ``CHILDREN``/``PREFIX``
    mask families — so the registry can price a tree's residency without
    defeating the laziness it is budgeting for.  (The same number prices a
    resident in-memory index: the flat serialization *is* the columnar
    content, so it is the honest apples-to-apples cost of keeping the tree
    servable.)
    """
    n = index.n
    width = (n + 7) // 8
    label_bytes = sum(4 + len(label.encode("utf-8")) for label in index.label_masks)
    payload = (
        4 * n  # PARENTS
        + 4 + label_bytes  # LABEL_TABLE
        + 4 * n  # LABEL_IDS
        + 4 * n  # AFTER
        + 3 * width  # FLAG_MASKS
        + len(index.label_masks) * width  # LABEL_MASKS
        + n * width  # CHILDREN
        + (n + 1) * width  # PREFIX
    )
    for groups in (index.delta_groups, index.sib_groups, index.last_child_groups):
        payload += 4 + len(groups) * (4 + width)
    return _HEADER.size + len(_REQUIRED_TAGS) * _ENTRY.size + payload


def pack_bytes(index: TreeIndex, epoch: int = 0) -> bytes:
    """Serialize ``index`` to one RSTR v1 blob stamped with ``epoch``."""
    sections = build_sections(index)
    table = bytearray()
    payload = bytearray()
    base = _HEADER.size + _ENTRY.size * len(sections)
    for tag, blob in sections:
        table += _ENTRY.pack(tag, base + len(payload), len(blob), zlib.crc32(blob))
        payload += blob
    total = base + len(payload)
    unsummed = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, index.n, len(sections), epoch, total, 0
    )
    crc = zlib.crc32(bytes(table), zlib.crc32(unsummed))
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, index.n, len(sections), epoch, total, crc
    )
    return header + bytes(table) + bytes(payload)


def _validate(view: memoryview, origin: str):
    """Verify every RSTR v1 frame check; the parsed reader inputs.

    Returns ``(entries, n, epoch, total)`` with ``entries`` mapping section
    tag to ``(offset, length)``.  Every check — header fields, declared
    size vs. actual, table CRC, per-section bounds and CRCs — runs here,
    before any content is interpreted, so a caller that gets a return
    value holds a fully verified frame.
    """
    if len(view) < _HEADER.size:
        raise StoreCorruptError(
            f"{origin}: too short for a store header "
            f"({len(view)} < {_HEADER.size} bytes)"
        )
    magic, version, _, n, section_count, epoch, total, table_crc = (
        _HEADER.unpack_from(view, 0)
    )
    if magic != MAGIC:
        raise StoreCorruptError(f"{origin}: bad store magic {magic!r}")
    if version != FORMAT_VERSION:
        raise StoreCorruptError(
            f"{origin}: unsupported store version {version} "
            f"(expected {FORMAT_VERSION})"
        )
    if n < 1:
        raise StoreCorruptError(f"{origin}: store declares an empty tree (n={n})")
    table_end = _HEADER.size + section_count * _ENTRY.size
    if total < table_end or total != len(view):
        raise StoreCorruptError(
            f"{origin}: declared size {total} != file size {len(view)} "
            "(truncated tail or foreign data)"
        )
    unsummed = _HEADER.pack(
        magic, version, 0, n, section_count, epoch, total, 0
    )
    if zlib.crc32(view[_HEADER.size : table_end], zlib.crc32(unsummed)) != table_crc:
        raise StoreCorruptError(f"{origin}: header/table checksum mismatch")
    entries: dict[int, tuple[int, int]] = {}
    for i in range(section_count):
        tag, offset, length, crc = _ENTRY.unpack_from(
            view, _HEADER.size + i * _ENTRY.size
        )
        if offset < table_end or offset + length > total:
            raise StoreCorruptError(
                f"{origin}: section {tag} spans [{offset}, {offset + length}) "
                f"outside the payload region [{table_end}, {total})"
            )
        if zlib.crc32(view[offset : offset + length]) != crc:
            raise StoreCorruptError(f"{origin}: section {tag} checksum mismatch")
        entries[tag] = (offset, length)
    return entries, n, epoch, total


class StoreHandle:
    """Owns the ``mmap`` behind one loaded tree's index views.

    Attached to the tree as ``tree._store_handle`` so the mapping lives
    exactly as long as the tree object; :meth:`close` detaches the lazy
    mask slabs first (already-materialized masks stay readable) and then
    unmaps.  Eviction does **not** close handles — it just drops the
    registry's reference, so any in-flight reader still pinning the tree
    object keeps a valid mapping until the tree is garbage-collected.
    """

    __slots__ = ("name", "path", "_mmap", "_slabs", "__weakref__")

    def __init__(self, name: str, path: Path, mapping: mmap.mmap, slabs):
        self.name = name
        self.path = path
        self._mmap = mapping
        self._slabs = tuple(slabs)

    @property
    def closed(self) -> bool:
        return self._mmap is None

    def close(self) -> None:
        """Detach the slab views and unmap the file.  Idempotent."""
        if self._mmap is None:
            return
        for slab in self._slabs:
            slab.detach()
        self._slabs = ()
        try:
            self._mmap.close()
        except BufferError:  # pragma: no cover - an exported view survived
            pass  # the mapping is reclaimed when the last view dies
        self._mmap = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        self.close()


def release_tree(tree: Tree) -> None:
    """Eagerly close the store mapping behind a loaded tree, if any."""
    handle = tree._store_handle
    if handle is not None:
        tree._store_handle = None
        handle.close()


def open_handles() -> list[StoreHandle]:
    """The live (not yet closed) store mappings, for tests and debugging."""
    return [h for h in _OPEN_HANDLES if not h.closed]


def close_open_handles() -> int:
    """Close every live store mapping; how many were open.

    The test-suite isolation sweep: trees loaded during a test may still
    be referenced from fixtures or caches, and their mappings pin the
    (possibly tmp-dir) store files open.
    """
    count = 0
    for handle in list(_OPEN_HANDLES):
        if not handle.closed:
            handle.close()
            count += 1
    return count


class TreeStore:
    """A directory of RSTR v1 files, one per named tree.

    The store is deliberately dumb — no manifest, no lock file: each tree
    is one atomically-replaced file whose name is the (percent-encoded)
    registry name, so concurrent readers and a single writer compose
    through the filesystem's own rename atomicity, and ``repro store
    verify`` can audit a directory with nothing but the files themselves.
    """

    def __init__(self, directory: "str | os.PathLike[str]"):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeStore({str(self.directory)!r})"

    def _path(self, name: str) -> Path:
        return self.directory / (_encode_name(name) + _SUFFIX)

    # -- inventory -----------------------------------------------------------

    def names(self) -> list[str]:
        """The stored tree names, sorted."""
        return sorted(
            _decode_name(p.name[: -len(_SUFFIX)])
            for p in self.directory.glob("*" + _SUFFIX)
        )

    def contains(self, name: str) -> bool:
        return self._path(name).exists()

    def __contains__(self, name: str) -> bool:
        return self.contains(name)

    def nbytes(self, name: str) -> int | None:
        """The stored file size for ``name``, or None when absent."""
        try:
            return self._path(name).stat().st_size
        except OSError:
            return None

    def total_bytes(self) -> int:
        """The summed size of every stored tree file."""
        return sum(
            p.stat().st_size for p in self.directory.glob("*" + _SUFFIX)
        )

    def epoch(self, name: str) -> int | None:
        """The epoch ``name`` was packed at, or None when absent/unreadable.

        Reads only the fixed-size header.  An unreadable or corrupt header
        reports None rather than raising: callers use this to decide
        whether the stored generation is current, and "unreadable" and
        "absent" both mean "re-pack before trusting the store".
        """
        try:
            with open(self._path(name), "rb") as f:
                raw = f.read(_HEADER.size)
        except OSError:
            return None
        if len(raw) < _HEADER.size:
            return None
        magic, version, _, n, _, epoch, _, _ = _HEADER.unpack(raw)
        if magic != MAGIC or version != FORMAT_VERSION or n < 1:
            return None
        return epoch

    def remove(self, name: str) -> bool:
        """Delete ``name``'s store file; whether one existed."""
        try:
            os.unlink(self._path(name))
        except FileNotFoundError:
            return False
        return True

    # -- write ---------------------------------------------------------------

    def pack(self, name: str, tree: Tree, *, epoch: int = 0) -> int:
        """Serialize ``tree`` into the store under ``name``; bytes written.

        Atomic: the blob is written to a same-directory temporary file,
        fsynced, and renamed over the target, then the directory entry is
        fsynced — a crash leaves either the old generation or the new one,
        never a torn file.
        """
        blob = pack_bytes(tree_index(tree), epoch)
        path = self._path(name)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as f:
                f.write(blob)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        dir_fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
        return len(blob)

    # -- read ----------------------------------------------------------------

    def load(self, name: str) -> tuple[Tree, int]:
        """Map ``name``'s store file and reconstruct its tree + index.

        Returns ``(tree, epoch)``.  The whole frame is CRC-verified before
        any section is interpreted (see :func:`_validate`); the index's
        quadratic mask families then view the mapping lazily, held open by
        the :class:`StoreHandle` on ``tree._store_handle``.

        Raises :class:`KeyError` when ``name`` is not stored and
        :class:`~repro.runtime.errors.StoreCorruptError` on any integrity
        failure.  ``store.load`` is a fault site: an armed injection fires
        here, before the file is opened.
        """
        faults.check("store.load")
        path = self._path(name)
        start = time.perf_counter()
        try:
            f = open(path, "rb")
        except FileNotFoundError:
            raise KeyError(name) from None
        with f:
            try:
                mapping = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError as exc:  # zero-length file cannot be mapped
                obs.counter("store_loads_total", event="corrupt").inc()
                raise StoreCorruptError(
                    f"{path.name}: store file is empty"
                ) from exc
        view = memoryview(mapping)
        try:
            entries, n, epoch, total = _validate(view, path.name)
            try:
                tree = tree_from_sections(view, entries, n, total)
            except TreeShareError as exc:
                raise StoreCorruptError(f"{path.name}: {exc}") from exc
        except BaseException as exc:
            if isinstance(exc, StoreCorruptError):
                obs.counter("store_loads_total", event="corrupt").inc()
            view.release()
            try:
                mapping.close()
            except BufferError:  # pragma: no cover - view in a live frame
                pass
            raise
        # Only the two lazy slab views may keep the mapping exported; the
        # top-level view is released so close() can actually unmap.
        view.release()
        index = tree._engine_index
        handle = StoreHandle(
            name, path, mapping, (index.children_of, index.prefix)
        )
        tree._store_handle = handle
        _OPEN_HANDLES.add(handle)
        obs.counter("store_loads_total", event="ok").inc()
        obs.histogram("store_load_seconds").observe(time.perf_counter() - start)
        return tree, epoch

    def verify(self, name: str) -> dict:
        """Fully check one stored tree; a report dict on success.

        Runs every frame check *and* a structural reconstruction (the tree
        is rebuilt from a private copy of the bytes, exercising the same
        reader path as :meth:`load`), so a passing verify means the file
        will serve.  Raises :class:`StoreCorruptError` on any failure and
        :class:`KeyError` when absent.
        """
        path = self._path(name)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            raise KeyError(name) from None
        view = memoryview(blob)
        entries, n, epoch, total = _validate(view, path.name)
        try:
            tree_from_sections(view, entries, n, total)
        except TreeShareError as exc:
            raise StoreCorruptError(f"{path.name}: {exc}") from exc
        return {
            "name": name,
            "file": path.name,
            "bytes": len(blob),
            "n": n,
            "epoch": epoch,
            "sections": len(entries),
        }
