"""XPath axes as relations over tree node ids.

The paper's query languages navigate by four *primitive* axes — ``child``,
``parent``, ``right`` (next sibling) and ``left`` (previous sibling) — plus
their transitive closures (``descendant``, ``ancestor``,
``following_sibling``, ``preceding_sibling``) and the usual derived XPath
axes.  This module provides each axis in three forms:

* :func:`axis_steps` — the successors of one node (a generator),
* :func:`axis_image` — the image of a node set (the evaluator's workhorse),
* :func:`axis_pairs` — the full relation, used by the reference semantics.

Every axis has an inverse (:func:`inverse_axis`), which the evaluator uses to
compute pre-images syntactically.

All functions take an optional ``scope``: a node id restricting navigation to
the subtree rooted there.  This implements the paper's ``W`` (*within*)
operator without materializing subtrees: steps that would leave the scope's
subtree are suppressed (in particular the scope root has no parent and no
siblings, exactly as if it were the root of a standalone tree).
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Iterator

from .tree import Tree


class Axis(Enum):
    """The navigational axes of Core XPath (primitive and derived)."""

    SELF = "self"
    CHILD = "child"
    PARENT = "parent"
    RIGHT = "right"  # next sibling (one step)
    LEFT = "left"  # previous sibling (one step)
    DESCENDANT = "descendant"
    ANCESTOR = "ancestor"
    FOLLOWING_SIBLING = "following_sibling"
    PRECEDING_SIBLING = "preceding_sibling"
    DESCENDANT_OR_SELF = "descendant_or_self"
    ANCESTOR_OR_SELF = "ancestor_or_self"
    FOLLOWING = "following"
    PRECEDING = "preceding"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Axis.{self.name}"


#: The four primitive (single-step) axes of the paper's syntax.
PRIMITIVE_AXES = (Axis.CHILD, Axis.PARENT, Axis.RIGHT, Axis.LEFT)

#: Transitive closures of the primitive axes.
TRANSITIVE_AXES = (
    Axis.DESCENDANT,
    Axis.ANCESTOR,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
)

_INVERSES = {
    Axis.SELF: Axis.SELF,
    Axis.CHILD: Axis.PARENT,
    Axis.PARENT: Axis.CHILD,
    Axis.RIGHT: Axis.LEFT,
    Axis.LEFT: Axis.RIGHT,
    Axis.DESCENDANT: Axis.ANCESTOR,
    Axis.ANCESTOR: Axis.DESCENDANT,
    Axis.FOLLOWING_SIBLING: Axis.PRECEDING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.DESCENDANT_OR_SELF: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.FOLLOWING: Axis.PRECEDING,
    Axis.PRECEDING: Axis.FOLLOWING,
}

#: Which primitive axis each transitive axis closes over.
CLOSURE_BASE = {
    Axis.DESCENDANT: Axis.CHILD,
    Axis.ANCESTOR: Axis.PARENT,
    Axis.FOLLOWING_SIBLING: Axis.RIGHT,
    Axis.PRECEDING_SIBLING: Axis.LEFT,
}


def inverse_axis(axis: Axis) -> Axis:
    """The converse axis: ``(n, m) in axis`` iff ``(m, n) in inverse``."""
    return _INVERSES[axis]


def _in_scope(tree: Tree, node_id: int, scope: int | None) -> bool:
    return scope is None or tree.is_in_subtree(node_id, scope)


def axis_steps(
    tree: Tree, node_id: int, axis: Axis, scope: int | None = None
) -> Iterator[int]:
    """Yield the ``axis``-successors of ``node_id``.

    With a ``scope``, only successors inside the subtree of ``scope`` are
    produced; ``node_id`` itself is assumed to lie in that subtree.
    """
    if axis is Axis.SELF:
        yield node_id
    elif axis is Axis.CHILD:
        # Children of an in-scope node are always in scope.
        yield from tree.children_ids(node_id)
    elif axis is Axis.PARENT:
        pid = tree.parent[node_id]
        if pid >= 0 and (scope is None or node_id != scope):
            yield pid
    elif axis is Axis.RIGHT:
        if scope is None or node_id != scope:
            nid = tree.next_sibling[node_id]
            if nid >= 0:
                yield nid
    elif axis is Axis.LEFT:
        if scope is None or node_id != scope:
            nid = tree.prev_sibling[node_id]
            if nid >= 0:
                yield nid
    elif axis is Axis.DESCENDANT:
        yield from tree.descendant_ids(node_id)
    elif axis is Axis.DESCENDANT_OR_SELF:
        yield from tree.subtree_ids(node_id)
    elif axis is Axis.ANCESTOR:
        limit = 0 if scope is None else scope
        pid = tree.parent[node_id]
        while pid >= 0 and node_id != limit:
            yield pid
            node_id = pid
            if node_id == limit:
                break
            pid = tree.parent[node_id]
    elif axis is Axis.ANCESTOR_OR_SELF:
        yield node_id
        yield from axis_steps(tree, node_id, Axis.ANCESTOR, scope)
    elif axis is Axis.FOLLOWING_SIBLING:
        if scope is None or node_id != scope:
            nid = tree.next_sibling[node_id]
            while nid >= 0:
                yield nid
                nid = tree.next_sibling[nid]
    elif axis is Axis.PRECEDING_SIBLING:
        if scope is None or node_id != scope:
            nid = tree.prev_sibling[node_id]
            while nid >= 0:
                yield nid
                nid = tree.prev_sibling[nid]
    elif axis is Axis.FOLLOWING:
        # Document order after node_id, excluding its descendants.
        after = node_id + tree.subtree_sizes[node_id]
        end = tree.size if scope is None else scope + tree.subtree_sizes[scope]
        yield from range(after, end)
    elif axis is Axis.PRECEDING:
        # Document order before node_id, excluding its ancestors.
        start = 0 if scope is None else scope
        for other in range(start, node_id):
            if not tree.is_in_subtree(node_id, other):
                yield other
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown axis {axis!r}")


def axis_image(
    tree: Tree, sources: Iterable[int], axis: Axis, scope: int | None = None
) -> set[int]:
    """The set of nodes reachable from ``sources`` by one ``axis`` step."""
    result: set[int] = set()
    for node_id in sources:
        result.update(axis_steps(tree, node_id, axis, scope))
    return result


def axis_pairs(
    tree: Tree, axis: Axis, scope: int | None = None
) -> set[tuple[int, int]]:
    """The full binary relation denoted by ``axis`` (reference semantics)."""
    universe = tree.node_ids if scope is None else tree.subtree_ids(scope)
    pairs: set[tuple[int, int]] = set()
    for n in universe:
        for m in axis_steps(tree, n, axis, scope):
            pairs.add((n, m))
    return pairs


#: Axes whose full relation is a union of preorder-id intervals.
INTERVAL_AXES = (
    Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF,
    Axis.ANCESTOR,
    Axis.ANCESTOR_OR_SELF,
    Axis.FOLLOWING,
    Axis.PRECEDING,
)


def interval_axis_pairs(
    tree: Tree, axis: Axis, scope: int | None = None
) -> set[tuple[int, int]] | None:
    """The full relation of a transitive axis, generated output-linearly.

    Because preorder ids make every subtree a contiguous interval, the
    relations of ``descendant``/``ancestor``/``following``/``preceding``
    (and the ``or_self`` closures) are unions of id ranges; enumerating the
    ranges directly sidesteps the per-source image machinery (and, for
    ``preceding``, the per-candidate subtree tests) that
    :func:`axis_pairs` would otherwise pay for.  Returns ``None`` for axes
    without interval structure — callers fall back to the generic path.
    """
    if axis not in INTERVAL_AXES:
        return None
    lo = 0 if scope is None else scope
    hi = tree.size if scope is None else scope + tree.subtree_sizes[scope]
    sizes = tree.subtree_sizes
    pairs: set[tuple[int, int]] = set()
    if axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        keep_self = axis is Axis.DESCENDANT_OR_SELF
        for v in range(lo, hi):
            start = v if keep_self else v + 1
            for m in range(start, v + sizes[v]):
                pairs.add((v, m))
        return pairs
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        keep_self = axis is Axis.ANCESTOR_OR_SELF
        for v in range(lo, hi):
            start = v if keep_self else v + 1
            for m in range(start, v + sizes[v]):
                pairs.add((m, v))
        return pairs
    if axis is Axis.FOLLOWING:
        for v in range(lo, hi):
            for m in range(v + sizes[v], hi):
                pairs.add((v, m))
        return pairs
    # PRECEDING is the converse of FOLLOWING.
    for v in range(lo, hi):
        for m in range(v + sizes[v], hi):
            pairs.add((m, v))
    return pairs


def document_order_pairs(tree: Tree) -> set[tuple[int, int]]:
    """All strictly document-ordered pairs ``(n, m)`` with ``n < m``."""
    n = tree.size
    return {(i, j) for i in range(n) for j in range(i + 1, n)}
