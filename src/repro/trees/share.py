"""Flat shared-memory serialization of a :class:`~repro.trees.index.TreeIndex`.

The bitset engines' whole representation — node sets as big ints over
preorder ids — was chosen because it packs into flat byte buffers without
any pointer chasing.  This module exploits that: a tree and its index
serialize into one **versioned flat segment** that can live in
:class:`multiprocessing.shared_memory.SharedMemory` and be attached
read-only by every shard process of the sharded query service
(:mod:`repro.service.shards`), mirroring the pre/post-order "XPath
accelerator" encoding (one flat table per axis-relevant attribute) in
relational form.

Segment layout (all integers little-endian)::

    header    magic "RTIX" | version u16 | reserved u16 | n u32
              | section_count u32 | total_size u64 | crc32 u32
    table     section_count × (tag u32, offset u64, length u64)
    payload   the sections, at their table offsets

Sections (W = ``(n + 7) // 8``, the fixed mask width in bytes):

========================  ===================================================
``PARENTS``               n × i32 parent ids (root = -1)
``LABEL_TABLE``           u32 count, then per label u32 byte-length + UTF-8
``LABEL_IDS``             n × u32 indexes into the label table
``AFTER``                 n × u32 (``after[v] = v + subtree_size(v)``)
``FLAG_MASKS``            3 × W: leaf, first-sibling, last-sibling masks
``LABEL_MASKS``           one W-byte mask per label, in table order
``CHILDREN``              n × W per-node children masks
``DELTA_GROUPS``          u32 count, count × u32 deltas, count × W masks
``SIB_GROUPS``            same encoding (sizes instead of deltas)
``LAST_CHILD_GROUPS``     same encoding
``PREFIX``                (n + 1) × W interval prefix masks
========================  ===================================================

Masks reconstruct "zero-copy-ish" in the attaching process: each is one
``int.from_bytes`` over a memoryview slice of the mapped segment — no
pickling, no per-node Python objects — and the two quadratic-size tables
(``PREFIX``, ``CHILDREN``) are materialized *lazily* through
:class:`MaskSlab`, so segment pages are only touched (and ints only built)
for the masks a workload actually uses.

Integrity: the header carries the declared total size and a CRC-32 of the
section table + payload.  :func:`load_tree` re-validates both plus every
section's bounds before touching any content, raising a structured
:class:`~repro.runtime.errors.TreeShareError` on any mismatch — a
truncated or bit-flipped segment must never reconstruct wrong masks.
"""

from __future__ import annotations

import struct
import zlib

from ..runtime.errors import TreeShareError
from .index import TreeIndex, tree_index
from .tree import Tree

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "MaskSlab",
    "build_sections",
    "detach_tree",
    "dump_index",
    "dump_tree",
    "load_tree",
    "tree_from_sections",
]

MAGIC = b"RTIX"
FORMAT_VERSION = 1

_HEADER = struct.Struct("<4sHHIIQI")  # magic, version, reserved, n, sections, size, crc
_ENTRY = struct.Struct("<IQQ")  # tag, offset, length

# Section tags (the offset table makes the layout self-describing, so new
# sections can be appended in later versions without breaking old readers).
T_PARENTS = 1
T_LABEL_TABLE = 2
T_LABEL_IDS = 3
T_AFTER = 4
T_FLAG_MASKS = 5
T_LABEL_MASKS = 6
T_CHILDREN = 7
T_DELTA_GROUPS = 8
T_SIB_GROUPS = 9
T_LAST_CHILD_GROUPS = 10
T_PREFIX = 11

_REQUIRED_TAGS = (
    T_PARENTS,
    T_LABEL_TABLE,
    T_LABEL_IDS,
    T_AFTER,
    T_FLAG_MASKS,
    T_LABEL_MASKS,
    T_CHILDREN,
    T_DELTA_GROUPS,
    T_SIB_GROUPS,
    T_LAST_CHILD_GROUPS,
    T_PREFIX,
)


class MaskSlab:
    """A lazy, cached sequence of fixed-width bitmasks over a mapped buffer.

    ``slab[i]`` materializes mask ``i`` with one ``int.from_bytes`` over the
    backing memoryview and caches the int, so repeated kernel access pays
    the copy once while untouched masks never leave the shared pages.
    Supports exactly the container protocol the axis kernels use
    (``__getitem__`` / ``__len__`` / iteration).
    """

    __slots__ = ("_view", "_width", "_count", "_cache")

    def __init__(self, view: memoryview, width: int, count: int):
        self._view = view
        self._width = width
        self._count = count
        self._cache: dict[int, int] = {}

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, i: int) -> int:
        mask = self._cache.get(i)
        if mask is None:
            if not 0 <= i < self._count:
                raise IndexError(i)
            if self._view is None:
                raise TreeShareError(
                    f"mask {i} read after detach(): the backing segment is "
                    "unmapped and this mask was never materialized"
                )
            off = i * self._width
            mask = int.from_bytes(self._view[off : off + self._width], "little")
            self._cache[i] = mask
        return mask

    def __iter__(self):
        return (self[i] for i in range(self._count))

    def detach(self) -> None:
        """Release the backing view (so the segment can be unmapped).

        After detaching, only already-materialized masks remain readable;
        the sharded service calls this on shard shutdown right before
        closing the shared-memory handle, which would otherwise refuse to
        unmap while exported views exist.
        """
        if self._view is not None:
            self._view.release()
            self._view = None

    def __getstate__(self):  # pragma: no cover - defensive
        raise TypeError("MaskSlab views a process-local mapping; not picklable")


def detach_tree(tree: Tree) -> None:
    """Release every mapped view a loaded tree's index still holds."""
    index = tree._engine_index
    if index is None:
        return
    for slab in (index.prefix, index.children_of):
        if isinstance(slab, MaskSlab):
            slab.detach()


def _grouped_bytes(groups: list[tuple[int, int]], width: int) -> bytes:
    """Encode ``[(key, mask), ...]`` as count + keys + fixed-width masks."""
    out = bytearray(struct.pack("<I", len(groups)))
    for key, _ in groups:
        out += struct.pack("<I", key)
    for _, mask in groups:
        out += mask.to_bytes(width, "little")
    return bytes(out)


def _read_groups(view: memoryview, width: int, n: int) -> list[tuple[int, int]]:
    if len(view) < 4:
        raise TreeShareError("group section too short for its count header")
    (count,) = struct.unpack_from("<I", view, 0)
    need = 4 + count * (4 + width)
    if len(view) != need:
        raise TreeShareError(
            f"group section length {len(view)} != expected {need} "
            f"for {count} groups of width {width}"
        )
    keys = struct.unpack_from(f"<{count}I", view, 4) if count else ()
    base = 4 + 4 * count
    groups = []
    for i, key in enumerate(keys):
        off = base + i * width
        groups.append((key, int.from_bytes(view[off : off + width], "little")))
    return groups


def build_sections(index: TreeIndex) -> list[tuple[int, bytes]]:
    """The full ``(tag, payload)`` section list for ``index``.

    The canonical serialization of a tree + index, shared between the
    shared-memory segment writer (:func:`dump_index`) and the on-disk
    store writer (:mod:`repro.trees.store`), which wrap the same sections
    in different framing (one CRC over the body vs. per-section CRCs).
    """
    tree = index.tree
    n = index.n
    width = (n + 7) // 8

    label_order = sorted(index.label_masks)
    label_id = {label: i for i, label in enumerate(label_order)}
    label_table = bytearray(struct.pack("<I", len(label_order)))
    for label in label_order:
        encoded = label.encode("utf-8")
        label_table += struct.pack("<I", len(encoded))
        label_table += encoded

    sections: list[tuple[int, bytes]] = [
        (T_PARENTS, struct.pack(f"<{n}i", *tree.parent)),
        (T_LABEL_TABLE, bytes(label_table)),
        (T_LABEL_IDS, struct.pack(f"<{n}I", *(label_id[l] for l in tree.labels))),
        (T_AFTER, struct.pack(f"<{n}I", *index.after)),
        (
            T_FLAG_MASKS,
            index.leaf_mask.to_bytes(width, "little")
            + index.first_mask.to_bytes(width, "little")
            + index.last_mask.to_bytes(width, "little"),
        ),
        (
            T_LABEL_MASKS,
            b"".join(
                index.label_masks[label].to_bytes(width, "little")
                for label in label_order
            ),
        ),
        (
            T_CHILDREN,
            b"".join(
                index.children_of[v].to_bytes(width, "little") for v in range(n)
            ),
        ),
        (T_DELTA_GROUPS, _grouped_bytes(index.delta_groups, width)),
        (T_SIB_GROUPS, _grouped_bytes(index.sib_groups, width)),
        (T_LAST_CHILD_GROUPS, _grouped_bytes(index.last_child_groups, width)),
        (
            T_PREFIX,
            b"".join(
                index.prefix[i].to_bytes(width, "little") for i in range(n + 1)
            ),
        ),
    ]
    return sections


def dump_index(index: TreeIndex) -> bytes:
    """Serialize ``index`` (and its tree's structure) to one flat segment."""
    n = index.n
    sections = build_sections(index)

    table = bytearray()
    payload = bytearray()
    base = _HEADER.size + _ENTRY.size * len(sections)
    for tag, blob in sections:
        table += _ENTRY.pack(tag, base + len(payload), len(blob))
        payload += blob
    body = bytes(table) + bytes(payload)
    total = _HEADER.size + len(body)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, 0, n, len(sections), total, zlib.crc32(body)
    )
    return header + body


def dump_tree(tree: Tree) -> bytes:
    """Serialize ``tree`` via its (cached, lazily built) index."""
    return dump_index(tree_index(tree))


def _section_view(
    buffer: memoryview, entries: dict[int, tuple[int, int]], tag: int, total: int
) -> memoryview:
    if tag not in entries:
        raise TreeShareError(f"segment is missing required section {tag}")
    offset, length = entries[tag]
    if offset < _HEADER.size or offset + length > total:
        raise TreeShareError(
            f"section {tag} spans [{offset}, {offset + length}) "
            f"outside the declared segment size {total}"
        )
    return buffer[offset : offset + length]


def load_tree(buffer) -> Tree:
    """Attach a serialized segment: rebuild the tree, map its index.

    ``buffer`` is any bytes-like object (typically a
    ``SharedMemory.buf`` memoryview).  Returns the reconstructed
    :class:`Tree` with its :class:`TreeIndex` already attached (so
    ``tree_index(tree)`` is O(1) and shares the mapped masks).  The tree's
    own flat arrays are rebuilt in O(n) from the parents section; every
    precomputed mask comes from the segment.

    Raises :class:`~repro.runtime.errors.TreeShareError` on any integrity
    failure — short buffer, bad magic/version, size or CRC mismatch,
    out-of-bounds or missing sections.
    """
    view = memoryview(buffer)
    if len(view) < _HEADER.size:
        raise TreeShareError(
            f"segment too short for header ({len(view)} < {_HEADER.size} bytes)"
        )
    magic, version, _, n, section_count, total, crc = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise TreeShareError(f"bad segment magic {magic!r}")
    if version != FORMAT_VERSION:
        raise TreeShareError(
            f"unsupported segment version {version} (expected {FORMAT_VERSION})"
        )
    if total < _HEADER.size + _ENTRY.size * section_count or total > len(view):
        raise TreeShareError(
            f"declared size {total} does not fit the buffer ({len(view)} bytes)"
        )
    view = view[:total]
    if zlib.crc32(view[_HEADER.size :]) != crc:
        raise TreeShareError("segment checksum mismatch (truncated or corrupted)")
    if n < 1:
        raise TreeShareError(f"segment declares an empty tree (n={n})")

    entries: dict[int, tuple[int, int]] = {}
    for i in range(section_count):
        tag, offset, length = _ENTRY.unpack_from(view, _HEADER.size + i * _ENTRY.size)
        entries[tag] = (offset, length)
    return tree_from_sections(view, entries, n, total)


def tree_from_sections(
    view: memoryview, entries: dict[int, tuple[int, int]], n: int, total: int
) -> Tree:
    """Reconstruct a tree + mapped index from validated section bounds.

    The common reader half shared by :func:`load_tree` and the on-disk
    store: ``entries`` maps section tag to ``(offset, length)`` within
    ``view`` (whose framing — header layout, checksums — the caller has
    already validated).  The quadratic ``CHILDREN``/``PREFIX`` families
    stay lazy :class:`MaskSlab` views over ``view``; everything else is
    materialized eagerly.  Raises :class:`TreeShareError` on structural
    problems within the sections themselves.
    """
    width = (n + 7) // 8

    def section(tag: int, expected: int | None = None) -> memoryview:
        sub = _section_view(view, entries, tag, total)
        if expected is not None and len(sub) != expected:
            raise TreeShareError(
                f"section {tag} has length {len(sub)}, expected {expected}"
            )
        return sub

    parents = struct.unpack(f"<{n}i", section(T_PARENTS, 4 * n))

    table_view = section(T_LABEL_TABLE)
    if len(table_view) < 4:
        raise TreeShareError("label table too short for its count header")
    (label_count,) = struct.unpack_from("<I", table_view, 0)
    labels_by_id: list[str] = []
    pos = 4
    for _ in range(label_count):
        if pos + 4 > len(table_view):
            raise TreeShareError("label table truncated mid-entry")
        (length,) = struct.unpack_from("<I", table_view, pos)
        pos += 4
        if pos + length > len(table_view):
            raise TreeShareError("label table truncated mid-label")
        labels_by_id.append(bytes(table_view[pos : pos + length]).decode("utf-8"))
        pos += length

    label_ids = struct.unpack(f"<{n}I", section(T_LABEL_IDS, 4 * n))
    if any(i >= label_count for i in label_ids):
        raise TreeShareError("label id out of range for the label table")
    labels = [labels_by_id[i] for i in label_ids]

    try:
        tree = Tree(labels, parents)
    except ValueError as exc:
        raise TreeShareError(f"segment does not encode a valid tree: {exc}") from exc

    after = list(struct.unpack(f"<{n}I", section(T_AFTER, 4 * n)))

    flags = section(T_FLAG_MASKS, 3 * width)
    leaf_mask = int.from_bytes(flags[0:width], "little")
    first_mask = int.from_bytes(flags[width : 2 * width], "little")
    last_mask = int.from_bytes(flags[2 * width : 3 * width], "little")

    label_mask_view = section(T_LABEL_MASKS, label_count * width)
    label_masks = {
        label: int.from_bytes(
            label_mask_view[i * width : (i + 1) * width], "little"
        )
        for i, label in enumerate(labels_by_id)
    }

    children_of = MaskSlab(section(T_CHILDREN, n * width), width, n)
    prefix = MaskSlab(section(T_PREFIX, (n + 1) * width), width, n + 1)

    delta_groups = _read_groups(section(T_DELTA_GROUPS), width, n)
    sib_groups = _read_groups(section(T_SIB_GROUPS), width, n)
    last_child_groups = _read_groups(section(T_LAST_CHILD_GROUPS), width, n)

    index = TreeIndex._from_parts(
        tree,
        prefix=prefix,
        label_masks=label_masks,
        after=after,
        children_of=children_of,
        delta_groups=delta_groups,
        sib_groups=sib_groups,
        leaf_mask=leaf_mask,
        first_mask=first_mask,
        last_mask=last_mask,
        last_child_groups=last_child_groups,
    )
    tree._engine_index = index
    return tree
