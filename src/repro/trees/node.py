"""Node-level view of sibling-ordered labelled trees.

A :class:`Node` is a lightweight, immutable handle into a :class:`~repro.trees.tree.Tree`.
All structural data lives in flat arrays owned by the tree (see ``tree.py``);
nodes merely pair a tree with a node id.  This keeps trees compact, makes node
identity trivial (two handles are equal iff they point at the same id of the
same tree), and lets the evaluators work directly on integer ids.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .tree import Tree


class Node:
    """A handle to a single node of a :class:`Tree`.

    Node ids are assigned in *document order* (preorder), so ``node_id`` also
    serves as a document-order rank.  The root always has id ``0``.
    """

    __slots__ = ("tree", "node_id")

    def __init__(self, tree: "Tree", node_id: int):
        if not 0 <= node_id < tree.size:
            raise IndexError(f"node id {node_id} out of range for tree of size {tree.size}")
        self.tree = tree
        self.node_id = node_id

    # -- basic attributes --------------------------------------------------

    @property
    def label(self) -> str:
        """The label (tag name) of this node."""
        return self.tree.labels[self.node_id]

    @property
    def is_root(self) -> bool:
        return self.node_id == 0

    @property
    def is_leaf(self) -> bool:
        return self.tree.first_child[self.node_id] < 0

    @property
    def is_first_sibling(self) -> bool:
        """True iff this node has no previous sibling (the root counts as first)."""
        return self.tree.prev_sibling[self.node_id] < 0

    @property
    def is_last_sibling(self) -> bool:
        """True iff this node has no next sibling (the root counts as last)."""
        return self.tree.next_sibling[self.node_id] < 0

    @property
    def depth(self) -> int:
        """Number of edges on the path from the root (root has depth 0)."""
        return self.tree.depths[self.node_id]

    @property
    def child_index(self) -> int:
        """0-based position among the siblings (0 for the root)."""
        return self.tree.child_indexes[self.node_id]

    # -- navigation --------------------------------------------------------

    @property
    def parent(self) -> "Node | None":
        pid = self.tree.parent[self.node_id]
        return None if pid < 0 else Node(self.tree, pid)

    @property
    def next_sibling(self) -> "Node | None":
        nid = self.tree.next_sibling[self.node_id]
        return None if nid < 0 else Node(self.tree, nid)

    @property
    def prev_sibling(self) -> "Node | None":
        nid = self.tree.prev_sibling[self.node_id]
        return None if nid < 0 else Node(self.tree, nid)

    @property
    def first_child(self) -> "Node | None":
        cid = self.tree.first_child[self.node_id]
        return None if cid < 0 else Node(self.tree, cid)

    @property
    def last_child(self) -> "Node | None":
        cid = self.tree.last_child[self.node_id]
        return None if cid < 0 else Node(self.tree, cid)

    @property
    def children(self) -> list["Node"]:
        return [Node(self.tree, cid) for cid in self.tree.children_ids(self.node_id)]

    def iter_descendants(self) -> Iterator["Node"]:
        """Yield proper descendants in document order."""
        for nid in self.tree.descendant_ids(self.node_id):
            yield Node(self.tree, nid)

    def iter_ancestors(self) -> Iterator["Node"]:
        """Yield proper ancestors, nearest first."""
        pid = self.tree.parent[self.node_id]
        while pid >= 0:
            yield Node(self.tree, pid)
            pid = self.tree.parent[pid]

    @property
    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including this node)."""
        return self.tree.subtree_sizes[self.node_id]

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Node)
            and other.tree is self.tree
            and other.node_id == self.node_id
        )

    def __hash__(self) -> int:
        return hash((id(self.tree), self.node_id))

    def __repr__(self) -> str:
        return f"Node(id={self.node_id}, label={self.label!r})"
