"""Durable mutation history: a write-ahead log for the tree registry.

PR 8 made documents live; this module makes the edit history survive the
process.  A WAL directory holds two kinds of files:

* ``wal.jsonl`` — the append-only log.  Each record is one line framed as
  ``<length:hex8> <crc32:hex8> <json>\\n`` where *length* is the byte length
  of the JSON payload and the CRC is over those bytes.  Records reuse the
  strict PR 8 mutate codec (:func:`~repro.trees.mutate.edit_to_json`), carry
  a monotonically increasing ``seq``, the published ``epoch``, and a short
  digest of the *post-state* tree so replay is self-verifying.  A crashed
  append leaves at most one torn record at the tail; :meth:`WriteAheadLog.open`
  detects it (bad frame, short line, CRC mismatch) and truncates back to the
  last intact record.  A bad frame *followed by intact records* is not a torn
  tail — that is corruption and raises :class:`~repro.runtime.errors.WalCorruptError`.

* ``snapshot-<seq>.json`` — periodic full-registry snapshots (one framed
  record holding every tree's shape + epoch, stamped with the ``seq`` it
  covers), written atomically (temp file + ``os.replace``) every
  ``snapshot_every`` appends; the latest two are kept.  Snapshots bound
  recovery time: :func:`recover` folds the newest intact snapshot plus the
  log suffix with ``seq`` greater than the snapshot's.

**Log-ahead contract.**  :meth:`TreeRegistry.mutate
<repro.service.api.TreeRegistry.mutate>` (and the sharded mutator) append
the record *before* publishing the new epoch.  A crash between append and
publish is therefore rolled **forward** on recovery — the durable history
wins — while a failed append (``wal.append`` fault site, disk error) aborts
the mutation with the registry untouched.  Recovery replays edits through
:func:`~repro.trees.mutate.apply_edit_indexed` (the incremental index
maintenance) and verifies the result two ways: every record's post-state
digest, and — for each replayed tree — a bit-for-bit
:func:`~repro.trees.mutate.index_fingerprint` comparison against an index
rebuilt from scratch.

Fsync policy is configurable: ``"always"`` (fsync every append — the
durable default for the CLI), ``"never"`` (leave flushing to the OS), or an
integer *N* (fsync every N appends).  Appends, bytes, and fsync latency are
recorded in ``wal_appends_total`` / ``wal_bytes`` / ``wal_fsync_seconds``;
recovery wall time in ``recovery_seconds``.
"""

from __future__ import annotations

import array
import hashlib
import json
import os
import time
import zlib
from pathlib import Path

from .. import obs
from ..runtime import faults
from ..runtime.errors import WalCorruptError
from .mutate import (
    _shape_to_json,
    _tree_from_shape_json,
    apply_edit_indexed,
    edit_from_json,
    index_fingerprint,
)
from .index import tree_index
from .tree import Tree

__all__ = ["WriteAheadLog", "recover", "recover_registry", "tree_digest"]

_LOG_NAME = "wal.jsonl"
_SNAPSHOT_SCHEMA = "repro-wal-snapshot/1"
_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOTS_KEPT = 2


def tree_digest(tree: Tree) -> str:
    """A short structural digest of a tree (labels + parent vector).

    This is the per-record self-check: cheap (O(n) text hashing, no index
    work) but collision-resistant, so replay detects a record applied to
    the wrong base state.  The full bit-exactness check against
    ``index_fingerprint`` happens once per tree at the end of recovery.
    """
    hasher = hashlib.sha256()
    hasher.update("\x00".join(tree.labels).encode("utf-8"))
    hasher.update(b"\x01")
    hasher.update(array.array("q", tree.parent).tobytes())
    return hasher.hexdigest()[:16]


def _frame(payload: dict) -> bytes:
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return b"%08x %08x %s\n" % (len(body), zlib.crc32(body), body)


def _parse_frame(line: bytes):
    """Decode one framed line; return the payload dict or ``None`` if torn."""
    if len(line) < 19 or not line.endswith(b"\n") or line[8:9] != b" " or line[17:18] != b" ":
        return None
    try:
        length = int(line[:8], 16)
        crc = int(line[9:17], 16)
    except ValueError:
        return None
    body = line[18:-1]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        return json.loads(body)
    except ValueError:
        return None


def _scan_log(data: bytes, path: str):
    """Split the raw log into intact records.

    Returns ``(records, good_length)`` where *records* is the list of
    decoded payloads and *good_length* is the byte offset up to which the
    log is intact.  A torn suffix (no complete intact record after the bad
    point) is tolerated; an intact record *after* a bad one means the
    middle of the history is corrupt and raises :class:`WalCorruptError`.
    """
    records: list[dict] = []
    offset = 0
    torn_at = None
    while offset < len(data):
        newline = data.find(b"\n", offset)
        line = data[offset:] if newline < 0 else data[offset : newline + 1]
        payload = _parse_frame(line)
        if payload is None:
            if torn_at is None:
                torn_at = offset
            if newline < 0:
                break
            offset = newline + 1
            continue
        if torn_at is not None:
            raise WalCorruptError(
                f"{path}: intact record at byte {offset} after corrupt "
                f"record at byte {torn_at} — history is damaged mid-log, "
                "not merely torn at the tail"
            )
        records.append(payload)
        offset = newline + 1
    good_length = len(data) if torn_at is None else torn_at
    return records, good_length


class WriteAheadLog:
    """The writer half: framed appends, fsync policy, periodic snapshots.

    Use :meth:`open` (which performs torn-tail truncation) rather than the
    constructor.  Appends are not internally locked — callers serialize on
    the registry's mutation lock, which is the same ordering the log is
    meant to record.
    """

    def __init__(self, directory, *, fsync="always", snapshot_every: int | None = 256):
        if fsync not in ("always", "never") and not (
            isinstance(fsync, int) and not isinstance(fsync, bool) and fsync > 0
        ):
            raise ValueError(
                f"fsync policy must be 'always', 'never', or a positive int, got {fsync!r}"
            )
        if snapshot_every is not None and snapshot_every <= 0:
            raise ValueError(f"snapshot_every must be positive or None, got {snapshot_every!r}")
        self.directory = Path(directory)
        self.fsync_policy = fsync
        self.snapshot_every = snapshot_every
        self.last_seq = 0
        self.truncated_bytes = 0
        self.known_trees: set[str] = set()
        self._handle = None
        self._unsynced = 0
        self._since_snapshot = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, directory, *, fsync="always", snapshot_every: int | None = 256):
        """Open (creating if needed) a WAL directory for appending.

        Scans the existing log, truncates a torn tail back to the last
        intact record, and seeds ``last_seq`` / ``known_trees`` from the
        surviving history (including snapshot coverage).
        """
        wal = cls(directory, fsync=fsync, snapshot_every=snapshot_every)
        wal.directory.mkdir(parents=True, exist_ok=True)
        path = wal.directory / _LOG_NAME
        data = path.read_bytes() if path.exists() else b""
        records, good_length = _scan_log(data, str(path))
        wal._handle = open(path, "ab")
        if good_length < len(data):
            wal.truncated_bytes = len(data) - good_length
            wal._handle.truncate(good_length)
            wal._handle.seek(0, os.SEEK_END)
            obs.counter("wal_truncations_total").inc()
        for record in records:
            wal.last_seq = max(wal.last_seq, int(record.get("seq", 0)))
            name = record.get("tree")
            if name:
                wal.known_trees.add(name)
        snapshot = _latest_snapshot(wal.directory)
        if snapshot is not None:
            wal.last_seq = max(wal.last_seq, int(snapshot["seq"]))
            wal.known_trees.update(snapshot["trees"])
        return wal

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except OSError:
                pass
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def path(self) -> Path:
        return self.directory / _LOG_NAME

    # -- appends -------------------------------------------------------------

    def append_register(self, name: str, epoch: int, tree: Tree) -> int:
        """Log a full (re)registration of ``name`` at ``epoch``."""
        return self._append(
            {
                "rec": "register",
                "tree": name,
                "epoch": epoch,
                "shape": _shape_to_json(tree),
                "sha": tree_digest(tree),
            }
        )

    def append_mutate(self, name: str, epoch: int, edit_json: dict, new_tree: Tree) -> int:
        """Log one edit of ``name`` publishing ``epoch`` (wire-format edit)."""
        return self._append(
            {
                "rec": "mutate",
                "tree": name,
                "epoch": epoch,
                "edit": edit_json,
                "sha": tree_digest(new_tree),
            }
        )

    def _append(self, payload: dict) -> int:
        if self._handle is None:
            raise ValueError("write-ahead log is closed")
        faults.check("wal.append")
        seq = self.last_seq + 1
        payload["seq"] = seq
        frame = _frame(payload)
        self._handle.write(frame)
        self._handle.flush()
        self._unsynced += 1
        if self.fsync_policy == "always" or (
            self.fsync_policy != "never" and self._unsynced >= self.fsync_policy
        ):
            self.sync()
        self.last_seq = seq
        self.known_trees.add(payload["tree"])
        self._since_snapshot += 1
        obs.counter("wal_appends_total", kind=payload["rec"]).inc()
        obs.counter("wal_bytes").inc(len(frame))
        return seq

    def sync(self) -> None:
        """Force the log to stable storage (records fsync latency)."""
        if self._handle is None or not self._unsynced:
            return
        start = time.perf_counter()
        os.fsync(self._handle.fileno())
        obs.histogram("wal_fsync_seconds").observe(time.perf_counter() - start)
        self._unsynced = 0

    # -- snapshots -----------------------------------------------------------

    def maybe_snapshot(self, state_provider) -> bool:
        """Write a snapshot if ``snapshot_every`` appends accumulated.

        ``state_provider`` is called (only when due) and must return the
        registry state as ``{name: (tree, epoch)}`` consistent with the
        records appended so far — the registry calls this after publishing,
        under its mutation lock.
        """
        if self.snapshot_every is None or self._since_snapshot < self.snapshot_every:
            return False
        self.write_snapshot(state_provider())
        return True

    def write_snapshot(self, state: dict) -> Path:
        """Atomically write a full-registry snapshot covering ``last_seq``."""
        body = {
            "schema": _SNAPSHOT_SCHEMA,
            "seq": self.last_seq,
            "trees": {
                name: {
                    "epoch": epoch,
                    "shape": _shape_to_json(tree),
                    "sha": tree_digest(tree),
                }
                for name, (tree, epoch) in sorted(state.items())
            },
        }
        final = self.directory / f"{_SNAPSHOT_PREFIX}{self.last_seq:012d}.json"
        tmp = final.with_suffix(".json.tmp")
        with open(tmp, "wb") as handle:
            handle.write(_frame(body))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, final)
        self._since_snapshot = 0
        obs.counter("wal_snapshots_total").inc()
        self._prune_snapshots()
        return final

    def _prune_snapshots(self) -> None:
        snapshots = sorted(self.directory.glob(f"{_SNAPSHOT_PREFIX}*.json"))
        for stale in snapshots[:-_SNAPSHOTS_KEPT]:
            try:
                stale.unlink()
            except OSError:
                pass


def _latest_snapshot(directory: Path):
    """The newest intact snapshot payload, or ``None``.

    A torn/corrupt snapshot file (a crash mid-``write_snapshot`` before the
    atomic rename should make this impossible, but disks lie) is skipped in
    favor of the next older one — the log retains the full history, so any
    snapshot is an optimization, never a requirement.
    """
    for path in sorted(directory.glob(f"{_SNAPSHOT_PREFIX}*.json"), reverse=True):
        try:
            payload = _parse_frame(path.read_bytes())
        except OSError:
            continue
        if payload is None or payload.get("schema") != _SNAPSHOT_SCHEMA:
            continue
        return payload
    return None


def recover(directory, *, registry=None, verify: bool = True):
    """Fold the WAL directory back into a live ``TreeRegistry``.

    Loads the newest intact snapshot, replays every intact log record with
    ``seq`` beyond it through the incremental index maintenance, checks each
    record's post-state digest, and (with ``verify=True``) compares every
    replayed tree's :func:`index_fingerprint` bit-for-bit against an index
    rebuilt from scratch.  A torn tail is ignored (the writer truncates it
    on its next :meth:`WriteAheadLog.open`); corruption anywhere else raises
    :class:`WalCorruptError`.  Returns the registry (a fresh one unless
    ``registry`` is passed); attach a :class:`WriteAheadLog` afterwards to
    resume logging.
    """
    from ..service.api import TreeRegistry

    start = time.perf_counter()
    directory = Path(directory)
    if registry is None:
        registry = TreeRegistry()
    snapshot = _latest_snapshot(directory)
    base_seq = 0
    replayed: set[str] = set()
    if snapshot is not None:
        base_seq = int(snapshot["seq"])
        for name, entry in snapshot["trees"].items():
            tree = _tree_from_shape_json(entry["shape"])
            if verify and tree_digest(tree) != entry["sha"]:
                raise WalCorruptError(
                    f"snapshot tree {name!r} digest mismatch (snapshot seq {base_seq})"
                )
            registry.register(name, tree, epoch=int(entry["epoch"]))
    log_path = directory / _LOG_NAME
    data = log_path.read_bytes() if log_path.exists() else b""
    records, _good_length = _scan_log(data, str(log_path))
    applied = 0
    for record in records:
        seq = int(record.get("seq", 0))
        if seq <= base_seq:
            continue
        name = record["tree"]
        if record["rec"] == "register":
            tree = _tree_from_shape_json(record["shape"])
        elif record["rec"] == "mutate":
            try:
                base = registry.get(name)
            except ValueError:
                raise WalCorruptError(
                    f"{log_path}: mutate record seq {seq} targets unknown tree "
                    f"{name!r} (no base registration in snapshot or log)"
                ) from None
            tree = apply_edit_indexed(base, edit_from_json(record["edit"]))
            replayed.add(name)
        else:
            raise WalCorruptError(
                f"{log_path}: unknown record type {record['rec']!r} at seq {seq}"
            )
        if verify and tree_digest(tree) != record["sha"]:
            raise WalCorruptError(
                f"{log_path}: post-state digest mismatch replaying seq {seq} "
                f"({record['rec']} of tree {name!r})"
            )
        registry.register(name, tree, epoch=int(record["epoch"]))
        applied += 1
    if verify:
        for name in sorted(replayed):
            tree = registry.get(name)
            rebuilt = tree_index(Tree(list(tree.labels), list(tree.parent)))
            if index_fingerprint(tree_index(tree)) != index_fingerprint(rebuilt):
                raise WalCorruptError(
                    f"recovered tree {name!r} index fingerprint diverges from "
                    "a from-scratch rebuild"
                )
    elapsed = time.perf_counter() - start
    obs.histogram("recovery_seconds").observe(elapsed)
    obs.counter("wal_records_replayed_total").inc(applied)
    return registry


#: Package-namespace alias (a bare ``recover`` is ambiguous in repro.trees).
recover_registry = recover
