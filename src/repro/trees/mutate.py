"""Live-document edits: subtree insert/delete/relabel with delta reindexing.

Every engine in the repro evaluates against a frozen :class:`Tree` plus its
:class:`~repro.trees.index.TreeIndex`.  This module makes documents *live*
without giving that up: an edit produces a **new** tree (copy-on-write — the
old tree, its index, and every compiled plan cached on it stay valid for
readers pinned to the old snapshot) whose index is **maintained
incrementally** instead of rebuilt from scratch.

The preorder-interval representation is what makes the delta cheap.  A
subtree edit touches exactly one contiguous id range ``[pos, pos + k)``:

* every big-int node-set mask updates by a **shift + splice** —
  ``(m & low) | ((m & ~low) << k)`` on insert and
  ``(m & low) | ((m >> k) & ~low)`` on delete, with ``low = prefix[pos]``
  (Python's infinite-precision ``~low`` makes the high part exact);
* the ``prefix`` table — the only O(n²)-bit structure — is extended or
  truncated, never rebuilt;
* subtree sizes (the ``after`` table and the size-keyed ``sib_groups`` /
  ``last_child_groups``) change only on the **ancestor chain** of the edit
  parent, so those tables repair in O(depth) group moves;
* the parent-offset ``delta_groups`` split exactly at the splice point by
  id arithmetic: a node below the splice whose parent is also below keeps
  its offset, a node above with parent below grows/shrinks by ``k``, and
  both cases are contiguous sub-intervals of each group.

Full reindex-from-scratch (``TreeIndex(tree)``) is the correctness oracle:
the property suite in ``tests/trees/test_mutate.py`` asserts bit-exact
equality (:func:`index_fingerprint`) after random edit scripts.

Edits round-trip through JSON (:func:`edit_from_json` /
:func:`edit_to_json`), which is how the service tier's ``mutate`` requests
carry them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .index import TreeIndex, tree_index
from .tree import Tree

__all__ = [
    "InsertSubtree",
    "DeleteSubtree",
    "Relabel",
    "Edit",
    "apply_edit",
    "apply_edits",
    "apply_edit_indexed",
    "edit_from_json",
    "edit_to_json",
    "index_fingerprint",
]


@dataclass(frozen=True)
class InsertSubtree:
    """Insert a standalone subtree as child ``index`` of node ``parent``."""

    parent: int
    index: int
    subtree: Tree
    kind = "insert"


@dataclass(frozen=True)
class DeleteSubtree:
    """Delete node ``node`` together with its whole subtree."""

    node: int
    kind = "delete"


@dataclass(frozen=True)
class Relabel:
    """Replace the label of one node."""

    node: int
    label: str
    kind = "relabel"


Edit = "InsertSubtree | DeleteSubtree | Relabel"


# -- validation --------------------------------------------------------------


def _check_node(tree: Tree, node: int, role: str) -> None:
    if not isinstance(node, int) or isinstance(node, bool):
        raise ValueError(f"{role} must be an int node id, got {node!r}")
    if not 0 <= node < tree.size:
        raise ValueError(
            f"{role} {node!r} out of range for a tree of {tree.size} nodes"
        )


def _insert_position(tree: Tree, edit: InsertSubtree) -> int:
    """The preorder id the inserted subtree's root will take."""
    _check_node(tree, edit.parent, "insert parent")
    kids = tree.children_ids(edit.parent)
    if not isinstance(edit.index, int) or isinstance(edit.index, bool):
        raise ValueError(f"insert index must be an int, got {edit.index!r}")
    if not 0 <= edit.index <= len(kids):
        raise ValueError(
            f"insert index {edit.index} out of range: node {edit.parent} has "
            f"{len(kids)} children"
        )
    if not isinstance(edit.subtree, Tree):
        raise ValueError(f"insert subtree must be a Tree, got {edit.subtree!r}")
    if edit.index < len(kids):
        return kids[edit.index]
    return edit.parent + tree.subtree_sizes[edit.parent]


# -- structural application (no index) ---------------------------------------


def apply_edit(tree: Tree, edit) -> Tree:
    """Apply one edit structurally, returning a brand-new :class:`Tree`.

    The input tree is never touched (trees are immutable); this is the
    copy-on-write snapshot boundary.  The returned tree has **no** index
    attached — use :func:`apply_edit_indexed` on the hot path.
    """
    if isinstance(edit, Relabel):
        _check_node(tree, edit.node, "relabel node")
        if not isinstance(edit.label, str) or not edit.label:
            raise ValueError(f"relabel label must be a non-empty string, got {edit.label!r}")
        labels = list(tree.labels)
        labels[edit.node] = edit.label
        return Tree(labels, tree.parent)
    if isinstance(edit, InsertSubtree):
        labels, parents, _, _ = _insert_arrays(tree, edit)
        return Tree(labels, parents)
    if isinstance(edit, DeleteSubtree):
        labels, parents, _, _ = _delete_arrays(tree, edit)
        return Tree(labels, parents)
    raise ValueError(f"unknown edit {edit!r}")


def apply_edits(tree: Tree, edits) -> Tree:
    """Fold an edit script left-to-right with :func:`apply_edit`."""
    for edit in edits:
        tree = apply_edit(tree, edit)
    return tree


def _insert_arrays(tree: Tree, edit: InsertSubtree):
    pos = _insert_position(tree, edit)
    sub = edit.subtree
    k = sub.size
    labels = list(tree.labels[:pos]) + list(sub.labels) + list(tree.labels[pos:])
    parents = list(tree.parent[:pos])
    parents.append(edit.parent)
    for i in range(1, k):
        parents.append(sub.parent[i] + pos)
    for i in range(pos, tree.size):
        p = tree.parent[i]
        parents.append(p + k if p >= pos else p)
    return labels, parents, pos, k


def _delete_arrays(tree: Tree, edit: DeleteSubtree):
    _check_node(tree, edit.node, "delete node")
    if edit.node == 0:
        raise ValueError("cannot delete the root")
    x = edit.node
    k = tree.subtree_sizes[x]
    labels = list(tree.labels[:x]) + list(tree.labels[x + k :])
    parents = list(tree.parent[:x])
    for i in range(x + k, tree.size):
        p = tree.parent[i]
        # Survivors never have a parent inside the deleted interval: such a
        # parent would make them descendants of x, hence deleted themselves.
        parents.append(p - k if p >= x + k else p)
    return labels, parents, x, k


# -- incremental index maintenance -------------------------------------------


def apply_edit_indexed(tree: Tree, edit) -> Tree:
    """Apply one edit and maintain the :class:`TreeIndex` incrementally.

    Returns a new tree whose cached index was assembled from the old one
    by shift + splice + chain repair (see module docstring) — bit-exact
    with a from-scratch ``TreeIndex`` build, validated by the property
    suite.  The old tree and its index are untouched.
    """
    old = tree_index(tree)
    if isinstance(edit, Relabel):
        new_tree, index = _relabel_indexed(tree, old, edit)
    elif isinstance(edit, InsertSubtree):
        new_tree, index = _insert_indexed(tree, old, edit)
    elif isinstance(edit, DeleteSubtree):
        new_tree, index = _delete_indexed(tree, old, edit)
    else:
        raise ValueError(f"unknown edit {edit!r}")
    new_tree._engine_index = index
    return new_tree


def _ancestor_chain(tree: Tree, node: int):
    """Ancestors-or-self of ``node``: the only nodes whose subtree size
    (hence ``after``, ``sib_groups`` key, ``last_child`` offset) changes."""
    chain = []
    u = node
    while u >= 0:
        chain.append(u)
        u = tree.parent[u]
    mask = 0
    for u in chain:
        mask |= 1 << u
    return chain, mask, set(chain)


def _relabel_indexed(tree: Tree, old: TreeIndex, edit: Relabel):
    new_tree = apply_edit(tree, edit)
    label_masks = dict(old.label_masks)
    old_label = tree.labels[edit.node]
    if edit.label != old_label:
        bit = 1 << edit.node
        remaining = label_masks[old_label] & ~bit
        if remaining:
            label_masks[old_label] = remaining
        else:
            del label_masks[old_label]
        label_masks[edit.label] = label_masks.get(edit.label, 0) | bit
    # Structure is untouched: every other table is shared with the old
    # index (all are read-only after construction).
    index = TreeIndex._from_parts(
        new_tree,
        prefix=old.prefix,
        label_masks=label_masks,
        after=old.after,
        children_of=old.children_of,
        delta_groups=old.delta_groups,
        sib_groups=old.sib_groups,
        leaf_mask=old.leaf_mask,
        first_mask=old.first_mask,
        last_mask=old.last_mask,
        last_child_groups=old.last_child_groups,
    )
    return new_tree, index


def _insert_indexed(tree: Tree, old: TreeIndex, edit: InsertSubtree):
    labels, parents, pos, k = _insert_arrays(tree, edit)
    new_tree = Tree(labels, parents)
    sub = edit.subtree
    subidx = tree_index(sub)
    n = old.n
    P = edit.parent
    kids = tree.children_ids(P)
    j = edit.index
    low = old.prefix[pos]

    def up(mask: int) -> int:
        return (mask & low) | ((mask & ~low) << k)

    chain, chain_mask, chain_set = _ancestor_chain(tree, P)

    # prefix: extend by k entries; the old table is never recomputed.
    prefix = [old.prefix[i] for i in range(n + 1)]
    mask = prefix[-1]
    for _ in range(k):
        mask = (mask << 1) | 1
        prefix.append(mask)

    after = [0] * (n + k)
    for v in range(pos):
        after[v] = old.after[v] + (k if v in chain_set else 0)
    for i in range(k):
        after[pos + i] = pos + subidx.after[i]
    for v in range(pos, n):
        after[v + k] = old.after[v] + k

    label_masks = {}
    for label, m in old.label_masks.items():
        label_masks[label] = up(m)
    for label, m in subidx.label_masks.items():
        label_masks[label] = label_masks.get(label, 0) | (m << pos)

    children_of = [0] * (n + k)
    for v in range(pos):
        children_of[v] = up(old.children_of[v])
    for i in range(k):
        children_of[pos + i] = subidx.children_of[i] << pos
    for v in range(pos, n):
        children_of[v + k] = up(old.children_of[v])
    children_of[P] |= 1 << pos

    root_bit = 1 << pos
    leaf_mask = (up(old.leaf_mask) | (subidx.leaf_mask << pos)) & ~(1 << P)
    first_mask = up(old.first_mask) | (subidx.first_mask << pos)
    last_mask = up(old.last_mask) | (subidx.last_mask << pos)
    if j > 0:
        first_mask &= ~root_bit  # the new node has a previous sibling
    elif kids:
        first_mask &= ~(1 << (kids[0] + k))  # old first child demoted
    if j < len(kids):
        last_mask &= ~root_bit  # the new node has a next sibling
    elif kids:
        last_mask &= ~(1 << kids[-1])  # old last child demoted (id < pos)

    # delta_groups: exact interval split.  For group (d, g): v < pos keeps
    # d; v in [pos, pos+d) has its parent below the splice, so the offset
    # grows by k; v >= pos+d has parent >= pos, so the offset is preserved.
    acc: dict[int, int] = {}
    for d, g in old.delta_groups:
        below = g & low
        bound = pos + d if pos + d < n else n
        straddle = old.prefix[bound] ^ low
        mid = g & straddle
        high = g & ~low & ~straddle
        if below:
            acc[d] = acc.get(d, 0) | below
        if mid:
            acc[d + k] = acc.get(d + k, 0) | (mid << k)
        if high:
            acc[d] = acc.get(d, 0) | (high << k)
    for d, g in subidx.delta_groups:
        acc[d] = acc.get(d, 0) | (g << pos)
    acc[pos - P] = acc.get(pos - P, 0) | root_bit  # the new edge P -> pos
    delta_groups = sorted(acc.items())

    # sib_groups (keyed by subtree size): only the chain changes size, so
    # pull the chain out, splice the rest, re-add the chain at size + k,
    # and repair the edit-site siblings.
    sizes = tree.subtree_sizes
    acc = {}
    for s, g in old.sib_groups:
        g2 = g & ~chain_mask
        if g2:
            acc[s] = acc.get(s, 0) | up(g2)
    for u in chain:
        if tree.next_sibling[u] >= 0:
            s = sizes[u] + k
            acc[s] = acc.get(s, 0) | (1 << u)
    if j < len(kids):
        acc[k] = acc.get(k, 0) | root_bit  # new node's next sibling at +k
    elif kids:
        L = kids[-1]  # old last child gains a next sibling (id < pos)
        acc[sizes[L]] = acc.get(sizes[L], 0) | (1 << L)
    for s, g in subidx.sib_groups:
        acc[s] = acc.get(s, 0) | (g << pos)
    sib_groups = sorted(acc.items())

    # last_child_groups: the affected owners are exactly the chain (a
    # non-chain node u < pos with last_child(u) >= pos would contain the
    # splice, i.e. be an ancestor of P).  Re-add each chain node with its
    # new last-child offset.
    acc = {}
    for d, g in old.last_child_groups:
        g2 = g & ~chain_mask
        if g2:
            acc[d] = acc.get(d, 0) | up(g2)
    for u in chain:
        lc = tree.last_child[u]
        if u == P and j == len(kids):
            lc_new = pos  # inserted at the end: the new node is last
        else:
            lc_new = lc + k if lc >= pos else lc
        acc[lc_new - u] = acc.get(lc_new - u, 0) | (1 << u)
    for d, g in subidx.last_child_groups:
        acc[d] = acc.get(d, 0) | (g << pos)
    last_child_groups = sorted(acc.items())

    index = TreeIndex._from_parts(
        new_tree,
        prefix=prefix,
        label_masks=label_masks,
        after=after,
        children_of=children_of,
        delta_groups=delta_groups,
        sib_groups=sib_groups,
        leaf_mask=leaf_mask,
        first_mask=first_mask,
        last_mask=last_mask,
        last_child_groups=last_child_groups,
    )
    return new_tree, index


def _delete_indexed(tree: Tree, old: TreeIndex, edit: DeleteSubtree):
    labels, parents, x, k = _delete_arrays(tree, edit)
    new_tree = Tree(labels, parents)
    n = old.n
    P = tree.parent[x]
    low = old.prefix[x]
    interval = old.prefix[x + k] ^ low  # the deleted id range [x, x+k)

    def down(mask: int) -> int:
        # Deleted bits shift into [x-k, x) and are cleared by the ~low
        # guard on the high part / absent from the untouched low part.
        return (mask & low) | ((mask >> k) & ~low)

    chain, chain_mask, chain_set = _ancestor_chain(tree, P)

    prefix = [old.prefix[i] for i in range(n - k + 1)]

    after = [0] * (n - k)
    for v in range(x):
        after[v] = old.after[v] - (k if v in chain_set else 0)
    for v in range(x + k, n):
        after[v - k] = old.after[v] - k

    label_masks = {}
    for label, m in old.label_masks.items():
        m = down(m)
        if m:
            label_masks[label] = m

    children_of = [0] * (n - k)
    for v in range(x):
        children_of[v] = down(old.children_of[v])
    for v in range(x + k, n):
        children_of[v - k] = down(old.children_of[v])

    leaf_mask = down(old.leaf_mask)
    first_mask = down(old.first_mask)
    last_mask = down(old.last_mask)
    kids = tree.children_ids(P)
    if len(kids) == 1:
        leaf_mask |= 1 << P  # x was the only child
    prev_sib = tree.prev_sibling[x]
    next_sib = tree.next_sibling[x]
    if prev_sib < 0 and next_sib >= 0:
        first_mask |= 1 << x  # next sibling's new id is next_sib - k == x
    if next_sib < 0 and prev_sib >= 0:
        last_mask |= 1 << prev_sib  # prev sibling (id < x) becomes last

    # delta_groups: clear the deleted interval, then split as on insert.
    # The gap [x + d, x + k + d) is provably empty in every group: a node
    # there would have its parent inside the deleted interval.
    acc: dict[int, int] = {}
    for d, g in old.delta_groups:
        g &= ~interval
        if not g:
            continue
        below = g & low
        bound = x + d if x + d < n else n
        straddle = old.prefix[bound] ^ low
        mid = g & straddle
        high = g & ~low & ~straddle
        if below:
            acc[d] = acc.get(d, 0) | below
        if mid:
            acc[d - k] = acc.get(d - k, 0) | (mid >> k)
        if high:
            acc[d] = acc.get(d, 0) | (high >> k)
    delta_groups = sorted(acc.items())

    sizes = tree.subtree_sizes
    pre_clear = chain_mask | interval
    if next_sib < 0 and prev_sib >= 0:
        pre_clear |= 1 << prev_sib  # prev sibling loses its next sibling
    acc = {}
    for s, g in old.sib_groups:
        g2 = g & ~pre_clear
        if g2:
            acc[s] = acc.get(s, 0) | down(g2)
    for u in chain:
        if tree.next_sibling[u] >= 0:
            s = sizes[u] - k
            acc[s] = acc.get(s, 0) | (1 << u)
    sib_groups = sorted(acc.items())

    acc = {}
    for d, g in old.last_child_groups:
        g2 = g & ~(chain_mask | interval)
        if g2:
            acc[d] = acc.get(d, 0) | down(g2)
    for u in chain:
        lc = tree.last_child[u]
        if u == P and lc == x:
            lc_new = prev_sib if prev_sib >= 0 else None
        elif lc >= x + k:
            lc_new = lc - k
        else:
            lc_new = lc
        if lc_new is not None:
            acc[lc_new - u] = acc.get(lc_new - u, 0) | (1 << u)
    last_child_groups = sorted(acc.items())

    index = TreeIndex._from_parts(
        new_tree,
        prefix=prefix,
        label_masks=label_masks,
        after=after,
        children_of=children_of,
        delta_groups=delta_groups,
        sib_groups=sib_groups,
        leaf_mask=leaf_mask,
        first_mask=first_mask,
        last_mask=last_mask,
        last_child_groups=last_child_groups,
    )
    return new_tree, index


# -- JSON round-trip (the service wire format) --------------------------------

_EDIT_FIELDS = {
    "relabel": {"kind", "node", "label"},
    "delete": {"kind", "node"},
    "insert": {"kind", "parent", "index", "xml", "shape"},
}

def _tree_from_shape_json(obj) -> Tree:
    """Build a tree from the JSON shape form: a label string for a leaf,
    ``[label, [child, ...]]`` for an inner node.  Iterative (like
    :meth:`Tree.build`), so arbitrarily deep shapes never hit the
    recursion limit."""
    labels: list[str] = []
    parents: list[int] = []
    stack = [(obj, -1)]
    while stack:
        item, parent_id = stack.pop()
        if isinstance(item, str):
            label, kids = item, ()
        elif (
            isinstance(item, (list, tuple))
            and len(item) == 2
            and isinstance(item[0], str)
            and isinstance(item[1], (list, tuple))
        ):
            label, kids = item
        else:
            raise ValueError(
                f"bad shape {item!r}: expected a label string or "
                "[label, [children]]"
            )
        my_id = len(labels)
        labels.append(label)
        parents.append(parent_id)
        for kid in reversed(list(kids)):
            stack.append((kid, my_id))
    return Tree(labels, parents)


def _shape_to_json(tree: Tree):
    # Reverse-document-order sweep: children have larger ids, so their
    # shapes are ready when the parent assembles (no recursion).
    shapes: list = [None] * tree.size
    for v in range(tree.size - 1, -1, -1):
        kids = tree.children_ids(v)
        if kids:
            shapes[v] = [tree.labels[v], [shapes[c] for c in kids]]
        else:
            shapes[v] = tree.labels[v]
    return shapes[0]


def edit_from_json(payload) -> "InsertSubtree | DeleteSubtree | Relabel":
    """Decode one edit from its JSON dict (unknown keys/kinds rejected)."""
    if not isinstance(payload, dict):
        raise ValueError(
            f"edit must be a JSON object, got {type(payload).__name__}"
        )
    kind = payload.get("kind")
    if kind not in _EDIT_FIELDS:
        raise ValueError(
            f"unknown edit kind {kind!r}; expected one of "
            f"{sorted(_EDIT_FIELDS)}"
        )
    unknown = set(payload) - _EDIT_FIELDS[kind]
    if unknown:
        raise ValueError(f"unknown edit field(s) for {kind!r}: {sorted(unknown)}")
    if kind == "relabel":
        if "node" not in payload or "label" not in payload:
            raise ValueError("relabel edit requires 'node' and 'label'")
        return Relabel(node=payload["node"], label=payload["label"])
    if kind == "delete":
        if "node" not in payload:
            raise ValueError("delete edit requires 'node'")
        return DeleteSubtree(node=payload["node"])
    if "parent" not in payload or "index" not in payload:
        raise ValueError("insert edit requires 'parent' and 'index'")
    has_xml = "xml" in payload
    has_shape = "shape" in payload
    if has_xml == has_shape:
        raise ValueError("insert edit requires exactly one of 'xml' or 'shape'")
    if has_xml:
        from .xml_io import parse_xml

        subtree = parse_xml(payload["xml"])
    else:
        subtree = _tree_from_shape_json(payload["shape"])
    return InsertSubtree(
        parent=payload["parent"], index=payload["index"], subtree=subtree
    )


def edit_to_json(edit) -> dict:
    """The JSON dict for one edit (inserts carry their subtree as a shape)."""
    if isinstance(edit, Relabel):
        return {"kind": "relabel", "node": edit.node, "label": edit.label}
    if isinstance(edit, DeleteSubtree):
        return {"kind": "delete", "node": edit.node}
    if isinstance(edit, InsertSubtree):
        return {
            "kind": "insert",
            "parent": edit.parent,
            "index": edit.index,
            "shape": _shape_to_json(edit.subtree),
        }
    raise ValueError(f"unknown edit {edit!r}")


# -- the oracle comparison helper --------------------------------------------


def index_fingerprint(index: TreeIndex) -> dict:
    """Every precomputed table of an index, as plain comparable values.

    Two indexes over equal trees must produce identical fingerprints —
    this is the bit-exactness contract the incremental maintenance is
    property-tested against (oracle: ``TreeIndex(tree)`` from scratch).
    """
    n = index.n
    return {
        "n": n,
        "full": index.full,
        "prefix": [index.prefix[i] for i in range(n + 1)],
        "label_masks": dict(index.label_masks),
        "after": list(index.after),
        "children_of": [index.children_of[v] for v in range(n)],
        "delta_groups": [tuple(item) for item in index.delta_groups],
        "sib_groups": [tuple(item) for item in index.sib_groups],
        "last_child_groups": [tuple(item) for item in index.last_child_groups],
        "leaf_mask": index.leaf_mask,
        "internal_mask": index.internal_mask,
        "first_mask": index.first_mask,
        "last_mask": index.last_mask,
    }
