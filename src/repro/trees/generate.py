"""Tree workload generators.

Three kinds of workloads drive the experiments:

* **Exhaustive corpora** — :func:`all_trees` enumerates *every* unranked
  labelled tree up to a node budget.  Any semantic bug in a translation or
  evaluator manifests as a counterexample on such a corpus, which is the
  falsification workhorse behind experiments T1–T4 (see DESIGN.md).
* **Random corpora** — :func:`random_tree` samples trees of a given size with
  controllable branching, catching size-dependent bugs.
* **Shaped families** — chains, stars, combs, full k-ary trees: the extremal
  shapes used by the complexity benchmarks (deep/narrow vs shallow/wide).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from .tree import Tree

DEFAULT_ALPHABET = ("a", "b")


# ---------------------------------------------------------------------------
# Exhaustive enumeration
# ---------------------------------------------------------------------------


def all_shapes(size: int) -> Iterator[list[int]]:
    """Yield the parent array of every unlabelled ordered tree on ``size`` nodes.

    Parent arrays are in document (preorder) order, directly consumable by
    :class:`Tree`.  The count for sizes 1, 2, 3, 4, ... is the Catalan
    sequence 1, 1, 2, 5, 14, 42, ...
    """
    if size <= 0:
        return
    if size == 1:
        yield [-1]
        return
    # A tree on `size` nodes is a root plus an ordered forest of subtrees of
    # total size size-1.  Enumerate compositions of size-1 into subtree sizes.
    for first in range(1, size):
        rest = size - 1 - first
        for first_shape in all_shapes(first):
            # Attach `first_shape` as the first subtree (offset by 1).
            head = [-1] + [p + 1 if p >= 0 else 0 for p in first_shape]
            if rest == 0:
                yield head
            else:
                for tail in all_shapes(rest + 1):
                    # `tail` is a tree whose root stands for our root: graft
                    # its non-root nodes after `head`, shifting ids.
                    offset = len(head) - 1
                    grafted = head + [
                        p + offset if p > 0 else 0 for p in tail[1:]
                    ]
                    yield grafted


def all_trees(
    max_size: int, alphabet: Sequence[str] = DEFAULT_ALPHABET
) -> Iterator[Tree]:
    """Yield every labelled tree with ``1..max_size`` nodes over ``alphabet``.

    There are Catalan(n-1) * |alphabet|**n trees of size n, so keep
    ``max_size`` small: over a 2-letter alphabet the counts for sizes 1..6
    are 2, 4, 16, 80, 448, 2688 (total 3238).  Sizes 5–7 are the sweet spot
    for exhaustive falsification.
    """
    for size in range(1, max_size + 1):
        for shape in all_shapes(size):
            yield from _all_labelings(shape, alphabet)


def _all_labelings(shape: list[int], alphabet: Sequence[str]) -> Iterator[Tree]:
    size = len(shape)
    labels = [alphabet[0]] * size
    k = len(alphabet)

    def rec(i: int) -> Iterator[Tree]:
        if i == size:
            yield Tree(list(labels), shape)
            return
        for letter in alphabet[:k]:
            labels[i] = letter
            yield from rec(i + 1)

    yield from rec(0)


def count_shapes(size: int) -> int:
    """Number of ordered tree shapes on ``size`` nodes (Catalan(size-1))."""
    result = 1
    for i in range(size - 1):
        result = result * 2 * (2 * i + 1) // (i + 2)
    return result


# ---------------------------------------------------------------------------
# Random generation
# ---------------------------------------------------------------------------


def random_tree(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: random.Random | None = None,
    max_branch: int | None = None,
) -> Tree:
    """A uniformly-attached random tree with exactly ``size`` nodes.

    Each new node picks a uniformly random existing node as its parent
    (subject to ``max_branch``) and is appended as its last child; labels are
    uniform over ``alphabet``.  This yields shallow, bushy trees typical of
    document corpora.
    """
    rng = rng or random.Random()
    if size < 1:
        raise ValueError("size must be >= 1")
    # Build parent pointers in insertion order, then renumber to preorder.
    parents = [-1]
    child_counts = [0]
    for i in range(1, size):
        while True:
            p = rng.randrange(i)
            if max_branch is None or child_counts[p] < max_branch:
                break
        parents.append(p)
        child_counts[p] += 1
        child_counts.append(0)
    labels = [rng.choice(alphabet) for _ in range(size)]
    return _renumber_preorder(labels, parents)


def random_deep_tree(
    size: int,
    alphabet: Sequence[str] = DEFAULT_ALPHABET,
    rng: random.Random | None = None,
    depth_bias: float = 0.8,
) -> Tree:
    """A random tree biased toward depth: with probability ``depth_bias``
    each new node extends the most recently added node."""
    rng = rng or random.Random()
    parents = [-1]
    for i in range(1, size):
        if i == 1 or rng.random() < depth_bias:
            parents.append(i - 1)
        else:
            parents.append(rng.randrange(i))
    labels = [rng.choice(alphabet) for _ in range(size)]
    return _renumber_preorder(labels, parents)


def _renumber_preorder(labels: list[str], parents: list[int]) -> Tree:
    """Renumber an arbitrary parent-array tree into document order."""
    size = len(labels)
    children: list[list[int]] = [[] for _ in range(size)]
    for i in range(1, size):
        children[parents[i]].append(i)
    order: list[int] = []
    stack = [0]
    while stack:
        v = stack.pop()
        order.append(v)
        stack.extend(reversed(children[v]))
    new_id = {old: new for new, old in enumerate(order)}
    new_labels = [labels[old] for old in order]
    new_parents = [-1] + [new_id[parents[old]] for old in order[1:]]
    return Tree(new_labels, new_parents)


# ---------------------------------------------------------------------------
# Shaped families
# ---------------------------------------------------------------------------


def chain(length: int, labels: Sequence[str] = ("a",)) -> Tree:
    """A unary chain of ``length`` nodes; labels cycle through ``labels``."""
    if length < 1:
        raise ValueError("length must be >= 1")
    lbls = [labels[i % len(labels)] for i in range(length)]
    parents = [-1] + list(range(length - 1))
    return Tree(lbls, parents)


def star(fanout: int, root_label: str = "a", leaf_label: str = "b") -> Tree:
    """A root with ``fanout`` leaf children."""
    labels = [root_label] + [leaf_label] * fanout
    parents = [-1] + [0] * fanout
    return Tree(labels, parents)


def comb(teeth: int, spine_label: str = "a", tooth_label: str = "b") -> Tree:
    """A right comb: a spine of ``teeth`` nodes, each with one leaf child."""
    labels: list[str] = []
    parents: list[int] = []
    prev_spine = -1
    for _ in range(teeth):
        spine_id = len(labels)
        labels.append(spine_label)
        parents.append(prev_spine)
        labels.append(tooth_label)
        parents.append(spine_id)
        prev_spine = spine_id
    return Tree(labels, parents)


def full_kary(depth: int, k: int = 2, alphabet: Sequence[str] = ("a",)) -> Tree:
    """The complete ``k``-ary tree of the given ``depth`` (depth 0 = leaf).

    Labels cycle through ``alphabet`` by depth.
    """
    labels: list[str] = []
    parents: list[int] = []

    stack: list[tuple[int, int]] = [(-1, 0)]  # (parent id, depth)
    while stack:
        parent_id, d = stack.pop()
        my_id = len(labels)
        labels.append(alphabet[d % len(alphabet)])
        parents.append(parent_id)
        if d < depth:
            for _ in range(k):
                stack.append((my_id, d + 1))
    return _renumber_preorder(labels, parents)


def binary_string_tree(word: str) -> Tree:
    """Encode a string as a chain whose node labels spell the word root-down.

    Handy for transferring string-language intuitions (parity, ``a*b*``
    shapes) to tree languages in tests and the separation experiments.
    """
    if not word:
        raise ValueError("word must be nonempty")
    return chain(len(word), labels=tuple(word))
