"""The sibling-ordered labelled tree data model.

This is the XML data abstraction used throughout the paper: a finite tree
whose nodes carry a single label from a finite alphabet and whose children are
linearly ordered.  Attributes and text content of real XML documents are
mapped onto labels by the parser in :mod:`repro.trees.xml_io`.

Trees are immutable after construction and store their structure in flat
integer arrays, giving O(1) access to every primitive axis step
(``parent``, ``first_child``, ``last_child``, ``next_sibling``,
``prev_sibling``) that the paper's automata and query languages navigate by.
Node ids are preorder (document order) ranks; the root is node ``0``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from .node import Node

#: The structural shape used by :meth:`Tree.build`: a ``(label, children)``
#: pair, where ``children`` is a sequence of nested shapes.  A bare string is
#: accepted as shorthand for a leaf.
TreeShape = "str | tuple[str, Sequence['TreeShape']]"


class Tree:
    """An immutable, sibling-ordered, node-labelled finite tree.

    Construct with :meth:`Tree.build` (from a nested ``(label, children)``
    shape), :func:`repro.trees.xml_io.parse_xml`, or one of the generators in
    :mod:`repro.trees.generate`.
    """

    __slots__ = (
        "labels",
        "parent",
        "first_child",
        "last_child",
        "next_sibling",
        "prev_sibling",
        "depths",
        "child_indexes",
        "subtree_sizes",
        "_children",
        "_alphabet",
        "_shape",
        "_postorder",
        "_engine_index",
        "_store_handle",
    )

    def __init__(self, labels: Sequence[str], parents: Sequence[int]):
        """Build a tree from per-node labels and parent pointers.

        ``parents[i]`` must be the id of node ``i``'s parent, or ``-1`` for
        the root.  Node ids must be in document order: every parent id is
        smaller than its child's id, and the children of each node appear in
        sibling order.  :meth:`Tree.build` produces arrays in this form.
        """
        n = len(labels)
        if n == 0:
            raise ValueError("a tree must have at least one node (the root)")
        if len(parents) != n:
            raise ValueError("labels and parents must have the same length")
        if parents[0] != -1:
            raise ValueError("node 0 must be the root (parent -1)")

        self.labels: tuple[str, ...] = tuple(labels)
        self.parent: tuple[int, ...] = tuple(parents)

        children: list[list[int]] = [[] for _ in range(n)]
        for i in range(1, n):
            p = self.parent[i]
            if not 0 <= p < i:
                raise ValueError(
                    f"node {i} has parent {p}; ids must be in document order"
                )
            children[p].append(i)

        first_child = [-1] * n
        last_child = [-1] * n
        next_sibling = [-1] * n
        prev_sibling = [-1] * n
        child_indexes = [0] * n
        depths = [0] * n
        for v, kids in enumerate(children):
            if kids:
                first_child[v] = kids[0]
                last_child[v] = kids[-1]
            for idx, c in enumerate(kids):
                child_indexes[c] = idx
                if idx > 0:
                    prev_sibling[c] = kids[idx - 1]
                    next_sibling[kids[idx - 1]] = c
        for i in range(1, n):
            depths[i] = depths[self.parent[i]] + 1

        subtree_sizes = [1] * n
        for i in range(n - 1, 0, -1):
            subtree_sizes[self.parent[i]] += subtree_sizes[i]

        # Verify document order: the descendants of v must be exactly the
        # contiguous id range (v, v + subtree_size).  Equivalently, the first
        # child of v is v + 1 and each further child starts right after the
        # previous child's subtree.
        for v, kids in enumerate(children):
            expected = v + 1
            for c in kids:
                if c != expected:
                    raise ValueError("node ids are not in document (preorder) order")
                expected = c + subtree_sizes[c]

        self.first_child = tuple(first_child)
        self.last_child = tuple(last_child)
        self.next_sibling = tuple(next_sibling)
        self.prev_sibling = tuple(prev_sibling)
        self.child_indexes = tuple(child_indexes)
        self.depths = tuple(depths)
        self.subtree_sizes = tuple(subtree_sizes)
        self._children = tuple(tuple(kids) for kids in children)
        self._alphabet: frozenset[str] | None = None
        self._shape = None
        self._postorder: tuple[int, ...] | None = None
        # Per-tree bitset index, built lazily by repro.trees.index and
        # shared by the XPath plans, the logic engine, and the automata.
        self._engine_index = None
        # Set by repro.trees.store when this tree's index views a mapped
        # store file; holds the mmap open for the tree's lifetime.
        self._store_handle = None

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, shape: "TreeShape") -> "Tree":
        """Build a tree from a nested ``(label, children)`` shape.

        >>> t = Tree.build(("a", ["b", ("c", ["d"])]))
        >>> t.size
        4
        >>> t.labels
        ('a', 'b', 'c', 'd')
        """
        labels: list[str] = []
        parents: list[int] = []
        # Iterative preorder walk so deep trees do not hit the recursion limit.
        stack: list[tuple[object, int]] = [(shape, -1)]
        while stack:
            item, parent_id = stack.pop()
            if isinstance(item, str):
                label, kids = item, ()
            else:
                label, kids = item  # type: ignore[misc]
            my_id = len(labels)
            labels.append(label)
            parents.append(parent_id)
            for kid in reversed(list(kids)):
                stack.append((kid, my_id))
        return cls(labels, parents)

    @classmethod
    def leaf(cls, label: str) -> "Tree":
        """A single-node tree."""
        return cls([label], [-1])

    # -- basic attributes ----------------------------------------------------

    @property
    def size(self) -> int:
        """Total number of nodes."""
        return len(self.labels)

    @property
    def root(self) -> Node:
        return Node(self, 0)

    @property
    def height(self) -> int:
        """Number of edges on the longest root-to-leaf path."""
        return max(self.depths)

    @property
    def alphabet(self) -> frozenset[str]:
        """The set of labels actually occurring in this tree."""
        if self._alphabet is None:
            self._alphabet = frozenset(self.labels)
        return self._alphabet

    @property
    def postorder(self) -> tuple[int, ...]:
        """Postorder rank of each node (lazy, computed without recursion).

        Together with the preorder ids this gives the classic XPath
        accelerator pre/post window: ``u`` is an ancestor of ``v`` iff
        ``u < v`` and ``postorder[u] > postorder[v]``.  For preorder ids the
        ranks satisfy ``postorder[v] = v + subtree_size(v) - depth(v) - 1``
        (each of ``v``'s ancestors finishes after ``v``, everything else in
        ``v``'s preorder prefix plus ``v``'s proper subtree finishes first).
        """
        if self._postorder is None:
            self._postorder = tuple(
                v + self.subtree_sizes[v] - self.depths[v] - 1
                for v in range(self.size)
            )
        return self._postorder

    def node(self, node_id: int) -> Node:
        return Node(self, node_id)

    def nodes(self) -> Iterator[Node]:
        """All nodes in document order."""
        for i in range(self.size):
            yield Node(self, i)

    @property
    def node_ids(self) -> range:
        return range(self.size)

    # -- structure queries on ids --------------------------------------------

    def children_ids(self, node_id: int) -> tuple[int, ...]:
        return self._children[node_id]

    def descendant_ids(self, node_id: int) -> range:
        """Ids of proper descendants (contiguous thanks to preorder ids)."""
        return range(node_id + 1, node_id + self.subtree_sizes[node_id])

    def subtree_ids(self, node_id: int) -> range:
        """Ids of the subtree rooted at ``node_id`` (node included)."""
        return range(node_id, node_id + self.subtree_sizes[node_id])

    def is_descendant(self, descendant: int, ancestor: int) -> bool:
        """True iff ``descendant`` is a *proper* descendant of ``ancestor``."""
        return ancestor < descendant < ancestor + self.subtree_sizes[ancestor]

    def is_in_subtree(self, node_id: int, scope_root: int) -> bool:
        """True iff ``node_id`` lies in the subtree rooted at ``scope_root``."""
        return scope_root <= node_id < scope_root + self.subtree_sizes[scope_root]

    def subtree(self, node_id: int) -> "Tree":
        """A standalone copy of the subtree rooted at ``node_id``.

        The paper's ``W`` operator and nested-TWA subtree tests both
        conceptually run queries "within" such a subtree; the evaluators avoid
        this copy by scoped evaluation, but automata tests and the test suite
        use it as a ground truth.
        """
        base = node_id
        span = self.subtree_ids(node_id)
        labels = [self.labels[i] for i in span]
        parents = [-1] + [self.parent[i] - base for i in span][1:]
        return Tree(labels, parents)

    # -- conversion / display --------------------------------------------------

    def to_shape(self) -> "str | tuple[str, list]":
        """The nested ``(label, children)`` shape (leaves as bare strings).

        Built by an iterative reverse-document-order sweep (children have
        larger ids than their parent, so their shapes are always ready),
        which keeps deep chains clear of the recursion limit.
        """
        if self._shape is None:
            shapes: list = [None] * self.size
            for v in range(self.size - 1, -1, -1):
                kids = self._children[v]
                if kids:
                    shapes[v] = (self.labels[v], [shapes[c] for c in kids])
                else:
                    shapes[v] = self.labels[v]
            self._shape = shapes[0]
        return self._shape

    def pretty(self) -> str:
        """An indented one-node-per-line rendering, for debugging."""
        lines = []
        for i in range(self.size):
            lines.append("  " * self.depths[i] + self.labels[i])
        return "\n".join(lines)

    def relabel(self, mapping: dict[str, str]) -> "Tree":
        """A copy with labels replaced via ``mapping`` (missing keys kept)."""
        return Tree([mapping.get(lbl, lbl) for lbl in self.labels], self.parent)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        """Structural equality: same shape and same labels."""
        return (
            isinstance(other, Tree)
            and other.labels == self.labels
            and other.parent == self.parent
        )

    def __hash__(self) -> int:
        return hash((self.labels, self.parent))

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:
        if self.size <= 8:
            return f"Tree({self.to_shape()!r})"
        return f"Tree(<{self.size} nodes, height {self.height}>)"


def iter_document_order(tree: Tree) -> Iterable[Node]:
    """Document-order iteration helper (alias of :meth:`Tree.nodes`)."""
    return tree.nodes()
