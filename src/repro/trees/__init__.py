"""Sibling-ordered labelled trees: the XML data model of the paper.

Public surface:

* :class:`Tree`, :class:`Node` — the immutable tree structure.
* :class:`Axis` and the axis relation helpers.
* :func:`parse_xml` / :func:`to_xml` — XML in and out.
* the workload generators (:func:`random_tree`, :func:`all_trees`, shaped
  families).
* :class:`TreeStore` — the on-disk (RSTR v1) index store with mmap-backed
  loading.
"""

from .axes import (
    Axis,
    CLOSURE_BASE,
    PRIMITIVE_AXES,
    TRANSITIVE_AXES,
    axis_image,
    axis_pairs,
    axis_steps,
    inverse_axis,
)
from .generate import (
    all_shapes,
    all_trees,
    binary_string_tree,
    chain,
    comb,
    count_shapes,
    full_kary,
    random_deep_tree,
    random_tree,
    star,
)
from .index import Scope, TreeIndex, tree_index
from .mutate import (
    DeleteSubtree,
    InsertSubtree,
    Relabel,
    apply_edit,
    apply_edit_indexed,
    apply_edits,
    edit_from_json,
    edit_to_json,
)
from .node import Node
from .share import MaskSlab, detach_tree, dump_index, dump_tree, load_tree
from .store import StoreHandle, TreeStore, index_nbytes, pack_bytes, release_tree
from .tree import Tree
from .wal import WriteAheadLog, recover_registry, tree_digest
from .xml_io import XmlReadOptions, XmlSyntaxError, parse_xml, to_xml

__all__ = [
    "Axis",
    "CLOSURE_BASE",
    "DeleteSubtree",
    "InsertSubtree",
    "MaskSlab",
    "Relabel",
    "PRIMITIVE_AXES",
    "TRANSITIVE_AXES",
    "Node",
    "Scope",
    "StoreHandle",
    "Tree",
    "TreeIndex",
    "TreeStore",
    "WriteAheadLog",
    "detach_tree",
    "dump_index",
    "dump_tree",
    "index_nbytes",
    "load_tree",
    "pack_bytes",
    "release_tree",
    "XmlReadOptions",
    "XmlSyntaxError",
    "all_shapes",
    "all_trees",
    "apply_edit",
    "apply_edit_indexed",
    "apply_edits",
    "axis_image",
    "axis_pairs",
    "axis_steps",
    "binary_string_tree",
    "chain",
    "comb",
    "count_shapes",
    "edit_from_json",
    "edit_to_json",
    "full_kary",
    "inverse_axis",
    "parse_xml",
    "random_deep_tree",
    "random_tree",
    "recover_registry",
    "star",
    "to_xml",
    "tree_digest",
    "tree_index",
]
