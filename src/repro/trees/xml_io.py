"""A small, self-contained XML reader and writer.

The paper (and the whole Core XPath line of work) models XML documents as
sibling-ordered node-labelled trees: element tags become labels; attributes
and text are either dropped or, optionally, rendered as extra child nodes
with synthetic labels (the "attribute-value pairs as a special kind of
children" view discussed in the talk literature).

This is a hand-rolled recursive-descent parser covering the XML subset
relevant to navigational querying: elements, attributes, text, comments,
CDATA sections, processing instructions, an optional XML declaration and
DOCTYPE (skipped), and the five predefined entities.  It is not a validating
parser and does not handle DTDs beyond skipping them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.errors import InputLimitError, ReproSyntaxError
from .tree import Tree

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "apos": "'", "quot": '"'}

#: Synthetic label prefixes for the optional attribute/text encodings.
ATTRIBUTE_PREFIX = "@"
TEXT_LABEL = "#text"

#: Default element-nesting cap.  The reader recurses (~2 interpreter frames)
#: per level and CPython's default recursion limit of 1000 overflows just
#: under depth 500, so 400 trips a clean :class:`InputLimitError` with
#: comfortable margin; raise it explicitly (together with
#: ``sys.setrecursionlimit``) if you really need deeper documents.
DEFAULT_MAX_DEPTH = 400


class XmlSyntaxError(ReproSyntaxError):
    """Raised when the input is not well-formed (for our XML subset)."""


@dataclass
class XmlReadOptions:
    """Controls how an XML document is abstracted into a labelled tree.

    attributes_as_children:
        Encode each attribute ``name="value"`` as a child node labelled
        ``"@name=value"`` (prepended before element children), mirroring the
        "attributes as a special kind of children" abstraction.
    text_as_children:
        Encode each maximal non-whitespace text run as a child labelled
        ``"#text"``.  Navigational XPath cannot see string *content*, only
        the presence of text nodes.
    max_depth:
        Cap on element nesting depth; exceeding it raises
        :class:`~repro.runtime.errors.InputLimitError` instead of letting
        the recursive reader hit ``RecursionError``.
    max_nodes:
        Cap on the total number of tree nodes produced (elements plus
        synthetic attribute/text children); ``None`` means unlimited.
    max_text_length:
        Cap on the raw length of any single text run or attribute value
        (checked *before* entity decoding, so entity-heavy payloads are
        rejected without paying to decode them); ``None`` means unlimited.
    """

    attributes_as_children: bool = False
    text_as_children: bool = False
    max_depth: int = DEFAULT_MAX_DEPTH
    max_nodes: int | None = None
    max_text_length: int | None = None


class _Parser:
    def __init__(self, text: str, options: XmlReadOptions):
        self.text = text
        self.pos = 0
        self.options = options
        self.labels: list[str] = []
        self.parents: list[int] = []
        self._depth = 0

    # -- low-level helpers ---------------------------------------------------

    def error(self, message: str) -> XmlSyntaxError:
        return XmlSyntaxError(message, self.pos)

    def add_node(self, label: str, parent_id: int) -> int:
        max_nodes = self.options.max_nodes
        if max_nodes is not None and len(self.labels) >= max_nodes:
            raise InputLimitError(
                "document exceeds the node-count limit", self.pos, max_nodes
            )
        node_id = len(self.labels)
        self.labels.append(label)
        self.parents.append(parent_id)
        return node_id

    def check_text_length(self, length: int) -> None:
        limit = self.options.max_text_length
        if limit is not None and length > limit:
            raise InputLimitError(
                "text run exceeds the length limit", self.pos, limit
            )

    def peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.pos += len(token)

    def skip_whitespace(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def skip_until(self, token: str, what: str) -> None:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}")
        self.pos = end + len(token)

    def skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, and declarations between elements."""
        while True:
            self.skip_whitespace()
            if self.startswith("<!--"):
                self.pos += 4
                self.skip_until("-->", "comment")
            elif self.startswith("<?"):
                self.pos += 2
                self.skip_until("?>", "processing instruction")
            elif self.startswith("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_doctype(self) -> None:
        self.expect("<!DOCTYPE")
        depth = 1
        while depth > 0:
            if self.pos >= len(self.text):
                raise self.error("unterminated DOCTYPE")
            ch = self.text[self.pos]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            self.pos += 1

    def read_name(self) -> str:
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-.:"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("expected a name")
        return self.text[start : self.pos]

    def decode_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = raw.find(";", i)
            if end < 0:
                raise self.error("unterminated entity reference")
            name = raw[i + 1 : end]
            if name.startswith("#x") or name.startswith("#X"):
                out.append(chr(int(name[2:], 16)))
            elif name.startswith("#"):
                out.append(chr(int(name[1:])))
            elif name in _ENTITIES:
                out.append(_ENTITIES[name])
            else:
                raise self.error(f"unknown entity &{name};")
            i = end + 1
        return "".join(out)

    # -- grammar -------------------------------------------------------------

    def parse_document(self) -> Tree:
        self.skip_misc()
        if not self.startswith("<"):
            raise self.error("expected a root element")
        self.parse_element(parent_id=-1)
        self.skip_misc()
        if self.pos != len(self.text):
            raise self.error("content after the root element")
        return Tree(self.labels, self.parents)

    def parse_element(self, parent_id: int) -> None:
        self._depth += 1
        if self._depth > self.options.max_depth:
            raise InputLimitError(
                "element nesting exceeds the depth limit",
                self.pos,
                self.options.max_depth,
            )
        try:
            self.expect("<")
            name = self.read_name()
            my_id = self.add_node(name, parent_id)

            attributes = self.parse_attributes()
            if self.options.attributes_as_children:
                for key, value in attributes:
                    self.add_node(f"{ATTRIBUTE_PREFIX}{key}={value}", my_id)

            if self.startswith("/>"):
                self.pos += 2
                return
            self.expect(">")
            self.parse_content(my_id, name)
        finally:
            self._depth -= 1

    def parse_attributes(self) -> list[tuple[str, str]]:
        attributes: list[tuple[str, str]] = []
        while True:
            self.skip_whitespace()
            ch = self.peek()
            if ch in (">", "/") or ch == "":
                return attributes
            key = self.read_name()
            self.skip_whitespace()
            self.expect("=")
            self.skip_whitespace()
            quote = self.peek()
            if quote not in ("'", '"'):
                raise self.error("expected a quoted attribute value")
            self.pos += 1
            end = self.text.find(quote, self.pos)
            if end < 0:
                raise self.error("unterminated attribute value")
            self.check_text_length(end - self.pos)
            value = self.decode_entities(self.text[self.pos : end])
            self.pos = end + 1
            attributes.append((key, value))

    def parse_content(self, element_id: int, name: str) -> None:
        text_chunks: list[str] = []

        def flush_text() -> None:
            if not self.options.text_as_children:
                text_chunks.clear()
                return
            joined = "".join(text_chunks).strip()
            text_chunks.clear()
            if joined:
                self.add_node(TEXT_LABEL, element_id)

        while True:
            if self.pos >= len(self.text):
                raise self.error(f"unterminated element <{name}>")
            if self.startswith("</"):
                flush_text()
                self.pos += 2
                closing = self.read_name()
                if closing != name:
                    raise self.error(
                        f"mismatched closing tag </{closing}> for <{name}>"
                    )
                self.skip_whitespace()
                self.expect(">")
                return
            if self.startswith("<!--"):
                self.pos += 4
                self.skip_until("-->", "comment")
            elif self.startswith("<![CDATA["):
                self.pos += 9
                start = self.pos
                self.skip_until("]]>", "CDATA section")
                self.check_text_length(self.pos - 3 - start)
                text_chunks.append(self.text[start : self.pos - 3])
            elif self.startswith("<?"):
                self.pos += 2
                self.skip_until("?>", "processing instruction")
            elif self.startswith("<"):
                flush_text()
                self.parse_element(element_id)
            else:
                start = self.pos
                nxt = self.text.find("<", self.pos)
                self.pos = len(self.text) if nxt < 0 else nxt
                self.check_text_length(self.pos - start)
                text_chunks.append(self.decode_entities(self.text[start : self.pos]))


def parse_xml(text: str, options: XmlReadOptions | None = None) -> Tree:
    """Parse an XML document into a labelled sibling-ordered tree.

    >>> t = parse_xml("<talk><speaker/><title><i/></title></talk>")
    >>> t.labels
    ('talk', 'speaker', 'title', 'i')
    """
    return _Parser(text, options or XmlReadOptions()).parse_document()


def _escape(value: str) -> str:
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def to_xml(tree: Tree, indent: str | None = None) -> str:
    """Serialize a labelled tree back to XML.

    Labels produced by the attribute/text encodings are rendered back as
    attributes and text; all other labels become element tags.  With
    ``indent`` set (e.g. ``"  "``), a pretty-printed form is produced.
    """

    def render(node_id: int, depth: int, out: list[str]) -> None:
        label = tree.labels[node_id]
        pad = "" if indent is None else indent * depth
        newline = "" if indent is None else "\n"
        if label == TEXT_LABEL:
            out.append(f"{pad}(text){newline}" if indent else "(text)")
            return
        attributes = []
        real_children = []
        for child in tree.children_ids(node_id):
            child_label = tree.labels[child]
            if child_label.startswith(ATTRIBUTE_PREFIX) and "=" in child_label:
                key, __, value = child_label[1:].partition("=")
                attributes.append(f' {key}="{_escape(value)}"')
            else:
                real_children.append(child)
        attrs = "".join(attributes)
        if not real_children:
            out.append(f"{pad}<{label}{attrs}/>{newline}")
        else:
            out.append(f"{pad}<{label}{attrs}>{newline}")
            for child in real_children:
                render(child, depth + 1, out)
            out.append(f"{pad}</{label}>{newline}")

    parts: list[str] = []
    render(0, 0, parts)
    return "".join(parts)
