"""The shared per-tree bitset index: precomputed masks and axis kernels.

A :class:`TreeIndex` is built once per tree (and cached on the tree via
:func:`tree_index`) and precomputes everything the bit-parallel engines
need.  It is the common substrate of *three* consumers:

* the compiled XPath query plans (:mod:`repro.xpath.engine.plan`),
* the bitset FO(MTC) model checker (:mod:`repro.logic.engine`),
* the bit-parallel tree-walking-automaton runs (:mod:`repro.automata.twa`).

Precomputed state:

* ``prefix[i] = (1 << i) - 1`` — interval masks ``[a, b)`` are
  ``prefix[b] ^ prefix[a]``;
* per-label bitmasks (label tests become one dict lookup);
* ``after[v] = v + subtree_size(v)`` — the end of ``v``'s preorder
  interval; equivalently ``postorder[v] + depth[v] + 1``;
* per-node children masks (sibling-block masks keyed by the parent);
* *delta groups* for the one-step axes: nodes grouped by ``v - parent(v)``
  (for ``child``/``parent``) and by subtree size (for ``right``/``left``,
  since the next sibling of ``v`` is exactly ``v + subtree_size(v)``).
  A one-step image is then a union of ``(mask & group) << delta`` — a few
  big-int shifts instead of a Python-level loop over nodes;
* local-type flag masks (leaf / first sibling / last sibling) and
  *last-child* delta groups, which turn a walking automaton's observation
  dispatch and down moves into mask intersections and grouped shifts;
* per-source target masks for the logic signature's binary relations
  (``child``, ``right``, ``descendant``, ``following_sibling``), the
  columnar representation the bitset model checker evaluates on.

Axis kernels all have the signature ``kernel(mask, scope) -> mask`` and
assume the input mask is a subset of the scope's subtree interval.  The
scope root behaves exactly like a tree root (no parent, no siblings), which
is what the paper's ``W`` operator requires; whole-tree evaluation is the
special case ``scope root = 0``.
"""

from __future__ import annotations

from .axes import Axis
from .tree import Tree

__all__ = ["Scope", "TreeIndex", "tree_index"]


class Scope:
    """An evaluation scope: the subtree rooted at ``root`` as an interval."""

    __slots__ = ("root", "lo", "hi", "mask", "root_bit")

    def __init__(self, root: int, lo: int, hi: int, mask: int):
        self.root = root
        self.lo = lo
        self.hi = hi
        self.mask = mask
        self.root_bit = 1 << root

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Scope(root={self.root}, ids=[{self.lo}, {self.hi}))"


class TreeIndex:
    """Precomputed bitset indexes and axis kernels for one tree.

    Also owns the compiled-plan caches (filled by
    :mod:`repro.xpath.engine.plan`), so plans are shared by every evaluator
    and every query on the same tree.
    """

    def __init__(self, tree: Tree):
        self.tree = tree
        n = tree.size
        self.n = n

        prefix = [0] * (n + 1)
        mask = 0
        for i in range(n + 1):
            prefix[i] = mask
            mask = (mask << 1) | 1
        self.prefix = prefix
        self.full = prefix[n]

        label_masks: dict[str, int] = {}
        for v, lbl in enumerate(tree.labels):
            label_masks[lbl] = label_masks.get(lbl, 0) | (1 << v)
        self.label_masks = label_masks

        sizes = tree.subtree_sizes
        self.after = [v + sizes[v] for v in range(n)]

        parent = tree.parent
        children_of = [0] * n
        delta_groups: dict[int, int] = {}
        for v in range(1, n):
            p = parent[v]
            children_of[p] |= 1 << v
            d = v - p
            delta_groups[d] = delta_groups.get(d, 0) | (1 << v)
        self.children_of = children_of
        #: (delta, mask-of-nodes-with-that-parent-offset), ascending delta.
        self.delta_groups = sorted(delta_groups.items())

        next_sibling = tree.next_sibling
        sib_groups: dict[int, int] = {}
        for v in range(n):
            if next_sibling[v] >= 0:
                s = sizes[v]  # next sibling sits exactly subtree_size away
                sib_groups[s] = sib_groups.get(s, 0) | (1 << v)
        #: (size, mask-of-nodes-with-a-next-sibling-of-that-offset).
        self.sib_groups = sorted(sib_groups.items())

        # Local-type flag masks (the TWA observation components).  The root
        # flag is scope-dependent and handled by the automaton runners.
        leaf_mask = 0
        first_mask = 0
        last_mask = 0
        for v in range(n):
            if tree.first_child[v] < 0:
                leaf_mask |= 1 << v
            if tree.prev_sibling[v] < 0:
                first_mask |= 1 << v
            if next_sibling[v] < 0:
                last_mask |= 1 << v
        self.leaf_mask = leaf_mask
        #: Nodes with at least one child (their first child is ``v + 1``).
        self.internal_mask = self.full ^ leaf_mask
        self.first_mask = first_mask
        self.last_mask = last_mask

        #: Delta groups for the *last* child: ``last_child(v) = v + d``.
        last_groups: dict[int, int] = {}
        for v in range(n):
            c = tree.last_child[v]
            if c >= 0:
                last_groups[c - v] = last_groups.get(c - v, 0) | (1 << v)
        self.last_child_groups = sorted(last_groups.items())

        self._finalize()

    @classmethod
    def _from_parts(
        cls,
        tree: Tree,
        *,
        prefix,
        label_masks: dict[str, int],
        after: list[int],
        children_of,
        delta_groups: list[tuple[int, int]],
        sib_groups: list[tuple[int, int]],
        leaf_mask: int,
        first_mask: int,
        last_mask: int,
        last_child_groups: list[tuple[int, int]],
    ) -> "TreeIndex":
        """Assemble an index from precomputed state without recomputation.

        This is the shared-memory deserialization entry point
        (:mod:`repro.trees.share`): every mask table is handed in already
        built — possibly as a lazy view over a mapped segment — so
        attaching a tree in a shard process skips the O(n²)-bit
        construction work entirely.  ``prefix`` and ``children_of`` only
        need ``__getitem__``/``__len__``, which is what the kernels use.
        """
        index = object.__new__(cls)
        index.tree = tree
        index.n = tree.size
        index.prefix = prefix
        index.full = prefix[tree.size]
        index.label_masks = label_masks
        index.after = after
        index.children_of = children_of
        index.delta_groups = delta_groups
        index.sib_groups = sib_groups
        index.leaf_mask = leaf_mask
        index.internal_mask = index.full ^ leaf_mask
        index.first_mask = first_mask
        index.last_mask = last_mask
        index.last_child_groups = last_child_groups
        index._finalize()
        return index

    def _finalize(self) -> None:
        """Shared tail of both constructors: lazy tables, caches, kernels."""
        self._after_leq: list[int] | None = None  # lazy, for `preceding`
        self._scopes: dict[int, Scope] = {}
        self._relation_masks: dict[str, dict[int, int]] = {}

        # Compiled-plan caches, keyed *structurally* on the expression
        # (AST nodes are frozen dataclasses).  Filled by engine.plan.
        self.path_plans: dict = {}
        self.node_plans: dict = {}

        self._kernels = {
            Axis.SELF: self.self_,
            Axis.CHILD: self.child,
            Axis.PARENT: self.parent,
            Axis.RIGHT: self.right,
            Axis.LEFT: self.left,
            Axis.DESCENDANT: self.descendant,
            Axis.ANCESTOR: self.ancestor,
            Axis.DESCENDANT_OR_SELF: self.descendant_or_self,
            Axis.ANCESTOR_OR_SELF: self.ancestor_or_self,
            Axis.FOLLOWING_SIBLING: self.following_sibling,
            Axis.PRECEDING_SIBLING: self.preceding_sibling,
            Axis.FOLLOWING: self.following,
            Axis.PRECEDING: self.preceding,
        }

    # -- scopes -----------------------------------------------------------

    def scope(self, root: int | None) -> Scope:
        """The (cached) scope for ``root`` (``None`` = whole tree)."""
        if root is None:
            root = 0
        sc = self._scopes.get(root)
        if sc is None:
            lo, hi = root, self.after[root]
            sc = Scope(root, lo, hi, self.prefix[hi] ^ self.prefix[lo])
            self._scopes[root] = sc
        return sc

    def kernel(self, axis: Axis):
        """The ``(mask, scope) -> mask`` kernel for ``axis``."""
        return self._kernels[axis]

    # -- one-step kernels (grouped shift-and-mask) ------------------------

    def self_(self, S: int, sc: Scope) -> int:
        return S

    def child(self, S: int, sc: Scope) -> int:
        # v is a child of a source iff (v - delta(v)) is a source.
        acc = 0
        for d, gmask in self.delta_groups:
            acc |= (S << d) & gmask
        return acc

    def parent(self, S: int, sc: Scope) -> int:
        S &= ~sc.root_bit  # the scope root navigates like a tree root
        acc = 0
        for d, gmask in self.delta_groups:
            acc |= (S & gmask) >> d
        return acc

    def right(self, S: int, sc: Scope) -> int:
        S &= ~sc.root_bit
        acc = 0
        for s, gmask in self.sib_groups:
            acc |= (S & gmask) << s
        return acc

    def left(self, S: int, sc: Scope) -> int:
        S &= ~sc.root_bit
        acc = 0
        for s, gmask in self.sib_groups:
            acc |= (S >> s) & gmask
        return acc

    # -- walking-automaton move kernels ------------------------------------

    def down_first(self, S: int, sc: Scope) -> int:
        # The first child of an internal node is always the next preorder id.
        return (S & self.internal_mask) << 1

    def down_last(self, S: int, sc: Scope) -> int:
        acc = 0
        for d, gmask in self.last_child_groups:
            acc |= (S & gmask) << d
        return acc

    # -- interval kernels --------------------------------------------------

    def descendant(self, S: int, sc: Scope) -> int:
        # Union of preorder intervals; sources already inside an earlier
        # interval are pruned wholesale (their subtree is covered).
        acc = 0
        prefix = self.prefix
        after = self.after
        rem = S
        while rem:
            low = rem & -rem
            v = low.bit_length() - 1
            acc |= prefix[after[v]] ^ prefix[v + 1]
            rem = (rem ^ low) & ~acc
        return acc

    def descendant_or_self(self, S: int, sc: Scope) -> int:
        return S | self.descendant(S, sc)

    def ancestor(self, S: int, sc: Scope) -> int:
        # Fixpoint of the parent kernel: one sweep per tree level, with the
        # already-reached mask pruning shared ancestor chains.
        acc = 0
        frontier = S
        while frontier:
            frontier = self.parent(frontier, sc) & ~acc
            acc |= frontier
        return acc

    def ancestor_or_self(self, S: int, sc: Scope) -> int:
        return S | self.ancestor(S, sc)

    def following(self, S: int, sc: Scope) -> int:
        # following(S) = [min after(v), scope end): one interval, whose left
        # end is found by descending the first source's subtree chain.
        if not S:
            return 0
        prefix = self.prefix
        after = self.after
        v = (S & -S).bit_length() - 1
        m = after[v]
        while True:
            # Only sources *inside* the current minimum's subtree can end
            # earlier; everything else starts at or after m.
            inner = S & (prefix[m] ^ prefix[v + 1])
            if not inner:
                break
            v = (inner & -inner).bit_length() - 1
            m = after[v]
        return prefix[sc.hi] ^ prefix[m]

    def preceding(self, S: int, sc: Scope) -> int:
        # u precedes some source iff u's subtree ends by the last source:
        # after(u) <= max(S).  One lookup in the cumulative after-table.
        if not S:
            return 0
        return self.after_leq(S.bit_length() - 1) & sc.mask

    # -- sibling closures --------------------------------------------------

    def following_sibling(self, S: int, sc: Scope) -> int:
        # Sibling blocks are the children mask of the parent; following
        # siblings are the block members with larger preorder id.
        S &= ~sc.root_bit
        acc = 0
        parent = self.tree.parent
        children_of = self.children_of
        prefix = self.prefix
        rem = S
        while rem:
            low = rem & -rem
            v = low.bit_length() - 1
            acc |= children_of[parent[v]] & ~prefix[v + 1]
            rem = (rem ^ low) & ~acc
        return acc

    def preceding_sibling(self, S: int, sc: Scope) -> int:
        S &= ~sc.root_bit
        acc = 0
        parent = self.tree.parent
        children_of = self.children_of
        prefix = self.prefix
        rem = S
        while rem:
            v = rem.bit_length() - 1  # descending, so covered bits prune
            acc |= children_of[parent[v]] & prefix[v]
            rem = (rem ^ (1 << v)) & ~acc
        return acc

    # -- columnar relations (the logic engine's atoms) ---------------------

    def relation_masks(self, name: str) -> dict[int, int]:
        """The binary relation ``name`` as a per-source target-mask map.

        ``relation_masks(name)[v]`` is the bitmask of nodes ``w`` with
        ``name(v, w)``; sources with an empty image are absent.  Cached per
        tree — this is the columnar representation the bitset model checker
        (:mod:`repro.logic.engine`) evaluates relational atoms into.
        """
        masks = self._relation_masks.get(name)
        if masks is not None:
            return masks
        tree = self.tree
        n = self.n
        masks = {}
        if name == "child":
            for v in range(n):
                if self.children_of[v]:
                    masks[v] = self.children_of[v]
        elif name == "right":
            for v in range(n):
                w = tree.next_sibling[v]
                if w >= 0:
                    masks[v] = 1 << w
        elif name == "descendant":
            prefix = self.prefix
            for v in range(n):
                m = prefix[self.after[v]] ^ prefix[v + 1]
                if m:
                    masks[v] = m
        elif name == "following_sibling":
            prefix = self.prefix
            parent = tree.parent
            for v in range(n):
                if tree.next_sibling[v] >= 0:
                    masks[v] = self.children_of[parent[v]] & ~prefix[v + 1]
        else:
            raise ValueError(f"unknown relation {name!r}")
        self._relation_masks[name] = masks
        return masks

    # -- lazy tables -------------------------------------------------------

    def after_leq(self, m: int) -> int:
        """Mask of nodes ``u`` whose subtree ends by ``m`` (after(u) <= m)."""
        if self._after_leq is None:
            by_after = [0] * (self.n + 1)
            for u, a in enumerate(self.after):
                by_after[a] |= 1 << u
            acc = 0
            table = []
            for a in range(self.n + 1):
                acc |= by_after[a]
                table.append(acc)
            self._after_leq = table
        return self._after_leq[m]


def tree_index(tree: Tree) -> TreeIndex:
    """The per-tree :class:`TreeIndex`, built once and cached on the tree."""
    index = tree._engine_index
    if index is None:
        index = TreeIndex(tree)
        tree._engine_index = index
    return index
