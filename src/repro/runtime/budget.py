"""Cooperative execution budgets: deadlines, step fuel, cardinality caps.

Every engine in the system — the XPath evaluators, the FO(MTC) model
checkers, the (nested) TWA runners, and the decision procedures — has
worst cases ranging from polynomial-with-huge-constants to non-elementary.
An :class:`ExecutionBudget` makes any such call boundable and cancellable:
the caller constructs one budget, passes it to the engine, and the engine's
hot loops call :meth:`ExecutionBudget.tick` at **checkpoints** — once per
fixpoint round, BFS level, sweep source, or subformula, never per element —
so governance overhead stays a fraction of a percent while cancellation
latency stays one loop iteration.

Three independent caps, each optional:

``timeout``
    Wall-clock seconds from construction.  Checked against a monotonic
    clock on every tick; tripping raises
    :class:`~repro.runtime.errors.DeadlineExceededError`.
``max_steps``
    Cooperative step fuel.  Each checkpoint consumes one step (weighted
    ticks are possible); tripping raises
    :class:`~repro.runtime.errors.BudgetExceededError`.
``max_nodes``
    Result cardinality cap, enforced by the engines on materialized node
    sets / tables via :meth:`ExecutionBudget.check_size`.

A budget is plain mutable state owned by one logical evaluation; it is not
thread-safe and not reusable across unrelated calls (construct a fresh one,
or :meth:`reset_steps` deliberately when degrading to a fallback backend).
``budget=None`` everywhere means "ungoverned" and costs one ``is None``
test per checkpoint.
"""

from __future__ import annotations

import time

from .errors import BudgetExceededError, DeadlineExceededError

__all__ = ["ExecutionBudget"]


class ExecutionBudget:
    """One evaluation's resource envelope (see module docstring).

    >>> budget = ExecutionBudget(timeout=0.05, max_steps=100_000)
    >>> Evaluator(tree, backend="bitset", budget=budget).nodes(expr)
    """

    __slots__ = ("deadline", "max_steps", "max_nodes", "steps", "started", "_clock")

    def __init__(
        self,
        timeout: float | None = None,
        max_steps: int | None = None,
        max_nodes: int | None = None,
        *,
        clock=time.monotonic,
    ):
        if timeout is not None and timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout!r}")
        if max_steps is not None and max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps!r}")
        if max_nodes is not None and max_nodes < 0:
            raise ValueError(f"max_nodes must be >= 0, got {max_nodes!r}")
        self._clock = clock
        self.started = clock()
        self.deadline = None if timeout is None else self.started + timeout
        self.max_steps = max_steps
        self.max_nodes = max_nodes
        self.steps = 0

    @classmethod
    def from_deadline(
        cls,
        deadline: float | None,
        max_steps: int | None = None,
        max_nodes: int | None = None,
        *,
        clock=time.monotonic,
    ) -> "ExecutionBudget":
        """A budget bounded by an *absolute* deadline on ``clock``'s scale.

        This is how the query service derives per-request budgets: the
        deadline is fixed when the request is admitted, and however long the
        request then waits in the queue, the engine-visible budget keeps
        counting down against the same instant.  A deadline already in the
        past is allowed — the first checkpoint trips it, and callers that
        want to shed instead check :attr:`remaining_time` first.
        """
        budget = cls(max_steps=max_steps, max_nodes=max_nodes, clock=clock)
        budget.deadline = deadline
        return budget

    # -- checkpoints -------------------------------------------------------

    def tick(self, weight: int = 1) -> None:
        """Consume ``weight`` steps and enforce the deadline.

        The cooperative checkpoint: engines call this once per loop *round*
        (fixpoint level, sweep source, subformula), so the deadline is
        observed within one round of passing.
        """
        self.steps += weight
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceededError(
                f"step budget exhausted ({self.steps} > {self.max_steps})"
            )
        if self.deadline is not None and self._clock() >= self.deadline:
            raise DeadlineExceededError(
                f"deadline exceeded after {self.elapsed:.3f}s "
                f"({self.steps} steps)"
            )

    def check_size(self, count: int, what: str = "node set") -> None:
        """Enforce the cardinality cap on a materialized result."""
        if self.max_nodes is not None and count > self.max_nodes:
            raise BudgetExceededError(
                f"{what} cardinality {count} exceeds the cap {self.max_nodes}"
            )

    # -- inspection / lifecycle --------------------------------------------

    @property
    def elapsed(self) -> float:
        """Seconds since the budget was constructed."""
        return self._clock() - self.started

    @property
    def remaining_time(self) -> float | None:
        """Seconds until the deadline (None when no deadline is set)."""
        if self.deadline is None:
            return None
        return self.deadline - self._clock()

    @property
    def remaining_steps(self) -> int | None:
        """Steps of fuel left (None when no step cap is set)."""
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self.steps)

    def reset_steps(self) -> None:
        """Refund the step fuel, keeping the wall-clock deadline.

        Used by the guarded degradation path: a fuel cap is a per-attempt
        heuristic, so the oracle retry starts with full fuel — but the
        deadline is global to the logical call and is *not* extended.
        """
        self.steps = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"steps={self.steps}"]
        if self.max_steps is not None:
            parts.append(f"max_steps={self.max_steps}")
        if self.deadline is not None:
            parts.append(f"remaining_time={self.remaining_time:.3f}s")
        if self.max_nodes is not None:
            parts.append(f"max_nodes={self.max_nodes}")
        return f"ExecutionBudget({', '.join(parts)})"
