"""Deterministic fault injection at engine kernel boundaries.

The guarded degradation path (:mod:`repro.runtime.guarded`) only earns its
keep if the failure branches actually run — in CI, not just in production
incidents.  This module lets tests (and operators) *arm* named fault sites;
an armed site makes the engine that checks it raise
:class:`~repro.runtime.errors.InjectedFaultError` at a well-defined kernel
boundary, which exercises the exact code path a real engine bug would take.

Fault sites currently wired into the engines:

=========================  ====================================================
``xpath.bitset``           entry of every public ``BitsetEvaluator`` method
``xpath.bitset.star``      inside the batched Kleene-star frontier sweep
``logic.bitset``           entry of every public ``BitsetModelChecker`` method
``logic.bitset.tc``        inside the semi-naive ``[TC]`` sweep
``automata.bitset``        entry of the bit-parallel configuration sweep
``service.worker``         start of each fast-path attempt in a service worker
``trees.mutate``           inside :meth:`TreeRegistry.mutate`, before the edit
                           is applied (the pre-publish atomicity boundary)
``service.reshare``        per shard, while re-broadcasting a mutated tree's
                           shared-memory segment (leaves that shard stale)
``wal.append``             inside :meth:`WriteAheadLog._append`, before the
                           record reaches the log (the mutation aborts with
                           both the log and the registry untouched)
``service.shard_kill``     checked by the shard supervisor once per poll
                           tick; each fire SIGKILLs one live shard process
                           (chaos testing the crash/respawn/re-dispatch path)
``store.load``             entry of :meth:`TreeStore.load`, before the file
                           is opened (a cold-load failure: the tree stays
                           unresident and the next touch retries)
=========================  ====================================================

Arming is explicit and three-way togglable:

* **API** — ``faults.arm("xpath.bitset")`` / ``faults.disarm()``, the
  scoped ``with faults.inject("xpath.bitset"): ...`` (disarms that one site
  on exit), or ``with faults.scoped("xpath.bitset"): ...`` (snapshots and
  restores the *whole* registry, so pre-existing arming — e.g. from the
  environment — survives the block and nothing armed inside it leaks out);
* **environment** — ``REPRO_FAULTS="xpath.bitset,logic.bitset.tc:2"``
  (comma-separated sites, optional ``:count`` arms only the first *count*
  checks), parsed on import and on :func:`reload_from_env`;
* **CLI** — ``--inject-fault SITE`` on the evaluation subcommands.

The registry is shared mutable state, so test suites should isolate it (the
repo's ``tests/conftest.py`` snapshots and restores it around every test).
Counted decrements in :func:`check` take a lock, making concurrent checks
from service workers safe; the disarmed fast path stays a lock-free
truthiness test of an empty dict, so leaving the checks compiled into the
engines costs nothing measurable.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from .. import obs
from .errors import InjectedFaultError

__all__ = [
    "FAULTS_ENV_VAR",
    "arm",
    "disarm",
    "armed_sites",
    "check",
    "inject",
    "scoped",
    "reload_from_env",
]

FAULTS_ENV_VAR = "REPRO_FAULTS"

#: Armed sites: site -> remaining trigger count (None = every check fires).
_armed: dict[str, int | None] = {}

#: Guards counted decrements and snapshot/restore against concurrent checks.
_lock = threading.Lock()


def arm(site: str, times: int | None = None) -> None:
    """Arm ``site``: its next ``times`` checks (all, when None) will raise."""
    if times is not None and times <= 0:
        raise ValueError(f"times must be positive, got {times!r}")
    with _lock:
        _armed[site] = times


def disarm(site: str | None = None) -> None:
    """Disarm one site, or every site when called without arguments."""
    with _lock:
        if site is None:
            _armed.clear()
        else:
            _armed.pop(site, None)


def armed_sites() -> dict[str, int | None]:
    """A snapshot of the armed sites (site -> remaining count)."""
    with _lock:
        return dict(_armed)


def check(site: str) -> None:
    """The fault point: raise iff ``site`` is armed.  Called by engines."""
    if not _armed:
        return
    with _lock:
        remaining = _armed.get(site, 0)
        if remaining == 0:  # not armed (counted arms are removed at zero)
            return
        if remaining is not None:
            if remaining == 1:
                del _armed[site]
            else:
                _armed[site] = remaining - 1
    # Counted on the raise path only: the disarmed fast path above stays a
    # lock-free dict truthiness test with no metrics work.
    obs.counter("faults_injected_total", site=site).inc()
    raise InjectedFaultError(site)


@contextmanager
def inject(site: str, times: int | None = None):
    """Scoped arming: ``with faults.inject("xpath.bitset"): ...``.

    Disarms exactly that one site on exit.  If the site was already armed
    before entry, that arming is lost — use :func:`scoped` when the
    surrounding state must survive.
    """
    arm(site, times)
    try:
        yield
    finally:
        disarm(site)


@contextmanager
def scoped(*sites: "str | tuple[str, int]"):
    """Registry-isolating arming: snapshot on entry, full restore on exit.

    ``sites`` entries are either a site name (armed for every check) or a
    ``(site, times)`` pair (counted).  Unlike :func:`inject`, *any* mutation
    made inside the block — arming, disarming, counted decrements — is
    rolled back to the entry snapshot, so environment-armed sites and other
    pre-existing state pass through untouched::

        with faults.scoped("xpath.bitset", ("logic.bitset.tc", 2)):
            ...  # the two sites fire here
        ...      # registry exactly as before the block
    """
    with _lock:
        snapshot = dict(_armed)
    try:
        for entry in sites:
            if isinstance(entry, tuple):
                arm(entry[0], entry[1])
            else:
                arm(entry)
        yield
    finally:
        with _lock:
            _armed.clear()
            _armed.update(snapshot)


def reload_from_env(value: str | None = None) -> None:
    """(Re)arm sites from ``REPRO_FAULTS`` (or an explicit spec string).

    Spec grammar: comma-separated ``site`` or ``site:count`` entries;
    whitespace around entries is ignored; an empty/unset variable disarms
    nothing (call :func:`disarm` for that).
    """
    spec = os.environ.get(FAULTS_ENV_VAR, "") if value is None else value
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        site, colon, count = entry.partition(":")
        if colon:
            arm(site.strip(), int(count))
        else:
            arm(site)


reload_from_env()
