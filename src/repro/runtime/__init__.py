"""repro.runtime — the cross-cutting resource-governance layer.

Production queries must be *boundable*, *cancellable*, and *degradable*.
This package provides all three, engine-agnostically:

* :class:`ExecutionBudget` (:mod:`repro.runtime.budget`) — one object
  carrying a wall-clock deadline, a cooperative step/fuel counter, and a
  result-cardinality cap; every engine accepts ``budget=`` and checkpoints
  its hot loops against it;
* the exception taxonomy (:mod:`repro.runtime.errors`) rooted at
  :class:`ReproError`, with one documented CLI exit code per class;
* fault injection (:mod:`repro.runtime.faults`) — deterministically fail
  named kernel boundaries so the failure paths run in CI;
* guarded execution (:mod:`repro.runtime.guarded`) —
  :class:`GuardedEvaluator` / :class:`GuardedModelChecker` retry a failed
  (or, opt-in, budget-tripped) bitset run on the row-wise oracle backend.

The guarded front doors import the engines, which in turn import this
package's errors — so they are loaded lazily via module ``__getattr__`` to
keep ``repro.runtime`` importable from anywhere in the dependency graph.
"""

from . import faults
from .budget import ExecutionBudget
from .errors import (
    EXIT_CODES,
    BudgetExceededError,
    DeadlineExceededError,
    DepthLimitError,
    EngineFaultError,
    InjectedFaultError,
    InputLimitError,
    QueueFullError,
    ReproError,
    ReproSyntaxError,
    RequestShedError,
    ServiceClosedError,
    ServiceError,
    ShardUnavailableError,
    StaleEpochError,
    StoreCorruptError,
    WalCorruptError,
    exit_code_for,
)

__all__ = [
    "EXIT_CODES",
    "BudgetExceededError",
    "DeadlineExceededError",
    "DepthLimitError",
    "EngineFaultError",
    "ExecutionBudget",
    "FallbackStats",
    "GuardedEvaluator",
    "GuardedModelChecker",
    "InjectedFaultError",
    "InputLimitError",
    "QueueFullError",
    "ReproError",
    "ReproSyntaxError",
    "RequestShedError",
    "ServiceClosedError",
    "ServiceError",
    "ShardUnavailableError",
    "StaleEpochError",
    "StoreCorruptError",
    "WalCorruptError",
    "exit_code_for",
    "faults",
    "guarded_check",
    "stats",
]

_LAZY = {"GuardedEvaluator", "GuardedModelChecker", "FallbackStats", "guarded_check", "stats"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import guarded

        return getattr(guarded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
