"""Guarded execution: bitset fast path with row-wise oracle fallback.

The bitset engines (XPath plans, the columnar model checker) are the
performance path; the ``sets``/``table`` backends are the readable oracles
the property suites cross-validate against.  :class:`GuardedEvaluator` and
:class:`GuardedModelChecker` turn that redundancy into a *runtime* escape
hatch: every public call first runs on the fast backend, and if the fast
backend **fails** (an engine bug, or an injected fault from
:mod:`repro.runtime.faults`) the call is transparently retried on the
oracle.  Semantics are unchanged by construction — the oracle defines them.

Degradation policy:

* engine faults and unexpected internal errors → fall back, always;
* :class:`~repro.runtime.errors.BudgetExceededError` (step/cardinality) →
  fall back only with ``retry_on_budget=True``, refunding the step fuel
  (:meth:`~repro.runtime.budget.ExecutionBudget.reset_steps`) but keeping
  the wall-clock deadline;
* :class:`~repro.runtime.errors.DeadlineExceededError` → never retried
  (the deadline is global to the logical call; a slower backend cannot
  beat it);
* input errors (syntax, ``TypeError`` from malformed ASTs) → re-raised:
  they would fail identically on the oracle.

Each guarded instance emits **one** :class:`RuntimeWarning` on its first
fallback (so logs show degradation without flooding) and every fallback
increments the module-wide :data:`stats` counter, which a service can
export; ``stats.fallback_count`` staying at zero is the healthy state.
"""

from __future__ import annotations

import threading
import warnings
from typing import Iterable

from .. import obs
from .budget import ExecutionBudget
from .errors import BudgetExceededError, DeadlineExceededError

__all__ = ["FallbackStats", "GuardedEvaluator", "GuardedModelChecker", "guarded_check", "stats"]


class FallbackStats:
    """Process-wide degradation counters (export these from a service).

    Thread-safe: the module-wide instance is shared by every guarded
    evaluator/checker in the process, and the query service records into it
    from many workers at once, so ``record``/``reset`` serialize on a lock
    (``count += 1`` is a read-modify-write that drops increments under
    concurrent interleaving otherwise).
    """

    __slots__ = ("fallback_count", "last_error", "_lock")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.fallback_count = 0
        self.last_error: BaseException | None = None

    def record(self, exc: BaseException) -> None:
        with self._lock:
            self.fallback_count += 1
            self.last_error = exc
        _FALLBACKS_TOTAL.inc()

    def reset(self) -> None:
        with self._lock:
            self.fallback_count = 0
            self.last_error = None


#: Registry mirror of every :meth:`FallbackStats.record` (monotonic; the
#: per-instance ``fallback_count`` stays resettable for the health checks).
_FALLBACKS_TOTAL = obs.counter("guarded_fallbacks_total")

#: The module-wide fallback counter.
stats = FallbackStats()


class _GuardedBase:
    """Shared retry machinery for the guarded front doors."""

    #: Human-readable backend names, set by subclasses (for the warning).
    _fast_name = ""
    _oracle_name = ""

    def __init__(self, budget: ExecutionBudget | None, retry_on_budget: bool):
        self.budget = budget
        self.retry_on_budget = retry_on_budget
        self.fallback_count = 0
        self._warned = False

    def _run(self, method: str, *args, **kwargs):
        fast = self._fast
        try:
            return getattr(fast, method)(*args, **kwargs)
        except DeadlineExceededError:
            raise
        except BudgetExceededError as exc:
            if not self.retry_on_budget:
                raise
            if self.budget is not None:
                self.budget.reset_steps()
            failure = exc
        except (ValueError, TypeError):
            # Input errors (syntax errors, malformed ASTs, unassigned free
            # variables) are backend-independent: the oracle would raise the
            # same complaint, so retrying only hides the cause.
            raise
        except Exception as exc:
            failure = exc
        self._note_fallback(failure)
        with obs.span(
            "guarded.fallback",
            budget=self.budget,
            method=method,
            error=type(failure).__name__,
            oracle=self._oracle_name,
        ):
            return getattr(self._oracle, method)(*args, **kwargs)

    def _note_fallback(self, exc: BaseException) -> None:
        self.fallback_count += 1
        stats.record(exc)
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"{self._fast_name} backend failed ({exc!r}); "
                f"falling back to the {self._oracle_name} oracle",
                RuntimeWarning,
                stacklevel=3,
            )


class GuardedEvaluator(_GuardedBase):
    """The :class:`~repro.xpath.evaluator.Evaluator` API with degradation.

    ``GuardedEvaluator(tree)`` evaluates on the compiled ``bitset`` backend
    and retries failed calls on the ``sets`` oracle; same ``nodes`` /
    ``image`` / ``preimage`` / ``pairs`` / ``holds_at`` surface.
    """

    _fast_name = "bitset"
    _oracle_name = "sets"

    def __init__(
        self,
        tree,
        budget: ExecutionBudget | None = None,
        *,
        retry_on_budget: bool = False,
    ):
        super().__init__(budget, retry_on_budget)
        from ..xpath.evaluator import Evaluator

        self.tree = tree
        self._fast = Evaluator(tree, backend="bitset", budget=budget)
        self._oracle_lazy = None

    @property
    def _oracle(self):
        if self._oracle_lazy is None:
            from ..xpath.evaluator import Evaluator

            self._oracle_lazy = Evaluator(self.tree, backend="sets", budget=self.budget)
        return self._oracle_lazy

    # -- the Evaluator surface ---------------------------------------------

    def nodes(self, expr, scope: int | None = None) -> frozenset[int]:
        return self._run("nodes", expr, scope)

    def image(self, expr, sources: Iterable[int], scope: int | None = None) -> set[int]:
        return self._run("image", expr, set(sources), scope)

    def preimage(self, expr, targets: Iterable[int], scope: int | None = None) -> set[int]:
        return self._run("preimage", expr, set(targets), scope)

    def pairs(self, expr, scope: int | None = None) -> set[tuple[int, int]]:
        return self._run("pairs", expr, scope)

    def holds_at(self, expr, node_id: int) -> bool:
        return self._run("holds_at", expr, node_id)


class GuardedModelChecker(_GuardedBase):
    """The :class:`~repro.logic.modelcheck.ModelChecker` API with degradation.

    Fast path is the columnar ``bitset`` checker, fallback the row-wise
    ``table`` oracle; same ``table`` / ``holds`` / ``node_set`` / ``pairs``
    surface.
    """

    _fast_name = "bitset"
    _oracle_name = "table"

    def __init__(
        self,
        tree,
        budget: ExecutionBudget | None = None,
        *,
        retry_on_budget: bool = False,
    ):
        super().__init__(budget, retry_on_budget)
        from ..logic.modelcheck import ModelChecker

        self.tree = tree
        self._fast = ModelChecker(tree, backend="bitset", budget=budget)
        self._oracle_lazy = None

    @property
    def _oracle(self):
        if self._oracle_lazy is None:
            from ..logic.modelcheck import ModelChecker

            self._oracle_lazy = ModelChecker(
                self.tree, backend="table", budget=self.budget
            )
        return self._oracle_lazy

    # -- the ModelChecker surface ------------------------------------------

    def table(self, formula):
        return self._run("table", formula)

    def holds(self, formula, env: dict[str, int] | None = None) -> bool:
        return self._run("holds", formula, env)

    def node_set(self, formula, var: str) -> set[int]:
        return self._run("node_set", formula, var)

    def pairs(self, formula, x: str, y: str) -> set[tuple[int, int]]:
        return self._run("pairs", formula, x, y)


def guarded_check(
    tree,
    formula,
    env: dict[str, int] | None = None,
    *,
    budget: ExecutionBudget | None = None,
    retry_on_budget: bool = False,
) -> bool:
    """One-shot guarded truth check: bitset first, table oracle on failure."""
    checker = GuardedModelChecker(tree, budget, retry_on_budget=retry_on_budget)
    return checker.holds(formula, env)
