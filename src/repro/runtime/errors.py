"""The structured exception taxonomy of the runtime-governance layer.

Every failure mode the system can surface — malformed input, resource
exhaustion, and engine faults — is rooted at :class:`ReproError`, so callers
can catch the whole family with one clause while still distinguishing the
classes that need different handling (retry, degrade, report).  The tree::

    ReproError
    ├── ReproSyntaxError (also ValueError)     malformed query/formula/XML text
    │   ├── repro.xpath.XPathSyntaxError
    │   ├── repro.logic.FormulaSyntaxError
    │   └── repro.trees.XmlSyntaxError
    ├── DepthLimitError (also ValueError)      parser nesting-depth cap
    ├── InputLimitError (also ValueError)      XML document size/depth/text caps
    ├── BudgetExceededError                    step-fuel / cardinality cap
    │   └── DeadlineExceededError              wall-clock deadline
    │       └── RequestShedError               shed before execution (service)
    ├── EngineFaultError                       an engine failed mid-run
    │   ├── InjectedFaultError                 ... because a fault was injected
    │   └── StaleEpochError                    shard served an outdated tree epoch
    ├── TreeShareError                         corrupt shared-memory index segment
    ├── StoreCorruptError                      corrupt on-disk store file (RSTR)
    ├── WalCorruptError                        write-ahead log / snapshot corruption
    └── ServiceError                           the serving layer itself
        ├── QueueFullError                     bounded queue rejected a request
        ├── ShardCrashedError                  a shard process died mid-request
        ├── ShardUnavailableError              restart budget exhausted for a shard
        └── ServiceClosedError                 submit after shutdown began

The syntax/limit classes keep ``ValueError`` in their MRO so pre-existing
``except ValueError`` call sites continue to work; budget trips deliberately
do **not** — running out of fuel is an operational condition, not a bad
value, and must not be swallowed by broad input-validation handlers.

:data:`EXIT_CODES` is the CLI contract: one documented exit code per error
class (see :mod:`repro.cli`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ReproSyntaxError",
    "DepthLimitError",
    "InputLimitError",
    "BudgetExceededError",
    "DeadlineExceededError",
    "RequestShedError",
    "EngineFaultError",
    "InjectedFaultError",
    "StaleEpochError",
    "TreeShareError",
    "StoreCorruptError",
    "WalCorruptError",
    "ServiceError",
    "QueueFullError",
    "ShardCrashedError",
    "ShardUnavailableError",
    "ServiceClosedError",
    "EXIT_CODES",
    "exit_code_for",
]


class ReproError(Exception):
    """Root of every structured error raised by this package."""


class ReproSyntaxError(ReproError, ValueError):
    """Malformed input text (query, formula, or XML).

    Subclasses carry a ``position`` attribute (character offset into the
    source text) and render it into the message.
    """

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class DepthLimitError(ReproError, ValueError):
    """Input nesting exceeds a parser's explicit depth limit.

    Raised *instead of* an uncontrolled ``RecursionError``: the parsers
    count grammar nesting and stop with a clean message (and position) long
    before the interpreter stack would overflow.
    """

    def __init__(self, message: str, position: int, limit: int):
        super().__init__(f"{message} (at offset {position}; limit {limit})")
        self.position = position
        self.limit = limit


class InputLimitError(ReproError, ValueError):
    """An XML document exceeds a configured read limit.

    Raised by :class:`repro.trees.xml_io.XmlReadOptions` caps
    (``max_depth`` / ``max_nodes`` / ``max_text_length``).
    """

    def __init__(self, message: str, position: int, limit: int):
        super().__init__(f"{message} (at offset {position}; limit {limit})")
        self.position = position
        self.limit = limit


class BudgetExceededError(ReproError):
    """An :class:`~repro.runtime.budget.ExecutionBudget` cap was hit.

    Covers the step/fuel counter and the node-set cardinality cap; the
    wall-clock deadline has its own subclass because callers treat it
    differently (a tripped deadline is never worth retrying on a slower
    backend, a tripped fuel cap may be).
    """


class DeadlineExceededError(BudgetExceededError):
    """The budget's wall-clock deadline passed mid-evaluation."""


class RequestShedError(DeadlineExceededError):
    """A queued request was shed before execution started.

    Raised (or attached to a structured result) by the query service when a
    request's deadline passes while it is still waiting in the queue, or
    when the service shuts down without draining.  Subclasses
    :class:`DeadlineExceededError` because the caller-visible meaning is the
    same — the deadline is unmeetable — but the distinct class records that
    *no* engine work was wasted on it.
    """


class EngineFaultError(ReproError):
    """An evaluation engine failed at a kernel boundary."""


class InjectedFaultError(EngineFaultError):
    """A deterministically injected fault (see :mod:`repro.runtime.faults`).

    Only ever raised when a fault site has been armed explicitly — via the
    API, the ``REPRO_FAULTS`` environment variable, or the CLI's
    ``--inject-fault`` — so production runs never see this class.
    """

    def __init__(self, site: str):
        super().__init__(f"injected fault at {site!r}")
        self.site = site


class StaleEpochError(EngineFaultError):
    """A read was executed against an outdated epoch of a live tree.

    Raised by the sharded service when a shard's attached copy of a named
    tree is older than the epoch the request was stamped with at dispatch
    time — i.e. a mutation was published but its re-share has not reached
    the shard yet.  Subclasses :class:`EngineFaultError` because the
    condition is transient and retryable: the parent heals the lagging
    shard by re-broadcasting the current segment and re-dispatching.
    """

    def __init__(self, tree: str, local_epoch: int, min_epoch: int):
        super().__init__(
            f"tree {tree!r} is at epoch {local_epoch}, "
            f"request requires >= {min_epoch}"
        )
        self.tree = tree
        self.local_epoch = local_epoch
        self.min_epoch = min_epoch


class TreeShareError(ReproError):
    """A shared-memory :class:`~repro.trees.index.TreeIndex` segment failed
    validation.

    Raised when attaching a segment whose magic, version, declared size,
    checksum, or section bounds do not hold — a truncated or corrupted
    segment must fail loudly here instead of reconstructing wrong masks
    and silently returning wrong query answers.
    """


class StoreCorruptError(ReproError):
    """An on-disk store file (RSTR v1) failed validation.

    Raised by :mod:`repro.trees.store` when a stored tree's magic, version,
    declared size (a truncated tail), table checksum, or any per-section
    CRC does not hold.  Every section CRC is verified *eagerly* at load
    time, before any mask is reconstructed, so a flipped bit on disk fails
    loudly here — it can never surface as a silently wrong query answer.
    """


class WalCorruptError(ReproError):
    """A write-ahead log record or snapshot failed validation.

    Raised by :mod:`repro.trees.wal` when a framed record's length/CRC
    header does not match its payload *before* the torn tail (a torn tail —
    an interrupted final append — is expected after a crash and is silently
    truncated), or when a snapshot's checksum or a record's post-state
    digest disagrees with the replayed tree.  Corruption in the durable
    history must fail loudly rather than recover a silently wrong registry.
    """


class ServiceError(ReproError):
    """The serving layer itself (queue, worker pool) refused a request."""


class QueueFullError(ServiceError):
    """The bounded request queue is at capacity (backpressure signal).

    Only raised on *non-blocking* submission; blocking submitters wait for
    space instead.  Callers should slow down or shed load upstream.
    """


class ShardCrashedError(ServiceError):
    """A shard process died while requests routed to it were outstanding.

    Every such request resolves with a structured error carrying this
    class — the sharded service's variant of the no-lost-requests
    invariant — and subsequent requests routed to the dead shard fail
    fast instead of queueing forever.
    """


class ShardUnavailableError(ServiceError):
    """A shard exhausted its restart budget and was taken out of service.

    The supervised sharded service respawns crashed shards under a rolling
    restart budget; once the budget is spent, requests routed to the failed
    shard resolve with this class instead of queueing or retrying forever.
    Unlike :class:`ShardCrashedError` (a transient mid-request casualty,
    retryable once the shard respawns), this is a *terminal* degradation
    signal for the affected trees: operator action (or a service restart,
    possibly via ``repro recover``) is required.
    """


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that has begun shutdown."""


#: The CLI exit-code contract, one code per error class.  2 doubles as
#: argparse's own usage-error code; 1 stays reserved for semantic "no"
#: results (NOT equivalent / UNSATISFIABLE / FAILS).
EXIT_CODES = {
    "syntax": 2,
    "io": 3,
    "deadline": 4,
    "budget": 5,
    "depth": 6,
    "input_limit": 7,
    "engine": 8,
    "overload": 9,
    "unavailable": 10,
}


def exit_code_for(exc: BaseException) -> int:
    """The documented CLI exit code for an exception (2 for unknown errors)."""
    if isinstance(exc, ShardUnavailableError):
        return EXIT_CODES["unavailable"]
    if isinstance(exc, DeadlineExceededError):
        return EXIT_CODES["deadline"]
    if isinstance(exc, BudgetExceededError):
        return EXIT_CODES["budget"]
    if isinstance(exc, DepthLimitError):
        return EXIT_CODES["depth"]
    if isinstance(exc, InputLimitError):
        return EXIT_CODES["input_limit"]
    if isinstance(exc, EngineFaultError):
        return EXIT_CODES["engine"]
    if isinstance(exc, TreeShareError):
        return EXIT_CODES["io"]
    if isinstance(exc, StoreCorruptError):
        return EXIT_CODES["io"]
    if isinstance(exc, WalCorruptError):
        return EXIT_CODES["io"]
    if isinstance(exc, ServiceError):
        return EXIT_CODES["overload"]
    if isinstance(exc, OSError):
        return EXIT_CODES["io"]
    return EXIT_CODES["syntax"]
