"""Exact decision procedures for the downward fragment.

Corpus-based equivalence (:mod:`repro.decision.equivalence`) is bounded; for
*downward* Regular XPath(W) expressions we can do better and decide
satisfiability, equivalence and containment **exactly**, with witness trees.
This is the query-language face of theorem T4: downward queries compile to
bottom-up tree automata.

The construction avoids materializing hedge automata.  For a downward node
expression φ, the truth of every subexpression at a node ``v`` is determined
by ``v``'s label together with a finite summary of its children:

* each node subexpression contributes a truth **bit** (``W ψ`` shares ψ's
  bit — downward tests cannot see outside the subtree, which is the
  fragment's defining property);
* each path expression ``p`` under an ``⟨p⟩`` contributes an **alive set**:
  the NFA states of ``p``'s step automaton (over the instruction alphabet
  ``CHILD`` / ``TEST ψ`` / ε) from which a match can complete inside the
  subtree of ``v``.  Descending moves consult the *union* of the children's
  alive sets, so the whole summary is a fold over children.

The summary (bit vector + alive-set vector) is the node's **state**; the
state space is finite, and the set of *reachable* states over all trees is
computed by a least fixpoint over (state, union-of-alive-vectors) pairs,
with provenance tracked so every answer comes with a concrete witness tree.

Soundness is cross-validated against the corpus harness by the test suite:
whenever the exact procedure says "equivalent", no corpus counterexample
exists; whenever it says "inequivalent", its witness tree really
distinguishes the expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..runtime.budget import ExecutionBudget
from ..trees.axes import Axis
from ..trees.tree import Tree
from ..xpath import ast as xp
from ..xpath.fragments import is_downward

__all__ = [
    "NotDownward",
    "DownwardAnalysis",
    "exact_satisfiable",
    "exact_equivalent",
    "exact_contained",
    "exact_path_equivalent",
]


class NotDownward(ValueError):
    """The expression is outside the downward fragment."""


# ---------------------------------------------------------------------------
# Path step automata: ε-NFAs over CHILD / TEST instructions
# ---------------------------------------------------------------------------


@dataclass
class _StepNfa:
    """An ε-NFA whose edges are ``("child",)``, ``("test", node_expr)`` or ε.

    Matching starts at ``start``; reaching ``final`` means the path has
    found its endpoint (the endpoint itself needs no further checks: tests
    are edges).
    """

    num_states: int = 2
    start: int = 0
    final: int = 1
    child_edges: list[tuple[int, int]] = field(default_factory=list)
    test_edges: list[tuple[int, xp.NodeExpr, int]] = field(default_factory=list)
    epsilon_edges: list[tuple[int, int]] = field(default_factory=list)

    def fresh(self) -> int:
        state = self.num_states
        self.num_states += 1
        return state


def _build_step_nfa(path: xp.PathExpr) -> _StepNfa:
    nfa = _StepNfa()
    _add_path(path, nfa, nfa.start, nfa.final)
    return nfa


def _add_path(path: xp.PathExpr, nfa: _StepNfa, src: int, dst: int) -> None:
    if isinstance(path, xp.Step):
        if path.axis is Axis.SELF:
            nfa.epsilon_edges.append((src, dst))
        elif path.axis is Axis.CHILD:
            nfa.child_edges.append((src, dst))
        elif path.axis is Axis.DESCENDANT:
            hub = nfa.fresh()
            nfa.child_edges.append((src, hub))
            nfa.child_edges.append((hub, hub))
            nfa.epsilon_edges.append((hub, dst))
        elif path.axis is Axis.DESCENDANT_OR_SELF:
            # The descend-loop must live on a fresh hub, never on ``dst``:
            # fragments compose by sharing states, so an edge *at* dst
            # (e.g. a Star hub) would be reachable from every other path
            # into that state, admitting descents the axis never made.
            nfa.epsilon_edges.append((src, dst))
            hub = nfa.fresh()
            nfa.child_edges.append((src, hub))
            nfa.child_edges.append((hub, hub))
            nfa.epsilon_edges.append((hub, dst))
        else:
            raise NotDownward(f"axis {path.axis!r} is outside the downward fragment")
    elif isinstance(path, xp.Seq):
        middle = nfa.fresh()
        _add_path(path.left, nfa, src, middle)
        _add_path(path.right, nfa, middle, dst)
    elif isinstance(path, xp.Union):
        _add_path(path.left, nfa, src, dst)
        _add_path(path.right, nfa, src, dst)
    elif isinstance(path, xp.Star):
        hub = nfa.fresh()
        nfa.epsilon_edges.append((src, hub))
        _add_path(path.path, nfa, hub, hub)
        nfa.epsilon_edges.append((hub, dst))
    elif isinstance(path, xp.Check):
        nfa.test_edges.append((src, path.test, dst))
    elif isinstance(path, xp.EmptyPath):
        pass
    else:
        raise NotDownward(f"unknown path expression {path!r}")


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _State:
    """The bottom-up summary of a subtree: subexpression bits + alive sets."""

    bits: tuple[bool, ...]
    alive: tuple[frozenset[int], ...]


class DownwardAnalysis:
    """Exact analysis of one or more downward node expressions.

    All expressions are analysed jointly (one shared closure), so their bits
    live in the same reachable states and can be compared directly.
    """

    def __init__(
        self,
        expressions: Sequence[xp.NodeExpr],
        alphabet: Sequence[str],
        budget: ExecutionBudget | None = None,
    ):
        self.budget = budget
        self.alphabet = tuple(alphabet)
        if not self.alphabet:
            raise ValueError("the alphabet must be nonempty")
        for expr in expressions:
            if not is_downward(expr):
                raise NotDownward(f"{expr} is outside the downward fragment")
        self.expressions = tuple(expressions)
        # Closure: node subexpressions in bottom-up dependency order.
        self._index: dict[xp.NodeExpr, int] = {}
        self._order: list[xp.NodeExpr] = []
        self._nfas: list[_StepNfa] = []
        self._nfa_index: dict[xp.PathExpr, int] = {}
        for expr in expressions:
            self._register(expr)
        self._reachable: dict[_State, object] | None = None

    # -- closure construction ------------------------------------------------

    def _register(self, expr: xp.NodeExpr) -> int:
        if expr in self._index:
            return self._index[expr]
        if isinstance(expr, (xp.Label, xp.TrueNode)):
            pass
        elif isinstance(expr, xp.Not):
            self._register(expr.operand)
        elif isinstance(expr, (xp.And, xp.Or)):
            self._register(expr.left)
            self._register(expr.right)
        elif isinstance(expr, xp.Within):
            self._register(expr.test)
        elif isinstance(expr, xp.Exists):
            if expr.path not in self._nfa_index:
                nfa = _build_step_nfa(expr.path)
                for __, test, __dst in nfa.test_edges:
                    self._register(test)
                self._nfa_index[expr.path] = len(self._nfas)
                self._nfas.append(nfa)
        else:
            raise NotDownward(f"unknown node expression {expr!r}")
        self._index[expr] = len(self._order)
        self._order.append(expr)
        return self._index[expr]

    def bit_of(self, expr: xp.NodeExpr, state: _State) -> bool:
        """The truth of a registered expression in a subtree state."""
        return state.bits[self._index[expr]]

    # -- the transition function -----------------------------------------------

    def state_for(self, label: str, children_alive: tuple[frozenset[int], ...]) -> _State:
        """Compute the state of a node from its label and the *union* of its
        children's alive sets (one frozenset per path NFA)."""
        bits: list[bool] = []
        alive: list[frozenset[int] | None] = [None] * len(self._nfas)

        def alive_for(nfa_id: int) -> frozenset[int]:
            if alive[nfa_id] is not None:
                return alive[nfa_id]  # type: ignore[return-value]
            nfa = self._nfas[nfa_id]
            below = children_alive[nfa_id]
            result: set[int] = {nfa.final}
            changed = True
            while changed:
                changed = False
                for src, dst in nfa.epsilon_edges:
                    if dst in result and src not in result:
                        result.add(src)
                        changed = True
                for src, dst in nfa.child_edges:
                    if dst in below and src not in result:
                        result.add(src)
                        changed = True
                for src, test, dst in nfa.test_edges:
                    if dst in result and src not in result:
                        if bits[self._index[test]]:
                            result.add(src)
                            changed = True
            alive[nfa_id] = frozenset(result)
            return alive[nfa_id]  # type: ignore[return-value]

        for expr in self._order:
            if isinstance(expr, xp.Label):
                bits.append(label == expr.name)
            elif isinstance(expr, xp.TrueNode):
                bits.append(True)
            elif isinstance(expr, xp.Not):
                bits.append(not bits[self._index[expr.operand]])
            elif isinstance(expr, xp.And):
                bits.append(
                    bits[self._index[expr.left]] and bits[self._index[expr.right]]
                )
            elif isinstance(expr, xp.Or):
                bits.append(
                    bits[self._index[expr.left]] or bits[self._index[expr.right]]
                )
            elif isinstance(expr, xp.Within):
                bits.append(bits[self._index[expr.test]])
            elif isinstance(expr, xp.Exists):
                nfa_id = self._nfa_index[expr.path]
                nfa = self._nfas[nfa_id]
                bits.append(nfa.start in alive_for(nfa_id))
            else:  # pragma: no cover - registration rejects unknowns
                raise NotDownward(f"unknown node expression {expr!r}")

        full_alive = tuple(alive_for(i) for i in range(len(self._nfas)))
        return _State(tuple(bits), full_alive)

    def state_of_tree(self, tree: Tree, node_id: int = 0) -> _State:
        """The state of a concrete subtree (bottom-up evaluation)."""
        states: dict[int, _State] = {}
        zero = tuple(frozenset() for __ in self._nfas)
        for v in reversed(tree.subtree_ids(node_id)):
            kids = tree.children_ids(v)
            if kids:
                union = tuple(
                    frozenset().union(*(states[c].alive[i] for c in kids))
                    for i in range(len(self._nfas))
                )
            else:
                union = zero
            states[v] = self.state_for(tree.labels[v], union)
        return states[node_id]

    # -- reachability over all trees ---------------------------------------------

    def reachable_states(self) -> dict[_State, Tree]:
        """All states realized by *some* tree over the alphabet, each with a
        (small) witness tree realizing it."""
        if self._reachable is not None:
            return self._reachable  # type: ignore[return-value]
        zero = tuple(frozenset() for __ in self._nfas)
        # U-vectors reachable as unions of children alive-vectors, with the
        # child lists witnessing them.
        u_witness: dict[tuple[frozenset[int], ...], list[Tree]] = {zero: []}
        states: dict[_State, Tree] = {}
        budget = self.budget
        changed = True
        while changed:
            changed = False
            for union, children in list(u_witness.items()):
                if budget is not None:
                    # One checkpoint per explored U-vector per round; the
                    # reachable state space can be exponential in the query.
                    budget.tick()
                for label in self.alphabet:
                    state = self.state_for(label, union)
                    if state not in states:
                        shape = (label, [t.to_shape() for t in children])
                        states[state] = Tree.build(shape)
                        changed = True
            for state, tree in list(states.items()):
                if budget is not None:
                    budget.tick()
                for union, children in list(u_witness.items()):
                    bigger = tuple(
                        union[i] | state.alive[i] for i in range(len(self._nfas))
                    )
                    if bigger not in u_witness:
                        u_witness[bigger] = children + [tree]
                        changed = True
        self._reachable = states
        return states


# ---------------------------------------------------------------------------
# Public decision procedures
# ---------------------------------------------------------------------------


def exact_satisfiable(
    expr: xp.NodeExpr,
    alphabet: Sequence[str] = ("a", "b"),
    budget: ExecutionBudget | None = None,
) -> Tree | None:
    """A tree whose *root* satisfies the downward expression, or None.

    For downward expressions, root satisfiability coincides with
    satisfiability at any node (a subtree is itself a tree).  This is a
    complete decision procedure, unlike the corpus-bounded
    :func:`repro.decision.equivalence.find_satisfying_node`.
    """
    analysis = DownwardAnalysis([expr], alphabet, budget)
    for state, witness in analysis.reachable_states().items():
        if analysis.bit_of(expr, state):
            return witness
    return None


def exact_equivalent(
    left: xp.NodeExpr,
    right: xp.NodeExpr,
    alphabet: Sequence[str] = ("a", "b"),
    budget: ExecutionBudget | None = None,
) -> Tree | None:
    """None if the two downward expressions agree at every node of every
    tree over ``alphabet``; otherwise a witness tree whose root satisfies
    exactly one of them."""
    analysis = DownwardAnalysis([left, right], alphabet, budget)
    for state, witness in analysis.reachable_states().items():
        if analysis.bit_of(left, state) != analysis.bit_of(right, state):
            return witness
    return None


def exact_contained(
    small: xp.NodeExpr,
    large: xp.NodeExpr,
    alphabet: Sequence[str] = ("a", "b"),
    budget: ExecutionBudget | None = None,
) -> Tree | None:
    """None if ``[[small]] ⊆ [[large]]`` at every node of every tree;
    otherwise a witness tree whose root satisfies ``small`` but not
    ``large``."""
    analysis = DownwardAnalysis([small, large], alphabet, budget)
    for state, witness in analysis.reachable_states().items():
        if analysis.bit_of(small, state) and not analysis.bit_of(large, state):
            return witness
    return None


# ---------------------------------------------------------------------------
# Exact path equivalence via the marking reduction
# ---------------------------------------------------------------------------

_MARK_SUFFIX = "#"


def _accept_both(expr: xp.NodeExpr) -> xp.NodeExpr:
    """Make label tests insensitive to the mark: ``a`` matches ``a#`` too."""
    if isinstance(expr, xp.Label):
        return xp.Or(expr, xp.Label(expr.name + _MARK_SUFFIX))
    if isinstance(expr, xp.TrueNode):
        return expr
    if isinstance(expr, xp.Not):
        return xp.Not(_accept_both(expr.operand))
    if isinstance(expr, xp.And):
        return xp.And(_accept_both(expr.left), _accept_both(expr.right))
    if isinstance(expr, xp.Or):
        return xp.Or(_accept_both(expr.left), _accept_both(expr.right))
    if isinstance(expr, xp.Within):
        return xp.Within(_accept_both(expr.test))
    if isinstance(expr, xp.Exists):
        return xp.Exists(_mark_path(expr.path))
    raise NotDownward(f"unknown node expression {expr!r}")


def _mark_path(path: xp.PathExpr) -> xp.PathExpr:
    if isinstance(path, (xp.Step, xp.EmptyPath)):
        return path
    if isinstance(path, xp.Seq):
        return xp.Seq(_mark_path(path.left), _mark_path(path.right))
    if isinstance(path, xp.Union):
        return xp.Union(_mark_path(path.left), _mark_path(path.right))
    if isinstance(path, xp.Star):
        return xp.Star(_mark_path(path.path))
    if isinstance(path, xp.Check):
        return xp.Check(_accept_both(path.test))
    raise NotDownward(f"unknown path expression {path!r}")


def exact_path_equivalent(
    left: xp.PathExpr,
    right: xp.PathExpr,
    alphabet: Sequence[str] = ("a", "b"),
    budget: ExecutionBudget | None = None,
) -> Tree | None:
    """Exact relation equivalence for downward *path* expressions.

    The marking reduction: double the alphabet with marked variants
    (``a`` → ``a#``), make both paths mark-insensitive, and compare the node
    expressions "some marked node is p-reachable".  Over marked trees this
    bit records exactly the relation, so the node-level exact procedure
    decides relation equality.  Returns None (equivalent) or a marked
    witness tree: its root reaches a marked node under exactly one path.
    """
    if not (is_downward(left) and is_downward(right)):
        raise NotDownward("exact path equivalence covers the downward fragment")
    marked_labels = [label + _MARK_SUFFIX for label in alphabet]
    marked_test = None
    for label in marked_labels:
        atom = xp.Label(label)
        marked_test = atom if marked_test is None else xp.Or(marked_test, atom)
    assert marked_test is not None
    left_node = xp.Exists(xp.Seq(_mark_path(left), xp.Check(marked_test)))
    right_node = xp.Exists(xp.Seq(_mark_path(right), xp.Check(marked_test)))
    return exact_equivalent(
        left_node, right_node, tuple(alphabet) + tuple(marked_labels), budget
    )
