"""Schema-aware exact static analysis: XPath decision problems *under a DTD*.

Satisfiability and equivalence of XPath queries relative to a schema is the
classic database-theory setting (a query that is satisfiable in general may
be vacuous over the documents a DTD admits, and vice versa).  For downward
Regular XPath(W) and DTD schemas both problems are decided **exactly** here,
with conforming witness documents.

Construction: the truth-vector analysis of :mod:`repro.decision.exact`
explores subtree states as a fold over children; a DTD constrains children
*sequences* per parent label, so the joint exploration threads, alongside
the analysis' union-of-alive-sets, one content-model NFA simulation per
element name.  A vertical state is then (analysis state, element name), and
only conforming combinations are reachable.

"Holds at some node" reduces to "holds at the root" by analysing
``φ ∨ ⟨descendant[φ]⟩`` instead of ``φ``; equivalence under the schema
reduces to schema-satisfiability of the symmetric difference.
"""

from __future__ import annotations

from typing import Sequence

from ..automata.dtd import Dtd, parse_content_model
from ..trees.tree import Tree
from ..xpath import ast as xp
from .exact import DownwardAnalysis

__all__ = [
    "exact_satisfiable_under",
    "exact_equivalent_under",
    "exact_contained_under",
]


def _somewhere(expr: xp.NodeExpr) -> xp.NodeExpr:
    """``expr`` holds at the context node or below it."""
    return xp.Or(expr, xp.Exists(xp.filter_(xp.DESCENDANT, expr)))


class _SchemaAnalysis:
    """Joint reachable-state exploration: analysis states × DTD conformance."""

    def __init__(self, expressions: Sequence[xp.NodeExpr], dtd: Dtd):
        self.dtd = dtd
        self.elements = dtd.elements
        self.analysis = DownwardAnalysis(expressions, self.elements)
        symbol_of = {name: i for i, name in enumerate(self.elements)}
        self.symbol_of = symbol_of
        self.models = {
            name: parse_content_model(model, symbol_of)
            for name, model in dtd.content.items()
        }

    def reachable(self) -> dict[tuple[object, str], Tree]:
        """All (analysis state, element) pairs realized by a conforming
        subtree, each with a witness."""
        analysis = self.analysis
        zero_union = tuple(frozenset() for __ in analysis._nfas)
        start_h = {
            name: self.models[name].start_set() for name in self.elements
        }

        def fold_key(fold):
            union, h = fold
            return (union, tuple(sorted((k, v) for k, v in h.items())))

        empty_fold = (zero_union, start_h)
        folds: dict[object, tuple[object, list[Tree]]] = {
            fold_key(empty_fold): (empty_fold, [])
        }
        states: dict[tuple[object, str], Tree] = {}
        changed = True
        while changed:
            changed = False
            for __, (fold, children) in list(folds.items()):
                union, h = fold
                for name in self.elements:
                    if not self.models[name].is_accepting_set(h[name]):
                        continue  # children sequence would violate the model
                    a_state = analysis.state_for(name, union)
                    key = (a_state, name)
                    if key not in states:
                        shape = (name, [t.to_shape() for t in children])
                        states[key] = Tree.build(shape)
                        changed = True
            for (a_state, name), witness in list(states.items()):
                symbol = self.symbol_of[name]
                for __, (fold, children) in list(folds.items()):
                    union, h = fold
                    new_union = tuple(
                        union[i] | a_state.alive[i]
                        for i in range(len(analysis._nfas))
                    )
                    new_h = {
                        parent: self.models[parent].step(h[parent], symbol)
                        for parent in self.elements
                    }
                    extended = (new_union, new_h)
                    key = fold_key(extended)
                    if key not in folds:
                        folds[key] = (extended, children + [witness])
                        changed = True
        return states


def exact_satisfiable_under(
    expr: xp.NodeExpr, dtd: Dtd, at_root: bool = False
) -> Tree | None:
    """A conforming document with a node (or, with ``at_root``, the root)
    satisfying the downward expression — or None, exactly."""
    target = expr if at_root else _somewhere(expr)
    analysis = _SchemaAnalysis([target], dtd)
    for (a_state, name), witness in analysis.reachable().items():
        if name != dtd.root:
            continue
        if analysis.analysis.bit_of(target, a_state):
            return witness
    return None


def exact_equivalent_under(
    left: xp.NodeExpr, right: xp.NodeExpr, dtd: Dtd
) -> Tree | None:
    """None if the two downward expressions agree at every node of every
    conforming document; otherwise a conforming witness containing a node
    satisfying exactly one of them."""
    difference = xp.Or(
        xp.And(left, xp.Not(right)), xp.And(xp.Not(left), right)
    )
    return exact_satisfiable_under(difference, dtd)


def exact_contained_under(
    small: xp.NodeExpr, large: xp.NodeExpr, dtd: Dtd
) -> Tree | None:
    """None if ``[[small]] ⊆ [[large]]`` on every conforming document;
    otherwise a conforming witness violating the containment."""
    return exact_satisfiable_under(xp.And(small, xp.Not(large)), dtd)
