"""Query equivalence, containment and satisfiability over tree corpora.

Query equivalence is the central static-analysis problem of the XPath
literature this paper belongs to (it is inter-reducible with containment and
satisfiability, and EXPTIME-hard already for modest fragments).  Exact
procedures exist via automata, but for the full Regular XPath(W) dialect we
provide the pragmatically useful pair:

* **bounded-exhaustive** checking — complete for counterexamples up to the
  corpus's exhaustive size (small-model falsification), and
* **randomized** checking on larger trees.

A ``None`` result therefore means "no counterexample found", reported with
the evidence (how many trees, exhaustive to what size) via
:class:`EquivalenceReport`.  Exact equivalence at the *automata* level
(hedge automata) is available in :mod:`repro.automata.hedge`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.budget import ExecutionBudget
from ..trees.tree import Tree
from ..xpath import ast as xp
from ..xpath.evaluator import Evaluator
from .corpora import Corpus, standard_corpus

__all__ = [
    "Counterexample",
    "EquivalenceReport",
    "check_node_equivalence",
    "check_path_equivalence",
    "check_node_containment",
    "check_path_containment",
    "find_satisfying_node",
    "node_equivalent",
    "path_equivalent",
]


@dataclass(frozen=True)
class Counterexample:
    """A witness that two expressions differ (or that one is satisfiable)."""

    tree: Tree
    detail: str

    def __str__(self) -> str:
        return f"{self.detail} on tree {self.tree.to_shape()!r}"


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of a corpus sweep.

    ``counterexample`` is None when every tree agreed; then ``trees_checked``
    and ``exhaustive_to`` say how strong that evidence is (exhaustive_to = k
    means *no* counterexample with ≤ k nodes exists, full stop).
    """

    counterexample: Counterexample | None
    trees_checked: int
    exhaustive_to: int

    @property
    def equivalent_on_corpus(self) -> bool:
        return self.counterexample is None


def _sweep(
    corpus: Corpus, compare, budget: ExecutionBudget | None = None
) -> EquivalenceReport:
    for index, tree in enumerate(corpus):
        if budget is not None:
            # One checkpoint per corpus tree; the per-tree evaluators carry
            # the same budget for their own engine-level checkpoints.
            budget.tick()
        detail = compare(tree)
        if detail is not None:
            return EquivalenceReport(
                Counterexample(tree, detail), index + 1, corpus.exhaustive_size
            )
    return EquivalenceReport(None, len(corpus), corpus.exhaustive_size)


def check_node_equivalence(
    left: xp.NodeExpr,
    right: xp.NodeExpr,
    corpus: Corpus | None = None,
    budget: ExecutionBudget | None = None,
) -> EquivalenceReport:
    """Do the two node expressions select the same nodes on every corpus tree?"""
    corpus = corpus or standard_corpus()

    def compare(tree: Tree) -> str | None:
        evaluator = Evaluator(tree, budget=budget)
        left_set = evaluator.nodes(left)
        right_set = evaluator.nodes(right)
        if left_set != right_set:
            return (
                f"node sets differ: {sorted(left_set)} vs {sorted(right_set)}"
            )
        return None

    return _sweep(corpus, compare, budget)


def check_path_equivalence(
    left: xp.PathExpr,
    right: xp.PathExpr,
    corpus: Corpus | None = None,
    budget: ExecutionBudget | None = None,
) -> EquivalenceReport:
    """Do the two path expressions denote the same relation on every tree?"""
    corpus = corpus or standard_corpus()

    def compare(tree: Tree) -> str | None:
        evaluator = Evaluator(tree, budget=budget)
        left_pairs = evaluator.pairs(left)
        right_pairs = evaluator.pairs(right)
        if left_pairs != right_pairs:
            only_left = left_pairs - right_pairs
            only_right = right_pairs - left_pairs
            return f"relations differ: +{sorted(only_left)} / -{sorted(only_right)}"
        return None

    return _sweep(corpus, compare, budget)


def check_node_containment(
    small: xp.NodeExpr,
    large: xp.NodeExpr,
    corpus: Corpus | None = None,
    budget: ExecutionBudget | None = None,
) -> EquivalenceReport:
    """Is ``[[small]] ⊆ [[large]]`` on every corpus tree?"""
    corpus = corpus or standard_corpus()

    def compare(tree: Tree) -> str | None:
        evaluator = Evaluator(tree, budget=budget)
        extra = evaluator.nodes(small) - evaluator.nodes(large)
        if extra:
            return f"containment fails at nodes {sorted(extra)}"
        return None

    return _sweep(corpus, compare, budget)


def check_path_containment(
    small: xp.PathExpr,
    large: xp.PathExpr,
    corpus: Corpus | None = None,
    budget: ExecutionBudget | None = None,
) -> EquivalenceReport:
    """Is the relation of ``small`` contained in that of ``large``?"""
    corpus = corpus or standard_corpus()

    def compare(tree: Tree) -> str | None:
        evaluator = Evaluator(tree, budget=budget)
        extra = evaluator.pairs(small) - evaluator.pairs(large)
        if extra:
            return f"containment fails at pairs {sorted(extra)}"
        return None

    return _sweep(corpus, compare, budget)


def find_satisfying_node(
    expr: xp.NodeExpr,
    corpus: Corpus | None = None,
    budget: ExecutionBudget | None = None,
) -> Counterexample | None:
    """A corpus tree with a node satisfying ``expr`` (bounded satisfiability)."""
    corpus = corpus or standard_corpus()
    for tree in corpus:
        if budget is not None:
            budget.tick()
        nodes = Evaluator(tree, budget=budget).nodes(expr)
        if nodes:
            return Counterexample(tree, f"satisfied at nodes {sorted(nodes)}")
    return None


def node_equivalent(
    left: xp.NodeExpr, right: xp.NodeExpr, corpus: Corpus | None = None
) -> bool:
    """Shorthand: no counterexample on the corpus."""
    return check_node_equivalence(left, right, corpus).equivalent_on_corpus


def path_equivalent(
    left: xp.PathExpr, right: xp.PathExpr, corpus: Corpus | None = None
) -> bool:
    """Shorthand: no counterexample on the corpus."""
    return check_path_equivalence(left, right, corpus).equivalent_on_corpus
