"""Decision procedures: equivalence, containment, satisfiability, axioms."""

from .axioms import (
    AXIOM_SCHEMES,
    Scheme,
    scheme_by_name,
    verify_all_schemes,
    verify_scheme,
)
from .corpora import Corpus, standard_corpus
from .exact import (
    DownwardAnalysis,
    NotDownward,
    exact_contained,
    exact_equivalent,
    exact_path_equivalent,
    exact_satisfiable,
)
from .schema import (
    exact_contained_under,
    exact_equivalent_under,
    exact_satisfiable_under,
)
from .equivalence import (
    Counterexample,
    EquivalenceReport,
    check_node_containment,
    check_node_equivalence,
    check_path_containment,
    check_path_equivalence,
    find_satisfying_node,
    node_equivalent,
    path_equivalent,
)

__all__ = [
    "AXIOM_SCHEMES",
    "DownwardAnalysis",
    "NotDownward",
    "exact_contained",
    "exact_equivalent",
    "exact_contained_under",
    "exact_equivalent_under",
    "exact_path_equivalent",
    "exact_satisfiable",
    "exact_satisfiable_under",
    "Corpus",
    "Counterexample",
    "EquivalenceReport",
    "Scheme",
    "check_node_containment",
    "check_node_equivalence",
    "check_path_containment",
    "check_path_equivalence",
    "find_satisfying_node",
    "node_equivalent",
    "path_equivalent",
    "scheme_by_name",
    "standard_corpus",
    "verify_all_schemes",
    "verify_scheme",
]
