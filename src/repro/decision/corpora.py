"""Tree corpora: the workloads of the equivalence experiments.

A :class:`Corpus` bundles an exhaustive part (*every* tree up to a size
bound — the falsification workhorse: any semantic bug shows up here) with a
randomized part (larger trees, catching size-dependent bugs).  All decision
procedures in this package take a corpus; :func:`standard_corpus` is the
default configuration used across the test-suite and EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..trees.generate import all_trees, chain, comb, random_deep_tree, random_tree, star
from ..trees.tree import Tree

__all__ = ["Corpus", "standard_corpus"]


@dataclass
class Corpus:
    """A reusable collection of test trees over a fixed alphabet."""

    alphabet: tuple[str, ...]
    trees: list[Tree] = field(default_factory=list)
    exhaustive_size: int = 0

    def __iter__(self) -> Iterator[Tree]:
        return iter(self.trees)

    def __len__(self) -> int:
        return len(self.trees)

    @property
    def is_exhaustive_to(self) -> int:
        """The corpus provably contains *all* trees up to this size."""
        return self.exhaustive_size


def standard_corpus(
    alphabet: Sequence[str] = ("a", "b"),
    exhaustive_size: int = 4,
    random_count: int = 30,
    max_random_size: int = 25,
    seed: int = 2008,
) -> Corpus:
    """The default corpus: exhaustive up to ``exhaustive_size`` nodes, plus
    random and shaped larger trees.

    The default exhaustive bound of 4 over a 2-letter alphabet gives 102
    trees; bound 5 gives 550 — still fast for most checks.
    """
    alphabet = tuple(alphabet)
    rng = random.Random(seed)
    trees: list[Tree] = list(all_trees(exhaustive_size, alphabet))
    for __ in range(random_count):
        size = rng.randint(exhaustive_size + 1, max_random_size)
        if rng.random() < 0.3:
            trees.append(random_deep_tree(size, alphabet, rng))
        else:
            trees.append(random_tree(size, alphabet, rng))
    # Shaped extremes keep degenerate navigation honest.
    trees.append(chain(max_random_size, alphabet))
    trees.append(star(max_random_size - 1, alphabet[0], alphabet[-1]))
    trees.append(comb(max_random_size // 2, alphabet[0], alphabet[-1]))
    return Corpus(alphabet, trees, exhaustive_size)
