"""The equational axiom schemes of the Core XPath literature (experiment A1).

The line of work this paper sits in (ten Cate–Litak–Marx and the talk
literature) axiomatizes query equivalence by finitely many *equivalence
schemes* over path metavariables A, B, C and node metavariables φ, ψ —
idempotent-semiring laws, predicate laws, node-sort boolean laws, the Löb
scheme for transitive axes, and tree-specific interaction laws.

This module states those schemes executably: each :class:`Scheme` builds a
concrete (lhs, rhs) pair from an instantiation of its metavariables.
:func:`verify_scheme` soundness-tests a scheme by random instantiation ×
corpus sweep — the machine-checkable half of the soundness problem the
slides describe ("how do you know all of your equivalences are valid?").
The catalog doubles as a stress test of the evaluator (every law is a
nontrivial semantic identity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..trees.axes import Axis
from ..xpath import ast as xp
from ..xpath.random_exprs import ExprSampler
from .corpora import Corpus, standard_corpus
from .equivalence import (
    EquivalenceReport,
    check_node_equivalence,
    check_path_equivalence,
)

__all__ = ["Scheme", "AXIOM_SCHEMES", "verify_scheme", "verify_all_schemes", "scheme_by_name"]


@dataclass(frozen=True)
class Scheme:
    """An equivalence scheme over metavariables.

    ``build`` receives ``path_arity`` path expressions followed by
    ``node_arity`` node expressions and returns the (lhs, rhs) instance —
    either two path expressions or two node expressions (``sort``).
    """

    name: str
    sort: str  # "path" | "node"
    path_arity: int
    node_arity: int
    build: Callable[..., tuple]
    comment: str = ""

    def instantiate(
        self, paths: Sequence[xp.PathExpr], nodes: Sequence[xp.NodeExpr]
    ) -> tuple:
        if len(paths) != self.path_arity or len(nodes) != self.node_arity:
            raise ValueError(
                f"scheme {self.name} needs {self.path_arity} paths and "
                f"{self.node_arity} node expressions"
            )
        return self.build(*paths, *nodes)


def _scheme(name, sort, path_arity, node_arity, comment=""):
    def wrap(fn):
        return Scheme(name, sort, path_arity, node_arity, fn, comment)

    return wrap


S = xp.SELF
DESC = xp.DESCENDANT
FSIB = xp.FOLLOWING_SIBLING


AXIOM_SCHEMES: list[Scheme] = [
    # -- idempotent semiring laws (ISAx) -----------------------------------
    Scheme("union-assoc", "path", 3, 0, lambda a, b, c: (xp.Union(xp.Union(a, b), c), xp.Union(a, xp.Union(b, c)))),
    Scheme("union-comm", "path", 2, 0, lambda a, b: (xp.Union(a, b), xp.Union(b, a))),
    Scheme("union-idem", "path", 1, 0, lambda a: (xp.Union(a, a), a)),
    Scheme("comp-assoc", "path", 3, 0, lambda a, b, c: (xp.Seq(xp.Seq(a, b), c), xp.Seq(a, xp.Seq(b, c)))),
    Scheme("unit-left", "path", 1, 0, lambda a: (xp.Seq(S, a), a)),
    Scheme("unit-right", "path", 1, 0, lambda a: (xp.Seq(a, S), a)),
    Scheme("distr-left", "path", 3, 0, lambda a, b, c: (xp.Seq(a, xp.Union(b, c)), xp.Union(xp.Seq(a, b), xp.Seq(a, c)))),
    Scheme("distr-right", "path", 3, 0, lambda a, b, c: (xp.Seq(xp.Union(a, b), c), xp.Union(xp.Seq(a, c), xp.Seq(b, c)))),
    Scheme("zero-union", "path", 1, 0, lambda a: (xp.Union(a, xp.EmptyPath()), a)),
    Scheme("zero-comp-left", "path", 1, 0, lambda a: (xp.Seq(xp.EmptyPath(), a), xp.EmptyPath())),
    Scheme("zero-comp-right", "path", 1, 0, lambda a: (xp.Seq(a, xp.EmptyPath()), xp.EmptyPath())),
    # -- predicate laws (PrAx) ------------------------------------------------
    Scheme(
        "filter-absorb",
        "path",
        2,
        0,
        lambda a, b: (xp.Seq(xp.filter_(a, xp.Exists(b)), b), xp.Seq(a, b)),
        "PrAx1: A[⟨B⟩]/B ≈ A/B",
    ),
    Scheme(
        "filter-or",
        "path",
        1,
        2,
        lambda a, p, q: (xp.filter_(a, xp.Or(p, q)), xp.Union(xp.filter_(a, p), xp.filter_(a, q))),
        "PrAx2: A[φ∨ψ] ≈ A[φ] | A[ψ]",
    ),
    Scheme(
        "filter-assoc",
        "path",
        2,
        1,
        lambda a, b, p: (xp.filter_(xp.Seq(a, b), p), xp.Seq(a, xp.filter_(b, p))),
        "PrAx3: (A/B)[φ] ≈ A/(B[φ])",
    ),
    Scheme("filter-true", "path", 1, 0, lambda a: (xp.filter_(a, xp.TRUE), a), "PrAx4"),
    Scheme(
        "filter-and",
        "path",
        1,
        2,
        lambda a, p, q: (xp.filter_(xp.filter_(a, p), q), xp.filter_(a, xp.And(p, q))),
        "A[φ][ψ] ≈ A[φ∧ψ]",
    ),
    # -- node-sort laws (NdAx) ---------------------------------------------------
    Scheme(
        "exists-union",
        "node",
        2,
        0,
        lambda a, b: (xp.Exists(xp.Union(a, b)), xp.Or(xp.Exists(a), xp.Exists(b))),
        "NdAx2: ⟨A|B⟩ ≈ ⟨A⟩∨⟨B⟩",
    ),
    Scheme(
        "exists-comp",
        "node",
        2,
        0,
        lambda a, b: (xp.Exists(xp.Seq(a, b)), xp.Exists(xp.filter_(a, xp.Exists(b)))),
        "NdAx3: ⟨A/B⟩ ≈ ⟨A[⟨B⟩]⟩",
    ),
    Scheme(
        "exists-filter",
        "node",
        0,
        1,
        lambda p: (xp.Exists(xp.Check(p)), p),
        "NdAx4: ⟨?φ⟩ ≈ φ",
    ),
    Scheme("double-negation", "node", 0, 1, lambda p: (xp.Not(xp.Not(p)), p)),
    Scheme(
        "de-morgan",
        "node",
        0,
        2,
        lambda p, q: (xp.Not(xp.And(p, q)), xp.Or(xp.Not(p), xp.Not(q))),
    ),
    Scheme(
        "and-distrib",
        "node",
        0,
        3,
        lambda p, q, r: (xp.And(p, xp.Or(q, r)), xp.Or(xp.And(p, q), xp.And(p, r))),
    ),
    # -- star laws (Regular XPath) ---------------------------------------------
    Scheme("star-unfold-left", "path", 1, 0, lambda a: (xp.Star(a), xp.Union(S, xp.Seq(a, xp.Star(a))))),
    Scheme("star-unfold-right", "path", 1, 0, lambda a: (xp.Star(a), xp.Union(S, xp.Seq(xp.Star(a), a)))),
    Scheme("star-star", "path", 1, 0, lambda a: (xp.Star(xp.Star(a)), xp.Star(a))),
    Scheme("star-union-self", "path", 1, 0, lambda a: (xp.Star(xp.Union(S, a)), xp.Star(a))),
    # -- transitive-axis laws (TransAx / TreeAx) ------------------------------------
    Scheme(
        "desc-unfold",
        "path",
        0,
        0,
        lambda: (DESC, xp.Union(xp.CHILD, xp.Seq(xp.CHILD, DESC))),
        "TreeAx1 for the vertical axis",
    ),
    Scheme(
        "fsib-unfold",
        "path",
        0,
        0,
        lambda: (FSIB, xp.Union(xp.RIGHT, xp.Seq(xp.RIGHT, FSIB))),
        "TreeAx1 for the horizontal axis",
    ),
    Scheme(
        "desc-transitive",
        "path",
        0,
        0,
        lambda: (xp.Union(DESC, xp.Seq(DESC, DESC)), DESC),
        "TransAx2",
    ),
    Scheme(
        "loeb-desc",
        "node",
        0,
        1,
        lambda p: (
            xp.Exists(xp.filter_(DESC, p)),
            xp.Exists(xp.filter_(DESC, xp.And(p, xp.Not(xp.Exists(xp.filter_(DESC, p)))))),
        ),
        "TransAx1 (Löb): a reachable φ implies a *deepest* reachable φ — "
        "valid precisely because trees are finite (well-foundedness)",
    ),
    Scheme(
        "loeb-fsib",
        "node",
        0,
        1,
        lambda p: (
            xp.Exists(xp.filter_(FSIB, p)),
            xp.Exists(xp.filter_(FSIB, xp.And(p, xp.Not(xp.Exists(xp.filter_(FSIB, p)))))),
        ),
        "Löb for the linear sibling axis",
    ),
    Scheme(
        "parent-functional",
        "node",
        0,
        1,
        lambda p: (
            xp.Exists(xp.filter_(xp.PARENT, xp.Not(p))),
            xp.And(xp.Exists(xp.PARENT), xp.Not(xp.Exists(xp.filter_(xp.PARENT, p)))),
        ),
        "LinAx1: the parent axis is a partial function",
    ),
    Scheme(
        "child-parent-roundtrip",
        "path",
        0,
        1,
        lambda p: (
            xp.Seq(xp.filter_(xp.CHILD, p), xp.PARENT),
            xp.filter_(xp.Check(xp.Exists(xp.filter_(xp.CHILD, p))), xp.TRUE),
        ),
        "TreeAx2-style: down-and-up is a test",
    ),
    # -- tree interaction laws (TreeAx family) -----------------------------------
    Scheme(
        "right-parent",
        "path",
        0,
        0,
        lambda: (xp.Seq(xp.RIGHT, xp.PARENT), xp.Seq(xp.Check(xp.Exists(xp.RIGHT)), xp.PARENT)),
        "stepping sideways does not change the parent",
    ),
    Scheme(
        "child-fsib-absorption",
        "path",
        0,
        0,
        lambda: (xp.Seq(xp.CHILD, FSIB), xp.filter_(xp.CHILD, xp.Exists(xp.LEFT))),
        "a later sibling of a child is a (non-first) child",
    ),
    Scheme(
        "desc-decomposition",
        "path",
        0,
        0,
        lambda: (DESC, xp.Seq(xp.CHILD, xp.Step(Axis.DESCENDANT_OR_SELF))),
        "descendant = child then descendant-or-self",
    ),
    Scheme(
        "ancestor-loeb",
        "node",
        0,
        1,
        lambda p: (
            xp.Exists(xp.filter_(xp.ANCESTOR, p)),
            xp.Exists(
                xp.filter_(
                    xp.ANCESTOR,
                    xp.And(p, xp.Not(xp.Exists(xp.filter_(xp.ANCESTOR, p)))),
                )
            ),
        ),
        "upward Löb: a φ-ancestor implies a topmost φ-ancestor",
    ),
    Scheme(
        "first-last-cover",
        "node",
        0,
        0,
        lambda: (
            xp.Or(xp.IS_FIRST, xp.Exists(xp.LEFT)),
            xp.TRUE,
        ),
        "every node is first or has a left sibling",
    ),
    Scheme(
        "parent-of-sibling",
        "node",
        0,
        1,
        lambda p: (
            xp.Exists(xp.Seq(xp.RIGHT, xp.filter_(xp.PARENT, p))),
            xp.And(xp.Exists(xp.RIGHT), xp.Exists(xp.filter_(xp.PARENT, p))),
        ),
        "the parent seen through a sibling is one's own parent",
    ),
    Scheme(
        "root-reachability",
        "node",
        0,
        0,
        lambda: (
            xp.Exists(xp.filter_(xp.Step(Axis.ANCESTOR_OR_SELF), xp.IS_ROOT)),
            xp.TRUE,
        ),
        "every node sees the root above itself",
    ),
    # -- XPath 2.0 path booleans (relation-algebra laws, ten Cate–Marx) ----------
    Scheme("isect-comm", "path", 2, 0, lambda a, b: (xp.Intersect(a, b), xp.Intersect(b, a))),
    Scheme("isect-assoc", "path", 3, 0, lambda a, b, c: (xp.Intersect(xp.Intersect(a, b), c), xp.Intersect(a, xp.Intersect(b, c)))),
    Scheme("isect-idem", "path", 1, 0, lambda a: (xp.Intersect(a, a), a)),
    Scheme("double-complement", "path", 1, 0, lambda a: (xp.Complement(xp.Complement(a)), a)),
    Scheme(
        "de-morgan-paths",
        "path",
        2,
        0,
        lambda a, b: (xp.Complement(xp.Union(a, b)), xp.Intersect(xp.Complement(a), xp.Complement(b))),
    ),
    Scheme(
        "absorption-paths",
        "path",
        2,
        0,
        lambda a, b: (xp.Intersect(a, xp.Union(a, b)), a),
    ),
    Scheme(
        "isect-contradiction",
        "path",
        1,
        0,
        lambda a: (xp.Intersect(a, xp.Complement(a)), xp.EmptyPath()),
    ),
    Scheme(
        "filter-via-intersection",
        "path",
        1,
        1,
        lambda a, p: (
            xp.filter_(a, p),
            xp.Intersect(a, xp.Seq(a, xp.Check(p))),
        ),
        "filters are definable from intersection (predicates can be "
        "defined away in XPath 2.0, as the talk literature notes)",
    ),
    # -- the W operator ------------------------------------------------------------
    Scheme("within-idem", "node", 0, 1, lambda p: (xp.Within(xp.Within(p)), xp.Within(p))),
    Scheme(
        "within-and",
        "node",
        0,
        2,
        lambda p, q: (xp.Within(xp.And(p, q)), xp.And(xp.Within(p), xp.Within(q))),
    ),
    Scheme(
        "within-not",
        "node",
        0,
        1,
        lambda p: (xp.Within(xp.Not(p)), xp.Not(xp.Within(p))),
    ),
    Scheme(
        "within-root",
        "node",
        0,
        0,
        lambda: (xp.Within(xp.IS_ROOT), xp.TRUE),
        "inside its own subtree, every node is the root",
    ),
]


def scheme_by_name(name: str) -> Scheme:
    for scheme in AXIOM_SCHEMES:
        if scheme.name == name:
            return scheme
    raise KeyError(name)


def verify_scheme(
    scheme: Scheme,
    corpus: Corpus | None = None,
    trials: int = 5,
    rng: random.Random | None = None,
    budget: int = 5,
) -> EquivalenceReport:
    """Soundness-test a scheme under ``trials`` random instantiations.

    Returns the first failing report, or the last passing one.
    """
    corpus = corpus or standard_corpus()
    rng = rng or random.Random(0)
    sampler = ExprSampler(alphabet=corpus.alphabet, rng=rng)
    report: EquivalenceReport | None = None
    for __ in range(max(1, trials)):
        paths = [sampler.path(budget) for _ in range(scheme.path_arity)]
        nodes = [sampler.node(budget) for _ in range(scheme.node_arity)]
        lhs, rhs = scheme.instantiate(paths, nodes)
        if scheme.sort == "path":
            report = check_path_equivalence(lhs, rhs, corpus)
        else:
            report = check_node_equivalence(lhs, rhs, corpus)
        if not report.equivalent_on_corpus:
            return report
    assert report is not None
    return report


def verify_all_schemes(
    corpus: Corpus | None = None, trials: int = 3, seed: int = 0
) -> dict[str, EquivalenceReport]:
    """Soundness-test the entire catalog; maps scheme name → report."""
    corpus = corpus or standard_corpus()
    rng = random.Random(seed)
    return {
        scheme.name: verify_scheme(scheme, corpus, trials, rng)
        for scheme in AXIOM_SCHEMES
    }
