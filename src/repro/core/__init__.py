"""The public façade of the reproduction: :class:`Query` and friends."""

from .query import Query

__all__ = ["Query"]
