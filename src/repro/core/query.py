"""The high-level query façade: one object tying all formalisms together.

:class:`Query` wraps a node or path expression and exposes, as methods, the
paper's whole diagram: evaluation on trees, translation into FO(MTC),
translation back from FO(MTC), compilation to nested TWA, simplification,
dialect classification, and corpus-based equivalence checking.

>>> from repro import Query
>>> q = Query.node("W(<descendant[b]>) and a")
>>> q.dialect
<Dialect.REGULAR_W: 'Regular XPath(W)'>
>>> q.evaluate(some_tree)          # frozenset of node ids
>>> q.to_fo_mtc()                  # an FO(MTC) formula
>>> q.equivalent(Query.node("a and <descendant[b]>"))   # True here: W is
...                                # redundant on a downward test
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..decision.corpora import Corpus, standard_corpus
from ..decision.equivalence import (
    EquivalenceReport,
    check_node_equivalence,
    check_path_equivalence,
)
from ..logic import ast as fo
from ..trees.tree import Tree
from ..xpath import ast as xp
from ..xpath.evaluator import Evaluator
from ..xpath.fragments import Dialect, axes_used, dialect, is_downward
from ..xpath.parser import parse_node, parse_path
from ..xpath.rewrite import simplify
from ..xpath.unparse import unparse

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """A parsed navigational query (node- or path-sorted)."""

    expr: "xp.NodeExpr | xp.PathExpr"

    # -- constructors ------------------------------------------------------

    @staticmethod
    def node(text: "str | xp.NodeExpr") -> "Query":
        """A node query, from source text or an AST."""
        if isinstance(text, str):
            return Query(parse_node(text))
        if not isinstance(text, xp.NodeExpr):
            raise TypeError(f"expected a node expression, got {text!r}")
        return Query(text)

    @staticmethod
    def path(text: "str | xp.PathExpr") -> "Query":
        """A path query, from source text or an AST."""
        if isinstance(text, str):
            return Query(parse_path(text))
        if not isinstance(text, xp.PathExpr):
            raise TypeError(f"expected a path expression, got {text!r}")
        return Query(text)

    # -- classification ---------------------------------------------------------

    @property
    def is_path(self) -> bool:
        return isinstance(self.expr, xp.PathExpr)

    @property
    def dialect(self) -> Dialect:
        """The smallest dialect (Core / Regular / Regular-W) containing it."""
        return dialect(self.expr)

    @property
    def axes(self):
        """The primitive axes the query navigates."""
        return axes_used(self.expr)

    @property
    def is_downward(self) -> bool:
        return is_downward(self.expr)

    @property
    def size(self) -> int:
        return self.expr.size

    # -- evaluation -----------------------------------------------------------

    def evaluate(self, tree: Tree) -> frozenset[int]:
        """Node query: the set of satisfying node ids."""
        if self.is_path:
            raise TypeError("use .pairs()/.select() for path queries")
        return Evaluator(tree).nodes(self.expr)

    def pairs(self, tree: Tree) -> set[tuple[int, int]]:
        """Path query: the denoted binary relation."""
        if not self.is_path:
            raise TypeError("use .evaluate() for node queries")
        return Evaluator(tree).pairs(self.expr)

    def select(self, tree: Tree, sources: Iterable[int] = (0,)) -> set[int]:
        """Path query: nodes reachable from ``sources`` (default: the root)."""
        if not self.is_path:
            raise TypeError("use .evaluate() for node queries")
        return Evaluator(tree).image(self.expr, sources)

    def holds_at(self, tree: Tree, node_id: int) -> bool:
        """Node query: truth at one node."""
        return node_id in self.evaluate(tree)

    # -- the paper's diagram -------------------------------------------------------

    def to_fo_mtc(self, x: str = "x", y: str = "y") -> fo.Formula:
        """The FO(MTC) translation (T1)."""
        from ..translations.xpath_to_logic import xpath_to_mtc

        return xpath_to_mtc(self.expr, x, y)

    def to_fo(self, x: str = "x", y: str = "y") -> fo.Formula:
        """The Core XPath → FO translation (extended signature)."""
        from ..translations.xpath_to_logic import xpath_to_fo

        return xpath_to_fo(self.expr, x, y)

    def to_nested_twa(self, alphabet: Iterable[str]):
        """Compile a downward node query to a nested TWA (T3)."""
        from ..translations.xpath_to_twa import compile_node_expr

        if self.is_path:
            raise TypeError("only node queries compile to tree acceptors")
        return compile_node_expr(self.expr, tuple(alphabet))

    @staticmethod
    def from_fo_mtc(formula: fo.Formula, x: str = "x", y: str | None = None) -> "Query":
        """The FO(MTC) → Regular XPath fragment translation (T2)."""
        from ..translations.mtc_to_xpath import mtc_to_node_expr, mtc_to_path_expr

        if y is None:
            return Query(mtc_to_node_expr(formula, x))
        return Query(mtc_to_path_expr(formula, x, y))

    # -- rewriting and comparison ------------------------------------------------

    def simplify(self) -> "Query":
        """Apply the sound rewrite system to a fixpoint."""
        return Query(simplify(self.expr))

    def equivalent(self, other: "Query", corpus: Corpus | None = None) -> bool:
        """Corpus-based equivalence (see :mod:`repro.decision.equivalence`)."""
        return self.compare(other, corpus).equivalent_on_corpus

    def compare(self, other: "Query", corpus: Corpus | None = None) -> EquivalenceReport:
        """Full equivalence report against another query of the same sort."""
        corpus = corpus or standard_corpus()
        if self.is_path != other.is_path:
            raise TypeError("cannot compare a node query with a path query")
        if self.is_path:
            return check_path_equivalence(self.expr, other.expr, corpus)
        return check_node_equivalence(self.expr, other.expr, corpus)

    # -- dunder -----------------------------------------------------------------

    def __str__(self) -> str:
        return unparse(self.expr)

    def __repr__(self) -> str:
        sort = "path" if self.is_path else "node"
        return f"Query.{sort}({unparse(self.expr)!r})"
