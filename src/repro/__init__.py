"""repro — an executable reproduction of *"XPath, transitive closure logic,
and nested tree walking automata"* (ten Cate & Segoufin, PODS 2008).

The package implements, from scratch, all formalisms the paper relates —

* the XPath dialect ladder **Core XPath ⊂ Regular XPath ⊂ Regular
  XPath(W)** on sibling-ordered labelled trees (:mod:`repro.xpath`,
  :mod:`repro.trees`),
* **FO(MTC)**, first-order logic with monadic transitive closure, with a
  database-style model checker (:mod:`repro.logic`),
* **tree walking automata** and the paper's **nested TWA**, plus hedge
  automata as the regular/MSO yardstick (:mod:`repro.automata`),

together with the translations between them (:mod:`repro.translations`), the
equivalence/containment decision harness (:mod:`repro.decision`), and the
high-level :class:`~repro.core.query.Query` façade.

Quickstart::

    from repro import Query, parse_xml

    tree = parse_xml("<talk><title><i/></title><speaker/></talk>")
    q = Query.node("<descendant[i]>")
    q.evaluate(tree)          # nodes with an <i> descendant
    q.to_fo_mtc()             # the FO(MTC) rendering (T1)
    q.to_nested_twa(("talk", "title", "i", "speaker"))   # nested TWA (T3)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
theorem-by-theorem validation results.
"""

from .core import Query
from .trees import Tree, parse_xml, to_xml
from .xpath import parse_node, parse_path, unparse

__version__ = "1.0.0"

__all__ = [
    "Query",
    "Tree",
    "parse_node",
    "parse_path",
    "parse_xml",
    "to_xml",
    "unparse",
    "__version__",
]
