"""DTD-style schemas as hedge automata.

A DTD (document type definition) assigns each element name a *content
model* — a regular expression over element names constraining the children
sequence.  DTDs are exactly the "local" regular tree languages, so they
compile directly into hedge automata with one state per element name; this
gives the library a realistic schema formalism for schema-aware static
analysis (satisfiability/containment *under a DTD* is the classic
database-theory setting for XPath decision problems).

Content-model syntax (the usual DTD operators)::

    model   := 'EMPTY' | 'ANY' | alt
    alt     := seq ( '|' seq )*
    seq     := unary ( ',' unary )*
    unary   := atom ( '*' | '+' | '?' )*
    atom    := NAME | '(' alt ')'

Example::

    schema = Dtd(
        root="bibliography",
        content={
            "bibliography": "(conference | journal)*",
            "conference": "paper+",
            "journal": "paper*",
            "paper": "title, author+, award?",
            "title": "EMPTY",
            "author": "EMPTY",
            "award": "EMPTY",
        },
    )
    schema.validate(tree)      # None or a violation message
    schema.to_hedge_automaton()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..trees.tree import Tree
from .hedge import HedgeAutomaton
from .strings import Nfa

__all__ = ["Dtd", "DtdSyntaxError", "parse_content_model"]


class DtdSyntaxError(ValueError):
    """Malformed content model."""


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch in "(),|*+?":
            tokens.append(ch)
            i += 1
        elif ch.isalnum() or ch in "_-.:#@":
            start = i
            while i < len(text) and (text[i].isalnum() or text[i] in "_-.:#@"):
                i += 1
            tokens.append(text[start:i])
        else:
            raise DtdSyntaxError(f"unexpected character {ch!r} in content model")
    tokens.append("")
    return tokens


class _ModelParser:
    def __init__(self, text: str, symbol_of: Mapping[str, int]):
        self.tokens = _tokenize(text)
        self.index = 0
        self.symbol_of = symbol_of

    @property
    def current(self) -> str:
        return self.tokens[self.index]

    def advance(self) -> str:
        token = self.tokens[self.index]
        if token:
            self.index += 1
        return token

    def parse(self) -> Nfa:
        result = self.alt()
        if self.current:
            raise DtdSyntaxError(f"trailing {self.current!r} in content model")
        return result

    def alt(self) -> Nfa:
        result = self.seq()
        while self.current == "|":
            self.advance()
            result = result.union(self.seq())
        return result

    def seq(self) -> Nfa:
        result = self.unary()
        while self.current == ",":
            self.advance()
            result = result.concat(self.unary())
        return result

    def unary(self) -> Nfa:
        result = self.atom()
        while self.current in ("*", "+", "?"):
            op = self.advance()
            if op == "*":
                result = result.star()
            elif op == "+":
                result = result.plus()
            else:
                result = result.optional()
        return result

    def atom(self) -> Nfa:
        token = self.current
        if token == "(":
            self.advance()
            inner = self.alt()
            if self.advance() != ")":
                raise DtdSyntaxError("unbalanced parenthesis in content model")
            return inner
        if not token or token in "),|*+?":
            raise DtdSyntaxError(f"expected an element name, found {token!r}")
        self.advance()
        if token not in self.symbol_of:
            raise DtdSyntaxError(
                f"content model mentions {token!r}, which has no declaration"
            )
        return Nfa.literal((self.symbol_of[token],))


def parse_content_model(text: str, symbol_of: Mapping[str, int]) -> Nfa:
    """Parse a content model into an NFA over element symbols.

    ``EMPTY`` means the empty sequence only; ``ANY`` any sequence of
    declared elements.
    """
    stripped = text.strip()
    if stripped == "EMPTY":
        return Nfa.empty_word()
    if stripped == "ANY":
        return Nfa.all_words(symbol_of.values())
    return _ModelParser(text, symbol_of).parse()


@dataclass(frozen=True)
class Dtd:
    """A document type definition: a root element and per-element content
    models (every element occurring anywhere must be declared)."""

    root: str
    content: Mapping[str, str]

    def __post_init__(self) -> None:
        if self.root not in self.content:
            raise DtdSyntaxError(f"root element {self.root!r} is not declared")

    @property
    def elements(self) -> tuple[str, ...]:
        return tuple(sorted(self.content))

    def _symbols(self) -> dict[str, int]:
        return {name: i for i, name in enumerate(self.elements)}

    def to_hedge_automaton(self) -> HedgeAutomaton:
        """The equivalent hedge automaton (state i ↔ element i)."""
        symbol_of = self._symbols()
        rules = {
            (symbol_of[name], name): parse_content_model(model, symbol_of)
            for name, model in self.content.items()
        }
        return HedgeAutomaton(
            len(symbol_of),
            self.elements,
            rules,
            frozenset({symbol_of[self.root]}),
        )

    def validate(self, tree: Tree) -> str | None:
        """None if the tree conforms, else a human-readable violation."""
        symbol_of = self._symbols()
        if tree.labels[0] != self.root:
            return f"root is <{tree.labels[0]}>, expected <{self.root}>"
        models = {
            name: parse_content_model(model, symbol_of)
            for name, model in self.content.items()
        }
        for v in tree.node_ids:
            label = tree.labels[v]
            if label not in symbol_of:
                return f"undeclared element <{label}> at node {v}"
            word = []
            for c in tree.children_ids(v):
                child_label = tree.labels[c]
                if child_label not in symbol_of:
                    return f"undeclared element <{child_label}> at node {c}"
                word.append(symbol_of[child_label])
            if not models[label].accepts(tuple(word)):
                children = ", ".join(tree.labels[c] for c in tree.children_ids(v))
                return (
                    f"children ({children or 'none'}) of <{label}> at node {v} "
                    f"violate its content model {self.content[label]!r}"
                )
        return None

    def conforms(self, tree: Tree) -> bool:
        return self.validate(tree) is None
