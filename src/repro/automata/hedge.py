"""Hedge automata: unranked tree automata — the MSO/regular upper bound.

The paper's T4/T5 results place nested TWA (= FO(MTC) = Regular XPath(W))
strictly *inside* the regular tree languages.  Hedge automata are the
standard machine model for the regular languages of unranked trees, so they
serve as the ground-truth side of those experiments.

A (nondeterministic) hedge automaton assigns states bottom-up: state ``q``
fits a node with label ``a`` iff the sequence of children states belongs to
the *horizontal language* of the rule ``(q, a)`` — an NFA over the state set
(:mod:`repro.automata.strings`).  A tree is accepted iff some run assigns an
accepting state to the root.

Provided machinery: membership, boolean closure (union / intersection /
complement via determinization), emptiness with witness extraction, and
containment/equivalence — the full decision toolbox of the regular tree
languages, built from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..trees.tree import Tree
from .strings import Nfa

__all__ = ["HedgeAutomaton", "DeterministicHedgeAutomaton"]


@dataclass(frozen=True)
class HedgeAutomaton:
    """A nondeterministic hedge automaton.

    ``rules`` maps ``(state, label)`` to the horizontal NFA over states that
    the children-state word must satisfy.  Missing rules mean "no run".
    States are integers; ``alphabet`` lists the tree labels handled (labels
    outside it make every run fail).
    """

    num_states: int
    alphabet: tuple[str, ...]
    rules: dict[tuple[int, str], Nfa]
    accepting: frozenset[int]

    # -- membership -----------------------------------------------------------

    def run_states(self, tree: Tree) -> list[frozenset[int]]:
        """For each node, the set of states assignable by some run."""
        states: list[frozenset[int]] = [frozenset()] * tree.size
        # Children have larger preorder ids, so iterate in reverse.
        for v in range(tree.size - 1, -1, -1):
            label = tree.labels[v]
            child_sets = [states[c] for c in tree.children_ids(v)]
            fitting: set[int] = set()
            for q in range(self.num_states):
                nfa = self.rules.get((q, label))
                if nfa is not None and nfa.accepts_some_choice(child_sets):
                    fitting.add(q)
            states[v] = frozenset(fitting)
        return states

    def accepts(self, tree: Tree) -> bool:
        return bool(self.run_states(tree)[0] & self.accepting)

    # -- boolean operations -------------------------------------------------------

    def union(self, other: "HedgeAutomaton") -> "HedgeAutomaton":
        """Disjoint union (accepts L₁ ∪ L₂)."""
        offset = self.num_states
        rules: dict[tuple[int, str], Nfa] = {}
        for (q, a), nfa in self.rules.items():
            rules[(q, a)] = nfa
        for (q, a), nfa in other.rules.items():
            rules[(q + offset, a)] = _shift_symbols(nfa, offset)
        return HedgeAutomaton(
            self.num_states + other.num_states,
            tuple(sorted(set(self.alphabet) | set(other.alphabet))),
            rules,
            self.accepting | frozenset(q + offset for q in other.accepting),
        )

    def intersection(self, other: "HedgeAutomaton") -> "HedgeAutomaton":
        """Product construction (accepts L₁ ∩ L₂)."""
        alphabet = tuple(sorted(set(self.alphabet) & set(other.alphabet)))

        def pair_id(q1: int, q2: int) -> int:
            return q1 * other.num_states + q2

        rules: dict[tuple[int, str], Nfa] = {}
        for q1 in range(self.num_states):
            for q2 in range(other.num_states):
                for a in alphabet:
                    nfa1 = self.rules.get((q1, a))
                    nfa2 = other.rules.get((q2, a))
                    if nfa1 is None or nfa2 is None:
                        continue
                    rules[(pair_id(q1, q2), a)] = _pair_nfa(
                        nfa1, nfa2, other.num_states
                    )
        accepting = frozenset(
            pair_id(q1, q2) for q1 in self.accepting for q2 in other.accepting
        )
        return HedgeAutomaton(
            self.num_states * other.num_states, alphabet, rules, accepting
        )

    def determinize(self) -> "DeterministicHedgeAutomaton":
        """Bottom-up subset construction (complete over ``alphabet``)."""
        return DeterministicHedgeAutomaton.from_nondeterministic(self)

    def complement(self) -> "HedgeAutomaton":
        """Complement relative to all trees over ``alphabet``."""
        return self.determinize().complement().to_nondeterministic()

    # -- decision problems -----------------------------------------------------

    def find_tree(self) -> Tree | None:
        """A (small) tree in the language, or None if the language is empty.

        Standard emptiness fixpoint: a state becomes *inhabited* once some
        rule's horizontal NFA accepts a word of already-inhabited states; a
        witness tree is assembled alongside.
        """
        witness: dict[int, Tree] = {}
        changed = True
        while changed:
            changed = False
            for (q, a), nfa in self.rules.items():
                if q in witness:
                    continue
                word = _find_word_over(nfa, set(witness))
                if word is not None:
                    witness[q] = Tree.build((a, [witness[c].to_shape() for c in word]))
                    changed = True
        for q in self.accepting:
            if q in witness:
                return witness[q]
        return None

    def is_empty(self) -> bool:
        return self.find_tree() is None

    def contains(self, other: "HedgeAutomaton") -> bool:
        """L(other) ⊆ L(self)?"""
        return other.intersection(self.complement()).is_empty()

    def equivalent(self, other: "HedgeAutomaton") -> bool:
        return self.contains(other) and other.contains(self)


def _shift_symbols(nfa: Nfa, offset: int) -> Nfa:
    transitions = {
        (q, s + offset): targets for (q, s), targets in nfa.transitions.items()
    }
    return Nfa(nfa.num_states, nfa.initial, nfa.accepting, transitions, nfa.epsilon)


def _pair_nfa(nfa1: Nfa, nfa2: Nfa, width: int) -> Nfa:
    """An NFA over pair symbols ``q1*width + q2`` accepting words whose
    projections are accepted by ``nfa1`` and ``nfa2`` respectively."""
    symbols1 = nfa1.symbols()
    symbols2 = nfa2.symbols()

    def pack(q1: int, q2: int) -> int:
        return q1 * nfa2.num_states + q2

    transitions: dict[tuple[int, object], frozenset[int]] = {}
    for (s1, sym1), targets1 in nfa1.transitions.items():
        for (s2, sym2), targets2 in nfa2.transitions.items():
            packed_symbol = sym1 * width + sym2  # type: ignore[operator]
            key = (pack(s1, s2), packed_symbol)
            combined = frozenset(
                pack(t1, t2) for t1 in targets1 for t2 in targets2
            )
            transitions[key] = transitions.get(key, frozenset()) | combined
    epsilon: dict[int, frozenset[int]] = {}
    for s1 in range(nfa1.num_states):
        for s2, eps2 in nfa2.epsilon.items():
            epsilon[pack(s1, s2)] = frozenset(pack(s1, t) for t in eps2)
    for s1, eps1 in nfa1.epsilon.items():
        for s2 in range(nfa2.num_states):
            key = pack(s1, s2)
            extra = frozenset(pack(t, s2) for t in eps1)
            epsilon[key] = epsilon.get(key, frozenset()) | extra
    initial = frozenset(pack(a, b) for a in nfa1.initial for b in nfa2.initial)
    accepting = frozenset(
        pack(a, b) for a in nfa1.accepting for b in nfa2.accepting
    )
    return Nfa(nfa1.num_states * nfa2.num_states, initial, accepting, transitions, epsilon)


def _find_word_over(nfa: Nfa, available: set[int]) -> tuple[int, ...] | None:
    """A shortest word over ``available`` symbols accepted by ``nfa``.

    BFS over NFA state-subsets (at most 2^|nfa| of them), so it terminates.
    """
    start = nfa.start_set()
    parent: dict[frozenset[int], tuple[frozenset[int], int] | None] = {start: None}
    queue = [start]
    while queue:
        current = queue.pop(0)
        if nfa.is_accepting_set(current):
            word: list[int] = []
            cursor = current
            while parent[cursor] is not None:
                prev, symbol = parent[cursor]  # type: ignore[misc]
                word.append(symbol)
                cursor = prev
            return tuple(reversed(word))
        for symbol in available:
            target = nfa.step(current, symbol)
            if target and target not in parent:
                parent[target] = (current, symbol)
                queue.append(target)
    return None


@dataclass(frozen=True)
class DeterministicHedgeAutomaton:
    """A complete bottom-up deterministic hedge automaton.

    Vertical states are integers; for each label there is a *horizontal DFA*
    over vertical states: reading the children-state word from a fixed
    initial horizontal state, the final horizontal state determines (via
    ``output``) the vertical state of the node.  Completeness means every
    tree gets exactly one state.
    """

    num_states: int
    alphabet: tuple[str, ...]
    #: per label: (horizontal transition dict, initial h-state, output map)
    horizontal: dict[str, tuple[dict[tuple[int, int], int], int, dict[int, int]]]
    accepting: frozenset[int]

    @staticmethod
    def from_nondeterministic(
        source: HedgeAutomaton,
    ) -> "DeterministicHedgeAutomaton":
        """Subset construction, exploring only reachable vertical subsets."""
        subset_index: dict[frozenset[int], int] = {}

        def vertical_id(subset: frozenset[int]) -> int:
            if subset not in subset_index:
                subset_index[subset] = len(subset_index)
            return subset_index[subset]

        # Horizontal simulation state: for each q with a rule (q, a), the
        # subset of NFA states reachable; keyed per label.
        h_index: dict[str, dict[tuple, int]] = {a: {} for a in source.alphabet}
        h_trans: dict[str, dict[tuple[int, int], int]] = {a: {} for a in source.alphabet}
        h_output: dict[str, dict[int, int]] = {a: {} for a in source.alphabet}
        h_initial: dict[str, int] = {}

        def h_state_key(a: str, sim: dict[int, frozenset[int]]) -> tuple:
            return tuple(sorted((q, s) for q, s in sim.items()))

        def h_id(a: str, sim: dict[int, frozenset[int]]) -> tuple[int, bool]:
            key = h_state_key(a, sim)
            table = h_index[a]
            if key in table:
                return table[key], False
            table[key] = len(table)
            return table[key], True

        # initial horizontal states and their outputs
        pending_vertical: list[frozenset[int]] = []
        known_vertical: set[frozenset[int]] = set()
        pending_horizontal: list[tuple[str, dict[int, frozenset[int]], int]] = []

        def h_result(a: str, sim: dict[int, frozenset[int]]) -> frozenset[int]:
            fitting = set()
            for q, states in sim.items():
                nfa = source.rules[(q, a)]
                if nfa.is_accepting_set(states):
                    fitting.add(q)
            return frozenset(fitting)

        def discover_vertical(subset: frozenset[int]) -> None:
            if subset not in known_vertical:
                known_vertical.add(subset)
                vertical_id(subset)
                pending_vertical.append(subset)

        for a in source.alphabet:
            sim = {
                q: source.rules[(q, a)].start_set()
                for q in range(source.num_states)
                if (q, a) in source.rules
            }
            hid, fresh = h_id(a, sim)
            h_initial[a] = hid
            result = h_result(a, sim)
            h_output[a][hid] = -1  # placeholder, fixed below
            discover_vertical(result)
            h_output[a][hid] = subset_index[result]
            if fresh:
                pending_horizontal.append((a, sim, hid))

        # Explore: alternate between new vertical subsets (as horizontal
        # input symbols) and new horizontal states.
        processed_pairs: set[tuple[str, int, int]] = set()
        h_sims: dict[tuple[str, int], dict[int, frozenset[int]]] = {}
        for a, sim, hid in pending_horizontal:
            h_sims[(a, hid)] = sim

        work = True
        while work:
            work = False
            vertical_snapshot = list(known_vertical)
            for a in source.alphabet:
                h_snapshot = list(h_sims.items())
                for (label, hid), sim in h_snapshot:
                    if label != a:
                        continue
                    for subset in vertical_snapshot:
                        vid = subset_index[subset]
                        if (a, hid, vid) in processed_pairs:
                            continue
                        processed_pairs.add((a, hid, vid))
                        work = True
                        nxt = {
                            q: _step_choices(source.rules[(q, a)], states, subset)
                            for q, states in sim.items()
                        }
                        nhid, fresh = h_id(a, nxt)
                        h_trans[a][(hid, vid)] = nhid
                        if fresh:
                            h_sims[(a, nhid)] = nxt
                            result = h_result(a, nxt)
                            discover_vertical(result)
                            h_output[a][nhid] = subset_index[result]
            # Newly discovered vertical subsets feed the next sweep.

        accepting = frozenset(
            vid
            for subset, vid in subset_index.items()
            if subset & source.accepting
        )
        horizontal = {
            a: (h_trans[a], h_initial[a], h_output[a]) for a in source.alphabet
        }
        return DeterministicHedgeAutomaton(
            len(subset_index), source.alphabet, horizontal, accepting
        )

    # -- semantics ---------------------------------------------------------------

    def state_of(self, tree: Tree) -> int:
        """The unique vertical state assigned to the root."""
        states: list[int] = [0] * tree.size
        for v in range(tree.size - 1, -1, -1):
            label = tree.labels[v]
            if label not in self.horizontal:
                raise ValueError(f"label {label!r} outside automaton alphabet")
            trans, init, output = self.horizontal[label]
            h = init
            for c in tree.children_ids(v):
                h = trans[(h, states[c])]
            states[v] = output[h]
        return states[0]

    def accepts(self, tree: Tree) -> bool:
        return self.state_of(tree) in self.accepting

    def complement(self) -> "DeterministicHedgeAutomaton":
        return DeterministicHedgeAutomaton(
            self.num_states,
            self.alphabet,
            self.horizontal,
            frozenset(range(self.num_states)) - self.accepting,
        )

    def to_nondeterministic(self) -> HedgeAutomaton:
        """View as a (trivially nondeterministic) hedge automaton."""
        rules: dict[tuple[int, str], Nfa] = {}
        for a, (trans, init, output) in self.horizontal.items():
            # For each vertical state q, the horizontal language is the set
            # of words driving the DFA from init to some h with output q.
            h_states = {init} | {h for (h, __) in trans} | set(trans.values())
            renumber = {h: i for i, h in enumerate(sorted(h_states))}
            for q in range(self.num_states):
                accepting = frozenset(
                    renumber[h] for h, out in output.items() if out == q and h in renumber
                )
                if not accepting:
                    continue
                nfa_transitions = {
                    (renumber[h], vid): frozenset({renumber[nh]})
                    for (h, vid), nh in trans.items()
                }
                rules[(q, a)] = Nfa(
                    len(renumber),
                    frozenset({renumber[init]}),
                    accepting,
                    nfa_transitions,
                )
        return HedgeAutomaton(self.num_states, self.alphabet, rules, self.accepting)


def _step_choices(nfa: Nfa, states: frozenset[int], symbols: frozenset[int]):
    nxt: set[int] = set()
    for symbol in symbols:
        nxt.update(nfa.step(states, symbol))
    return frozenset(nxt)
