"""Bottom-up *behavior* computation for tree walking automata.

This is the machinery behind the paper's regularity theorem (T4: every
(nested) TWA language is regular): the interaction of a walking automaton
with a subtree is fully summarized by a finite *behavior table* — for every
state in which the walker can enter the subtree at its root, the set of ways
it can leave again (exit up / exit to the left or right sibling of the root,
in which state) or accept inside.  Subtrees with equal tables are
interchangeable (the *swap lemma*, property-tested in T4/T5), so a bottom-up
automaton over behavior tables recognizes the same language.

Because TWAs move sideways, a walker inside the subtree of ``v`` can leave
it not only through ``v``'s parent edge but also through ``v``'s sibling
edges — hence the three exit directions.  Behaviors are composed across a
node's children by reachability in a small local graph whose vertices are
"at the node in state q" and "entering child i in state q".

The behavior of a subtree depends on the flags its root exhibits (first?
last? root?), so :func:`subtree_behavior` takes them as parameters;
:class:`BehaviorAnalysis` computes the whole tree bottom-up with each node's
actual flags and answers membership in the same pass.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping

from ..trees.tree import Tree
from .twa import TWA, Move, Observation

__all__ = [
    "Behavior",
    "BehaviorAnalysis",
    "subtree_behavior",
    "behavior_accepts",
]

#: An outcome is ("accept",) or (direction, state) with direction in
#: {"up", "left", "right"}.
Outcome = tuple
ACCEPT: Outcome = ("accept",)

#: A behavior table: entry state -> frozenset of outcomes.
Behavior = Mapping[int, frozenset]


def _freeze(behavior: dict[int, set]) -> dict[int, frozenset]:
    return {q: frozenset(outs) for q, outs in behavior.items()}


def _node_behavior(
    automaton: TWA,
    obs: Observation,
    child_behaviors: list[Behavior],
) -> dict[int, frozenset]:
    """Combine children behaviors through the local node into its own."""
    k = len(child_behaviors)
    num_states = automaton.num_states

    # Local graph vertices: ("v", q) and ("c", i, q).  Compute, for each
    # start ("v", q), the reachable terminal outcomes.
    # Edges are computed on demand during BFS.
    def successors(vertex):
        kind = vertex[0]
        if kind == "v":
            q = vertex[1]
            if q in automaton.accepting:
                yield ("out", ACCEPT)
                return
            for move, nq in automaton.options(q, obs):
                if move is Move.STAY:
                    yield ("v", nq)
                elif move is Move.UP:
                    yield ("out", ("up", nq))
                elif move is Move.LEFT:
                    yield ("out", ("left", nq))
                elif move is Move.RIGHT:
                    yield ("out", ("right", nq))
                elif move is Move.DOWN_FIRST:
                    if k:
                        yield ("c", 0, nq)
                elif move is Move.DOWN_LAST:
                    if k:
                        yield ("c", k - 1, nq)
        else:
            __, i, q = vertex
            for outcome in child_behaviors[i].get(q, ()):
                if outcome == ACCEPT:
                    yield ("out", ACCEPT)
                    continue
                direction, nq = outcome
                if direction == "up":
                    yield ("v", nq)
                elif direction == "left":
                    if i > 0:
                        yield ("c", i - 1, nq)
                elif direction == "right":
                    if i < k - 1:
                        yield ("c", i + 1, nq)

    # Single shared BFS per entry state; memoizing across entry states via
    # full closure would need SCC condensation — entry-by-entry BFS is
    # simple and the local graph is small (|Q|·(k+1) vertices).
    behavior: dict[int, set] = {}
    for q0 in range(num_states):
        start = ("v", q0)
        outcomes: set = set()
        seen = {start}
        queue = deque([start])
        while queue:
            vertex = queue.popleft()
            for succ in successors(vertex):
                if succ[0] == "out":
                    outcomes.add(succ[1])
                elif succ not in seen:
                    seen.add(succ)
                    queue.append(succ)
        # Entering an accepting state *is* accepting, even with no moves.
        if q0 in automaton.accepting:
            outcomes.add(ACCEPT)
        behavior[q0] = outcomes
    return _freeze(behavior)


class BehaviorAnalysis:
    """Bottom-up behaviors of every node of (the scoped part of) a tree."""

    def __init__(self, automaton: TWA, tree: Tree, scope: int = 0):
        self.automaton = automaton
        self.tree = tree
        self.scope = scope
        self.behaviors: dict[int, dict[int, frozenset]] = {}
        self._compute()

    def _observation(self, node_id: int) -> Observation:
        from .twa import observation_at

        return observation_at(self.tree, node_id, self.scope)

    def _compute(self) -> None:
        tree = self.tree
        span = tree.subtree_ids(self.scope)
        for v in reversed(span):
            children = [self.behaviors[c] for c in tree.children_ids(v)]
            self.behaviors[v] = _node_behavior(
                self.automaton, self._observation(v), children
            )

    def accepts(self) -> bool:
        """Membership: can the automaton accept from (initial, scope root)?

        Exits from the scope root fall off the (scoped) tree, so only the
        ACCEPT outcome counts.
        """
        root_behavior = self.behaviors[self.scope]
        return ACCEPT in root_behavior[self.automaton.initial]


def behavior_accepts(automaton: TWA, tree: Tree, scope: int = 0) -> bool:
    """Membership via the behavior algorithm (cross-validates ``TWA.accepts``)."""
    return BehaviorAnalysis(automaton, tree, scope).accepts()


def subtree_behavior(
    automaton: TWA,
    tree: Tree,
    node_id: int,
    is_first: bool,
    is_last: bool,
    is_root: bool = False,
) -> tuple[tuple[int, tuple], ...]:
    """The behavior table of the subtree at ``node_id`` in a *hypothetical*
    context where its root exhibits the given flags.

    Returned in a canonical hashable form — the "signature" used by the swap
    lemma: subtrees with equal signatures (under all flag contexts they can
    occupy) are interchangeable for this automaton.
    """
    behaviors: dict[int, dict[int, frozenset]] = {}
    for v in reversed(tree.subtree_ids(node_id)):
        children = [behaviors[c] for c in tree.children_ids(v)]
        if v == node_id:
            obs = Observation(
                label=tree.labels[v],
                is_root=is_root,
                is_leaf=tree.first_child[v] < 0,
                is_first=is_first,
                is_last=is_last,
            )
        else:
            obs = Observation(
                label=tree.labels[v],
                is_root=False,
                is_leaf=tree.first_child[v] < 0,
                is_first=tree.prev_sibling[v] < 0,
                is_last=tree.next_sibling[v] < 0,
            )
        behaviors[v] = _node_behavior(automaton, obs, children)
    table = behaviors[node_id]
    return tuple(
        (q, tuple(sorted(table[q]))) for q in sorted(table)
    )
